"""The ``repro`` command-line tool — SPLATT's CLI surface, reproduced.

SPLATT ships a command-line front end (``splatt cpd``, ``splatt check``,
``splatt stats``, ``splatt complete``); this module provides the same
workflow over this library:

========================  ==================================================
``repro stats X.tns``      Table-I-style properties + per-mode structure
                           (``--json`` for machine-readable output)
``repro check X.tns``      validate a tensor file (``--verbose`` for the
                           full report: duplicates, empty slices, skew)
``repro cpd X.tns``        CP-ALS decomposition; writes factors (.npz or
                           SPLATT layout), prints the paper's breakdown
``repro tucker X.tns``     Tucker decomposition (HOOI)
``repro complete X.tns``   tensor completion (ALS / SGD / CCD++)
``repro compare A B``      factor match score between saved models
``repro reorder X.tns Y``  locality relabeling (degree / random)
``repro generate yelp Y``  write a Table I synthetic stand-in to disk
``repro convert X.tns Y``  convert between tensor formats (``.tns``/
                           ``.tns.gz`` text, ``.npz`` compressed binary,
                           ``.tnsb`` flat mmap binary), deduplicating
``repro serve``            long-lived decomposition daemon: warm plan
                           caches, job batching, per-tenant quotas,
                           metrics scrape (docs/SERVING.md)
``repro submit X.tns``     submit a job to a running daemon (also carries
                           --status/--suspend/--resume/--metrics/
                           --shutdown operations)
========================  ==================================================

Every subcommand accepts ``--help``.  The benchmark harness has its own
entry point (``repro-bench`` / ``python -m repro.bench``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro._util import human_bytes
from repro.completion.driver import ALGORITHMS, CompletionOptions, complete
from repro.core.cpals import cp_als
from repro.core.model_io import save_kruskal_dir, save_kruskal_npz
from repro.core.options import CpalsOptions, DEFAULT_ITERATIONS, DEFAULT_RANK
from repro.observe import tracing
from repro.runtime.env import ChapelEnv
from repro.tensor.generate import DATASET_SIGNATURES, synthetic_dataset
from repro.tensor.io import (
    load_binary,
    load_mmap,
    load_tns,
    save_binary,
    save_mmap,
    save_tns,
)
from repro.tensor.stats import tensor_stats

__all__ = ["main"]


def _load(path: str):
    """Load a tensor, dispatching on suffix.

    ``.tnsb`` files are memory-mapped (:func:`load_mmap`) and ``.npz``
    caches decompressed (:func:`load_binary`); both binary formats are
    written deduplicated (``repro convert`` dedups), so only the text
    path pays a duplicate scan here.
    """
    p = Path(path)
    if p.suffix == ".tnsb":
        return load_mmap(p)
    if p.suffix == ".npz":
        return load_binary(p)
    tensor = load_tns(p)
    dedup = tensor.deduplicate()
    if dedup.nnz != tensor.nnz:
        print(f"note: summed {tensor.nnz - dedup.nnz} duplicate coordinates")
    return dedup


def _traced(args: argparse.Namespace):
    """Context manager running the command under ``tracing`` when the
    subcommand was given ``--trace PATH`` (no-op recorder otherwise)."""
    path = getattr(args, "trace", None)
    if path is None:
        import contextlib

        return contextlib.nullcontext()
    return tracing(path)


def _report_trace(args: argparse.Namespace) -> None:
    path = getattr(args, "trace", None)
    if path is not None:
        print(f"wrote Chrome trace to {path} (load in a Perfetto/chrome://tracing UI)")


class _SanitizeScope:
    """Optional concurrency-sanitizer wrapper for a solver run.

    With ``--sanitize``, installs :class:`repro.sanitize.Sanitizer` around
    the solve (``--sanitize-seed`` additionally arms the schedule
    perturber); afterwards :meth:`report_exit_code` prints the race report
    and turns findings into exit code 1.  Without the flag this is a
    no-op and the solver runs uninstrumented.
    """

    def __init__(self, args: argparse.Namespace):
        self.enabled = bool(getattr(args, "sanitize", False))
        self.seed = getattr(args, "sanitize_seed", None)
        self._cm = None
        self.sanitizer = None

    def __enter__(self) -> "_SanitizeScope":
        if self.enabled:
            from repro.sanitize import sanitizing

            self._cm = sanitizing(seed=self.seed)
            self.sanitizer = self._cm.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        if self._cm is not None:
            return bool(self._cm.__exit__(*exc))
        return False

    def report_exit_code(self) -> int:
        """Print the sanitizer report; findings make the command fail."""
        if self.sanitizer is None:
            return 0
        report = self.sanitizer.report()
        print(report.render())
        return 0 if report.ok else 1


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_stats(args: argparse.Namespace) -> int:
    tensor = _load(args.tensor)
    st = tensor_stats(tensor)
    if args.json:
        import json

        payload = {
            "dims": list(tensor.dims),
            "order": tensor.nmodes,
            "nnz": tensor.nnz,
            "density": tensor.density,
            "modes": [
                {
                    "mode": ms.mode,
                    "dim": ms.dim,
                    "nonempty_slices": ms.nonempty_slices,
                    "nfibers": ms.nfibers,
                    "max_slice_nnz": ms.max_slice_nnz,
                    "slice_imbalance": ms.slice_imbalance,
                    "top_slice_share": ms.top_slice_share,
                }
                for ms in st.modes
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    dims = "x".join(str(d) for d in tensor.dims)
    print(f"tensor:   {args.tensor}")
    print(f"order:    {tensor.nmodes}")
    print(f"dims:     {dims}")
    print(f"nnz:      {tensor.nnz}")
    print(f"density:  {tensor.density:.4E}")
    print(f"size:     {human_bytes(tensor.size_on_disk)} (FROSTT text estimate)")
    print()
    print("per-mode structure:")
    print(f"  {'mode':>4} {'dim':>8} {'nonempty':>9} {'fibers':>8} "
          f"{'max-slice':>9} {'imbalance':>9} {'hub-share':>9}")
    for ms in st.modes:
        print(f"  {ms.mode:>4} {ms.dim:>8} {ms.nonempty_slices:>9} {ms.nfibers:>8} "
              f"{ms.max_slice_nnz:>9} {ms.slice_imbalance:>9.2f} "
              f"{ms.top_slice_share:>9.3f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        tensor = load_tns(args.tensor)
    except (ValueError, OSError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if args.verbose:
        from repro.tensor.validate import validate_tensor

        report = validate_tensor(tensor)
        print(report.render())
        return 0 if report.ok else 1
    dedup = tensor.deduplicate()
    dupes = tensor.nnz - dedup.nnz
    print(f"OK: order-{tensor.nmodes} tensor, dims "
          f"{'x'.join(str(d) for d in tensor.dims)}, {tensor.nnz} nonzeros"
          + (f" ({dupes} duplicate coordinates would be summed)" if dupes else ""))
    return 0


def _cmd_cpd_distributed(args: argparse.Namespace, tensor, opts: CpalsOptions):
    """Run ``cpd`` through the medium-grained distributed driver."""
    from repro.distributed import distributed_cp_als

    # checkpoint/resume × distributed is rejected by CpalsOptions itself
    # (the options object cannot be constructed), so the CLI and the
    # programmatic API agree by construction.
    if getattr(args, "sanitize", False) and opts.transport == "proc":
        raise ValueError(
            "--sanitize instruments in-process tasking and cannot observe "
            "spawned locale workers; use --transport sim to sanitize"
        )
    with _traced(args), _SanitizeScope(args) as san_scope:
        result = distributed_cp_als(
            tensor,
            args.rank,
            nlocales=opts.locales,
            transport=opts.transport,
            backend=opts.backend,
            max_iterations=opts.max_iterations,
            tolerance=opts.tolerance,
            seed=opts.seed,
        )
    _report_trace(args)
    grid = "x".join(str(g) for g in result.grid.shape)
    comm = result.comm
    print(f"fit = {result.fit:.6f} after {result.iterations} iterations "
          f"(converged: {result.converged}) in {result.seconds:.3f}s")
    print(f"transport: {result.transport}  grid: {grid} "
          f"({result.grid.nlocales} locales)  "
          f"nnz imbalance: {result.partition.imbalance:.2f}")
    print(f"comm: fold {comm.fold_rows} rows / {comm.fold_messages} msgs, "
          f"expand {comm.expand_rows} rows / {comm.expand_messages} msgs, "
          f"volume {human_bytes(comm.volume_bytes(args.rank))}")
    if result.locale_stats:
        for lrank in sorted(result.locale_stats):
            stats = result.locale_stats[lrank]
            mtt = stats.get("span.locale.mttkrp.total_s", 0.0)
            print(f"  locale {lrank}: mttkrp {mtt:.3f}s "
                  f"({int(stats.get('span.locale.mttkrp.count', 0))} calls)")
    return result, san_scope


def _cmd_cpd(args: argparse.Namespace) -> int:
    tensor = _load(args.tensor)
    opts = CpalsOptions(
        max_iterations=args.iterations,
        tolerance=args.tolerance,
        variant=args.variant,
        allocation=args.allocation,
        env=ChapelEnv(num_tasks=args.tasks),
        seed=args.seed,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        backend=args.backend,
        locales=args.locales,
        transport=args.transport,
    )
    if opts.distributed:
        result, san_scope = _cmd_cpd_distributed(args, tensor, opts)
    else:
        with _traced(args), _SanitizeScope(args) as san_scope:
            result = cp_als(tensor, args.rank, opts)
        _report_trace(args)
        print(result.summary())
    if args.output:
        out = Path(args.output)
        if args.splatt_format:
            save_kruskal_dir(result.kruskal, out)
            print(f"wrote SPLATT-layout model to {out}/")
        else:
            save_kruskal_npz(result.kruskal, out)
            print(f"wrote model to {out if out.suffix else out.with_suffix('.npz')}")
    return san_scope.report_exit_code()


def _cmd_complete(args: argparse.Namespace) -> int:
    tensor = _load(args.tensor)
    opts = CompletionOptions(
        algorithm=args.algorithm,
        max_epochs=args.epochs,
        regularization=args.regularization,
        learn_rate=args.learn_rate,
        validation_fraction=args.validation,
        seed=args.seed,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume,
        backend=args.backend,
    )
    with _traced(args), _SanitizeScope(args) as san_scope:
        result = complete(tensor, args.rank, opts)
    _report_trace(args)
    print(f"algorithm: {result.algorithm}")
    print(f"epochs:    {result.epochs} (best: {result.best_epoch}, "
          f"converged: {result.converged})")
    print(f"train RMSE: {result.final_train_rmse:.6f}")
    if result.val_rmse:
        print(f"val RMSE:   {min(result.val_rmse):.6f} (best)")
    if args.output:
        out = Path(args.output)
        np.savez_compressed(
            out, **{f"factor{m}": f for m, f in enumerate(result.factors)}
        )
        print(f"wrote model to {out if out.suffix else out.with_suffix('.npz')}")
    return san_scope.report_exit_code()


def _cmd_tucker(args: argparse.Namespace) -> int:
    from repro.tucker import tucker_hooi

    tensor = _load(args.tensor)
    ranks = tuple(args.ranks)
    if len(ranks) == 1:
        ranks = ranks * tensor.nmodes
    with _traced(args), _SanitizeScope(args) as san_scope:
        result = tucker_hooi(
            tensor, ranks,
            max_iterations=args.iterations,
            tolerance=args.tolerance,
            seed=args.seed,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume,
            backend=args.backend,
        )
    _report_trace(args)
    print(f"fit = {result.fit:.6f} after {result.iterations} sweeps "
          f"(converged: {result.converged})")
    print(f"core: {'x'.join(str(r) for r in result.ranks)}  "
          f"core norm = {float(np.linalg.norm(result.core)):.4f}")
    if args.output:
        out = Path(args.output)
        np.savez_compressed(
            out, core=result.core,
            **{f"factor{m}": f for m, f in enumerate(result.factors)},
        )
        print(f"wrote model to {out if out.suffix else out.with_suffix('.npz')}")
    return san_scope.report_exit_code()


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.fms import align_components, factor_match_score
    from repro.core.model_io import load_kruskal_dir, load_kruskal_npz

    def load(path: str):
        p = Path(path)
        return load_kruskal_dir(p) if p.is_dir() else load_kruskal_npz(p)

    try:
        a = load(args.model_a)
        b = load(args.model_b)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        fms = factor_match_score(a, b)
        fms_sub = factor_match_score(a, b, weight_penalty=False)
        perm = align_components(a, b)
    except ValueError as exc:
        print(f"models are not comparable: {exc}", file=sys.stderr)
        return 1
    print(f"factor match score:      {fms:.4f}")
    print(f"subspace-only FMS:       {fms_sub:.4f}")
    print(f"component alignment:     {list(int(p) for p in perm)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    tensor = synthetic_dataset(args.dataset, scale=args.scale, seed=args.seed)
    save_tns(tensor, args.output)
    print(f"wrote {tensor.nnz} nonzeros "
          f"({'x'.join(str(d) for d in tensor.dims)}) to {args.output}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    tensor = _load(args.input)
    out = Path(args.output)
    if out.suffix == ".tnsb":
        save_mmap(tensor, out)
        kind = "flat mmap binary (.tnsb)"
    elif out.suffix == ".npz":
        save_binary(tensor, out)
        kind = "compressed binary (.npz)"
    else:
        save_tns(tensor, out)
        kind = "FROSTT text (.tns.gz)" if out.suffix == ".gz" else "FROSTT text (.tns)"
    print(f"wrote {tensor.nnz} nonzeros "
          f"({'x'.join(str(d) for d in tensor.dims)}) to {out} as {kind}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import QuotaPolicy, ReproServer, ServeConfig, TenantQuotas

    quotas = QuotaPolicy(TenantQuotas(
        max_nnz=args.max_nnz,
        max_resident_bytes=args.max_resident_bytes,
        max_queued_jobs=args.max_queued_jobs,
    ))
    fault_targets = []
    for spec in args.fault or []:
        site, _, occurrence = spec.rpartition(":")
        if not site or not occurrence.isdigit():
            print(f"error: --fault wants SITE:OCCURRENCE, got {spec!r}",
                  file=sys.stderr)
            return 2
        fault_targets.append((site, int(occurrence)))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        tasks=args.tasks,
        backend=args.backend,
        spool=args.spool,
        quotas=quotas,
        max_job_retries=args.max_job_retries,
        sanitize=args.sanitize,
        sanitize_seed=args.sanitize_seed,
        fault_targets=fault_targets,
    )
    server = ReproServer(config).start()
    try:
        print(f"serving on {args.host}:{server.port} "
              f"(backend: {server.engine.backend.name}, tasks: {args.tasks})",
              flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{server.port}\n")
        try:
            server.wait_for_shutdown()
        except KeyboardInterrupt:
            print("interrupted; shutting down", flush=True)
    finally:
        server.close()
    if server.sanitize_report is not None:
        print(server.sanitize_report.render())
        if not server.sanitize_report.ok:
            return 1
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient, ServeError

    def show(payload) -> None:
        print(json.dumps(payload, indent=2, sort_keys=True))

    try:
        with ServeClient(host=args.host, port=args.port,
                         tenant=args.tenant) as client:
            if args.metrics:
                response = client.metrics(
                    format="prometheus" if args.prometheus else "json")
                if args.prometheus:
                    print(response["text"], end="")
                else:
                    show(response["metrics"])
                return 0
            if args.shutdown:
                client.shutdown()
                print("server shutting down")
                return 0
            for job_id, op in ((args.status, client.status),
                               (args.suspend, client.suspend),
                               (args.resume, client.resume),
                               (args.cancel, client.cancel)):
                if job_id:
                    show(op(job_id))
                    return 0
            if args.spec:
                raw = args.spec
                if raw.startswith("@"):
                    raw = Path(raw[1:]).read_text()
                spec = json.loads(raw)
            elif args.tensor:
                spec = {"kind": args.kind, "tensor": str(Path(args.tensor).resolve()),
                        "rank": args.rank, "iterations": args.iterations,
                        "seed": args.seed}
            else:
                print("error: give a tensor file, --spec JSON, or an op flag "
                      "(--metrics/--status/--suspend/--resume/--cancel/--shutdown)",
                      file=sys.stderr)
                return 2
            submitted = client.submit(spec)
            if args.no_wait:
                show(submitted)
                return 0
            finished = client.wait(submitted["id"], timeout=args.timeout)
            show(finished)
            return 0 if finished["job"]["state"] in ("done", "suspended") else 1
    except ServeError as exc:
        print(json.dumps({"code": exc.code, "message": str(exc),
                          **{k: v for k, v in exc.error.items()
                             if k not in ("code", "message")}},
                         indent=2, sort_keys=True), file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach server at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """First-class ``repro lint``: forwards to ``python -m repro.lint``.

    Exit code 1 on any active finding — CI-gating semantics, identical to
    running the module directly.
    """
    from repro.lint.__main__ import main as lint_main

    return lint_main(list(args.args))


def _cmd_analyze(args: argparse.Namespace) -> int:
    """First-class ``repro analyze``: forwards to ``python -m repro.analyze``."""
    from repro.analyze.__main__ import main as analyze_main

    return analyze_main(list(args.args))


def _cmd_reorder(args: argparse.Namespace) -> int:
    from repro.tensor.reorder import reorder_tensor

    tensor = _load(args.tensor)
    out, perms = reorder_tensor(tensor, strategy=args.strategy, seed=args.seed)
    save_tns(out, args.output)
    print(f"wrote {args.strategy}-relabeled tensor to {args.output}")
    if args.perms:
        np.savez_compressed(
            Path(args.perms), **{f"mode{m}": p for m, p in enumerate(perms)}
        )
        print(f"wrote relabeling maps (perm[new] = old) to {args.perms}")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_sanitize_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--sanitize", action="store_true",
                   help="run under the concurrency sanitizer (vector-clock "
                        "race detector + lock-order graph); prints a race "
                        "report and exits 1 on findings — see docs/SANITIZER.md")
    p.add_argument("--sanitize-seed", metavar="SEED", type=int, default=None,
                   help="also perturb task schedules deterministically with "
                        "this fuzz seed (same seed reproduces the schedule)")


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", default="auto",
                   choices=["auto", "numpy", "numba", "cext"],
                   help="kernel execution backend (default: auto — first "
                        "available compiled backend, silently falling back "
                        "to numpy; an explicitly named backend that is "
                        "unavailable fails with an actionable error — see "
                        "docs/BACKENDS.md)")


def _add_checkpoint_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--checkpoint", metavar="PATH",
                   help="snapshot the solver state to PATH (atomic .npz) "
                        "every --checkpoint-every iterations")
    p.add_argument("--checkpoint-every", metavar="N", type=int, default=1,
                   help="checkpoint cadence in iterations (default: 1)")
    p.add_argument("--resume", metavar="PATH",
                   help="resume a killed run from a checkpoint written by "
                        "--checkpoint (same tensor and options required)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Sparse tensor decomposition toolbox "
        "(SPLATT-in-Chapel reproduction)."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="tensor properties and per-mode structure")
    p.add_argument("tensor", help="FROSTT .tns file")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("check", help="validate a tensor file")
    p.add_argument("tensor")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="full validation report (duplicates, empty slices, "
                        "hub skew, conditioning)")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("cpd", aliases=["decompose"], help="CP-ALS decomposition")
    p.add_argument("tensor")
    p.add_argument("--rank", "-r", type=int, default=DEFAULT_RANK)
    p.add_argument("--iterations", "-i", type=int, default=DEFAULT_ITERATIONS)
    p.add_argument("--tolerance", type=float, default=1e-5)
    p.add_argument("--tasks", "-t", type=int, default=1,
                   help="Chapel-style task count")
    p.add_argument("--variant", default="vectorized",
                   choices=["vectorized", "pointer", "index2d", "slicing"])
    p.add_argument("--allocation", default="two", choices=["one", "two", "all"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", help="write λ and factors as .npz")
    p.add_argument("--splatt-format", action="store_true",
                   help="write the model as a SPLATT-style directory "
                        "(lambda.mat + mode<N>.mat) instead of .npz")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome-trace-format JSON timeline of the run")
    p.add_argument("--locales", "-l", type=int, default=1,
                   help="locale count for distributed CP-ALS (medium-grained "
                        "grid; default 1 = serial)")
    p.add_argument("--transport", default="sim", choices=["sim", "proc"],
                   help="distributed data plane: 'sim' runs locales "
                        "in-process (metered simulation), 'proc' spawns one "
                        "worker process per locale exchanging through shared "
                        "memory — see docs/DISTRIBUTED.md")
    _add_backend_flag(p)
    _add_sanitize_flags(p)
    _add_checkpoint_flags(p)
    p.set_defaults(fn=_cmd_cpd)

    p = sub.add_parser("complete", help="tensor completion (missing values)")
    p.add_argument("tensor")
    p.add_argument("--rank", "-r", type=int, default=10)
    p.add_argument("--algorithm", "-a", default="als", choices=list(ALGORITHMS))
    p.add_argument("--epochs", "-e", type=int, default=50)
    p.add_argument("--regularization", type=float, default=1e-2)
    p.add_argument("--learn-rate", type=float, default=1e-2)
    p.add_argument("--validation", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", help="write factors as .npz")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome-trace-format JSON timeline of the run")
    _add_backend_flag(p)
    _add_sanitize_flags(p)
    _add_checkpoint_flags(p)
    p.set_defaults(fn=_cmd_complete)

    p = sub.add_parser("tucker", help="Tucker decomposition (HOOI)")
    p.add_argument("tensor")
    p.add_argument("--ranks", "-r", type=int, nargs="+", default=[10],
                   help="core ranks, one per mode (or one shared value)")
    p.add_argument("--iterations", "-i", type=int, default=50)
    p.add_argument("--tolerance", type=float, default=1e-5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", help="write core + factors as .npz")
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome-trace-format JSON timeline of the run")
    _add_backend_flag(p)
    _add_sanitize_flags(p)
    _add_checkpoint_flags(p)
    p.set_defaults(fn=_cmd_tucker)

    p = sub.add_parser("compare", help="factor match score between two saved models")
    p.add_argument("model_a", help=".npz file or SPLATT-layout directory")
    p.add_argument("model_b")
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("generate", help="write a Table I synthetic stand-in")
    p.add_argument("dataset", choices=sorted(DATASET_SIGNATURES))
    p.add_argument("output", help="destination .tns path")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("convert", help="convert between tensor file formats")
    p.add_argument("input", help=".tns/.tns.gz text, .npz, or .tnsb input")
    p.add_argument("output",
                   help="destination; format chosen by suffix (.tnsb = flat "
                        "mmap binary for --transport proc, .npz = compressed "
                        "binary, anything else = FROSTT text)")
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser(
        "serve",
        help="run the long-lived decomposition daemon (see docs/SERVING.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", "-p", type=int, default=7461,
                   help="TCP port (0 picks a free one; see --port-file)")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port here once listening (for "
                        "scripts using --port 0)")
    p.add_argument("--tasks", "-t", type=int, default=1,
                   help="worker-pool size shared by every job")
    p.add_argument("--batch-window", type=float, default=0.05, metavar="S",
                   help="seconds to hold the queue open so same-shape jobs "
                        "group into one batch (default: 0.05)")
    p.add_argument("--spool", metavar="DIR",
                   help="checkpoint spool directory for suspend/resume "
                        "(default: a fresh temp dir)")
    p.add_argument("--max-nnz", type=int, default=0, metavar="N",
                   help="per-job tensor nonzero cap, all tenants (0 = off)")
    p.add_argument("--max-resident-bytes", type=int, default=0, metavar="N",
                   help="per-tenant pinned tensor byte cap (0 = off)")
    p.add_argument("--max-queued-jobs", type=int, default=0, metavar="N",
                   help="per-tenant queued+running job cap (0 = off)")
    p.add_argument("--max-job-retries", type=int, default=2, metavar="N",
                   help="retries for jobs failed by injected faults")
    p.add_argument("--fault", action="append", metavar="SITE:OCCURRENCE",
                   help="install a fault-injection target (repeatable), e.g. "
                        "serve.job:2 fails the second job attempt served")
    _add_backend_flag(p)
    _add_sanitize_flags(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a job to (or operate on) a running repro serve daemon")
    p.add_argument("tensor", nargs="?",
                   help="tensor file to decompose (resolved to an absolute "
                        "path — the daemon reads it server-side)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", "-p", type=int, default=7461)
    p.add_argument("--tenant", default="default")
    p.add_argument("--kind", default="cpd", choices=["cpd", "tucker", "complete"])
    p.add_argument("--rank", "-r", type=int, default=DEFAULT_RANK)
    p.add_argument("--iterations", "-i", type=int, default=DEFAULT_ITERATIONS)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--spec", metavar="JSON",
                   help="full job-spec JSON (or @file), overriding the flags")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id immediately instead of waiting")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for the job (default: 600)")
    p.add_argument("--metrics", action="store_true",
                   help="print the server metrics scrape instead of submitting")
    p.add_argument("--prometheus", action="store_true",
                   help="with --metrics: Prometheus text format")
    p.add_argument("--status", metavar="JOB", help="print one job's status")
    p.add_argument("--suspend", metavar="JOB",
                   help="checkpoint and suspend a queued/running job")
    p.add_argument("--resume", metavar="JOB",
                   help="re-enqueue a suspended job from its checkpoint")
    p.add_argument("--cancel", metavar="JOB", help="cancel a queued job")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the daemon to shut down gracefully")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "lint", help="per-module static linter (paper anti-patterns, "
        "runtime discipline); exits 1 on findings",
        add_help=False,
    )
    p.add_argument("args", nargs=argparse.REMAINDER,
                   help="forwarded to python -m repro.lint")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "analyze", help="whole-program analyzer (dispatch contracts, "
        "lifecycles, race pre-screen, hot propagation); exits 1 on findings",
        add_help=False,
    )
    p.add_argument("args", nargs=argparse.REMAINDER,
                   help="forwarded to python -m repro.analyze")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("reorder", help="relabel mode indices for locality")
    p.add_argument("tensor")
    p.add_argument("output", help="destination .tns path")
    p.add_argument("--strategy", default="degree",
                   choices=["identity", "degree", "random"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--perms", help="also save the relabeling maps as .npz")
    p.set_defaults(fn=_cmd_reorder)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` tool; returns the process exit code.

    A command failing mid-run (bad input, injected fault, solver error)
    exits 1 with the error on stderr.  When ``--trace`` is active the
    recorder's exit hook still flushes a valid (truncated) trace file, so
    a crashed run can be inspected post-mortem.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # argparse REMAINDER silently refuses to capture a leading option-like
    # token (bpo-17050), which would strip e.g. ``repro analyze --selfcheck``
    # of its flag — dispatch the pure-forwarding subcommands by hand.
    if argv and argv[0] == "lint":
        from repro.lint.__main__ import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.analyze.__main__ import main as analyze_main

        return analyze_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
