"""Seeded schedule-perturbation fuzzer for the tasking runtime.

The happens-before detector reasons about the *logical* structure of a
parallel region (fork/join, locksets), so it finds races regardless of how
the OS happened to interleave threads.  The fuzzer attacks the complement:
bugs whose *numeric effect* only shows under unlucky interleavings (lost
updates through an unlocked accumulate, lost wakeups on a sync variable).
It injects tiny, deterministic-by-seed delays at the runtime's
synchronization points — before lock acquires, at pooled task starts,
between scheduler chunk claims, around sync-variable operations — driving
``coforall`` / ``forall`` / ``forall_scheduled`` bodies through adversarial
interleavings that a quiet machine would never produce.

Determinism contract: the *decision* at each arrival (pause or not, and
for how long) depends only on ``(seed, site, arrival index)`` through a
keyed blake2 hash — never on wall-clock time or Python's randomized
``hash()`` — so a failing schedule can be replayed by seed.  The resulting
OS interleaving is of course still the kernel's choice; the seed pins the
perturbation pattern, not the scheduler.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path

__all__ = ["SchedulePerturber", "weights_from_race_sites"]

#: Perturbation points that stress task interleavings (as opposed to the
#: lock/syncvar protocol sites).  Static race candidates from
#: ``repro analyze`` boost these: an unsynchronized shared write races
#: when *task bodies* overlap, which these sites control.
_TASK_SITES = (
    "task.begin", "tasking.coforall", "pool.dispatch", "schedule.chunk",
)


def weights_from_race_sites(sites: list[dict]) -> dict[str, float]:
    """Per-site pause-probability multipliers from static race candidates.

    ``sites`` is the prioritized list the analyzer's escape pass emits
    (``repro analyze --seeds-out``): each entry carries a ``weight``
    (3 = whole-array fill / ufunc scatter, 2 = indexed store, 1 =
    transitive).  More / heavier candidates ⇒ harder perturbation at the
    task-interleaving sites, capped at 4× so the fuzzer still makes
    progress.  No candidates ⇒ no bias (empty dict).
    """
    total = sum(float(s.get("weight", 1)) for s in sites)
    if total <= 0:
        return {}
    boost = 1.0 + min(3.0, total)
    return {site: boost for site in _TASK_SITES}


class SchedulePerturber:
    """Deterministic delay injector keyed by ``(seed, site, arrival)``.

    Parameters
    ----------
    seed:
        Replay key.  Same seed ⇒ same pause decisions at every site.
    pause_probability:
        Fraction of arrivals that pause at all.
    max_sleep_us:
        Longest injected sleep, in microseconds.  Roughly half of the
        pausing arrivals sleep (scaled by the draw); the rest yield the
        thread (``time.sleep(0)``), which is the cheapest way to force a
        context switch at a tense point.
    site_weights:
        Optional per-site multipliers on ``pause_probability`` (clamped
        to 1.0), typically from :func:`weights_from_race_sites` over the
        static analyzer's race candidates — the fuzzer then leans on the
        sites the analysis implicated.  Weights do not change the draw
        sequence, only the accept threshold, so replays by seed remain
        stable under re-weighting.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        pause_probability: float = 0.5,
        max_sleep_us: int = 200,
        site_weights: dict[str, float] | None = None,
    ):
        if not 0.0 <= pause_probability <= 1.0:
            raise ValueError("pause_probability must be in [0, 1]")
        if max_sleep_us < 0:
            raise ValueError("max_sleep_us must be >= 0")
        self.seed = int(seed)
        self.pause_probability = pause_probability
        self.max_sleep_us = max_sleep_us
        self.site_weights = dict(site_weights or {})
        for site, w in self.site_weights.items():
            if w < 0:
                raise ValueError(f"site weight for {site!r} must be >= 0")
        self._lock = threading.Lock()
        self._arrivals: dict[str, int] = {}
        self.pauses = 0
        self.sleeps = 0

    @classmethod
    def from_seed_file(cls, path: str | Path, seed: int = 0,
                       **kwargs) -> "SchedulePerturber":
        """A perturber biased by a ``repro analyze --seeds-out`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        weights = weights_from_race_sites(payload.get("sites", []))
        return cls(seed, site_weights=weights, **kwargs)

    def probability(self, site: str) -> float:
        """The effective pause probability at ``site``."""
        w = self.site_weights.get(site, 1.0)
        return min(1.0, self.pause_probability * w)

    # ------------------------------------------------------------------
    def _draw(self, site: str, arrival: int) -> float:
        """A uniform [0, 1) draw fully determined by (seed, site, arrival)."""
        key = f"{self.seed}:{site}:{arrival}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def decisions(self, site: str, n: int) -> list[float]:
        """The first ``n`` draws for ``site`` (test/replay hook; does not
        consume arrivals)."""
        return [self._draw(site, i) for i in range(n)]

    def pause(self, site: str) -> None:
        """Maybe pause at ``site`` — the instrumented-runtime entry point."""
        with self._lock:
            arrival = self._arrivals.get(site, 0)
            self._arrivals[site] = arrival + 1
        draw = self._draw(site, arrival)
        prob = self.probability(site)
        if prob <= 0.0 or draw >= prob:
            return
        with self._lock:
            self.pauses += 1
        # rescale the accepted draw to pick between a bare yield and a
        # short sleep; both cede the OS thread at the perturbation point.
        sub = draw / prob
        if sub < 0.5 or self.max_sleep_us == 0:
            time.sleep(0)
        else:
            with self._lock:
                self.sleeps += 1
            time.sleep((sub - 0.5) * 2.0 * self.max_sleep_us * 1e-6)

    def arrivals(self, site: str | None = None) -> int | dict[str, int]:
        """Arrival count for one site (or the full per-site dict)."""
        with self._lock:
            if site is None:
                return dict(self._arrivals)
            return self._arrivals.get(site, 0)
