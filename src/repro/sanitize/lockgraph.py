"""Lock-order graph: deadlock-potential detection for the lock pools.

Every time a task acquires lock ``B`` while already holding lock ``A``,
the sanitizer records the directed edge ``A → B``.  A cycle in this graph
means two tasks can acquire the same locks in opposite orders — the
classic ABBA deadlock — even if the run at hand happened not to hang.
The MTTKRP mutex path acquires exactly one pool lock at a time, so its
graph has no edges at all; any edge appearing there is itself a finding
worth reading.

Lock tokens are the sanitizer's ``(kind, object id, lock id)`` triples;
cycle reporting uses the human-readable labels registered alongside them.
"""

from __future__ import annotations

import threading

__all__ = ["LockOrderGraph"]


class LockOrderGraph:
    """A directed graph over lock tokens with deterministic cycle search."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: edge → first site string that created it (kept for the report)
        self._edges: dict[tuple[tuple, tuple], str] = {}

    def add_edge(self, held, acquired, site: str) -> None:
        """Record that ``acquired`` was taken while ``held`` was held."""
        if held == acquired:
            return
        with self._lock:
            self._edges.setdefault((held, acquired), site)

    def edges(self) -> dict[tuple[tuple, tuple], str]:
        with self._lock:
            return dict(self._edges)

    def cycles(self) -> list[list[tuple]]:
        """All elementary cycles, each rotated to start at its smallest
        token and the list sorted — so identical graphs always render
        identical reports regardless of insertion order."""
        with self._lock:
            adjacency: dict[tuple, list[tuple]] = {}
            for held, acquired in self._edges:
                adjacency.setdefault(held, []).append(acquired)
        for targets in adjacency.values():
            targets.sort()

        found: set[tuple] = set()
        cycles: list[list[tuple]] = []

        def walk(node: tuple, path: list[tuple], on_path: set) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt in on_path:
                    cycle = path[path.index(nxt):]
                    start = cycle.index(min(cycle))
                    canon = tuple(cycle[start:] + cycle[:start])
                    if canon not in found:
                        found.add(canon)
                        cycles.append(list(canon))
                elif nxt not in path:
                    on_path.add(nxt)
                    walk(nxt, path + [nxt], on_path)
                    on_path.discard(nxt)

        for root in sorted(adjacency):
            walk(root, [root], {root})
        cycles.sort()
        return cycles
