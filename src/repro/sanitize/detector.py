"""Deterministic concurrency sanitizer for the simulated tasking runtime.

The paper's Fig-4 story rests on the claim that the mutex pool makes the
parallel MTTKRP scatter race-free under both ``sync`` and ``atomic`` locks
(§IV-A, Listing 6).  This module can *prove* it for a run, instead of
observing that fits happen to match: the runtime's primitives
(``coforall`` fork/join, the lock pools, sync variables, ``AtomicBool``
spinlocks) and the MTTKRP scatter kernels report their events to an
installed :class:`Sanitizer`, which maintains

* a **vector clock** per task (fork/join and sync-variable handoffs are
  the happens-before edges — see :mod:`repro.sanitize.clocks`),
* a **lockset** per task (which pool locks / spinlocks it currently
  holds), and
* **shadow state** per instrumented array row (the last write and reads
  per task, with the lockset each was performed under).

Two accesses to the same row race when neither happened before the other,
they hold no lock in common, and at least one is a write — the classic
happens-before × lockset hybrid.  Lock acquire/release deliberately does
*not* create happens-before edges (only mutual exclusion): that is what
makes the verdict a property of the program's logical structure rather
than of the interleaving the OS happened to pick, so the same run
produces the same report every time.  Sync-variable handoffs *do* create
edges, in the order the operations really serialized — findings that
depend on dynamic schedules or sync serialization can therefore vary
across runs, and docs/SANITIZER.md spells out which guarantees hold
where.

On top of the race detector sit a **lock-order graph** (ABBA deadlock
potential, :mod:`repro.sanitize.lockgraph`), **outstanding-wait tracking**
(lost wakeups, surfaced by :meth:`Sanitizer.run_watched`), and an optional
seeded **schedule-perturbation fuzzer** (:mod:`repro.sanitize.fuzz`).

Disabled cost: every instrumented site reads the single module global
``_active`` (``None`` when sanitizing is off) — the same near-zero no-op
path as :mod:`repro.observe.spans` and :mod:`repro.resilience.fault`,
bounded by ``benchmarks/test_perf_trace_overhead.py``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.observe import spans as _obs
from repro.sanitize.clocks import VectorClock
from repro.sanitize.fuzz import SchedulePerturber
from repro.sanitize.lockgraph import LockOrderGraph

__all__ = [
    "RaceFinding",
    "RaceReport",
    "Sanitizer",
    "sanitizing",
    "active_sanitizer",
    "enabled",
    "pause",
]

#: The installed sanitizer, or ``None`` when sanitizing is disabled.  Hot
#: call sites read this directly (one module-global load on the off path).
_active: "Sanitizer | None" = None
_install_lock = threading.Lock()


def enabled() -> bool:
    """True when a sanitizer is installed."""
    return _active is not None


def active_sanitizer() -> "Sanitizer | None":
    """The installed :class:`Sanitizer`, or ``None``."""
    return _active


def pause(site: str) -> None:
    """Fuzzer perturbation point: maybe inject a deterministic delay.

    No-op unless a sanitizer with a schedule perturber is installed — the
    disabled path is one global read and one attribute check.
    """
    san = _active
    if san is not None and san.perturber is not None:
        san.perturber.pause(site)


# ======================================================================
# findings
# ======================================================================
@dataclass
class RaceFinding:
    """One deduplicated sanitizer finding.

    ``kind`` is ``"data-race"``, ``"lock-order"`` or ``"lost-wakeup"``.
    For data races, ``sites`` / ``tasks`` are the normalized (sorted)
    pair involved, ``rows`` the sorted racy row indices and ``count`` the
    number of racy access pairs folded into this finding.
    """

    kind: str
    array: str
    sites: tuple[str, ...]
    tasks: tuple[int, ...] = ()
    rows: tuple[int, ...] = ()
    count: int = 0
    detail: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        head = f"[{self.kind}] {self.array}"
        if self.sites:
            head += f" at {' <-> '.join(self.sites)}"
        parts = [head]
        if self.rows:
            shown = ", ".join(str(r) for r in self.rows[:8])
            more = f", ... ({len(self.rows)} rows)" if len(self.rows) > 8 else ""
            parts.append(f"rows [{shown}{more}]")
        if self.tasks:
            parts.append(f"tasks {list(self.tasks)}")
        if self.count:
            parts.append(f"{self.count} racy pair(s)")
        if self.detail:
            parts.append(self.detail)
        return "; ".join(parts)


class RaceReport:
    """The sanitizer's verdict for one sanitized region."""

    def __init__(self, findings: list[RaceFinding], *, stats: dict[str, int]):
        self.findings = findings
        self.stats = stats

    @property
    def ok(self) -> bool:
        """True when the region is certified clean (no findings)."""
        return not self.findings

    def by_kind(self, kind: str) -> list[RaceFinding]:
        return [f for f in self.findings if f.kind == kind]

    def fingerprint(self) -> tuple:
        """The schedule-independent projection of the findings.

        ``(kind, array, sites, rows, count)`` per finding, sorted — for a
        fixed program and fuzz seed this tuple is identical across runs
        (the determinism the tests pin down).  Task ids are excluded: which
        concrete task pair trips a race first is the scheduler's choice,
        even though *whether* it trips is not.
        """
        return tuple(
            sorted((f.kind, f.array, f.sites, f.rows, f.count) for f in self.findings)
        )

    def summary(self) -> str:
        races = len(self.by_kind("data-race"))
        orders = len(self.by_kind("lock-order"))
        lost = len(self.by_kind("lost-wakeup"))
        if self.ok:
            return (
                "sanitizer: clean "
                f"({self.stats['accesses']} accesses, "
                f"{self.stats['lock_events']} lock events, "
                f"{self.stats['tasks']} tasks checked)"
            )
        return (
            f"sanitizer: {len(self.findings)} finding(s) — "
            f"{races} data race(s), {orders} lock-order cycle(s), "
            f"{lost} lost wakeup(s)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {i + 1}. {f.describe()}" for i, f in enumerate(self.findings))
        return "\n".join(lines)


# ======================================================================
# the sanitizer
# ======================================================================
class _Task:
    """One logical task timeline: its vector clock and held locks."""

    __slots__ = ("id", "label", "clock", "held")

    def __init__(self, task_id: int, label: str, clock: VectorClock):
        self.id = task_id
        self.label = label
        self.clock = clock
        self.held: list[tuple] = []


class _TaskScope:
    """Binds a forked task to the executing thread for a ``with`` block."""

    __slots__ = ("_san", "_task")

    def __init__(self, san: "Sanitizer", task: _Task):
        self._san = san
        self._task = task

    def __enter__(self) -> _Task:
        self._san._push_task(self._task)
        if self._san.perturber is not None:
            self._san.perturber.pause("task.begin")
        return self._task

    def __exit__(self, *exc) -> bool:
        self._san._pop_task(self._task)
        return False


class Sanitizer:
    """Vector-clock happens-before race detector with lockset filtering.

    Install with :class:`sanitizing`; the runtime and the scatter kernels
    find the instance through the module-global slot and report fork/join,
    lock, sync-variable, wait and array-access events.  Call
    :meth:`report` afterwards for the verdict.

    Parameters
    ----------
    seed:
        When not ``None``, attach a :class:`SchedulePerturber` with this
        seed so the sanitized region is also driven through adversarial
        interleavings.  ``None`` (default) detects without perturbing.
    max_findings:
        Stop recording new distinct findings past this count (the shadow
        state keeps updating so locksets stay sound).
    """

    def __init__(self, *, seed: int | None = None, max_findings: int = 256):
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._ids = itertools.count()
        self._threads_seen: dict[int, _Task] = {}
        #: shadow[array key][row] -> {(task, write, lockset): timestamp}
        self._shadow: dict[int, dict[int, dict[tuple, int]]] = {}
        self._array_names: dict[int, str] = {}
        self._findings: dict[tuple, RaceFinding] = {}
        self.lock_graph = LockOrderGraph()
        self.perturber = SchedulePerturber(seed) if seed is not None else None
        self._waits: dict[tuple, dict[int, str]] = {}
        self.accesses = 0
        self.lock_events = 0
        self.sync_events = 0
        self.tasks_created = 0
        self.max_findings = max_findings

    # ------------------------------------------------------------------
    # task timelines
    # ------------------------------------------------------------------
    def _new_task(self, label: str, clock: VectorClock) -> _Task:
        with self._lock:
            task = _Task(next(self._ids), label, clock)
            self.tasks_created += 1
        task.clock.tick(task.id)
        return task

    def _stack(self) -> list[_Task]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_task(self) -> _Task:
        """The task bound to the calling thread.

        A thread with no bound task (the main thread, or a stray worker)
        lazily gets its own root task.  Distinct unbound threads get
        *concurrent* timelines — the safe default: accesses from threads
        the runtime never forked are treated as unordered.
        """
        stack = self._stack()
        if stack:
            return stack[-1]
        ident = threading.get_ident()
        task = self._threads_seen.get(ident)
        if task is None:
            task = self._new_task(f"root@{len(self._threads_seen)}", VectorClock())
            self._threads_seen[ident] = task
        return task

    def _push_task(self, task: _Task) -> None:
        self._stack().append(task)

    def _pop_task(self, task: _Task) -> None:
        stack = self._stack()
        if stack and stack[-1] is task:
            stack.pop()
        else:  # pragma: no cover - defensive, mirrors the span stack
            try:
                stack.remove(task)
            except ValueError:
                pass

    def fork(self, ntasks: int, label: str = "coforall") -> list[_Task]:
        """Fork ``ntasks`` child timelines off the calling task.

        Children inherit the parent's clock (everything the parent did so
        far happened before every child) and are mutually concurrent.
        Returns the handles in tid order; run each body inside
        ``with san.task(handle):`` and close with :meth:`join`.
        """
        parent = self.current_task()
        parent.clock.tick(parent.id)
        base = parent.clock.copy()
        return [self._new_task(f"{label}[{tid}]", base.copy()) for tid in range(ntasks)]

    def task(self, handle: _Task) -> _TaskScope:
        """Context manager binding ``handle`` to the executing thread."""
        return _TaskScope(self, handle)

    def join(self, handles: Iterable[_Task]) -> None:
        """Join child timelines back into the calling task (barrier)."""
        parent = self.current_task()
        for child in handles:
            parent.clock.join(child.clock)
        parent.clock.tick(parent.id)

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------
    def on_acquire(self, token: tuple, site: str) -> None:
        """A lock identified by ``token`` is now held by the calling task."""
        task = self.current_task()
        for held in task.held:
            self.lock_graph.add_edge(held, token, site)
        task.held.append(token)
        with self._lock:
            self.lock_events += 1

    def on_release(self, token: tuple) -> None:
        """The calling task releases ``token`` (last-acquired occurrence)."""
        task = self.current_task()
        for i in range(len(task.held) - 1, -1, -1):
            if task.held[i] == token:
                del task.held[i]
                break
        with self._lock:
            self.lock_events += 1

    # ------------------------------------------------------------------
    # sync variables
    # ------------------------------------------------------------------
    def on_sync_op(self, key: tuple) -> None:
        """A completed sync-variable state transition (read or write).

        Full/empty transitions serialize: each operation acquires the
        causal history of every earlier operation on the variable and
        publishes its own — the edges follow the real serialization
        order, which is what makes a sync-variable handoff actually
        order the two sides.
        """
        task = self.current_task()
        with self._lock:
            slot = self._sync_clock(key)
            task.clock.join(slot)
            task.clock.tick(task.id)
            slot.join(task.clock)
            self.sync_events += 1

    def _sync_clock(self, key: tuple) -> VectorClock:
        clocks = getattr(self, "_sync_clocks", None)
        if clocks is None:
            clocks = {}
            self._sync_clocks = clocks
        slot = clocks.get(key)
        if slot is None:
            slot = VectorClock()
            clocks[key] = slot
        return slot

    # ------------------------------------------------------------------
    # waits (lost-wakeup detection)
    # ------------------------------------------------------------------
    def wait_begin(self, key: tuple, what: str) -> None:
        """The calling task starts blocking on ``key`` (wants ``what``)."""
        task = self.current_task()
        with self._lock:
            self._waits.setdefault(key, {})[task.id] = what

    def wait_end(self, key: tuple) -> None:
        """The calling task's block on ``key`` completed."""
        task = self.current_task()
        with self._lock:
            waiters = self._waits.get(key)
            if waiters is not None:
                waiters.pop(task.id, None)

    def pending_waits(self) -> list[tuple[tuple, int, str]]:
        """Outstanding blocked waits as ``(key, task id, wanted state)``."""
        with self._lock:
            return sorted(
                (key, task_id, what)
                for key, waiters in self._waits.items()
                for task_id, what in waiters.items()
            )

    def run_watched(self, fn: Callable[[], Any], timeout: float = 5.0):
        """Run ``fn`` under a watchdog; convert a hang into findings.

        A genuinely lost wakeup never returns, so it cannot be diagnosed
        from the blocked thread.  ``run_watched`` executes ``fn`` on a
        daemon thread and joins with ``timeout``; on expiry every
        outstanding wait becomes a ``lost-wakeup`` finding and ``None``
        is returned (the stuck thread is left to the caller, which
        normally unblocks it explicitly and joins).  On normal completion
        the callable's result is returned (its exception re-raised).
        """
        box: dict[str, Any] = {}

        def runner() -> None:
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(target=runner, daemon=True, name="san-watched")
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            for key, task_id, what in self.pending_waits():
                self._add_finding(
                    kind="lost-wakeup",
                    array=self._key_label(key),
                    sites=(f"blocked waiting for {what}",),
                    tasks=(task_id,),
                    detail="watchdog expired with this wait outstanding",
                )
            if not self.pending_waits():
                self._add_finding(
                    kind="lost-wakeup",
                    array="<unknown>",
                    sites=("watchdog timeout",),
                    detail="watched callable hung outside instrumented waits",
                )
            return None
        if "error" in box:
            raise box["error"]
        return box.get("result")

    # ------------------------------------------------------------------
    # shadow memory
    # ------------------------------------------------------------------
    def register_array(self, array: np.ndarray, name: str) -> None:
        """Give ``array`` a readable name in race reports."""
        with self._lock:
            self._array_names[id(array)] = name

    def _name_of(self, array: np.ndarray) -> str:
        return self._array_names.get(id(array), f"ndarray#{id(array) & 0xFFFF:04x}")

    @staticmethod
    def _key_label(key: tuple) -> str:
        return "/".join(str(part) for part in key)

    def on_access(
        self,
        array: np.ndarray,
        rows,
        *,
        write: bool,
        site: str,
        name: str | None = None,
    ) -> None:
        """Record accesses to ``array``'s ``rows`` by the calling task.

        ``rows`` is an int or an integer array; duplicate rows collapse
        (same task, same lockset — one shadow entry).  Each new access is
        checked against every stored access to the same row from another
        task: concurrent clocks + disjoint locksets + at least one write
        ⇒ data race.
        """
        task = self.current_task()
        lockset = frozenset(task.held)
        if name is not None:
            self.register_array(array, name)
        rows = np.atleast_1d(np.asarray(rows))
        if rows.size == 0:
            return
        unique_rows = np.unique(rows)
        with self._lock:
            timestamp = task.clock.get(task.id)
            shadow = self._shadow.setdefault(id(array), {})
            self.accesses += int(unique_rows.size)
            racy_rows: list[int] = []
            other_ids: set[int] = set()
            entry_key = (task.id, write, lockset)
            for row in unique_rows:
                row = int(row)
                cell = shadow.get(row)
                if cell is None:
                    shadow[row] = {entry_key: timestamp}
                    continue
                for (other_id, other_write, other_locks), other_ts in cell.items():
                    if other_id == task.id:
                        continue
                    if not (write or other_write):
                        continue
                    if not lockset.isdisjoint(other_locks):
                        continue
                    if task.clock.covers(other_id, other_ts):
                        continue
                    # One detection per racy (task, row) pair, whichever
                    # conflicting entry is hit first — each row is counted
                    # once per access event, independent of dict order, so
                    # aggregate counts are schedule-independent.
                    racy_rows.append(row)
                    other_ids.add(other_id)
                    break
                cell[entry_key] = timestamp
        if racy_rows:
            arr_name = name if name is not None else self._name_of(array)
            self._add_finding(
                kind="data-race",
                array=arr_name,
                sites=(site,),
                tasks=tuple(sorted({task.id, *other_ids})),
                rows=tuple(racy_rows),
                count=len(racy_rows),
            )

    # ------------------------------------------------------------------
    # findings
    # ------------------------------------------------------------------
    def _add_finding(
        self,
        *,
        kind: str,
        array: str,
        sites: tuple[str, ...],
        tasks: tuple[int, ...] = (),
        rows: tuple[int, ...] = (),
        count: int = 0,
        detail: str = "",
        **attrs: Any,
    ) -> None:
        # Dedup on the schedule-independent identity (kind, array, sites);
        # task ids and row sets from repeated detections merge in, so the
        # report is a function of the logical access structure.
        dedup = (kind, array, tuple(sorted(sites)))
        with self._lock:
            finding = self._findings.get(dedup)
            if finding is None:
                if len(self._findings) >= self.max_findings:
                    return
                finding = RaceFinding(
                    kind=kind, array=array, sites=tuple(sorted(sites)),
                    tasks=tasks, rows=tuple(sorted(set(rows))),
                    count=count, detail=detail, attrs=dict(attrs),
                )
                self._findings[dedup] = finding
                is_new = True
            else:
                finding.rows = tuple(sorted(set(finding.rows) | set(rows)))
                finding.tasks = tuple(sorted(set(finding.tasks) | set(tasks)))
                finding.count += count
                is_new = False
        rec = _obs._active
        if rec is not None:
            rec.count("sanitize.findings")
            if is_new:
                # a zero-length span so the race lands on the Chrome trace
                # timeline at the moment of detection, with its details.
                with rec.span(
                    "sanitize.race",
                    {"kind": kind, "array": array, "sites": list(sites),
                     "rows": list(rows[:8]), "count": count},
                ):
                    pass

    def report(self) -> RaceReport:
        """The verdict so far: deterministic, sorted findings + stats.

        Lock-order cycles are computed here from the accumulated graph;
        outstanding waits are *not* auto-flagged (a still-running region
        legitimately has blocked tasks) — use :meth:`run_watched` to
        convert hangs into findings.
        """
        with self._lock:
            findings = list(self._findings.values())
            stats = {
                "accesses": self.accesses,
                "lock_events": self.lock_events,
                "sync_events": self.sync_events,
                "tasks": self.tasks_created,
                "arrays": len(self._shadow),
            }
        for cycle in self.lock_graph.cycles():
            label = " -> ".join(self._key_label(tok) for tok in cycle + cycle[:1])
            findings.append(
                RaceFinding(
                    kind="lock-order", array=label,
                    sites=("lock acquisition order",),
                    detail="cycle in the lock-order graph (ABBA deadlock potential)",
                )
            )
        findings.sort(key=lambda f: (f.kind, f.array, f.sites, f.rows))
        return RaceReport(findings, stats=stats)


# ======================================================================
# installation
# ======================================================================
class sanitizing:
    """Install a :class:`Sanitizer` for a ``with`` block::

        with sanitizing(seed=7) as san:
            mttkrp_csf(csf_set, factors, 1, layer=layer, force_locks=True)
        report = san.report()
        assert report.ok, report.render()

    ``seed`` also arms the schedule-perturbation fuzzer; omit it to detect
    on the natural schedule.  Nesting restores the previous sanitizer; the
    installed instance is process-global (like the trace recorder and the
    fault plan), so sanitize one region at a time.
    """

    def __init__(self, *, seed: int | None = None, sanitizer: Sanitizer | None = None):
        self.sanitizer = sanitizer if sanitizer is not None else Sanitizer(seed=seed)
        self._prev: Sanitizer | None = None

    def __enter__(self) -> Sanitizer:
        global _active
        with _install_lock:
            self._prev = _active
            _active = self.sanitizer
        return self.sanitizer

    def __exit__(self, *exc) -> bool:
        global _active
        with _install_lock:
            _active = self._prev
        self._prev = None
        rec = _obs._active
        if rec is not None:
            rec.gauge("sanitize.accesses", self.sanitizer.accesses)
            rec.gauge("sanitize.tasks", self.sanitizer.tasks_created)
        return False
