"""Sparse vector clocks for the happens-before race detector.

A vector clock maps task ids to logical timestamps; entries absent from
the map are implicitly zero, so clocks stay proportional to the number of
tasks that actually synchronized rather than the number of tasks ever
created (a ``coforall`` sweep forks fresh task ids on every dispatch).

The detector only ever needs three operations:

* ``tick`` — advance a task's own component (one logical step);
* ``join`` — elementwise max, the effect of synchronizing with another
  timeline (fork, join, sync-variable handoff);
* the *epoch test* — did access ``(task t, timestamp c)`` happen before
  the state summarized by this clock?  True iff ``c <= clock[t]``
  (FastTrack's epoch rule): everything ``t`` did up to ``c`` has been
  joined into this clock.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A sparse task-id → timestamp map with join/tick/epoch operations."""

    __slots__ = ("_c",)

    def __init__(self, init: dict[int, int] | None = None):
        self._c: dict[int, int] = dict(init) if init else {}

    def get(self, task_id: int) -> int:
        """The clock's component for ``task_id`` (0 when never seen)."""
        return self._c.get(task_id, 0)

    def tick(self, task_id: int) -> int:
        """Advance ``task_id``'s component by one; returns the new value."""
        value = self._c.get(task_id, 0) + 1
        self._c[task_id] = value
        return value

    def join(self, other: "VectorClock") -> None:
        """Elementwise maximum with ``other`` (in place)."""
        c = self._c
        for task_id, value in other._c.items():
            if c.get(task_id, 0) < value:
                c[task_id] = value

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def covers(self, task_id: int, timestamp: int) -> bool:
        """Epoch test: has ``(task_id, timestamp)`` happened before this
        clock's owner?  True means the access is ordered (not racy)."""
        return timestamp <= self._c.get(task_id, 0)

    def snapshot(self) -> dict[int, int]:
        """A plain-dict copy (for reports and tests)."""
        return dict(self._c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{t}:{v}" for t, v in sorted(self._c.items()))
        return f"VectorClock({{{inner}}})"
