"""Certification harness: prove the mutex-pool MTTKRP variants race-free.

Two entry points, used by the tests, the CI ``sanitize`` job and the CLI:

* :func:`certify_scatter_mutex` — run the locked scatter MTTKRP under the
  sanitizer across the full {sync, atomic} × {qthreads, fifo} matrix (the
  four curves of the paper's Fig 4) and return one
  :class:`~repro.sanitize.detector.RaceReport` per combination.  A clean
  matrix is the machine-checked form of §IV-A's claim that the mutex pool
  makes parallel scatter accumulation safe.

* :func:`seeded_unlocked_scatter` — the **positive control**: the same
  coforall shape deliberately scatter-assigning overlapping rows into one
  shared output with *no* pool.  A detector that cannot flag this tells
  you nothing when the matrix comes back clean; the tests assert this
  report is non-empty and that its :meth:`RaceReport.fingerprint` is a
  pure function of the seed.
"""

from __future__ import annotations

import numpy as np

from repro.sanitize.detector import RaceReport, sanitizing

__all__ = ["MUTEX_KINDS", "TASKING_LAYER_NAMES", "certify_scatter_mutex",
           "seeded_unlocked_scatter"]

MUTEX_KINDS: tuple[str, ...] = ("sync", "atomic")
TASKING_LAYER_NAMES: tuple[str, ...] = ("qthreads", "fifo")


def certify_scatter_mutex(
    tensor=None,
    *,
    rank: int = 6,
    ntasks: int = 4,
    pool_size: int = 32,
    fuzz_seed: int | None = None,
    modes=None,
    mutex_kinds=MUTEX_KINDS,
    layer_names=TASKING_LAYER_NAMES,
) -> dict[tuple[str, str], RaceReport]:
    """Sanitize locked-scatter MTTKRP across the Fig-4 runtime matrix.

    For every ``(mutex_kind, tasking_layer)`` combination, runs the
    vectorized MTTKRP with ``force_locks=True`` (so non-root modes take
    the ``scatter_mutex`` path through the real lock pool) for each output
    mode, under an installed sanitizer.  ``fuzz_seed`` additionally arms
    the schedule perturber so the certificate covers adversarial
    interleavings, not just the quiet one.

    Returns ``{(mutex_kind, layer_name): RaceReport}``; the matrix is
    certified when every report's ``.ok`` is true.  The small ``pool_size``
    default forces distinct output rows to *share* locks, which is the
    interesting case — correctness must come from mutual exclusion on the
    hashed bucket, not from accidental row privacy.
    """
    # Imported here so ``repro.sanitize`` stays importable from the runtime
    # modules (which the kernel stack below transitively imports).
    from repro.csf.build import build_csf_set
    from repro.mttkrp.variants import mttkrp_csf
    from repro.runtime.env import ChapelEnv
    from repro.runtime.tasking import make_tasking_layer
    from repro.tensor.generate import random_tensor

    if tensor is None:
        tensor = random_tensor((24, 18, 15), 400, seed=13)
    rng = np.random.default_rng(17)
    factors = [np.asarray(rng.random((d, rank))) for d in tensor.dims]
    mode_list = list(modes) if modes is not None else list(range(tensor.nmodes))

    reports: dict[tuple[str, str], RaceReport] = {}
    for kind in mutex_kinds:
        for layer_name in layer_names:
            env = ChapelEnv(num_tasks=ntasks, tasking_layer=layer_name)
            layer = make_tasking_layer(env)
            csf_set = build_csf_set(tensor, allocation="two")
            try:
                with sanitizing(seed=fuzz_seed) as san:
                    for mode in mode_list:
                        mttkrp_csf(
                            csf_set, factors, mode,
                            layer=layer,
                            mutex_kind=kind,
                            pool_size=pool_size,
                            force_locks=True,
                        )
            finally:
                layer.shutdown()
            reports[(kind, layer_name)] = san.report()
    return reports


def seeded_unlocked_scatter(
    seed: int = 0,
    *,
    nrows: int = 12,
    rank: int = 4,
    ntasks: int = 4,
    fuzz: bool = True,
) -> RaceReport:
    """Positive control: an intentionally unlocked contended scatter.

    ``ntasks`` coforall tasks each ``scatter_assign`` the *same* seeded
    contended row set into one shared output with no mutex pool — every
    shared row is written concurrently by every task with an empty
    lockset, so the detector must produce ``data-race`` findings on the
    ``RowScatter.scatter_assign`` site covering all contended rows.

    Deterministic by construction: the rows come from ``seed``, task
    timelines are forked in tid order, and each racy ``(task, row)`` pair
    is counted exactly once — so ``report.fingerprint()`` depends only on
    ``seed``, which is what the same-seed ⇒ same-report test asserts.
    """
    from repro.mttkrp.scatter import RowScatter
    from repro.runtime.env import ChapelEnv
    from repro.runtime.tasking import make_tasking_layer

    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, size=4 * nrows).astype(np.int64)
    contribs = rng.random((rows.size, rank))
    out = np.zeros((nrows, rank))
    scatter = RowScatter(rows)

    env = ChapelEnv(num_tasks=ntasks, tasking_layer="fifo")
    layer = make_tasking_layer(env)
    try:
        with sanitizing(seed=seed if fuzz else None) as san:
            san.register_array(out, "control.out")
            layer.coforall(ntasks, lambda tid: scatter.scatter_assign(out, contribs))
    finally:
        layer.shutdown()
    return san.report()
