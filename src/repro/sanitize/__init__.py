"""``repro.sanitize`` — deterministic concurrency sanitizer.

A vector-clock happens-before race detector with lockset filtering
(:mod:`~repro.sanitize.detector`), a lock-order graph for deadlock
potential (:mod:`~repro.sanitize.lockgraph`), outstanding-wait tracking
for lost wakeups, and a seeded schedule-perturbation fuzzer
(:mod:`~repro.sanitize.fuzz`).  The runtime primitives and the MTTKRP
scatter kernels are pre-instrumented; install with::

    from repro.sanitize import sanitizing

    with sanitizing(seed=7) as san:
        ...  # run parallel code
    report = san.report()
    assert report.ok, report.render()

See docs/SANITIZER.md for the model and its guarantees.

The certification helpers (:func:`certify_scatter_mutex`,
:func:`seeded_unlocked_scatter`) are re-exported lazily: they pull in the
full kernel stack, which itself imports the instrumented runtime modules —
importing them eagerly here would make ``repro.sanitize`` circular.
"""

from __future__ import annotations

from repro.sanitize.clocks import VectorClock
from repro.sanitize.detector import (
    RaceFinding,
    RaceReport,
    Sanitizer,
    active_sanitizer,
    enabled,
    pause,
    sanitizing,
)
from repro.sanitize.fuzz import SchedulePerturber
from repro.sanitize.lockgraph import LockOrderGraph

__all__ = [
    "VectorClock",
    "LockOrderGraph",
    "SchedulePerturber",
    "RaceFinding",
    "RaceReport",
    "Sanitizer",
    "sanitizing",
    "active_sanitizer",
    "enabled",
    "pause",
    "certify_scatter_mutex",
    "seeded_unlocked_scatter",
    "MUTEX_KINDS",
    "TASKING_LAYER_NAMES",
]

_CERTIFY_NAMES = {
    "certify_scatter_mutex",
    "seeded_unlocked_scatter",
    "MUTEX_KINDS",
    "TASKING_LAYER_NAMES",
}


def __getattr__(name: str):
    if name in _CERTIFY_NAMES:
        from repro.sanitize import certify

        return getattr(certify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
