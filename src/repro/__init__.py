"""repro — reproduction of *Parallel Sparse Tensor Decomposition in Chapel*.

A from-scratch Python implementation of SPLATT-style sparse CP-ALS tensor
decomposition (COO → sort → CSF → parallel MTTKRP → ALS), together with the
Chapel-runtime substrate the paper studies (tasking layers, sync/atomic
mutex pools) and a calibrated performance model + benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    import repro

    x = repro.synthetic_dataset("nell-2")     # scaled Table I stand-in
    result = repro.cp_als(x, rank=16)
    print(result.fit, result.timers.as_row())

See README.md for the architecture overview and DESIGN.md for the
experiment index.
"""

from repro.analysis import core_consistency, factor_match_score
from repro.completion import CompletionOptions, CompletionResult, complete
from repro.constrained import ConstrainedResult, constrained_cp_als
from repro.core import CpalsOptions, CpalsResult, KruskalTensor, RoutineTimers, cp_als
from repro.csf import CsfSet, CsfTensor, build_csf, build_csf_set
from repro.distributed import DistributedResult, LocaleGrid, choose_grid, distributed_cp_als
from repro.mttkrp import ACCESS_VARIANTS, dense_mttkrp_reference, mttkrp, mttkrp_csf
from repro.observe import TraceRecorder, tracing
from repro.resilience import (
    Checkpoint,
    CheckpointError,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    inject_faults,
    load_checkpoint,
    retrying,
    save_checkpoint,
)
from repro.runtime import AtomicLockPool, ChapelEnv, SyncLockPool, SyncVar, make_tasking_layer
from repro.tucker import TuckerResult, ttmc, tucker_hooi
from repro.tensor import (
    DATASET_SIGNATURES,
    SORT_VARIANTS,
    SparseTensor,
    binarize,
    drop_empty_slices,
    load_tns,
    planted_low_rank,
    random_tensor,
    save_tns,
    scale_values,
    sort_tensor,
    split_nonzeros,
    subtensor,
    synthetic_dataset,
    tensor_stats,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "cp_als",
    "CpalsResult",
    "CpalsOptions",
    "KruskalTensor",
    "RoutineTimers",
    # tensor
    "SparseTensor",
    "synthetic_dataset",
    "random_tensor",
    "planted_low_rank",
    "load_tns",
    "save_tns",
    "sort_tensor",
    "SORT_VARIANTS",
    "DATASET_SIGNATURES",
    "tensor_stats",
    "split_nonzeros",
    "drop_empty_slices",
    "scale_values",
    "binarize",
    "subtensor",
    # csf
    "CsfTensor",
    "CsfSet",
    "build_csf",
    "build_csf_set",
    # mttkrp
    "mttkrp",
    "mttkrp_csf",
    "ACCESS_VARIANTS",
    "dense_mttkrp_reference",
    # observe
    "tracing",
    "TraceRecorder",
    # resilience
    "FaultPlan",
    "InjectedFault",
    "inject_faults",
    "RetryPolicy",
    "retrying",
    "Checkpoint",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    # runtime
    "ChapelEnv",
    "AtomicLockPool",
    "SyncLockPool",
    "SyncVar",
    "make_tasking_layer",
    # completion
    "complete",
    "CompletionOptions",
    "CompletionResult",
    # constrained
    "constrained_cp_als",
    "ConstrainedResult",
    # distributed
    "distributed_cp_als",
    "DistributedResult",
    "LocaleGrid",
    "choose_grid",
    # analysis
    "factor_match_score",
    "core_consistency",
    # tucker
    "tucker_hooi",
    "TuckerResult",
    "ttmc",
]
