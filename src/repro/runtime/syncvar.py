"""Chapel ``sync`` variables — full/empty semantics (paper §II, §IV-A).

A ``sync`` variable couples a value with a *full/empty* state: reads block
until full and leave the variable empty; writes block until empty and
leave it full.  The paper's mutex pool is literally an array of
``sync bool`` (initialized full; acquire = read, release = write), and the
performance pathology of Fig 4 comes from how the tasking layer implements
the blocking: Qthreads *sleeps* a blocked task, fifo *spins*.

:class:`SyncVar` implements the complete Chapel access-method family:

=============  ===========================================================
``read_fe``    block until full, read, leave **empty**  (default read)
``read_ff``    block until full, read, leave full
``read_xx``    read current value regardless of state (no state change)
``write_ef``   block until empty, write, leave **full** (default write)
``write_ff``   block until full, write, leave full
``write_xf``   write regardless of state, leave full
``reset``      set to the type's default value, leave empty
``is_full``    non-blocking state peek
=============  ===========================================================

Like the mutex pools, the blocking behaviour honours the ambient
:class:`~repro.runtime.env.ChapelEnv`: under Qthreads a blocked task waits
on a condition variable (and the wait is counted as a sleep); under fifo
it spin-waits (counted as yields).
"""

from __future__ import annotations

import threading
import time
from typing import Generic, TypeVar

from repro.runtime.accounting import CostCounters
from repro.runtime.env import ChapelEnv
from repro.sanitize import detector as _san

__all__ = ["SyncVar"]

T = TypeVar("T")


class SyncVar(Generic[T]):
    """A Chapel ``sync`` variable holding one value of type ``T``.

    Parameters
    ----------
    initial:
        If given, the variable starts *full* with this value; otherwise it
        starts empty (Chapel's default for an uninitialized sync).
    env:
        Tasking-layer configuration; decides sleep-vs-spin for blocked
        accesses.
    counters:
        Optional shared instrumentation.
    """

    def __init__(
        self,
        initial: T | None = None,
        *,
        default: T | None = None,
        env: ChapelEnv | None = None,
        counters: CostCounters | None = None,
    ):
        self.env = env if env is not None else ChapelEnv()
        self.counters = counters if counters is not None else CostCounters()
        self._cond = threading.Condition(threading.Lock())
        self._default: T | None = default
        if initial is not None:
            self._value: T | None = initial
            self._full = True
        else:
            self._value = default
            self._full = False

    # ------------------------------------------------------------------
    # waiting primitives
    # ------------------------------------------------------------------
    def _san_key(self) -> tuple:
        """The sanitizer's identity for this variable (wait tracking and
        happens-before handoff edges)."""
        return ("SyncVar", id(self))

    def _wait_for_state(self, want_full: bool) -> None:
        """Block (sleep or spin, per the tasking layer) until the state
        matches; caller must hold ``self._cond``."""
        san = _san._active
        waiting = False
        if san is not None and self._full != want_full:
            # An outstanding blocked access: a writer/reader must complete
            # it — tracked so a watchdog can flag it as a lost wakeup.
            waiting = True
            san.wait_begin(self._san_key(), "full" if want_full else "empty")
        if self.env.sync_vars_sleep:
            while self._full != want_full:
                self.counters.add(sync_sleeps=1)
                self._cond.wait()
        else:
            while self._full != want_full:
                self._cond.release()
                self.counters.add(task_yields=1)
                time.sleep(0)
                self._cond.acquire()  # reprolint: allow(lock-no-finally) — re-acquire of the condition's own lock inside its yield loop; the enclosing 'with self._cond' owns the release
        if waiting:
            san.wait_end(self._san_key())

    def _san_op(self) -> None:
        """Record a completed state transition as a happens-before handoff
        (serialization-order edge); caller holds ``self._cond``."""
        san = _san._active
        if san is not None:
            san.on_sync_op(self._san_key())

    def _notify(self) -> None:
        if self.env.sync_vars_sleep:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_fe(self) -> T:
        """Block until full, return the value, leave **empty**."""
        _san.pause("syncvar.op")
        with self._cond:
            self._wait_for_state(True)
            value = self._value
            self._full = False
            self._san_op()
            self._notify()
            return value  # type: ignore[return-value]

    def read_ff(self) -> T:
        """Block until full, return the value, leave full."""
        _san.pause("syncvar.op")
        with self._cond:
            self._wait_for_state(True)
            self._san_op()
            self._notify()
            return self._value  # type: ignore[return-value]

    def read_xx(self) -> T | None:
        """Return the current value regardless of state (no state change)."""
        with self._cond:
            return self._value

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write_ef(self, value: T) -> None:
        """Block until empty, store ``value``, leave **full**."""
        _san.pause("syncvar.op")
        with self._cond:
            self._wait_for_state(False)
            self._value = value
            self._full = True
            self._san_op()
            self._notify()

    def write_ff(self, value: T) -> None:
        """Block until full, overwrite the value, leave full."""
        _san.pause("syncvar.op")
        with self._cond:
            self._wait_for_state(True)
            self._value = value
            self._san_op()
            self._notify()

    def write_xf(self, value: T) -> None:
        """Store ``value`` regardless of state, leave full."""
        _san.pause("syncvar.op")
        with self._cond:
            self._value = value
            self._full = True
            self._san_op()
            self._notify()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Set to the default value and leave **empty** (Chapel ``reset``)."""
        _san.pause("syncvar.op")
        with self._cond:
            self._value = self._default
            self._full = False
            self._san_op()
            self._notify()

    def is_full(self) -> bool:
        """Non-blocking state peek (Chapel ``isFull``)."""
        with self._cond:
            return self._full
