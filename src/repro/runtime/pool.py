"""Persistent worker pool: long-lived threads behind ``coforall``.

Chapel's tasking layers do not create an OS thread per task: Qthreads keeps
a fixed set of (by default pinned) *workers* alive for the whole program and
multiplexes tasks onto them.  The seed port instead spawned fresh
``threading.Thread`` objects on every ``coforall`` — dozens of times per
CP-ALS iteration — re-introducing exactly the per-call overhead the paper
spends §V removing.  :class:`WorkerPool` restores the Chapel shape: workers
are created once (lazily, growing to the largest task count seen), parked on
a per-worker mailbox event, and reused by every subsequent ``coforall`` /
``forall`` / reduction in the run.

Dispatch protocol: the caller takes the dispatch lock, hands ``body`` and a
``tid`` to the first ``ntasks`` workers, and waits on their done events —
two event round-trips instead of a thread create/start/join cycle.  A
nested or concurrent dispatch (a ``coforall`` issued from inside a pool
worker, or from a ``begin`` task while the pool is busy) falls back to
ephemeral threads, so the pool can never deadlock on itself.

Shutdown semantics: workers are daemon threads, so a forgotten pool cannot
hang interpreter exit; :meth:`WorkerPool.shutdown` parks and joins them
deterministically, a pool whose owning
:class:`~repro.runtime.tasking.TaskingLayer` is garbage collected signals
its workers to stop on finalization, and every live pool is additionally
registered in a module-level weak set that an ``atexit`` hook drains — so
workers are told to stop even when neither the layer nor the pool is ever
explicitly shut down or collected.

Fault injection: when a :class:`~repro.resilience.fault.FaultPlan` is
installed, :meth:`WorkerPool.run` pokes the ``pool.dispatch`` site before
submitting any task (so a firing fault is always retry-safe) and each task
body pokes ``pool.task`` on its worker (surfacing as a task failure).

Parallelism note: under plain NumPy kernels the pool's workers contend on
the GIL between vector calls, so the pool models Chapel's structure more
than its speed.  With a compiled kernel backend selected
(:mod:`repro.backend` — numba ``nogil`` JIT or the ctypes C extension,
whose foreign calls release the GIL for their whole duration), the range
kernels dispatched onto these workers run genuinely concurrently, and
task-count scaling becomes real wall-clock scaling rather than simulated
accounting.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from typing import Callable

from repro.observe import spans as _obs
from repro.resilience import fault as _flt
from repro.sanitize import detector as _san

__all__ = ["WorkerPool", "run_ephemeral"]

#: Every constructed pool, weakly held; the atexit hook signals any still
#: alive at interpreter exit to stop (without joining — they are daemons).
_live_pools: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _shutdown_live_pools() -> None:  # pragma: no cover - exercised via direct call
    for pool in list(_live_pools):
        pool.shutdown(join=False)


def run_ephemeral(ntasks: int, body: Callable[[int], None]) -> None:
    """Run ``body(tid)`` on ``ntasks`` fresh threads (the pre-pool path).

    All tasks join before the first exception (if any) propagates.  Kept as
    the fallback for nested/concurrent dispatches and as the explicit
    opt-out (``persistent=False``) used to benchmark the pool against the
    seed behaviour.
    """
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def run(tid: int) -> None:
        try:
            body(tid)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with errors_lock:
                errors.append(exc)

    threads = [threading.Thread(target=run, args=(tid,), daemon=True) for tid in range(ntasks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class _Worker:
    """One parked pool thread: a mailbox event pair plus the task slot."""

    __slots__ = ("thread", "_work", "_done", "_body", "_tid", "error", "_stop")

    def __init__(self, index: int, name: str, cpu: int | None):
        self._work = threading.Event()
        self._done = threading.Event()
        self._body: Callable[[int], None] | None = None
        self._tid = 0
        self.error: BaseException | None = None
        self._stop = False
        self.thread = threading.Thread(
            target=self._loop, args=(cpu,), daemon=True, name=f"{name}-{index}"
        )
        self.thread.start()

    def _loop(self, cpu: int | None) -> None:
        if cpu is not None:
            try:
                os.sched_setaffinity(0, {cpu})
            except (AttributeError, OSError):  # pinning is best-effort
                pass
        while True:
            self._work.wait()
            self._work.clear()
            if self._stop:
                self._done.set()
                return
            try:
                if self._body is None:
                    raise RuntimeError(
                        f"pool worker {self._tid} woken without a body: "
                        "dispatch/shutdown protocol violated"
                    )
                self._body(self._tid)
            except BaseException as exc:  # noqa: BLE001 - surfaced by dispatch()
                self.error = exc
            finally:
                self._body = None
                self._done.set()

    def submit(self, body: Callable[[int], None], tid: int) -> None:
        self._body = body
        self._tid = tid
        self.error = None
        self._done.clear()
        self._work.set()

    def wait(self) -> None:
        self._done.wait()

    def stop(self) -> None:
        self._stop = True
        self._work.set()


class WorkerPool:
    """A long-lived pool of worker threads executing ``coforall`` dispatches.

    Parameters
    ----------
    name:
        Thread-name prefix (shows up in debuggers / ``py-spy``).
    pin_workers:
        Pin worker ``i`` to core ``i % ncores`` (Linux only, best-effort) —
        the Qthreads ``QT_AFFINITY`` default the paper discusses in §V-E.

    Statistics (all monotone, read by tests and ``cp_als`` reporting):
    ``threads_created`` — workers ever started; ``dispatches`` — pooled
    ``run`` calls served; ``fallback_dispatches`` — nested/concurrent calls
    served on ephemeral threads; ``tasks_executed`` — task bodies run on
    pool workers.
    """

    def __init__(self, *, name: str = "chpl-worker", pin_workers: bool = False):
        self.name = name
        self.pin_workers = pin_workers
        self._workers: list[_Worker] = []
        self._idents: frozenset[int] = frozenset()
        self._grow_lock = threading.Lock()
        self._dispatch_lock = threading.Lock()
        self._closed = False
        self.threads_created = 0
        self.dispatches = 0
        self.fallback_dispatches = 0
        self.tasks_executed = 0
        #: Resilience accounting, bumped by the owning tasking layer:
        #: retried pooled dispatches, simulated backoff spent on them, and
        #: dispatches that degraded to serial execution.
        self.retries = 0
        self.backoff_seconds = 0.0
        self.degraded_dispatches = 0
        _live_pools.add(self)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Workers currently alive in the pool."""
        return len(self._workers)

    def worker_idents(self) -> list[int]:
        """Thread idents of the live workers, in tid order (test hook)."""
        return [w.thread.ident for w in self._workers if w.thread.ident is not None]

    def _ensure(self, n: int) -> None:
        with self._grow_lock:
            if self._closed:
                raise RuntimeError("worker pool has been shut down")
            ncpu = os.cpu_count() or 1
            while len(self._workers) < n:
                index = len(self._workers)
                cpu = (index % ncpu) if self.pin_workers else None
                self._workers.append(_Worker(index, self.name, cpu))
                self.threads_created += 1
            self._idents = frozenset(
                w.thread.ident for w in self._workers if w.thread.ident is not None
            )

    # ------------------------------------------------------------------
    def run(self, ntasks: int, body: Callable[[int], None]) -> None:
        """Execute ``body(tid)`` for ``tid in 0..ntasks-1``, one per worker.

        Every task runs on its own (persistent) worker thread, so tasks may
        block on each other (sync variables, barriers) exactly as with the
        spawn-per-call implementation.  The first task exception propagates
        after all tasks finish.  Re-entrant or concurrent calls fall back to
        :func:`run_ephemeral` rather than waiting on a busy pool.
        """
        if ntasks < 1:
            raise ValueError("ntasks must be >= 1")
        # Fuzzer perturbation point: delay the dispatch itself so pooled
        # tasks start against shifted backgrounds (no-op unless a sanitizer
        # with a schedule perturber is installed).
        _san.pause("pool.dispatch")
        if (
            self._closed
            or threading.get_ident() in self._idents
            or not self._dispatch_lock.acquire(blocking=False)
        ):
            self.fallback_dispatches += 1
            rec = _obs._active
            if rec is not None:
                rec.count("pool.fallback_dispatches")
            run_ephemeral(ntasks, body)
            return
        try:
            plan = _flt._active_plan
            if plan is not None:
                # Dispatch-site fault: fires before any task is submitted,
                # so a retry re-runs nothing.  Task-site faults fire on the
                # workers and surface through the normal error path.
                plan.poke("pool.dispatch")
                inner = body

                def body(tid: int, _inner=inner, _plan=plan) -> None:
                    _plan.poke("pool.task")
                    _inner(tid)

            self._ensure(ntasks)
            workers = self._workers[:ntasks]
            submitted: list[_Worker] = []
            try:
                for tid, worker in enumerate(workers):
                    worker.submit(body, tid)
                    submitted.append(worker)
                for worker in workers:
                    worker.wait()
            except BaseException:
                # A failure between submit and wait (injected fault,
                # KeyboardInterrupt, ...) must not hand the dispatch slot
                # to the next caller while workers still run the old body —
                # that would overwrite their mailboxes and park them with a
                # cleared done event.  Drain everything submitted first.
                for worker in submitted:
                    worker.wait()
                raise
            self.dispatches += 1
            self.tasks_executed += ntasks
            rec = _obs._active
            if rec is not None:
                rec.count("pool.dispatches")
                rec.count("pool.tasks_executed", ntasks)
            for worker in workers:
                if worker.error is not None:
                    raise worker.error
        finally:
            self._dispatch_lock.release()

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Pool-reuse statistics (workers alive, dispatches served, ...)."""
        return {
            "workers": self.num_workers,
            "threads_created": self.threads_created,
            "dispatches": self.dispatches,
            "fallback_dispatches": self.fallback_dispatches,
            "tasks_executed": self.tasks_executed,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "degraded_dispatches": self.degraded_dispatches,
        }

    def shutdown(self, join: bool = True) -> None:
        """Stop all workers; ``join=True`` waits for their threads to exit.

        Idempotent.  After shutdown the pool serves any further ``run``
        calls on ephemeral threads (it never resurrects workers).
        """
        with self._grow_lock:
            if self._closed and not self._workers:
                return
            self._closed = True
            workers, self._workers = self._workers, []
            self._idents = frozenset()
        for w in workers:
            w.stop()
        if join:
            for w in workers:
                w.thread.join(timeout=5.0)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.shutdown(join=False)
        except Exception:
            pass
