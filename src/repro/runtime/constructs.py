"""Additional Chapel parallel constructs: ``begin``, ``cobegin``, barriers.

The paper's §II describes Chapel programs creating tasks "explicitly or
implicitly"; beyond ``coforall``/``forall`` (in
:mod:`repro.runtime.tasking`), Chapel's task toolbox includes:

* ``begin stmt`` — fire an asynchronous task; the parent continues
  immediately.  :func:`begin` returns a :class:`TaskHandle` whose
  :meth:`~TaskHandle.wait` retrieves the result (or re-raises).
* ``cobegin { s1; s2; … }`` — run a fixed set of *different* statements
  concurrently and join them all.  :func:`cobegin` takes a list of
  callables and returns their results in order.
* ``Barrier(n)`` — Chapel's ``Barriers`` module: ``n`` tasks rendezvous at
  :meth:`Barrier.barrier`.  Reusable across phases.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

__all__ = ["TaskHandle", "begin", "cobegin", "Barrier"]


class TaskHandle:
    """Handle to a ``begin``-spawned task."""

    def __init__(self, fn: Callable[[], Any]):
        self._result: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()

        def run() -> None:
            try:
                self._result = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised in wait()
                self._error = exc
            finally:
                self._done.set()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def done(self) -> bool:
        """Non-blocking completion check."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> Any:
        """Join the task; return its result or re-raise its exception."""
        if not self._done.wait(timeout):
            raise TimeoutError("begin task did not finish in time")
        if self._error is not None:
            raise self._error
        return self._result


def begin(fn: Callable[[], Any]) -> TaskHandle:
    """Chapel ``begin``: run ``fn`` asynchronously, return a handle."""
    return TaskHandle(fn)


def cobegin(fns: Sequence[Callable[[], Any]]) -> list[Any]:
    """Chapel ``cobegin``: run the callables concurrently, join them all.

    Results return in input order; the first exception (in input order)
    re-raises after every task has finished.
    """
    if not fns:
        return []
    handles = [begin(fn) for fn in fns]
    results: list[Any] = []
    first_error: BaseException | None = None
    for h in handles:
        try:
            results.append(h.wait())
        except BaseException as exc:  # noqa: BLE001
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results


class Barrier:
    """A reusable task barrier (Chapel's ``Barriers.Barrier``).

    ``n`` participants call :meth:`barrier`; all block until the ``n``-th
    arrives, then all proceed.  Reusable for successive phases.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("barrier needs >= 1 participants")
        self._barrier = threading.Barrier(n)

    @property
    def n(self) -> int:
        return self._barrier.parties

    def barrier(self, timeout: float | None = None) -> None:
        """Rendezvous point (Chapel's method name)."""
        self._barrier.wait(timeout)

    def reset(self) -> None:
        """Abort waiters and reset (Chapel ``reset``)."""
        self._barrier.reset()
