"""Mutex pools: the paper's ``sync``-variable and ``atomic``-variable locks.

Chapel has no built-in mutex (§IV-A), so SPLATT's mutex pool was ported two
ways, and the difference is the subject of Fig 4:

* :class:`SyncLockPool` — an array of ``sync bool`` variables.  Acquiring
  reads the variable (full→empty), releasing writes it (empty→full).
  Under the Qthreads tasking layer a task blocked on a sync variable is
  *put to sleep*; for MTTKRP's very short critical sections the
  sleep/wake round-trip dwarfs the protected work.  Under fifo, sync vars
  spin instead and behave like the atomic pool.

* :class:`AtomicLockPool` — an array of ``atomic bool`` spinlocks:
  ``while pool[id].testAndSet() do chpl_task_yield();`` (Listing 6).

Both are real, thread-safe lock pools (usable from Python threads) that
additionally emulate the *behavioural* distinction — sleep vs spin — and
count every acquisition and contention event for the performance model.

Lock assignment hashes the protected row index into the pool exactly as
SPLATT's ``mutex_pool`` does (index modulo pool size).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod

from repro.observe import spans as _obs
from repro.runtime.accounting import CostCounters
from repro.runtime.env import ChapelEnv
from repro.sanitize import detector as _san

__all__ = [
    "DEFAULT_POOL_SIZE",
    "MutexPool",
    "AtomicLockPool",
    "SyncLockPool",
    "make_mutex_pool",
]

#: SPLATT's default mutex pool size (``SPLATT_DEFAULT_NLOCKS``... 1024 locks,
#: padded to separate cache lines in C; padding is moot in Python).
DEFAULT_POOL_SIZE = 1024


class MutexPool(ABC):
    """A pool of locks protecting factor-matrix rows during MTTKRP.

    Subclasses implement the acquire/release mechanics; the pool maps a row
    index to a lock via :meth:`lock_id`.
    """

    def __init__(self, size: int = DEFAULT_POOL_SIZE, counters: CostCounters | None = None):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.counters = counters if counters is not None else CostCounters()

    def lock_id(self, index: int) -> int:
        """Hash a protected row index into the pool (SPLATT: ``i % nlocks``)."""
        return int(index) % self.size

    def _san_token(self, lock_id: int) -> tuple:
        """The sanitizer's identity for one pool lock (lockset membership
        and lock-order-graph node)."""
        return (type(self).__name__, id(self), lock_id)

    @abstractmethod
    def acquire(self, lock_id: int) -> None:
        """Block until lock ``lock_id`` is held by the caller."""

    @abstractmethod
    def release(self, lock_id: int) -> None:
        """Release lock ``lock_id`` (must be held)."""

    # Convenience context manager keyed by *row* index.
    class _Guard:
        __slots__ = ("pool", "lid")

        def __init__(self, pool: "MutexPool", lid: int):
            self.pool = pool
            self.lid = lid

        def __enter__(self):
            self.pool.acquire(self.lid)
            return self

        def __exit__(self, *exc):
            self.pool.release(self.lid)
            return False

    def guard_row(self, row_index: int) -> "MutexPool._Guard":
        """``with pool.guard_row(i): ...`` — lock the row's bucket."""
        return MutexPool._Guard(self, self.lock_id(row_index))


class AtomicLockPool(MutexPool):
    """Spinlock pool over ``atomic bool`` test-and-set (Listing 6).

    ``acquire`` spins on a non-blocking test-and-set, yielding between
    attempts (``chpl_task_yield``); ``release`` clears the flag.  Suited to
    MTTKRP's short critical sections — the winner of Fig 4.
    """

    def __init__(self, size: int = DEFAULT_POOL_SIZE, counters: CostCounters | None = None):
        super().__init__(size, counters)
        self._locks = [threading.Lock() for _ in range(size)]

    def acquire(self, lock_id: int) -> None:
        _san.pause("lock.acquire")
        lock = self._locks[lock_id]
        contended = False
        # testAndSet loop: try without blocking; yield the task on failure.
        while not lock.acquire(blocking=False):
            contended = True
            self.counters.add(task_yields=1)
            time.sleep(0)  # chpl_task_yield analogue: cede the OS thread
        self.counters.add(lock_acquires=1, lock_contended=int(contended))
        san = _san._active
        if san is not None:
            san.on_acquire(self._san_token(lock_id), "AtomicLockPool.acquire")
        rec = _obs._active
        if rec is not None:
            rec.count("lock.acquires")
            if contended:
                rec.count("lock.contended")

    def release(self, lock_id: int) -> None:
        san = _san._active
        if san is not None:
            san.on_release(self._san_token(lock_id))
        self._locks[lock_id].release()


class SyncLockPool(MutexPool):
    """Lock pool over ``sync bool`` full/empty variables.

    The pool initializes every variable *full* (True).  ``acquire`` reads
    (blocks until full, leaves empty); ``release`` writes (blocks until
    empty, leaves full).

    Behaviour depends on the tasking layer (the crux of Fig 4):

    * ``qthreads``: a blocked reader **sleeps** on a condition variable and
      must be woken by the releaser — a deschedule/reschedule round-trip per
      contended acquire (counted in ``counters.sync_sleeps``).
    * ``fifo``: a blocked reader **spins**, equivalent to the atomic pool.
    """

    def __init__(
        self,
        size: int = DEFAULT_POOL_SIZE,
        counters: CostCounters | None = None,
        *,
        env: ChapelEnv | None = None,
    ):
        super().__init__(size, counters)
        self.env = env if env is not None else ChapelEnv()
        self._full = [True] * size
        self._conds = [threading.Condition(threading.Lock()) for _ in range(size)]

    def acquire(self, lock_id: int) -> None:
        _san.pause("lock.acquire")
        san = _san._active
        cond = self._conds[lock_id]
        contended = False
        sleeps = 0
        if self.env.sync_vars_sleep:
            with cond:
                waiting = False
                if san is not None and not self._full[lock_id]:
                    # Sleep path: an outstanding wait the releaser must end
                    # with a notify — tracked for lost-wakeup detection.
                    waiting = True
                    san.wait_begin(self._san_token(lock_id), "full")
                while not self._full[lock_id]:
                    contended = True
                    sleeps += 1
                    # Qthreads: deschedule the task until the writer signals.
                    self.counters.add(sync_sleeps=1)
                    cond.wait()
                if waiting:
                    san.wait_end(self._san_token(lock_id))
                self._full[lock_id] = False
        else:
            # fifo: spin-wait on the full/empty bit.
            while True:
                with cond:
                    if self._full[lock_id]:
                        self._full[lock_id] = False
                        break
                contended = True
                self.counters.add(task_yields=1)
                time.sleep(0)
        self.counters.add(lock_acquires=1, lock_contended=int(contended))
        if san is not None:
            san.on_acquire(self._san_token(lock_id), "SyncLockPool.acquire")
        rec = _obs._active
        if rec is not None:
            rec.count("lock.acquires")
            if contended:
                rec.count("lock.contended")
            if sleeps:
                rec.count("lock.sync_sleeps", sleeps)

    def release(self, lock_id: int) -> None:
        san = _san._active
        if san is not None:
            san.on_release(self._san_token(lock_id))
        cond = self._conds[lock_id]
        with cond:
            if self._full[lock_id]:
                raise RuntimeError(f"sync lock {lock_id} released while not held")
            self._full[lock_id] = True
            if self.env.sync_vars_sleep:
                cond.notify()


def make_mutex_pool(
    kind: str,
    *,
    size: int = DEFAULT_POOL_SIZE,
    env: ChapelEnv | None = None,
    counters: CostCounters | None = None,
) -> MutexPool:
    """Factory: ``"atomic"`` → :class:`AtomicLockPool`, ``"sync"`` →
    :class:`SyncLockPool` (layer-sensitive)."""
    if kind == "atomic":
        return AtomicLockPool(size, counters)
    if kind == "sync":
        return SyncLockPool(size, counters, env=env)
    raise ValueError(f"unknown mutex pool kind {kind!r}; use 'atomic' or 'sync'")
