"""Thread-safe cost counters for runtime instrumentation.

The mutex pools and tasking layers record how much synchronization work an
execution actually performed (acquisitions, contended acquisitions, sleeps,
yields, tasks spawned).  Tests assert on these to verify the lock-pressure
story (YELP contends, NELL-2 does not) and the performance model consumes
them for its contention term.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["CostCounters"]


@dataclass
class CostCounters:
    """Synchronization-event counters; all increments are thread-safe."""

    lock_acquires: int = 0
    lock_contended: int = 0
    sync_sleeps: int = 0
    task_yields: int = 0
    tasks_spawned: int = 0
    _mutex: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def add(
        self,
        *,
        lock_acquires: int = 0,
        lock_contended: int = 0,
        sync_sleeps: int = 0,
        task_yields: int = 0,
        tasks_spawned: int = 0,
    ) -> None:
        with self._mutex:
            self.lock_acquires += lock_acquires
            self.lock_contended += lock_contended
            self.sync_sleeps += sync_sleeps
            self.task_yields += task_yields
            self.tasks_spawned += tasks_spawned

    def reset(self) -> None:
        with self._mutex:
            self.lock_acquires = 0
            self.lock_contended = 0
            self.sync_sleeps = 0
            self.task_yields = 0
            self.tasks_spawned = 0

    @property
    def contention_ratio(self) -> float:
        """Fraction of lock acquisitions that found the lock held."""
        if self.lock_acquires == 0:
            return 0.0
        return self.lock_contended / self.lock_acquires

    def snapshot(self) -> dict[str, int]:
        """Consistent copy of all counters."""
        with self._mutex:
            return {
                "lock_acquires": self.lock_acquires,
                "lock_contended": self.lock_contended,
                "sync_sleeps": self.sync_sleeps,
                "task_yields": self.task_yields,
                "tasks_spawned": self.tasks_spawned,
            }
