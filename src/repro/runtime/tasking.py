"""Tasking layers: ``coforall``/``forall`` over real Python threads.

Chapel maps *tasks* onto threads via a pluggable tasking layer; the paper
uses Qthreads (default) and fifo (POSIX threads).  Here both layers execute
tasks on real :mod:`threading` threads — NumPy kernels release the GIL, so
chunked vectorized work genuinely overlaps — and differ in the properties
the rest of the system cares about:

* how ``sync`` variables behave (:attr:`ChapelEnv.sync_vars_sleep`),
* worker pinning and spin-wait (consumed by
  :mod:`repro.perfmodel.interference`).

``coforall(n, body)`` is Chapel's task-parallel loop: exactly ``n`` tasks,
``body(tid)`` each.  ``forall(n, body)`` is the data-parallel loop: the
iteration space ``0..n-1`` is blocked over the layer's task count and
``body(lo, hi, tid)`` processes one block.  The paper's §IV-B pattern —
an ``omp for`` nested inside ``omp parallel`` — maps to ``coforall`` +
:func:`static_block`, and that is exactly how the MTTKRP kernels use it.
"""

from __future__ import annotations

import threading
from abc import ABC
from typing import Callable

from repro.runtime.accounting import CostCounters
from repro.runtime.env import ChapelEnv

__all__ = [
    "TaskingLayer",
    "QthreadsLayer",
    "FifoLayer",
    "make_tasking_layer",
    "static_block",
]


def static_block(n: int, ntasks: int, tid: int) -> tuple[int, int]:
    """The ``[lo, hi)`` block of ``0..n-1`` owned by task ``tid``.

    Matches OpenMP's static schedule (and what the paper's Chapel code
    computes manually inside ``coforall``, §IV-B): the first ``n % ntasks``
    tasks get one extra element.
    """
    if ntasks < 1:
        raise ValueError("ntasks must be >= 1")
    if not 0 <= tid < ntasks:
        raise ValueError(f"tid {tid} out of range for {ntasks} tasks")
    base, extra = divmod(n, ntasks)
    lo = tid * base + min(tid, extra)
    hi = lo + base + (1 if tid < extra else 0)
    return lo, hi


class TaskingLayer(ABC):
    """Executes Chapel-style parallel constructs on real threads."""

    #: Layer name ("qthreads" / "fifo").
    name: str = ""

    def __init__(self, env: ChapelEnv, counters: CostCounters | None = None):
        if env.tasking_layer != self.name:
            raise ValueError(
                f"env requests tasking layer {env.tasking_layer!r} "
                f"but this is the {self.name!r} layer"
            )
        self.env = env
        self.counters = counters if counters is not None else CostCounters()

    # ------------------------------------------------------------------
    def coforall(self, ntasks: int, body: Callable[[int], None]) -> None:
        """Run ``body(tid)`` for ``tid in 0..ntasks-1`` concurrently.

        ``ntasks == 1`` runs inline (no thread spawn), matching Chapel's
        serialization of singleton coforalls.  Exceptions raised by any
        task propagate to the caller after all tasks join (first one wins).
        """
        if ntasks < 1:
            raise ValueError("ntasks must be >= 1")
        if ntasks == 1:
            body(0)
            return
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def run(tid: int) -> None:
            try:
                body(tid)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with errors_lock:
                    errors.append(exc)

        threads = [threading.Thread(target=run, args=(tid,), daemon=True) for tid in range(ntasks)]
        self.counters.add(tasks_spawned=ntasks)
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    def forall(self, n: int, body: Callable[[int, int, int], None]) -> None:
        """Data-parallel loop: block ``0..n-1`` over ``env.num_tasks`` tasks.

        ``body(lo, hi, tid)`` handles one contiguous block.
        """
        ntasks = min(self.env.num_tasks, max(n, 1))

        def task(tid: int) -> None:
            lo, hi = static_block(n, ntasks, tid)
            if lo < hi:
                body(lo, hi, tid)

        self.coforall(ntasks, task)

    def task_yield(self) -> None:
        """``chpl_task_yield()`` — cede the thread; counted."""
        self.counters.add(task_yields=1)
        import time

        time.sleep(0)


class QthreadsLayer(TaskingLayer):
    """Chapel's default tasking layer.

    Distinctive properties (all read by the perfmodel / lock pools):
    workers pinned to cores by default (``env.qt_affinity``), long
    spin-wait before suspending (``env.qt_spincount``), and sync variables
    that *sleep* blocked tasks.
    """

    name = "qthreads"


class FifoLayer(TaskingLayer):
    """The fifo (POSIX threads) tasking layer.

    No worker pinning, and sync variables *spin*, which is why Fig 4's
    "FIFO-sync" curve tracks the atomic pool.
    """

    name = "fifo"


def make_tasking_layer(env: ChapelEnv, counters: CostCounters | None = None) -> TaskingLayer:
    """Instantiate the layer selected by ``env.tasking_layer``."""
    if env.tasking_layer == "qthreads":
        return QthreadsLayer(env, counters)
    if env.tasking_layer == "fifo":
        return FifoLayer(env, counters)
    raise ValueError(f"unknown tasking layer {env.tasking_layer!r}")
