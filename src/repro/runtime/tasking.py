"""Tasking layers: ``coforall``/``forall`` over real Python threads.

Chapel maps *tasks* onto threads via a pluggable tasking layer; the paper
uses Qthreads (default) and fifo (POSIX threads).  Here both layers execute
tasks on real :mod:`threading` threads — NumPy kernels release the GIL, so
chunked vectorized work genuinely overlaps — and differ in the properties
the rest of the system cares about:

* how ``sync`` variables behave (:attr:`ChapelEnv.sync_vars_sleep`),
* worker pinning and spin-wait (consumed by
  :mod:`repro.perfmodel.interference`).

``coforall(n, body)`` is Chapel's task-parallel loop: exactly ``n`` tasks,
``body(tid)`` each.  ``forall(n, body)`` is the data-parallel loop: the
iteration space ``0..n-1`` is blocked over the layer's task count and
``body(lo, hi, tid)`` processes one block.  The paper's §IV-B pattern —
an ``omp for`` nested inside ``omp parallel`` — maps to ``coforall`` +
:func:`static_block`, and that is exactly how the MTTKRP kernels use it.

Like Qthreads, a layer does not spawn an OS thread per task: every
multi-task ``coforall`` dispatches onto the layer's persistent
:class:`~repro.runtime.pool.WorkerPool` (created on first use, reused for
the lifetime of the layer), so steady-state parallel loops pay two event
round-trips instead of a thread create/start/join cycle.  Pass
``persistent=False`` to recover the spawn-per-call behaviour (used by the
amortization benchmarks as the "before" configuration).
"""

from __future__ import annotations

import time
from abc import ABC
from typing import Callable

from repro.observe import spans as _obs
from repro.resilience import fault as _flt
from repro.resilience import retry as _rty
from repro.sanitize import detector as _san
from repro.runtime.accounting import CostCounters
from repro.runtime.env import ChapelEnv
from repro.runtime.pool import WorkerPool, run_ephemeral

__all__ = [
    "TaskingLayer",
    "QthreadsLayer",
    "FifoLayer",
    "make_tasking_layer",
    "static_block",
]


def static_block(n: int, ntasks: int, tid: int) -> tuple[int, int]:
    """The ``[lo, hi)`` block of ``0..n-1`` owned by task ``tid``.

    Matches OpenMP's static schedule (and what the paper's Chapel code
    computes manually inside ``coforall``, §IV-B): the first ``n % ntasks``
    tasks get one extra element.
    """
    if ntasks < 1:
        raise ValueError("ntasks must be >= 1")
    if not 0 <= tid < ntasks:
        raise ValueError(f"tid {tid} out of range for {ntasks} tasks")
    base, extra = divmod(n, ntasks)
    lo = tid * base + min(tid, extra)
    hi = lo + base + (1 if tid < extra else 0)
    return lo, hi


class TaskingLayer(ABC):
    """Executes Chapel-style parallel constructs on real threads."""

    #: Layer name ("qthreads" / "fifo").
    name: str = ""

    def __init__(
        self,
        env: ChapelEnv,
        counters: CostCounters | None = None,
        *,
        persistent: bool = True,
    ):
        if env.tasking_layer != self.name:
            raise ValueError(
                f"env requests tasking layer {env.tasking_layer!r} "
                f"but this is the {self.name!r} layer"
            )
        self.env = env
        self.counters = counters if counters is not None else CostCounters()
        self.persistent = persistent
        self._pool: WorkerPool | None = None
        #: Resilience accounting for this layer (mirrored into the pool's
        #: stats when the dispatch was pooled): retried dispatches,
        #: simulated backoff seconds, and dispatches degraded to serial.
        self.retries = 0
        self.backoff_seconds = 0.0
        self.degraded_dispatches = 0

    # ------------------------------------------------------------------
    @property
    def worker_pool(self) -> WorkerPool:
        """The layer's persistent :class:`WorkerPool` (created on first use).

        Qthreads pins workers to cores when ``env.qt_affinity`` is set (the
        Qthreads default); fifo never pins.
        """
        if self._pool is None:
            self._pool = WorkerPool(
                name=f"{self.name or 'chpl'}-worker",
                pin_workers=self.env.qt_affinity and self.name == "qthreads",
            )
        return self._pool

    def shutdown(self) -> None:
        """Stop and join the layer's pool workers (safe if never started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(join=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _run_tasks(self, ntasks: int, body: Callable[[int], None]) -> None:
        """One dispatch attempt on the pooled or ephemeral substrate."""
        if self.persistent:
            self.worker_pool.run(ntasks, body)
        else:
            run_ephemeral(ntasks, body)

    def _dispatch(self, ntasks: int, body: Callable[[int], None], span) -> None:
        """Dispatch with fault injection, retry and serial degradation.

        When no :class:`~repro.resilience.fault.FaultPlan` is installed
        this is exactly one :meth:`_run_tasks` call.  With a plan active,
        each attempt pokes the ``tasking.coforall`` site and a raised
        :class:`~repro.resilience.fault.InjectedFault` (from the dispatch
        sites or a task body) is handled per the active
        :class:`~repro.resilience.retry.RetryPolicy`: retried with
        accounted backoff, then — if the layer keeps failing — degraded
        to running the tasks serially inline.  Real task errors are never
        retried.
        """
        plan = _flt._active_plan
        if plan is None:
            self._run_tasks(ntasks, body)
            return
        policy = _rty.active_policy()
        attempts = 0
        while True:
            try:
                plan.poke("tasking.coforall")
                self._run_tasks(ntasks, body)
                return
            except BaseException as exc:
                if (
                    policy is None
                    or not policy.handles(exc)
                    or not getattr(exc, "retry_safe", True)
                ):
                    raise
                if attempts < policy.max_retries:
                    backoff = policy.backoff(attempts)
                    attempts += 1
                    self.retries += 1
                    self.backoff_seconds += backoff
                    if self.persistent and self._pool is not None:
                        self._pool.retries += 1
                        self._pool.backoff_seconds += backoff
                    _obs.count("retry.attempts")
                    if span is not None:
                        span.set_attrs(retries=attempts)
                    policy.pause(backoff)
                    continue
                if not policy.degrade:
                    raise
                # Graceful degradation: the tasking layer is deemed broken;
                # run the loop serially on the calling thread (no pool, no
                # dispatch-site pokes — the body's own faults still apply).
                self.degraded_dispatches += 1
                if self.persistent and self._pool is not None:
                    self._pool.degraded_dispatches += 1
                _obs.count("tasking.degraded")
                if span is not None:
                    span.set_attrs(degraded=True, retries=attempts)
                for tid in range(ntasks):
                    body(tid)
                return

    def coforall(self, ntasks: int, body: Callable[[int], None]) -> None:
        """Run ``body(tid)`` for ``tid in 0..ntasks-1`` concurrently.

        ``ntasks == 1`` runs inline (no thread involved), matching Chapel's
        serialization of singleton coforalls.  Multi-task loops dispatch to
        the persistent worker pool (or fresh threads when the layer was
        built with ``persistent=False``).  Exceptions raised by any task
        propagate to the caller after all tasks finish (first one wins).
        Under an installed fault plan, injected dispatch failures are
        retried/degraded per the active retry policy (see :meth:`_dispatch`).
        """
        if ntasks < 1:
            raise ValueError("ntasks must be >= 1")
        if ntasks == 1:
            body(0)
            return
        self.counters.add(tasks_spawned=ntasks)
        san = _san._active
        handles = None
        if san is not None:
            # Fork one sanitizer timeline per task *before* dispatch: the
            # children inherit the caller's clock (fork edge) and are
            # mutually concurrent.  The wrap binds each body to its
            # timeline on whatever thread ends up running it — including
            # the calling thread itself on the degraded serial path, where
            # the tasks are still logically concurrent.
            _san.pause("tasking.coforall")
            handles = san.fork(ntasks, f"coforall:{self.name}")
            san_inner = body

            def body(tid: int, _inner=san_inner, _h=handles) -> None:
                with san.task(_h[tid]):
                    _inner(tid)

        try:
            rec = _obs._active
            if rec is not None:
                # Trace the dispatch and each task body.  Task spans run on
                # the worker threads (their own timelines); the explicit
                # parent_id keeps the cross-thread dispatch → task edge in
                # the span tree.
                with rec.span(
                    "coforall",
                    {"ntasks": ntasks, "layer": self.name, "pooled": self.persistent},
                ) as dispatch_span:
                    inner = body

                    def body(tid: int, _inner=inner, _parent=dispatch_span) -> None:
                        with rec.span("task", {"tid": tid}, parent_id=_parent.id):
                            _inner(tid)

                    self._dispatch(ntasks, body, dispatch_span)
            else:
                self._dispatch(ntasks, body, None)
        finally:
            if san is not None:
                # Join edge: everything the children did happened before
                # anything the caller does next (coforall is a barrier).
                san.join(handles)

    def forall(self, n: int, body: Callable[[int, int, int], None]) -> None:
        """Data-parallel loop: block ``0..n-1`` over ``env.num_tasks`` tasks.

        ``body(lo, hi, tid)`` handles one contiguous block.
        """
        ntasks = min(self.env.num_tasks, max(n, 1))

        def task(tid: int) -> None:
            lo, hi = static_block(n, ntasks, tid)
            if lo < hi:
                body(lo, hi, tid)

        self.coforall(ntasks, task)

    def task_yield(self) -> None:
        """``chpl_task_yield()`` — cede the thread; counted."""
        self.counters.add(task_yields=1)
        time.sleep(0)


class QthreadsLayer(TaskingLayer):
    """Chapel's default tasking layer.

    Distinctive properties (all read by the perfmodel / lock pools):
    workers pinned to cores by default (``env.qt_affinity``), long
    spin-wait before suspending (``env.qt_spincount``), and sync variables
    that *sleep* blocked tasks.
    """

    name = "qthreads"


class FifoLayer(TaskingLayer):
    """The fifo (POSIX threads) tasking layer.

    No worker pinning, and sync variables *spin*, which is why Fig 4's
    "FIFO-sync" curve tracks the atomic pool.
    """

    name = "fifo"


def make_tasking_layer(
    env: ChapelEnv,
    counters: CostCounters | None = None,
    *,
    persistent: bool = True,
) -> TaskingLayer:
    """Instantiate the layer selected by ``env.tasking_layer``.

    ``persistent=False`` disables the worker pool (spawn-per-coforall, the
    seed behaviour) — used by the amortization benchmarks as a baseline.
    """
    if env.tasking_layer == "qthreads":
        return QthreadsLayer(env, counters, persistent=persistent)
    if env.tasking_layer == "fifo":
        return FifoLayer(env, counters, persistent=persistent)
    raise ValueError(f"unknown tasking layer {env.tasking_layer!r}")
