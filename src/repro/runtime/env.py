"""Execution-environment configuration (the paper's Table II knobs).

Collects every runtime variable the paper manipulates into one validated
dataclass.  The same object drives both *real* execution (thread counts for
the tasking layer) and *simulated* execution (the performance model reads
the layer, affinity and spincount to decide lock and interference costs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ChapelEnv", "TASKING_LAYERS", "DEFAULT_SPINCOUNT", "limit_blas_threads"]

#: Environment variables that size the BLAS/OpenMP thread pools numpy's
#: backing libraries create at import time.
_BLAS_THREAD_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


class limit_blas_threads:
    """Pin BLAS/OpenMP pool sizes in ``os.environ`` for a ``with`` block.

    The multi-process transport spawns one worker per locale; each spawned
    interpreter imports numpy fresh and sizes its BLAS pools from the
    environment *it inherits at spawn time*.  Wrapping the spawns in
    ``limit_blas_threads(1)`` gives every locale a single-threaded BLAS —
    the paper's own setting (Table II pins ``OMP_NUM_THREADS=1``) and the
    only way N locales on N cores avoid oversubscription.  The previous
    values are restored on exit, so the driver process is unaffected.
    """

    def __init__(self, nthreads: int = 1):
        if nthreads < 1:
            raise ValueError(f"nthreads must be >= 1, got {nthreads}")
        self.nthreads = nthreads
        self._saved: dict[str, str | None] = {}

    def __enter__(self) -> "limit_blas_threads":
        for var in _BLAS_THREAD_VARS:
            self._saved[var] = os.environ.get(var)
            os.environ[var] = str(self.nthreads)
        return self

    def __exit__(self, *exc) -> bool:
        for var, prev in self._saved.items():
            if prev is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = prev
        self._saved.clear()
        return False

TASKING_LAYERS: tuple[str, ...] = ("qthreads", "fifo")

#: Qthreads' default spin-wait iterations before a worker suspends; the
#: paper reduces this to 300 via ``QT_SPINCOUNT`` to tame OpenMP conflicts.
DEFAULT_SPINCOUNT = 300_000


@dataclass(frozen=True)
class ChapelEnv:
    """A Chapel runtime configuration.

    Attributes
    ----------
    num_tasks:
        Tasks created by ``coforall`` loops — the paper's user-level config
        variable, swept 1..32.
    tasking_layer:
        ``"qthreads"`` (Chapel default) or ``"fifo"`` (POSIX threads).
        Determines ``sync``-variable behaviour: Qthreads sleeps a task
        blocked on a sync var, fifo spins.
    qt_affinity:
        Qthreads worker pinning (``QT_AFFINITY``).  ``True`` is the
        Qthreads default; the paper sets ``no`` to let spin-waiting workers
        migrate away from OpenMP threads.
    qt_spincount:
        Spin-wait iterations before a Qthreads worker suspends
        (``QT_SPINCOUNT``).
    omp_num_threads:
        OpenMP threads available to OpenBLAS inside the inverse routine
        (``OMP_NUM_THREADS``); the paper pins this to 1 for Chapel runs.
    """

    num_tasks: int = 1
    tasking_layer: str = "qthreads"
    qt_affinity: bool = True
    qt_spincount: int = DEFAULT_SPINCOUNT
    omp_num_threads: int = 1

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.tasking_layer not in TASKING_LAYERS:
            raise ValueError(
                f"unknown tasking layer {self.tasking_layer!r}; choose from {TASKING_LAYERS}"
            )
        if self.qt_spincount < 0:
            raise ValueError("qt_spincount must be >= 0")
        if self.omp_num_threads < 1:
            raise ValueError("omp_num_threads must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_environ(cls, environ: dict[str, str] | None = None) -> "ChapelEnv":
        """Build from environment variables, using Chapel/Qthreads names.

        Recognized: ``CHPL_RT_NUM_THREADS_PER_LOCALE``, ``CHPL_TASKS``,
        ``QT_AFFINITY`` (``yes``/``no``), ``QT_SPINCOUNT``,
        ``OMP_NUM_THREADS``.  Unset variables keep the defaults.
        """
        env = os.environ if environ is None else environ
        kwargs: dict = {}
        if "CHPL_RT_NUM_THREADS_PER_LOCALE" in env:
            kwargs["num_tasks"] = int(env["CHPL_RT_NUM_THREADS_PER_LOCALE"])
        if "CHPL_TASKS" in env:
            kwargs["tasking_layer"] = env["CHPL_TASKS"].lower()
        if "QT_AFFINITY" in env:
            kwargs["qt_affinity"] = env["QT_AFFINITY"].lower() not in ("no", "0", "false")
        if "QT_SPINCOUNT" in env:
            kwargs["qt_spincount"] = int(env["QT_SPINCOUNT"])
        if "OMP_NUM_THREADS" in env:
            kwargs["omp_num_threads"] = int(env["OMP_NUM_THREADS"])
        return cls(**kwargs)

    def with_tasks(self, num_tasks: int) -> "ChapelEnv":
        """Copy of this env with a different task count (sweep helper)."""
        return replace(self, num_tasks=num_tasks)

    @property
    def sync_vars_sleep(self) -> bool:
        """Whether a task blocked on a ``sync`` var is descheduled (slept).

        True under Qthreads — the root cause of Fig 4's sync-variable
        collapse for short critical sections; fifo spins instead.
        """
        return self.tasking_layer == "qthreads"
