"""Chapel ``atomic`` scalar types (§II).

Chapel exposes ``atomic int``/``atomic real``/``atomic bool`` with the
usual operation set — ``read``, ``write``, ``exchange``, ``compareAndSwap``,
``testAndSet``/``clear`` (bools), ``fetchAdd``/``fetchSub`` and friends.
The paper's mutex pool is built on ``atomic bool`` (Listing 6); these
classes provide the full surface, implemented over a per-variable lock
(CPython has no lock-free primitives, but the *semantics* — atomicity and
sequential consistency per variable — hold exactly, which is what the
tests assert under real thread contention).
"""

from __future__ import annotations

import threading
import time

from repro.observe import spans as _obs
from repro.sanitize import detector as _san

__all__ = ["AtomicInt", "AtomicReal", "AtomicBool"]


class _AtomicBase:
    """Common machinery: one lock per variable."""

    __slots__ = ("_lock", "_value")

    def __init__(self, initial):
        self._lock = threading.Lock()
        self._value = initial

    def read(self):
        """Atomic load."""
        with self._lock:
            return self._value

    def write(self, value) -> None:
        """Atomic store."""
        with self._lock:
            self._value = self._coerce(value)

    def exchange(self, value):
        """Store ``value``, return the previous value."""
        with self._lock:
            old = self._value
            self._value = self._coerce(value)
            return old

    def compare_and_swap(self, expected, desired) -> bool:
        """If the value equals ``expected``, store ``desired``; returns
        whether the swap happened (Chapel ``compareAndSwap``)."""
        with self._lock:
            if self._value == expected:
                self._value = self._coerce(desired)
                return True
            return False

    @staticmethod
    def _coerce(value):
        return value


class AtomicInt(_AtomicBase):
    """``atomic int`` with fetch-and-φ arithmetic."""

    def __init__(self, initial: int = 0):
        super().__init__(int(initial))

    @staticmethod
    def _coerce(value):
        return int(value)

    def fetch_add(self, delta: int = 1) -> int:
        """Add ``delta``; return the value *before* the add."""
        with self._lock:
            old = self._value
            self._value = old + int(delta)
            return old

    def fetch_sub(self, delta: int = 1) -> int:
        """Subtract ``delta``; return the value before."""
        return self.fetch_add(-delta)

    def add(self, delta: int = 1) -> None:
        """Add without returning (Chapel ``add``)."""
        self.fetch_add(delta)

    def sub(self, delta: int = 1) -> None:
        self.fetch_add(-delta)


class AtomicReal(_AtomicBase):
    """``atomic real``."""

    def __init__(self, initial: float = 0.0):
        super().__init__(float(initial))

    @staticmethod
    def _coerce(value):
        return float(value)

    def fetch_add(self, delta: float) -> float:
        with self._lock:
            old = self._value
            self._value = old + float(delta)
            return old

    def add(self, delta: float) -> None:
        self.fetch_add(delta)


class AtomicBool(_AtomicBase):
    """``atomic bool`` with test-and-set / clear (the Listing 6 pair).

    ``counters`` (optional) makes the :meth:`spin_lock` / :meth:`spin_unlock`
    pair account exactly like :class:`~repro.runtime.locks.AtomicLockPool`:
    one ``task_yields`` per failed test-and-set, then ``lock_acquires`` and
    ``lock_contended`` on success — so Listing-6 spinlocks used directly are
    visible to the Fig-4 performance model instead of silently free.
    """

    def __init__(self, initial: bool = False, counters=None):
        super().__init__(bool(initial))
        self.counters = counters

    @staticmethod
    def _coerce(value):
        return bool(value)

    def _san_token(self) -> tuple:
        """Sanitizer identity of this spinlock (lockset membership)."""
        return ("AtomicBool", id(self), 0)

    def test_and_set(self) -> bool:
        """Set to True; return the *previous* value (True ⇒ already held)."""
        with self._lock:
            old = self._value
            self._value = True
            return old

    def clear(self) -> None:
        """Set to False (release in the Listing 6 spinlock)."""
        self.write(False)

    def spin_lock(self, counters=None) -> None:
        """Listing 6's acquire: spin on test-and-set, yielding between
        attempts (``chpl_task_yield``).

        ``counters`` overrides the instance handle for this call; with
        either in place the accounting matches ``AtomicLockPool.acquire``
        (yields per spin, acquires and contention on success).
        """
        counters = counters if counters is not None else self.counters
        _san.pause("lock.spin")
        contended = False
        while self.test_and_set():
            contended = True
            if counters is not None:
                counters.add(task_yields=1)
            time.sleep(0)  # chpl_task_yield analogue: cede the OS thread
        if counters is not None:
            counters.add(lock_acquires=1, lock_contended=int(contended))
        san = _san._active
        if san is not None:
            san.on_acquire(self._san_token(), "AtomicBool.spin_lock")
        rec = _obs._active
        if rec is not None:
            rec.count("lock.acquires")
            if contended:
                rec.count("lock.contended")

    def spin_unlock(self) -> None:
        san = _san._active
        if san is not None:
            san.on_release(self._san_token())
        self.clear()
