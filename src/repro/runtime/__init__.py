"""Chapel-runtime substrate: tasking layers, mutex pools, environment.

The paper's performance story is as much about Chapel's *runtime* as about
the algorithm: the Qthreads vs fifo tasking layers implement ``sync``
variables differently (sleep-on-contention vs spin), worker pinning and the
spin-wait interval interact badly with OpenBLAS's OpenMP threads, and the
mutex pool built on ``sync`` vs ``atomic`` variables behaves very
differently under short critical sections (Fig 4).

This package reifies those mechanisms:

* :class:`~repro.runtime.env.ChapelEnv` — the knobs the paper turns
  (``CHPL_RT_NUM_THREADS_PER_LOCALE``, ``CHPL_TASKS``, ``QT_AFFINITY``,
  ``QT_SPINCOUNT``, ``OMP_NUM_THREADS``).
* :mod:`~repro.runtime.locks` — ``sync``- and ``atomic``-based mutex pools
  with real thread-safe behaviour *and* contention instrumentation.
* :mod:`~repro.runtime.tasking` — ``coforall``/``forall`` built on real
  Python threads, parameterized by the tasking layer.
"""

from repro.runtime.accounting import CostCounters
from repro.runtime.atomics import AtomicBool, AtomicInt, AtomicReal
from repro.runtime.constructs import Barrier, TaskHandle, begin, cobegin
from repro.runtime.env import ChapelEnv
from repro.runtime.locks import AtomicLockPool, MutexPool, SyncLockPool, make_mutex_pool
from repro.runtime.pool import WorkerPool
from repro.runtime.reductions import (
    array_reduce_buffers,
    max_reduce,
    min_reduce,
    reduce_blocks,
    sum_reduce,
)
from repro.runtime.schedule import SCHEDULES, forall_scheduled
from repro.runtime.syncvar import SyncVar
from repro.runtime.tasking import FifoLayer, QthreadsLayer, TaskingLayer, make_tasking_layer

__all__ = [
    "ChapelEnv",
    "MutexPool",
    "AtomicLockPool",
    "SyncLockPool",
    "make_mutex_pool",
    "SyncVar",
    "TaskingLayer",
    "QthreadsLayer",
    "FifoLayer",
    "make_tasking_layer",
    "CostCounters",
    "reduce_blocks",
    "sum_reduce",
    "max_reduce",
    "min_reduce",
    "array_reduce_buffers",
    "forall_scheduled",
    "SCHEDULES",
    "AtomicInt",
    "AtomicReal",
    "AtomicBool",
    "begin",
    "cobegin",
    "TaskHandle",
    "Barrier",
    "WorkerPool",
]
