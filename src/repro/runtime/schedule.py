"""Loop schedules: static, dynamic and guided iteration dispatch.

Chapel's ``forall`` defaults to static blocking (what
:meth:`TaskingLayer.forall` implements), but irregular workloads — skewed
sort buckets, hub slices in MTTKRP — benefit from OpenMP-style *dynamic*
(fixed chunks claimed from a shared counter) or *guided* (geometrically
shrinking chunks) scheduling.  SPLATT's OpenMP loops use static scheduling
with nnz-balanced bounds; these schedulers exist to quantify that choice
(the scheduling ablation) and as general substrate.

All schedulers hand out ``(lo, hi)`` chunks through a thread-safe claim
counter and run the body on the tasking layer's real threads.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.observe import spans as _obs
from repro.resilience import fault as _flt
from repro.resilience import retry as _rty
from repro.sanitize import detector as _san
from repro.runtime.tasking import TaskingLayer, static_block

__all__ = ["SCHEDULES", "forall_scheduled"]

SCHEDULES: tuple[str, ...] = ("static", "dynamic", "guided")


class _ChunkDealer:
    """Thread-safe chunk dispenser over ``0..n-1``."""

    def __init__(self, n: int, ntasks: int, schedule: str, chunk: int):
        self.n = n
        self.ntasks = ntasks
        self.schedule = schedule
        self.chunk = max(1, chunk)
        self._next = 0
        self._lock = threading.Lock()

    def claim(self) -> tuple[int, int] | None:
        with self._lock:
            if self._next >= self.n:
                return None
            lo = self._next
            if self.schedule == "dynamic":
                size = self.chunk
            else:  # guided: remaining / (2 * ntasks), floored at chunk
                remaining = self.n - lo
                size = max(self.chunk, remaining // (2 * self.ntasks))
            hi = min(lo + size, self.n)
            self._next = hi
            return lo, hi


def forall_scheduled(
    layer: TaskingLayer,
    n: int,
    body: Callable[[int, int, int], None],
    *,
    schedule: str = "static",
    chunk: int = 64,
) -> None:
    """Run ``body(lo, hi, tid)`` over ``0..n-1`` under the given schedule.

    Parameters
    ----------
    schedule:
        ``"static"`` — one contiguous block per task (OpenMP static /
        Chapel forall); ``"dynamic"`` — fixed ``chunk``-sized blocks
        claimed on demand; ``"guided"`` — geometrically shrinking blocks.
    chunk:
        Chunk size for dynamic, minimum chunk for guided.

    Every index is processed exactly once regardless of schedule.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
    if n <= 0:
        return
    ntasks = min(layer.env.num_tasks, n)
    rec = _obs._active

    if schedule == "static":
        def task(tid: int) -> None:
            lo, hi = static_block(n, ntasks, tid)
            if lo < hi:
                body(lo, hi, tid)

        with _obs.span("forall_scheduled", schedule=schedule, n=n, ntasks=ntasks):
            layer.coforall(ntasks, task)
        return

    dealer = _ChunkDealer(n, ntasks, schedule, chunk)

    def task(tid: int) -> None:
        claimed_chunks = 0
        try:
            while True:
                claimed = dealer.claim()
                if claimed is None:
                    return
                claimed_chunks += 1
                # Fuzzer perturbation point: stall between claim and body so
                # chunk interleavings vary across tasks under a seed.
                _san.pause("schedule.chunk")
                # Fault site fires between claim and body, and is retried
                # *here* (per chunk) rather than at the dispatch level: a
                # claimed chunk is gone from the dealer, so dropping it to
                # an outer retry would violate exactly-once processing.
                plan = _flt._active_plan
                if plan is not None:
                    attempts = 0
                    while True:
                        try:
                            plan.poke("schedule.chunk")
                            break
                        except BaseException as exc:
                            policy = _rty.active_policy()
                            if policy is None or not policy.handles(exc):
                                raise
                            if attempts >= policy.max_retries:
                                # The claimed chunk is gone from the dealer;
                                # an outer dispatch-level retry would replay
                                # an empty dealer and silently drop these
                                # indices, so mark the fault non-retryable.
                                exc.retry_safe = False
                                raise
                            backoff = policy.backoff(attempts)
                            attempts += 1
                            if rec is not None:
                                rec.count("retry.attempts")
                            policy.pause(backoff)
                body(claimed[0], claimed[1], tid)
        finally:
            if rec is not None and claimed_chunks:
                rec.count("schedule.chunks_claimed", claimed_chunks)

    with _obs.span(
        "forall_scheduled", schedule=schedule, n=n, ntasks=ntasks, chunk=chunk
    ):
        layer.coforall(ntasks, task)
