"""Chapel-style parallel reductions and whole-array operations.

The paper calls out "built-in reductions, whole array assignments and
operations" as the Chapel features of *significant value* for the port
(§IV-E).  This module provides those idioms on top of the tasking layer:

* :func:`reduce_blocks` — the general ``op reduce`` over a blocked
  iteration space; each task reduces its block, the partials combine
  serially (Chapel's tree combine degenerates to this at task counts
  ≤ 32).
* :func:`sum_reduce`, :func:`max_reduce`, :func:`min_reduce` — the common
  instantiations over NumPy arrays, chunked so each task's work is one
  GIL-releasing vectorized call.
* :func:`array_reduce_buffers` — the "reduction on myVals" pattern from
  the paper's Listing 7: combine per-task private buffers into one output
  (used by the privatized MTTKRP path).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.runtime.tasking import TaskingLayer, static_block

__all__ = [
    "reduce_blocks",
    "sum_reduce",
    "max_reduce",
    "min_reduce",
    "array_reduce_buffers",
]

A = TypeVar("A")


def reduce_blocks(
    layer: TaskingLayer,
    n: int,
    block_fn: Callable[[int, int], A],
    combine: Callable[[A, A], A],
    identity: A,
) -> A:
    """``op reduce`` over ``0..n-1``: each task reduces one block.

    Parameters
    ----------
    layer:
        Tasking layer providing the tasks.
    n:
        Iteration-space size.
    block_fn:
        ``block_fn(lo, hi)`` → partial result for ``[lo, hi)``.
    combine:
        Associative combiner for partials.
    identity:
        Identity element of ``combine`` (returned when ``n == 0``).
    """
    if n <= 0:
        return identity
    ntasks = min(layer.env.num_tasks, n)
    partials: list[A | None] = [None] * ntasks

    def task(tid: int) -> None:
        lo, hi = static_block(n, ntasks, tid)
        if lo < hi:
            partials[tid] = block_fn(lo, hi)

    layer.coforall(ntasks, task)
    result = identity
    for p in partials:
        if p is not None:
            result = combine(result, p)
    return result


def sum_reduce(layer: TaskingLayer, array: np.ndarray) -> float:
    """``+ reduce array`` — parallel sum of a 1-D array."""
    flat = np.ascontiguousarray(array).ravel()
    return reduce_blocks(
        layer, flat.size,
        lambda lo, hi: float(flat[lo:hi].sum()),
        lambda a, b: a + b,
        0.0,
    )


def max_reduce(layer: TaskingLayer, array: np.ndarray) -> float:
    """``max reduce array``.  Raises on an empty array, like Chapel."""
    flat = np.ascontiguousarray(array).ravel()
    if flat.size == 0:
        raise ValueError("max reduce of an empty array")
    return reduce_blocks(
        layer, flat.size,
        lambda lo, hi: float(flat[lo:hi].max()),
        max,
        float("-inf"),
    )


def min_reduce(layer: TaskingLayer, array: np.ndarray) -> float:
    """``min reduce array``.  Raises on an empty array, like Chapel."""
    flat = np.ascontiguousarray(array).ravel()
    if flat.size == 0:
        raise ValueError("min reduce of an empty array")
    return reduce_blocks(
        layer, flat.size,
        lambda lo, hi: float(flat[lo:hi].min()),
        min,
        float("inf"),
    )


def array_reduce_buffers(
    layer: TaskingLayer,
    out: np.ndarray,
    buffers: Sequence[np.ndarray],
) -> np.ndarray:
    """Combine per-task private buffers into ``out`` (Listing 7's pattern).

    The reduction is itself data-parallel: the *rows* of ``out`` are
    blocked over tasks and each task sums its row range across all
    buffers, so no two tasks touch the same output element.
    """
    for buf in buffers:
        if buf.shape != out.shape:
            raise ValueError(f"buffer shape {buf.shape} != out shape {out.shape}")
    if not buffers:
        return out
    nrows = out.shape[0]

    def body(lo: int, hi: int, tid: int) -> None:
        for buf in buffers:
            out[lo:hi] += buf[lo:hi]

    layer.forall(nrows, body)
    return out
