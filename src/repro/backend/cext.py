"""The ``cext`` backend: the packed kernels as C, compiled at first use.

A line-for-line C translation of :mod:`repro.backend.kernels_ref`,
compiled with the system C compiler (``$CC``, ``cc`` or ``gcc``) into a
shared object cached under a content-hash name, and called through
:mod:`ctypes` — which releases the GIL for the duration of every foreign
call, giving this backend the same worker-pool scaling property as the
Numba one with zero Python-package dependencies beyond a toolchain.

The cache directory is ``$REPRO_CEXT_CACHE`` if set, else a per-user
directory under the system temp dir.  The shared object's name embeds a
hash of the C source, so editing the kernels invalidates stale binaries
automatically; compilation is a one-time ``backend.compile`` cost
(tens of milliseconds for this small translation unit).

If no compiler is found, or compilation/loading fails, the backend
reports unavailable (``auto`` falls back; naming it explicitly raises
:class:`~repro.backend.registry.BackendUnavailableError`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro._util import INDEX_DTYPE, VALUE_DTYPE
from repro.backend.registry import Backend, BackendUnavailableError

__all__ = ["CextBackend"]

_MAX_MODES = 64

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

#define MAX_MODES 64

static void level_ranges(const int64_t* fptr_cat, const int64_t* fptr_off,
                         int64_t nmodes, int64_t lo, int64_t hi,
                         int64_t* lo_l, int64_t* hi_l, int64_t* ptr)
{
    lo_l[0] = lo;
    hi_l[0] = hi;
    for (int64_t l = 0; l < nmodes - 1; l++) {
        lo_l[l + 1] = fptr_cat[fptr_off[l] + lo_l[l]];
        hi_l[l + 1] = fptr_cat[fptr_off[l] + hi_l[l]];
    }
    for (int64_t l = 0; l < nmodes; l++)
        ptr[l] = lo_l[l];
}

void repro_root_kernel(const int64_t* fptr_cat, const int64_t* fptr_off,
                       const int64_t* fids_cat, const int64_t* fids_off,
                       const double* values, const double* packed,
                       const int64_t* row_off, int64_t nmodes, int64_t rank,
                       int64_t lo, int64_t hi, double* out)
{
    int64_t last = nmodes - 1;
    int64_t lo_l[MAX_MODES], hi_l[MAX_MODES], ptr[MAX_MODES];
    level_ranges(fptr_cat, fptr_off, nmodes, lo, hi, lo_l, hi_l, ptr);
    double* acc = (double*)calloc((size_t)(last * rank), sizeof(double));
    for (int64_t z = lo_l[last]; z < hi_l[last]; z++) {
        const double* frow =
            packed + (row_off[last] + fids_cat[fids_off[last] + z]) * rank;
        double v = values[z];
        double* alast = acc + (last - 1) * rank;
        for (int64_t r = 0; r < rank; r++)
            alast[r] += v * frow[r];
        int64_t pos = z + 1;
        int64_t l = last - 1;
        while (pos == fptr_cat[fptr_off[l] + ptr[l] + 1]) {
            if (l == 0) {
                double* o = out + (ptr[0] - lo) * rank;
                for (int64_t r = 0; r < rank; r++) {
                    o[r] = acc[r];
                    acc[r] = 0.0;
                }
                ptr[0] += 1;
                break;
            }
            const double* f2 =
                packed + (row_off[l] + fids_cat[fids_off[l] + ptr[l]]) * rank;
            double* al = acc + l * rank;
            double* ap = acc + (l - 1) * rank;
            for (int64_t r = 0; r < rank; r++) {
                ap[r] += al[r] * f2[r];
                al[r] = 0.0;
            }
            ptr[l] += 1;
            pos = ptr[l];
            l -= 1;
        }
    }
    free(acc);
}

void repro_internal_kernel(const int64_t* fptr_cat, const int64_t* fptr_off,
                           const int64_t* fids_cat, const int64_t* fids_off,
                           const double* values, const double* packed,
                           const int64_t* row_off, int64_t nmodes,
                           int64_t rank, int64_t level,
                           int64_t lo, int64_t hi, double* out)
{
    int64_t last = nmodes - 1;
    int64_t lo_l[MAX_MODES], hi_l[MAX_MODES], ptr[MAX_MODES];
    level_ranges(fptr_cat, fptr_off, nmodes, lo, hi, lo_l, hi_l, ptr);
    double* acc = (double*)calloc((size_t)(last * rank), sizeof(double));
    double* tmp = (double*)malloc((size_t)rank * sizeof(double));
    for (int64_t z = lo_l[last]; z < hi_l[last]; z++) {
        const double* frow =
            packed + (row_off[last] + fids_cat[fids_off[last] + z]) * rank;
        double v = values[z];
        double* alast = acc + (last - 1) * rank;
        for (int64_t r = 0; r < rank; r++)
            alast[r] += v * frow[r];
        int64_t pos = z + 1;
        int64_t l = last - 1;
        while (pos == fptr_cat[fptr_off[l] + ptr[l] + 1]) {
            if (l > level) {
                const double* f2 =
                    packed + (row_off[l] + fids_cat[fids_off[l] + ptr[l]]) * rank;
                double* al = acc + l * rank;
                double* ap = acc + (l - 1) * rank;
                for (int64_t r = 0; r < rank; r++) {
                    ap[r] += al[r] * f2[r];
                    al[r] = 0.0;
                }
                ptr[l] += 1;
                pos = ptr[l];
                l -= 1;
            } else if (l == level) {
                int64_t i = ptr[level] - lo_l[level];
                double* alev = acc + level * rank;
                for (int64_t r = 0; r < rank; r++) {
                    tmp[r] = alev[r];
                    alev[r] = 0.0;
                }
                for (int64_t a = 0; a < level; a++) {
                    const double* fa =
                        packed + (row_off[a] + fids_cat[fids_off[a] + ptr[a]]) * rank;
                    for (int64_t r = 0; r < rank; r++)
                        tmp[r] *= fa[r];
                }
                double* o = out + i * rank;
                for (int64_t r = 0; r < rank; r++)
                    o[r] = tmp[r];
                ptr[level] += 1;
                pos = ptr[level];
                l -= 1;
            } else {
                if (l == 0) {
                    ptr[0] += 1;
                    break;
                }
                ptr[l] += 1;
                pos = ptr[l];
                l -= 1;
            }
        }
    }
    free(tmp);
    free(acc);
}

void repro_leaf_kernel(const int64_t* fptr_cat, const int64_t* fptr_off,
                       const int64_t* fids_cat, const int64_t* fids_off,
                       const double* values, const double* packed,
                       const int64_t* row_off, int64_t nmodes, int64_t rank,
                       int64_t lo, int64_t hi, double* out)
{
    int64_t last = nmodes - 1;
    int64_t lo_l[MAX_MODES], hi_l[MAX_MODES], ptr[MAX_MODES];
    level_ranges(fptr_cat, fptr_off, nmodes, lo, hi, lo_l, hi_l, ptr);
    double* prow = (double*)malloc((size_t)rank * sizeof(double));
    int64_t out_base = lo_l[last];
    int64_t fib = last - 1;
    for (int64_t p = lo_l[fib]; p < hi_l[fib]; p++) {
        for (int64_t r = 0; r < rank; r++)
            prow[r] = 1.0;
        for (int64_t a = 0; a < fib; a++) {
            const double* fa =
                packed + (row_off[a] + fids_cat[fids_off[a] + ptr[a]]) * rank;
            for (int64_t r = 0; r < rank; r++)
                prow[r] *= fa[r];
        }
        const double* fp =
            packed + (row_off[fib] + fids_cat[fids_off[fib] + p]) * rank;
        for (int64_t r = 0; r < rank; r++)
            prow[r] *= fp[r];
        for (int64_t z = fptr_cat[fptr_off[fib] + p];
             z < fptr_cat[fptr_off[fib] + p + 1]; z++) {
            double v = values[z];
            double* o = out + (z - out_base) * rank;
            for (int64_t r = 0; r < rank; r++)
                o[r] = v * prow[r];
        }
        int64_t pos = p + 1;
        int64_t l = fib - 1;
        while (l >= 0 && pos == fptr_cat[fptr_off[l] + ptr[l] + 1]) {
            ptr[l] += 1;
            pos = ptr[l];
            l -= 1;
        }
    }
    free(prow);
}

void repro_segment_sum(const double* x, int64_t n, const int64_t* starts,
                       int64_t nseg, int64_t rank, double* out)
{
    for (int64_t s = 0; s < nseg; s++) {
        int64_t e = (s + 1 < nseg) ? starts[s + 1] : n;
        double* o = out + s * rank;
        for (int64_t r = 0; r < rank; r++)
            o[r] = 0.0;
        for (int64_t i = starts[s]; i < e; i++) {
            const double* xi = x + i * rank;
            for (int64_t r = 0; r < rank; r++)
                o[r] += xi[r];
        }
    }
}

void repro_gather_segment_sum(const double* x, const int64_t* order,
                              int64_t n, const int64_t* starts,
                              int64_t nseg, int64_t rank, double* out)
{
    for (int64_t s = 0; s < nseg; s++) {
        int64_t e = (s + 1 < nseg) ? starts[s + 1] : n;
        double* o = out + s * rank;
        for (int64_t r = 0; r < rank; r++)
            o[r] = 0.0;
        for (int64_t i = starts[s]; i < e; i++) {
            const double* xj = x + order[i] * rank;
            for (int64_t r = 0; r < rank; r++)
                o[r] += xj[r];
        }
    }
}

void repro_ata(const double* a, int64_t n, int64_t rank, double* out)
{
    for (int64_t i = 0; i < rank; i++)
        for (int64_t j = 0; j < rank; j++)
            out[i * rank + j] = 0.0;
    for (int64_t k = 0; k < n; k++) {
        const double* ak = a + k * rank;
        for (int64_t i = 0; i < rank; i++) {
            double aki = ak[i];
            double* oi = out + i * rank;
            for (int64_t j = i; j < rank; j++)
                oi[j] += aki * ak[j];
        }
    }
    for (int64_t i = 0; i < rank; i++)
        for (int64_t j = 0; j < i; j++)
            out[i * rank + j] = out[j * rank + i];
}
"""

_I64 = ctypes.c_longlong
_PTR = ctypes.c_void_p

_SIGNATURES = {
    "repro_root_kernel": [_PTR] * 7 + [_I64] * 4 + [_PTR],
    "repro_internal_kernel": [_PTR] * 7 + [_I64] * 5 + [_PTR],
    "repro_leaf_kernel": [_PTR] * 7 + [_I64] * 4 + [_PTR],
    "repro_segment_sum": [_PTR, _I64, _PTR, _I64, _I64, _PTR],
    "repro_gather_segment_sum": [_PTR, _PTR, _I64, _PTR, _I64, _I64, _PTR],
    "repro_ata": [_PTR, _I64, _I64, _PTR],
}


def _compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_CEXT_CACHE")
    if override:
        path = override
    else:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        path = os.path.join(tempfile.gettempdir(), f"repro-cext-{uid}")
    os.makedirs(path, exist_ok=True)
    return path


def _build_library() -> ctypes.CDLL:
    cc = _compiler()
    if cc is None:
        raise BackendUnavailableError(
            "backend 'cext' is unavailable: no C compiler found (set $CC, "
            "or install cc/gcc/clang) — use --backend auto to fall back"
        )
    # the cache key covers the build recipe too, so changing compile flags
    # invalidates stale shared objects
    digest = hashlib.sha256(
        (_C_SOURCE + "|-O3 -march=native -funroll-loops").encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_backend_{digest}.so")
    if not os.path.exists(so_path):
        src_path = os.path.join(cache, f"repro_backend_{digest}.c")
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        tmp_so = so_path + f".tmp{os.getpid()}"
        # -march=native unlocks FMA/AVX on the rank-strided inner loops
        # (the .so cache is per-machine, so native codegen is safe); not
        # every toolchain accepts it, so fall back to plain -O3.
        flag_sets = (
            ["-O3", "-march=native", "-funroll-loops"],
            ["-O3"],
        )
        proc = None
        for flags in flag_sets:
            proc = subprocess.run(
                [cc, *flags, "-fPIC", "-shared", "-o", tmp_so, src_path],
                capture_output=True,
                text=True,
            )
            if proc.returncode == 0:
                break
        if proc is None or proc.returncode != 0:
            raise BackendUnavailableError(
                f"backend 'cext' is unavailable: {cc} failed "
                f"(exit {proc.returncode}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_so, so_path)  # atomic under concurrent builders
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        raise BackendUnavailableError(
            f"backend 'cext' is unavailable: failed to load {so_path}: {exc}"
        ) from exc
    for fname, argtypes in _SIGNATURES.items():
        fn = getattr(lib, fname)
        fn.argtypes = argtypes
        fn.restype = None
    return lib


def _p(arr: np.ndarray, dtype) -> int:
    """Pointer to ``arr``'s buffer, guarding the layout the C side assumes."""
    if arr.dtype != dtype or not arr.flags.c_contiguous:
        raise ValueError(
            f"cext kernel requires C-contiguous {np.dtype(dtype).name} "
            f"array, got {arr.dtype} (contiguous={arr.flags.c_contiguous})"
        )
    return arr.ctypes.data


class CextBackend(Backend):
    """ctypes-dispatched C kernels (GIL released during every call)."""

    name = "cext"
    compiled = True

    def __init__(self) -> None:
        super().__init__()
        self._lib: ctypes.CDLL | None = None

    def _prepare(self) -> None:
        self._lib = _build_library()

    def _tree_args(self, pk, packed):
        if pk.nmodes > _MAX_MODES:
            raise ValueError(
                f"cext backend supports at most {_MAX_MODES} modes, "
                f"got {pk.nmodes}"
            )
        return (
            _p(pk.fptr_cat, INDEX_DTYPE),
            _p(pk.fptr_off, INDEX_DTYPE),
            _p(pk.fids_cat, INDEX_DTYPE),
            _p(pk.fids_off, INDEX_DTYPE),
            _p(pk.values, VALUE_DTYPE),
            _p(packed, VALUE_DTYPE),
            _p(pk.row_off, INDEX_DTYPE),
            pk.nmodes,
            packed.shape[1],
        )

    def root_kernel(self, pk, packed, lo, hi, out) -> None:
        self._lib.repro_root_kernel(
            *self._tree_args(pk, packed), lo, hi, _p(out, VALUE_DTYPE))

    def internal_kernel(self, pk, packed, level, lo, hi, out) -> None:
        self._lib.repro_internal_kernel(
            *self._tree_args(pk, packed), level, lo, hi, _p(out, VALUE_DTYPE))

    def leaf_kernel(self, pk, packed, lo, hi, out) -> None:
        self._lib.repro_leaf_kernel(
            *self._tree_args(pk, packed), lo, hi, _p(out, VALUE_DTYPE))

    def segment_sum(self, x, starts, out) -> None:
        self._lib.repro_segment_sum(
            _p(x, VALUE_DTYPE), x.shape[0], _p(starts, INDEX_DTYPE),
            starts.shape[0], x.shape[1], _p(out, VALUE_DTYPE))

    def gather_segment_sum(self, x, order, starts, out) -> None:
        self._lib.repro_gather_segment_sum(
            _p(x, VALUE_DTYPE), _p(order, INDEX_DTYPE), order.shape[0],
            _p(starts, INDEX_DTYPE), starts.shape[0], x.shape[1],
            _p(out, VALUE_DTYPE))

    def ata(self, a, out) -> None:
        self._lib.repro_ata(
            _p(a, VALUE_DTYPE), a.shape[0], a.shape[1], _p(out, VALUE_DTYPE))
