"""Flat data layouts feeding the compiled kernels.

Compiled backends (Numba ``@njit``, the C extension) cannot take the
list-of-arrays CSF representation: Numba would specialize per tuple length
(one compile per tensor order) and C cannot take Python lists at all.
:class:`PackedTree` concatenates the per-level ``fptr``/``fids`` arrays
into single ``int64`` vectors with level offset tables, and
:func:`pack_factors` stacks the factor matrices (in tree-level order) into
one C-contiguous ``float64`` matrix with per-level row offsets — so every
kernel signature is a fixed set of flat arrays plus scalars, and one JIT
specialization serves tensors of any order.

A ``PackedTree`` is immutable per tree and cached in
:class:`~repro.mttkrp.scatter.MttkrpContext` under the tree's generation
token (evicted with the tree).  The packed factor matrix changes every
call (factors are updated each ALS sweep) and is rebuilt into a reused
workspace buffer — an ``O(Σ dims · R)`` copy, negligible against the
``O(nnz · R)`` kernel work it unlocks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import INDEX_DTYPE, VALUE_DTYPE
from repro.csf.tree import CsfTensor

__all__ = ["PackedTree", "pack_factors"]


class PackedTree:
    """One CSF tree flattened for compiled-kernel consumption.

    Attributes
    ----------
    fptr_cat / fptr_off:
        Concatenated ``fptr`` levels ``0..nmodes-2``; level ``l`` starts at
        ``fptr_off[l]`` (each level holds ``nfibs[l] + 1`` entries).
    fids_cat / fids_off:
        Concatenated ``fids`` levels ``0..nmodes-1``; node ``i`` of level
        ``l`` is ``fids_cat[fids_off[l] + i]``.
    values:
        The tree's nonzero values (a reference, already ``float64``).
    row_off:
        ``row_off[l]`` is the first row of level ``l``'s factor inside the
        packed factor matrix (levels ordered by ``dim_perm``).
    packed_rows:
        Total rows of the packed factor matrix (``Σ dims``).
    """

    __slots__ = ("nmodes", "fptr_cat", "fptr_off", "fids_cat", "fids_off",
                 "values", "row_off", "packed_rows", "_level_dims")

    def __init__(self, tree: CsfTensor):
        nmodes = tree.nmodes
        self.nmodes = nmodes
        self.fptr_cat = (
            np.concatenate(tree.fptr) if tree.fptr
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        off = np.zeros(max(nmodes - 1, 1), dtype=INDEX_DTYPE)
        for l in range(1, nmodes - 1):
            off[l] = off[l - 1] + tree.fptr[l - 1].shape[0]
        self.fptr_off = off
        self.fids_cat = np.concatenate(tree.fids)
        foff = np.zeros(nmodes, dtype=INDEX_DTYPE)
        for l in range(1, nmodes):
            foff[l] = foff[l - 1] + tree.fids[l - 1].shape[0]
        self.fids_off = foff
        self.values = tree.values
        self._level_dims = tuple(tree.dims[m] for m in tree.dim_perm)
        row_off = np.zeros(nmodes, dtype=INDEX_DTYPE)
        for l in range(1, nmodes):
            row_off[l] = row_off[l - 1] + self._level_dims[l - 1]
        self.row_off = row_off
        self.packed_rows = int(sum(self._level_dims))

    def nbytes(self) -> int:
        """Index-array storage held by this packed view (values excluded —
        they alias the tree's)."""
        return (self.fptr_cat.nbytes + self.fptr_off.nbytes
                + self.fids_cat.nbytes + self.fids_off.nbytes
                + self.row_off.nbytes)


def pack_factors(
    pk: PackedTree,
    tree: CsfTensor,
    factors: Sequence[np.ndarray],
    ws=None,
) -> np.ndarray:
    """Stack ``factors`` (tree-level order) into one contiguous matrix.

    ``ws`` is an optional :class:`~repro.mttkrp.scatter.Workspace`; with
    it, the packed matrix is a reused arena buffer.  Factors must already
    be canonical (C-contiguous ``float64`` — enforced at the dispatch
    boundary by :func:`repro.backend.canonical_factors`), so each level is
    a plain block copy.
    """
    rank = factors[0].shape[1]
    shape = (pk.packed_rows, rank)
    if ws is None:
        packed = np.empty(shape, dtype=VALUE_DTYPE)
    else:
        packed = ws.buf(("backend", "packed_factors"), shape, VALUE_DTYPE)
    for l in range(pk.nmodes):
        start = int(pk.row_off[l])
        packed[start:start + pk._level_dims[l]] = factors[tree.dim_perm[l]]
    return packed
