"""The ``numba`` JIT backend: ``@njit(nogil=True, cache=True)`` kernels.

Compiles the exact functions of :mod:`repro.backend.kernels_ref` — no
second copy of the algorithms exists.  ``nogil=True`` releases the GIL for
the kernel's duration, so per-task kernel calls dispatched by the worker
pool run on distinct cores concurrently; ``cache=True`` persists the
compiled machine code across processes, so the ``backend.compile`` cost is
paid once per machine/kernel-version rather than once per run.

``parallel=True`` is deliberately **not** used on the range kernels: they
execute as per-task bodies under :class:`~repro.runtime.pool.WorkerPool`
(one task per core already), so a nested ``prange`` would oversubscribe
the machine and perturb the paper's task-count experiments.  Outer
parallelism stays where the paper puts it — in the tasking layer.

This module imports :mod:`numba` at module level and must only be imported
from the registered factory (lazily), keeping ``numba`` a strictly
optional extra: ``import repro.backend`` never touches it.
"""

from __future__ import annotations

import numba

from repro.backend import kernels_ref as _ref
from repro.backend.registry import Backend

__all__ = ["NumbaBackend"]

_JIT = numba.njit(nogil=True, cache=True)

_root = _JIT(_ref.root_kernel)
_internal = _JIT(_ref.internal_kernel)
_leaf = _JIT(_ref.leaf_kernel)
_segment_sum = _JIT(_ref.segment_sum_kernel)
_gather_segment_sum = _JIT(_ref.gather_segment_sum_kernel)
_ata = _JIT(_ref.ata_kernel)


class NumbaBackend(Backend):
    """GIL-releasing JIT kernels over the packed CSF layout."""

    name = "numba"
    compiled = True

    def _prepare(self) -> None:
        # Compilation itself happens on the first call of each kernel; the
        # registry's warm-up check (run right after this, still inside the
        # backend.compile span) triggers all six with the only signatures
        # ever used — flat int64/float64 arrays, so one specialization
        # covers every tensor order and rank.
        pass

    def root_kernel(self, pk, packed, lo, hi, out) -> None:
        _root(pk.fptr_cat, pk.fptr_off, pk.fids_cat, pk.fids_off, pk.values,
              packed, pk.row_off, pk.nmodes, lo, hi, out)

    def internal_kernel(self, pk, packed, level, lo, hi, out) -> None:
        _internal(pk.fptr_cat, pk.fptr_off, pk.fids_cat, pk.fids_off, pk.values,
                  packed, pk.row_off, pk.nmodes, level, lo, hi, out)

    def leaf_kernel(self, pk, packed, lo, hi, out) -> None:
        _leaf(pk.fptr_cat, pk.fptr_off, pk.fids_cat, pk.fids_off, pk.values,
              packed, pk.row_off, pk.nmodes, lo, hi, out)

    def segment_sum(self, x, starts, out) -> None:
        _segment_sum(x, starts, out)

    def gather_segment_sum(self, x, order, starts, out) -> None:
        _gather_segment_sum(x, order, starts, out)

    def ata(self, a, out) -> None:
        _ata(a, out)
