"""Backend registry, selection and per-call dispatch.

A **backend** supplies compiled implementations of the numerical hot spots
— the three CSF MTTKRP range kernels, the segment-sum scatter primitives
and symmetric AᵀA — behind a uniform interface, mirroring how Genten
(Phipps & Kolda) ports the same sparse kernels across execution spaces
behind one dispatch layer.  Registered backends:

``numpy``
    The reference: the existing vectorized NumPy/SciPy code paths run
    untouched.  Always available.
``numba``
    ``@njit(nogil=True, cache=True)`` compilations of
    :mod:`repro.backend.kernels_ref`.  Available when the optional
    ``numba`` extra is installed (``pip install 'repro[numba]'``).
``cext``
    The same kernels as C, compiled on first use with the system C
    compiler and loaded through :mod:`ctypes` (which releases the GIL for
    the call's duration).  Available when a C compiler is present.

Selection precedence (docs/BACKENDS.md): an explicit API argument beats
the ``REPRO_BACKEND`` environment variable beats the library default
(``numpy`` — the CLI passes ``--backend``, default ``auto``, explicitly).
``auto`` picks the first available of ``numba`` > ``cext`` > ``numpy`` and
*silently* falls back; naming an unavailable backend explicitly raises
:class:`BackendUnavailableError` with an actionable message instead.
``REPRO_BACKEND_DISABLE`` (comma-separated names) masks backends for
deterministic fallback testing.

Because compiled kernels release the GIL, running them under the existing
:class:`~repro.runtime.pool.WorkerPool` turns the simulated ``coforall``
parallelism into real wall-clock multicore scaling — the pool's dispatch
protocol is unchanged; only the task bodies stop serializing on the
interpreter.

Compile cost is accounted separately: every backend's one-time preparation
runs under a ``backend.compile`` observe span (plus a
``backend.compile_seconds`` counter), so traces and benchmarks never
attribute JIT warm-up to the kernels themselves.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Sequence

import numpy as np

from repro._util import VALUE_DTYPE
from repro.backend.packing import PackedTree, pack_factors
from repro.observe import spans as _obs

__all__ = [
    "Backend",
    "BackendCall",
    "BackendUnavailableError",
    "available_backends",
    "canonical_factors",
    "get_backend",
    "prepare_call",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

#: ``auto`` preference order, best first.
AUTO_ORDER: tuple[str, ...] = ("numba", "cext", "numpy")

#: Environment variable naming the default backend (overridden by an
#: explicit API argument; ``auto`` allowed).
ENV_BACKEND = "REPRO_BACKEND"

#: Comma-separated backend names to treat as unavailable (test hook for
#: exercising fallback deterministically).
ENV_DISABLE = "REPRO_BACKEND_DISABLE"


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot be used on this system."""


class Backend:
    """One execution backend: compiled kernels plus scatter/linalg primitives.

    Subclasses set :attr:`compiled` and implement :meth:`_prepare` plus the
    kernel entry points.  The ``numpy`` reference backend keeps
    ``compiled=False``: dispatch sites seeing it run the existing
    vectorized code paths unchanged, which *is* the reference
    implementation.
    """

    #: Registry name (``"numpy"``, ``"numba"``, ``"cext"``).
    name: str = "abstract"
    #: True when the packed-kernel path should replace the NumPy tree walk.
    compiled: bool = False

    def __init__(self) -> None:
        self._ready = not self.compiled
        #: One-time preparation cost in seconds (0.0 for ``numpy``).
        self.compile_seconds = 0.0

    # ------------------------------------------------------------------
    def ensure_ready(self) -> None:
        """Compile/load the kernels once, under a ``backend.compile`` span.

        Idempotent and cheap after the first call.  Preparation ends with a
        smoke check on a tiny synthetic tree (:func:`_warmup_check`), so a
        miscompiled backend fails loudly here rather than producing wrong
        numbers later.
        """
        if self._ready:
            return
        t0 = time.perf_counter()
        with _obs.span("backend.compile", backend=self.name):
            self._prepare()
            _warmup_check(self)
        self.compile_seconds = time.perf_counter() - t0
        _obs.count("backend.compile")
        _obs.count("backend.compile_seconds", self.compile_seconds)
        self._ready = True

    def _prepare(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    # -- packed MTTKRP range kernels (compiled backends only) ----------
    def root_kernel(self, pk: PackedTree, packed, lo: int, hi: int, out) -> None:
        raise NotImplementedError

    def internal_kernel(self, pk: PackedTree, packed, level: int,
                        lo: int, hi: int, out) -> None:
        raise NotImplementedError

    def leaf_kernel(self, pk: PackedTree, packed, lo: int, hi: int, out) -> None:
        raise NotImplementedError

    # -- scatter / linalg primitives (compiled backends only) ----------
    def segment_sum(self, x, starts, out) -> None:
        raise NotImplementedError

    def gather_segment_sum(self, x, order, starts, out) -> None:
        raise NotImplementedError

    def ata(self, a, out) -> None:
        raise NotImplementedError


class BackendCall:
    """One MTTKRP invocation's backend state: packed tree + packed factors.

    Built by :func:`prepare_call` on the dispatching thread; the per-task
    ``*_contribs`` methods then run the GIL-releasing kernels from pool
    workers, writing into per-task workspace buffers.
    """

    __slots__ = ("backend", "pk", "packed")

    def __init__(self, backend: Backend, pk: PackedTree, packed: np.ndarray):
        self.backend = backend
        self.pk = pk
        self.packed = packed

    def _out(self, nrows: int, ws, tag):
        rank = self.packed.shape[1]
        if ws is None:
            return np.empty((nrows, rank), dtype=VALUE_DTYPE)
        return ws.buf(tag, (nrows, rank), VALUE_DTYPE)

    def root_w(self, lo: int, hi: int, ws=None) -> np.ndarray:
        """Per-root-node subtree products for slices ``[lo, hi)``."""
        out = self._out(hi - lo, ws, ("backend", "root"))
        self.backend.root_kernel(self.pk, self.packed, lo, hi, out)
        return out

    def internal_contribs(self, level: int, lo: int, hi: int,
                          nnodes: int, ws=None) -> np.ndarray:
        """Per-``level``-node contributions under root slices ``[lo, hi)``."""
        out = self._out(nnodes, ws, ("backend", "internal", level))
        self.backend.internal_kernel(self.pk, self.packed, level, lo, hi, out)
        return out

    def leaf_contribs(self, lo: int, hi: int, nleaves: int, ws=None) -> np.ndarray:
        """Per-nonzero contributions under root slices ``[lo, hi)``."""
        out = self._out(nleaves, ws, ("backend", "leaf"))
        self.backend.leaf_kernel(self.pk, self.packed, lo, hi, out)
        return out


def prepare_call(backend: Backend, ctx, tree, factors: Sequence[np.ndarray]) -> BackendCall:
    """Build the :class:`BackendCall` for one MTTKRP on ``tree``.

    The packed tree comes from ``ctx``'s generation-keyed cache (built once
    per tree); the packed factor matrix is refreshed into a reused arena
    buffer every call.  ``factors`` must already be canonical.
    """
    backend.ensure_ready()
    pk = ctx.packed_tree(tree)
    packed = pack_factors(pk, tree, factors, ctx.pack_workspace(tree, backend.name))
    return BackendCall(backend, pk, packed)


def canonical_factors(factors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Coerce factor matrices to the backend-boundary canonical form.

    Every backend receives C-contiguous ``float64`` matrices: float32 or
    Fortran-ordered/non-contiguous inputs are copied (value-preserving —
    ``float32 → float64`` is exact, so results are identical to NumPy's
    implicit upcasting), and anything non-2-D is rejected.  Applied
    *identically for all backends* at the dispatch boundary, so backend
    choice can never change how an exotic input is interpreted.
    """
    canon = []
    for m, f in enumerate(factors):
        arr = np.asarray(f)
        if arr.ndim != 2:
            raise ValueError(f"factor {m} must be 2-D, got shape {arr.shape}")
        canon.append(np.ascontiguousarray(arr, dtype=VALUE_DTYPE))
    return canon


# ======================================================================
# registry
# ======================================================================
_FACTORIES: dict[str, Callable[[], Backend]] = {}
_INSTANCES: dict[str, Backend] = {}
_PROBED_UNAVAILABLE: dict[str, str] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register ``factory`` under ``name``.

    The factory is called lazily (imports of optional dependencies happen
    inside it) and must raise :class:`BackendUnavailableError` when the
    backend cannot be used on this system.
    """
    _FACTORIES[name] = factory


def registered_backends() -> list[str]:
    """Every registered backend name (available or not), ``auto`` order
    first, extras after."""
    ordered = [n for n in AUTO_ORDER if n in _FACTORIES]
    return ordered + sorted(set(_FACTORIES) - set(ordered))


def _disabled() -> set[str]:
    raw = os.environ.get(ENV_DISABLE, "")
    return {part.strip() for part in raw.split(",") if part.strip()}


def get_backend(name: str) -> Backend:
    """The backend instance for ``name``; raises
    :class:`BackendUnavailableError` when it cannot be provided."""
    if name in _disabled():
        raise BackendUnavailableError(
            f"backend {name!r} is disabled via {ENV_DISABLE}"
        )
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    factory = _FACTORIES.get(name)
    if factory is None:
        raise BackendUnavailableError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(registered_backends())}"
        )
    cached_reason = _PROBED_UNAVAILABLE.get(name)
    if cached_reason is not None:
        raise BackendUnavailableError(cached_reason)
    try:
        inst = factory()
    except BackendUnavailableError as exc:
        _PROBED_UNAVAILABLE[name] = str(exc)
        raise
    _INSTANCES[name] = inst
    return inst


def available_backends() -> list[str]:
    """Names of backends usable right now, in ``auto`` preference order.

    Probes each factory once per process (failures are cached), honoring
    ``REPRO_BACKEND_DISABLE``.  Always contains at least ``"numpy"``.
    """
    usable = []
    for name in registered_backends():
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        usable.append(name)
    return usable


def resolve_backend(choice: "str | Backend | None" = None) -> Backend:
    """Resolve a backend selection to an instance.

    ``choice`` may be a :class:`Backend` (returned as-is), a name,
    ``"auto"``, or ``None``.  ``None`` defers to ``$REPRO_BACKEND``, then
    to the library default ``numpy`` (the CLI layer passes its ``--backend``
    value — default ``auto`` — explicitly).  ``auto`` silently falls back
    through :data:`AUTO_ORDER`; a concrete name that is unavailable raises
    :class:`BackendUnavailableError`.
    """
    if isinstance(choice, Backend):
        return choice
    if choice is None:
        choice = os.environ.get(ENV_BACKEND) or "numpy"
    if choice == "auto":
        last_exc: BackendUnavailableError | None = None
        for name in AUTO_ORDER:
            try:
                return get_backend(name)
            except BackendUnavailableError as exc:
                last_exc = exc
        raise BackendUnavailableError(
            f"no backend available (tried {', '.join(AUTO_ORDER)}): {last_exc}"
        )  # pragma: no cover - numpy is always registered
    return get_backend(choice)


# ======================================================================
# warm-up smoke check
# ======================================================================
def _warmup_check(backend: Backend) -> None:
    """Exercise every kernel of a freshly prepared backend on a tiny
    order-3 tree and compare against directly computed expectations.

    Doubles as the Numba warm-up: the flat-array signatures mean each
    kernel compiles exactly once here and is then hot for tensors of any
    order.  A mismatch means the backend miscompiled — better an exception
    at ``ensure_ready`` than silently wrong factor matrices.
    """
    from repro.csf.tree import CsfTensor

    # 1 root slice -> 1 fiber -> 2 leaves; dims (in tree order) 1, 1, 2.
    tree = CsfTensor(
        dims=(1, 1, 2),
        dim_perm=(0, 1, 2),
        fptr=[np.array([0, 1], dtype=np.int64), np.array([0, 2], dtype=np.int64)],
        fids=[np.array([0], dtype=np.int64), np.array([0], dtype=np.int64),
              np.array([0, 1], dtype=np.int64)],
        values=np.array([1.5, -2.0]),
    )
    pk = PackedTree(tree)
    rng = np.random.default_rng(7)
    factors = canonical_factors([rng.random((d, 3)) for d in tree.dims])
    packed = pack_factors(pk, tree, factors)
    f0, f1, f2 = factors

    out = np.empty((1, 3))
    backend.root_kernel(pk, packed, 0, 1, out)
    expect_root = f1[0] * (1.5 * f2[0] - 2.0 * f2[1])
    _expect(backend, "root_kernel", out[0], expect_root)

    backend.internal_kernel(pk, packed, 1, 0, 1, out)
    _expect(backend, "internal_kernel", out[0], f0[0] * (1.5 * f2[0] - 2.0 * f2[1]))

    out2 = np.empty((2, 3))
    backend.leaf_kernel(pk, packed, 0, 1, out2)
    prow = f0[0] * f1[0]
    _expect(backend, "leaf_kernel", out2, np.stack([1.5 * prow, -2.0 * prow]))

    x = rng.random((5, 3))
    starts = np.array([0, 2, 2], dtype=np.int64)
    seg = np.empty((3, 3))
    backend.segment_sum(x, starts, seg)
    _expect(backend, "segment_sum",
            seg, np.stack([x[0] + x[1], np.zeros(3), x[2] + x[3] + x[4]]))

    order = np.array([4, 3, 2, 1, 0], dtype=np.int64)
    backend.gather_segment_sum(x, order, starts, seg)
    _expect(backend, "gather_segment_sum",
            seg, np.stack([x[4] + x[3], np.zeros(3), x[2] + x[1] + x[0]]))

    g = np.empty((3, 3))
    backend.ata(x, g)
    _expect(backend, "ata", g, x.T @ x)


def _expect(backend: Backend, kernel: str, got, want) -> None:
    if not np.allclose(got, want, rtol=1e-12, atol=1e-12):
        raise BackendUnavailableError(
            f"backend {backend.name!r} failed its {kernel} self-check "
            f"(got {np.asarray(got).ravel()}, want {np.asarray(want).ravel()}); "
            "refusing to use a miscompiled backend"
        )
