"""The ``numpy`` reference backend.

``compiled`` stays ``False``: dispatch sites seeing this backend run the
existing vectorized NumPy/SciPy code paths (:mod:`repro.mttkrp.csf_kernels`,
:class:`repro.mttkrp.scatter.RowScatter`, BLAS ``dsyrk``), which *are* the
reference implementation — there is no second copy of them here.  The
scatter/linalg primitives are still provided (NumPy-implemented, same
segment semantics as :mod:`repro.backend.kernels_ref`) so tests can compare
any backend's primitive against this one directly.
"""

from __future__ import annotations

import numpy as np

from repro.backend.registry import Backend, register_backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Always-available reference backend (the existing NumPy paths)."""

    name = "numpy"
    compiled = False

    def segment_sum(self, x, starts, out) -> None:
        if starts.shape[0] == 0:
            return
        n = x.shape[0]
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = n
        if n == 0 or starts[-1] >= n:
            # reduceat cannot take a start index == n (empty tail segment);
            # rare enough that a per-segment loop is fine.
            for s in range(starts.shape[0]):
                out[s] = x[starts[s]:ends[s]].sum(axis=0)
            return
        np.add.reduceat(x, starts, axis=0, out=out)
        # reduceat treats an empty segment (starts[s] == starts[s+1]) as
        # x[starts[s]] instead of 0 — patch those to the kernel contract.
        empty = ends == starts
        if empty.any():
            out[empty] = 0.0

    def gather_segment_sum(self, x, order, starts, out) -> None:
        self.segment_sum(x[order], starts, out)

    def ata(self, a, out) -> None:
        np.matmul(a.T, a, out=out)


register_backend("numpy", NumpyBackend)
