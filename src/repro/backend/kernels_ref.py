"""The packed-kernel algorithms, written once in a Numba-compilable subset.

These functions are the *single source of truth* for the compiled MTTKRP
range kernels, the segment-sum scatter primitives and symmetric AᵀA.  The
``numba`` backend compiles **these exact functions** with ``@njit`` (see
:mod:`repro.backend.numba_jit`); the ``cext`` backend is a line-for-line C
translation of them (:mod:`repro.backend.cext`).  Because the Python text
here is what Numba compiles, the unit tests that run these functions
uninterpreted (slow, but exact) certify the algorithm the JIT will execute
even on machines where Numba is not installed.

Data layout (see :mod:`repro.backend.packing`): the CSF tree arrives as
flat concatenated ``int64`` arrays (``fptr_cat``/``fptr_off``,
``fids_cat``/``fids_off``), the factor matrices as one packed C-contiguous
``float64`` matrix with per-level row offsets (``row_off``).  Flat arrays
keep the compiled signatures *order-independent*: one JIT specialization
covers tensors of any order, so warm-up compiles each kernel exactly once.

Algorithm: a single linear scan over the task's leaves with one running
accumulator per tree level and an upward "cascade" that fires whenever a
node's child range is exhausted.  This fuses the multi-pass NumPy
up/downward products (gather → multiply → segment-reduce per level) into
one pass over ``nnz`` with O(nmodes·R) state — the layout-aware compiled
formulation the ALTO line of work identifies as where the wins live.  The
cascade is well-defined because CSF guarantees no zero-child nodes
(``CsfTensor._validate`` rejects non-strictly-increasing ``fptr``).

Mathematically each kernel matches its vectorized counterpart in
:mod:`repro.mttkrp.csf_kernels` exactly (same products, same
subtree-before-sibling accumulation order up to summation rounding), so
results agree to ``allclose`` at 1e-10 — asserted across the whole
equivalence suite.

Every kernel writes a caller-allocated ``out`` and returns ``None``; no
kernel allocates per-``nnz`` temporaries, so per-task workspace arenas keep
the steady state allocation-free.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "root_kernel",
    "internal_kernel",
    "leaf_kernel",
    "segment_sum_kernel",
    "gather_segment_sum_kernel",
    "ata_kernel",
]


def root_kernel(fptr_cat, fptr_off, fids_cat, fids_off, values,
                packed, row_off, nmodes, lo, hi, out):
    """Root-mode subtree products for root slices ``[lo, hi)``.

    ``out[i]`` receives the full upward product of root node ``lo + i``
    (all levels below the root multiplied in; the root factor excluded),
    matching ``_upward_product(..., stop_level=0)``.
    """
    rank = packed.shape[1]
    last = nmodes - 1
    lo_l = np.empty(nmodes, np.int64)
    hi_l = np.empty(nmodes, np.int64)
    lo_l[0] = lo
    hi_l[0] = hi
    for l in range(last):
        lo_l[l + 1] = fptr_cat[fptr_off[l] + lo_l[l]]
        hi_l[l + 1] = fptr_cat[fptr_off[l] + hi_l[l]]
    acc = np.zeros((last, rank), np.float64)
    ptr = np.empty(nmodes, np.int64)
    for l in range(nmodes):
        ptr[l] = lo_l[l]
    for z in range(lo_l[last], hi_l[last]):
        fr = row_off[last] + fids_cat[fids_off[last] + z]
        v = values[z]
        for r in range(rank):
            acc[last - 1, r] += v * packed[fr, r]
        # cascade: close every node whose child range just ended
        pos = z + 1
        l = last - 1
        while pos == fptr_cat[fptr_off[l] + ptr[l] + 1]:
            if l == 0:
                i = ptr[0] - lo
                for r in range(rank):
                    out[i, r] = acc[0, r]
                    acc[0, r] = 0.0
                ptr[0] += 1
                break
            fr2 = row_off[l] + fids_cat[fids_off[l] + ptr[l]]
            for r in range(rank):
                acc[l - 1, r] += acc[l, r] * packed[fr2, r]
                acc[l, r] = 0.0
            ptr[l] += 1
            pos = ptr[l]
            l -= 1


def internal_kernel(fptr_cat, fptr_off, fids_cat, fids_off, values,
                    packed, row_off, nmodes, level, lo, hi, out):
    """Internal-mode contributions at tree ``level`` (0 < level < nmodes-1).

    ``out`` has one row per ``level`` node under root slices ``[lo, hi)``:
    the upward product of the node's subtree times the downward product of
    its ancestors' factor rows, the ``level`` factor itself excluded —
    matching ``internal_range_vectorized``'s ``d * u``.
    """
    rank = packed.shape[1]
    last = nmodes - 1
    lo_l = np.empty(nmodes, np.int64)
    hi_l = np.empty(nmodes, np.int64)
    lo_l[0] = lo
    hi_l[0] = hi
    for l in range(last):
        lo_l[l + 1] = fptr_cat[fptr_off[l] + lo_l[l]]
        hi_l[l + 1] = fptr_cat[fptr_off[l] + hi_l[l]]
    acc = np.zeros((last, rank), np.float64)
    tmp = np.empty(rank, np.float64)
    ptr = np.empty(nmodes, np.int64)
    for l in range(nmodes):
        ptr[l] = lo_l[l]
    for z in range(lo_l[last], hi_l[last]):
        fr = row_off[last] + fids_cat[fids_off[last] + z]
        v = values[z]
        for r in range(rank):
            acc[last - 1, r] += v * packed[fr, r]
        pos = z + 1
        l = last - 1
        while pos == fptr_cat[fptr_off[l] + ptr[l] + 1]:
            if l > level:
                fr2 = row_off[l] + fids_cat[fids_off[l] + ptr[l]]
                for r in range(rank):
                    acc[l - 1, r] += acc[l, r] * packed[fr2, r]
                    acc[l, r] = 0.0
                ptr[l] += 1
                pos = ptr[l]
                l -= 1
            elif l == level:
                # emit: subtree sum times the ancestor rows (levels < level)
                i = ptr[level] - lo_l[level]
                for r in range(rank):
                    tmp[r] = acc[level, r]
                    acc[level, r] = 0.0
                for a in range(level):
                    fra = row_off[a] + fids_cat[fids_off[a] + ptr[a]]
                    for r in range(rank):
                        tmp[r] *= packed[fra, r]
                for r in range(rank):
                    out[i, r] = tmp[r]
                ptr[level] += 1
                pos = ptr[level]
                l -= 1
            else:
                # above the output level: structural advance only
                if l == 0:
                    ptr[0] += 1
                    break
                ptr[l] += 1
                pos = ptr[l]
                l -= 1


def leaf_kernel(fptr_cat, fptr_off, fids_cat, fids_off, values,
                packed, row_off, nmodes, lo, hi, out):
    """Leaf-mode contributions for root slices ``[lo, hi)``.

    ``out`` has one row per leaf (nonzero): the nonzero value times the
    product of every ancestor level's factor row, the leaf factor excluded
    — matching ``leaf_range_vectorized``'s ``vals[:, None] * d``.
    """
    rank = packed.shape[1]
    last = nmodes - 1
    lo_l = np.empty(nmodes, np.int64)
    hi_l = np.empty(nmodes, np.int64)
    lo_l[0] = lo
    hi_l[0] = hi
    for l in range(last):
        lo_l[l + 1] = fptr_cat[fptr_off[l] + lo_l[l]]
        hi_l[l + 1] = fptr_cat[fptr_off[l] + hi_l[l]]
    ptr = np.empty(nmodes, np.int64)
    for l in range(nmodes):
        ptr[l] = lo_l[l]
    prow = np.empty(rank, np.float64)
    out_base = lo_l[last]
    fib = last - 1  # the leaves' parent level ("fiber" level)
    for p in range(lo_l[fib], hi_l[fib]):
        for r in range(rank):
            prow[r] = 1.0
        for a in range(fib):
            fra = row_off[a] + fids_cat[fids_off[a] + ptr[a]]
            for r in range(rank):
                prow[r] *= packed[fra, r]
        frp = row_off[fib] + fids_cat[fids_off[fib] + p]
        for r in range(rank):
            prow[r] *= packed[frp, r]
        for z in range(fptr_cat[fptr_off[fib] + p],
                       fptr_cat[fptr_off[fib] + p + 1]):
            i = z - out_base
            v = values[z]
            for r in range(rank):
                out[i, r] = v * prow[r]
        # advance ancestor pointers past completed nodes
        pos = p + 1
        l = fib - 1
        while l >= 0 and pos == fptr_cat[fptr_off[l] + ptr[l] + 1]:
            ptr[l] += 1
            pos = ptr[l]
            l -= 1


def segment_sum_kernel(x, starts, out):
    """``out[s] = sum of x[starts[s]:starts[s+1]]`` rows (last segment to end).

    Within-segment accumulation is sequential in input order — the same
    order as :class:`repro.mttkrp.scatter.SegmentSum`'s CSR matvec, so the
    two agree to rounding.
    """
    nseg = starts.shape[0]
    n = x.shape[0]
    rank = x.shape[1]
    for s in range(nseg):
        e = starts[s + 1] if s + 1 < nseg else n
        for r in range(rank):
            out[s, r] = 0.0
        for i in range(starts[s], e):
            for r in range(rank):
                out[s, r] += x[i, r]


def gather_segment_sum_kernel(x, order, starts, out):
    """Fused ``x[order]`` gather + segment sum (RowScatter's reduce).

    Replaces the NumPy path's materialized sort gather followed by
    ``reduceat`` with one pass; per-segment sums are sequential in
    ``order`` order (the stable sort order), matching the gather+reduceat
    result to rounding.
    """
    nseg = starts.shape[0]
    n = order.shape[0]
    rank = x.shape[1]
    for s in range(nseg):
        e = starts[s + 1] if s + 1 < nseg else n
        for r in range(rank):
            out[s, r] = 0.0
        for i in range(starts[s], e):
            j = order[i]
            for r in range(rank):
                out[s, r] += x[j, r]


def ata_kernel(a, out):
    """Symmetric ``AᵀA`` of a C-contiguous ``(n, R)`` matrix into ``(R, R)``.

    Streams ``a`` row-wise, updating the upper triangle, then mirrors —
    the same triangle BLAS ``dsyrk`` fills in :func:`repro.linalg.ata.gram`.
    """
    n = a.shape[0]
    rank = a.shape[1]
    for i in range(rank):
        for j in range(rank):
            out[i, j] = 0.0
    for k in range(n):
        for i in range(rank):
            aki = a[k, i]
            for j in range(i, rank):
                out[i, j] += aki * a[k, j]
    for i in range(rank):
        for j in range(i):
            out[i, j] = out[j, i]
