"""Multi-backend compiled kernel dispatch (``numpy`` / ``numba`` / ``cext``).

Importing this package registers all three backends but imports none of
the optional machinery: ``numba`` and the C toolchain are only touched
when their backend is first requested.  On a system with neither, the
package still imports cleanly and registers the always-available ``numpy``
reference backend — ``--backend auto`` falls back to it silently, while
naming an unavailable backend explicitly raises
:class:`BackendUnavailableError` with an actionable message.

See :mod:`repro.backend.registry` for selection semantics and
``docs/BACKENDS.md`` for the user-facing guide.
"""

from __future__ import annotations

from repro.backend.registry import (
    AUTO_ORDER,
    Backend,
    BackendCall,
    BackendUnavailableError,
    ENV_BACKEND,
    ENV_DISABLE,
    available_backends,
    canonical_factors,
    get_backend,
    prepare_call,
    register_backend,
    registered_backends,
    resolve_backend,
)

# The reference backend registers itself unconditionally on import.
from repro.backend import numpy_ref as _numpy_ref  # noqa: F401

__all__ = [
    "AUTO_ORDER",
    "Backend",
    "BackendCall",
    "BackendUnavailableError",
    "ENV_BACKEND",
    "ENV_DISABLE",
    "available_backends",
    "canonical_factors",
    "get_backend",
    "prepare_call",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]


def _numba_factory() -> Backend:
    try:
        from repro.backend.numba_jit import NumbaBackend
    except ImportError as exc:
        raise BackendUnavailableError(
            "backend 'numba' is unavailable: numba is not installed — "
            "install the optional extra (pip install 'repro[numba]') "
            "or use --backend auto to fall back"
        ) from exc
    backend = NumbaBackend()
    # Availability means "compiles and passes the warm-up self-check", so
    # auto-selection never picks a backend that would fail mid-run.
    backend.ensure_ready()
    return backend


def _cext_factory() -> Backend:
    from repro.backend.cext import CextBackend

    backend = CextBackend()
    backend.ensure_ready()  # raises BackendUnavailableError if no compiler
    return backend


register_backend("numba", _numba_factory)
register_backend("cext", _cext_factory)
