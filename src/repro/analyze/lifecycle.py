"""Must-release lifecycle analysis: every acquire reaches a release.

The runtime layers own real resources with paired acquire/release
protocols: :class:`repro.runtime.locks` pools (``acquire``/``release``
around scatter rows, Fig 4), :class:`repro.distributed.shm.ShmArena`
segments (``attach``/``close`` in every worker), sockets and their
``makefile`` views in :mod:`repro.serve`, worker pools
(``WorkerPool()``/``shutdown``), and manually driven context managers
(``cm.__enter__()``/``cm.__exit__()`` in the serve daemon).  A release
missing on the *exceptional* path is the classic leak: the normal path
works in every test, and the first bind failure or handler exception
strands a lock, a shm segment, or a process-global sanitizer install.

This analysis is path-sensitive over the dataflow core: acquisitions
create tracked tokens in the abstract environment; releases, ownership
transfers (returning the resource, passing it to a callee, storing it on
an object) remove them.  It reports two defects:

* ``must-release`` at a normal exit — a locally owned resource can reach
  ``return``/fall-through with no release on some path;
* ``must-release`` on an exceptional edge — a statement that may raise
  executes while a resource is held, with no enclosing ``try`` whose
  handler or ``finally`` could release it (including ``raise`` with the
  resource still held).

Ownership rules keep the false-positive rate at zero on this tree:
``with`` acquisitions are always safe; resources stored on ``self``
inside *start-like* methods (``__init__``, ``__enter__``, ``start``,
``connect``, ``open``) stay tracked for exceptional edges only (the
object is not yet handed to the caller — an exception mid-start strands
them); in other methods a ``self.x =`` store transfers ownership to the
object.  Calls to methods whose bodies (transitively) release — a
``self.close()`` in an ``except`` block — count as releasing, via
call-graph release summaries.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.analyses import (
    Analysis,
    AnalysisContext,
    RawFinding,
    register_analysis,
)
from repro.analyze.dataflow import Env, ForwardAnalysis, may_raise
from repro.analyze.symbols import FunctionInfo, _dotted_name

__all__ = ["RELEASE_ATTRS", "RESOURCE_CLASSES"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Attribute calls that release whatever their receiver holds.
RELEASE_ATTRS = frozenset({
    "release", "close", "shutdown", "stop", "unlink", "terminate", "__exit__",
})

#: Constructors / classmethod-constructors that hand back an owned resource.
RESOURCE_CLASSES: dict[str, str] = {
    "repro.distributed.shm.ShmArena": "shm arena",
    "repro.distributed.shm.ShmArena.attach": "shm arena",
    "repro.runtime.pool.WorkerPool": "worker pool",
}

#: Plain calls (import-expanded dotted form) returning owned resources.
_OPEN_CALLS: dict[str, str] = {
    "open": "file handle",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "tempfile.NamedTemporaryFile": "temp file",
}

#: ``receiver.<attr>()`` acquisitions (receiver must be a name or a
#: ``self.x`` attribute so the matching release can be identified).
_ACQUIRE_ATTRS: dict[str, str] = {
    "acquire": "lock",
    "__enter__": "manually entered context",
    "makefile": "socket file view",
}

#: Methods whose *job* is the protocol itself — ownership lives with
#: their caller, so their bodies are exempt.
_PROTOCOL_FUNCS = frozenset(RELEASE_ATTRS) | {"acquire", "__del__"}

#: Methods where ``self.x = <resource>`` keeps the resource tracked: the
#: object is mid-construction, an exception here strands the resource.
_START_LIKE = frozenset({"__init__", "__enter__", "start", "connect",
                         "open", "restart"})


class _Resource:
    """One tracked acquisition (mutable: ownership can move to self)."""

    __slots__ = ("token", "kind", "node", "owned", "key", "line")

    def __init__(self, token: int, kind: str, node: ast.Call, key: str | None):
        self.token = token
        self.kind = kind
        self.node = node
        self.owned = "local"
        self.key = key  #: receiver key ("fh", "self._sock") when bound
        self.line = node.lineno


def _receiver_key(expr: ast.expr) -> str | None:
    """``fh`` → ``"fh"``; ``self._sock`` → ``"self._sock"``; else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


def _is_contextmanager(fn: ast.AST) -> bool:
    for dec in getattr(fn, "decorator_list", ()):
        dotted = _dotted_name(dec) or ""
        if dotted.rsplit(".", 1)[-1] in ("contextmanager", "asynccontextmanager"):
            return True
    return False


class _LifecycleFlow(ForwardAnalysis):
    def __init__(self, owner: "_LifecyclePass", fn: FunctionInfo):
        super().__init__()
        self.owner = owner
        self.fn = fn
        self.mod = fn.module
        self.start_like = fn.cls is not None and fn.name in _START_LIKE
        self._next_token = 0
        #: Call node ids whose result ownership never rests here: ``with``
        #: context expressions, values of ``return``/``yield``, arguments
        #: of other calls.
        self._safe_ids = self._collect_safe_ids(fn.node)

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_safe_ids(fn: ast.AST) -> set[int]:
        safe: set[int] = set()

        def mark(root: ast.AST | None) -> None:
            if root is None:
                return
            for n in ast.walk(root):
                if isinstance(n, ast.Call):
                    safe.add(id(n))

        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    mark(item.context_expr)
            elif isinstance(node, ast.Return):
                mark(node.value)
            elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                mark(node.value)
            elif isinstance(node, ast.Call):
                for a in node.args:
                    mark(a)
                for kw in node.keywords:
                    mark(kw.value)
        return safe

    # -- env bookkeeping -------------------------------------------------
    @staticmethod
    def _open(env: Env) -> list[_Resource]:
        return [v for k, v in env.items() if k.startswith("%res")]

    def _drop(self, env: Env, res: _Resource) -> None:
        env.pop(f"%res{res.token}", None)

    def _lookup(self, env: Env, key: str | None) -> _Resource | None:
        if key is None:
            return None
        ref = env.get(key)
        if isinstance(ref, str) and ref.startswith("%res"):
            return env.get(ref)
        return None

    def join_envs(self, a: Env, b: Env) -> Env:
        # must-release: a resource open on EITHER branch stays open
        out: Env = {}
        for key in set(a) | set(b):
            if key.startswith("%res"):
                out[key] = a.get(key) or b.get(key)
            elif key in a and key in b and a[key] == b[key]:
                out[key] = a[key]
        return out

    # -- acquisition / release transfer ----------------------------------
    def eval_expr(self, expr: ast.expr, env: Env):
        if not isinstance(expr, ast.Call):
            if isinstance(expr, ast.Name):
                return env.get(expr.id)
            return None
        call = expr
        f = call.func

        # releases: fh.close(), self._san_cm.__exit__(...), lock.release()
        if isinstance(f, ast.Attribute) and f.attr in RELEASE_ATTRS:
            res = self._lookup(env, _receiver_key(f.value))
            if res is not None:
                self._drop(env, res)
        # releaser-summary calls: self.close() / self._unwind() where the
        # callee's body transitively releases → self-owned tokens are freed
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id == "self"
            and self.owner.releases(self.fn, f.attr)
        ):
            for res in self._open(env):
                if res.owned == "self" or (res.key or "").startswith("self."):
                    self._drop(env, res)

        # ownership transfer: the resource passed whole to another call
        for a in call.args:
            res = self._lookup(env, _receiver_key(a))
            if res is not None:
                self._drop(env, res)
        for kw in call.keywords:
            res = self._lookup(env, _receiver_key(kw.value))
            if res is not None:
                self._drop(env, res)

        # nested calls still execute
        for a in call.args:
            if isinstance(a, ast.Call):
                self.eval_expr(a, env)
        for kw in call.keywords:
            if isinstance(kw.value, ast.Call):
                self.eval_expr(kw.value, env)

        return self._maybe_acquire(call, env)

    def _maybe_acquire(self, call: ast.Call, env: Env):
        if id(call) in self._safe_ids:
            return None
        # only statement-level acquisitions are tracked: conditional
        # acquires (`if lock.acquire(timeout=t):`) are beyond the model
        parent = self.mod.view.parent(call)
        if not isinstance(parent, (ast.Expr, ast.Assign, ast.AnnAssign)):
            return None
        kind = None
        key = None
        f = call.func
        if isinstance(f, ast.Attribute) and f.attr in _ACQUIRE_ATTRS:
            key = _receiver_key(f.value)
            if key is None:
                return None  # pool[i].acquire() — unmodelable receiver
            kind = _ACQUIRE_ATTRS[f.attr]
        else:
            dotted = _dotted_name(f)
            if dotted is None:
                return None
            resolved = self.owner.ctx.project.resolve(self.mod, dotted)
            kind = RESOURCE_CLASSES.get(resolved) or _OPEN_CALLS.get(resolved)
        if kind is None:
            return None
        token = self._next_token
        self._next_token += 1
        res = _Resource(token, kind, call, key)
        env[f"%res{token}"] = res
        if key is not None:
            env[key] = f"%res{token}"
            if key.startswith("self."):
                res.owned = "self" if self.start_like else "local"
                if not self.start_like:
                    # entering a cm held on self outside start-like methods:
                    # the object owns it; out of scope here
                    self._drop(env, res)
                    return None
        ref = f"%res{token}"
        return ref

    def transfer_assign(self, target, value, node, env: Env) -> None:
        if isinstance(value, str) and value.startswith("%res"):
            res = env.get(value)
            if isinstance(target, ast.Name):
                env[target.id] = value
                if res is not None:
                    res.key = target.id
                return
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if self.start_like and res is not None:
                    env[f"self.{target.attr}"] = value
                    res.owned = "self"
                    res.key = f"self.{target.attr}"
                elif res is not None:
                    self._drop(env, res)  # ownership moves to the object
                return
            if res is not None:
                self._drop(env, res)  # tuple/subscript stores: untracked
            return
        super().transfer_assign(target, value, node, env)

    # -- the checks ------------------------------------------------------
    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, ast.Raise):
            if not self._protected(stmt):
                for res in self._open(env):
                    self.owner.leak_exceptional(self.mod, res, stmt)
            return
        # compound statements are walked piecewise — their inner statements
        # get their own checks, with the correct try-protection context
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                 ast.Expr, ast.Assert, ast.Delete)):
            return
        if not may_raise(stmt) or self._protected(stmt):
            return
        handled = self._keys_touched(stmt)
        self_release = self._has_self_releaser(stmt)
        for res in self._open(env):
            if res.line >= stmt.lineno:
                continue  # the acquisition itself (or later on this line)
            if res.key is not None and res.key in handled:
                continue  # this statement releases/transfers it
            if self_release and (res.owned == "self"
                                 or (res.key or "").startswith("self.")):
                continue  # self.close()/self._unwind() frees self state
            self.owner.leak_exceptional(self.mod, res, stmt)

    def _has_self_releaser(self, stmt: ast.stmt) -> bool:
        """Does this statement call a self-method that releases state?"""
        for n in ast.walk(stmt):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and isinstance(n.func.value, ast.Name)
                and n.func.value.id == "self"
                and self.owner.releases(self.fn, n.func.attr)
            ):
                return True
        return False

    @staticmethod
    def _keys_touched(stmt: ast.stmt) -> set[str]:
        """Receiver keys released or transferred by this statement."""
        keys: set[str] = set()
        for n in ast.walk(stmt):
            if not isinstance(n, ast.Call):
                continue
            f = n.func
            if isinstance(f, ast.Attribute) and f.attr in RELEASE_ATTRS:
                k = _receiver_key(f.value)
                if k is not None:
                    keys.add(k)
            for a in list(n.args) + [kw.value for kw in n.keywords]:
                k = _receiver_key(a)
                if k is not None:
                    keys.add(k)
        return keys

    def _protected(self, stmt: ast.stmt) -> bool:
        """Is an exception at ``stmt`` observable by a handler/finally
        within this function?"""
        prev: ast.AST = stmt
        for anc in self.mod.view.ancestors(stmt):
            if anc is self.fn.node:
                return False
            if isinstance(anc, ast.Try):
                if prev in anc.body or prev in anc.orelse:
                    if anc.handlers or anc.finalbody:
                        return True
                elif any(prev is h or prev in h.body for h in anc.handlers):
                    if anc.finalbody:
                        return True
                # finalbody: an exception there escapes this try — keep
                # climbing to an outer one
            prev = anc
        return False

    def on_exit(self, env: Env, node: ast.stmt | None) -> None:
        if isinstance(node, ast.Return) and node.value is not None:
            # ``return fh`` hands the resource to the caller — the same
            # transfer as returning the acquiring call directly
            for sub in ast.walk(node.value):
                res = self._lookup(env, _receiver_key(sub))
                if res is not None:
                    self._drop(env, res)
        for res in self._open(env):
            if res.owned == "local":
                self.owner.leak_exit(self.mod, res, node)


class _LifecyclePass:
    def __init__(self, ctx: AnalysisContext):
        self.ctx = ctx
        self.findings: list[RawFinding] = []
        self._reported: set[tuple] = set()
        self._release_summary = self._compute_release_summaries()

    # -- interprocedural release summaries --------------------------------
    def _compute_release_summaries(self) -> set[str]:
        """FQNs whose bodies (transitively) perform a release call."""
        direct: set[str] = set()
        for fqn, fn in self.ctx.project.functions.items():
            for n in ast.walk(fn.node):
                if (
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr in RELEASE_ATTRS
                ):
                    direct.add(fqn)
                    break
        releases = set(direct)
        for _ in range(8):
            grown = set(releases)
            for fqn in self.ctx.project.functions:
                if fqn in grown:
                    continue
                if self.ctx.graph.callees(fqn) & releases:
                    grown.add(fqn)
            if grown == releases:
                break
            releases = grown
        return releases

    def releases(self, caller: FunctionInfo, method: str) -> bool:
        """Does ``self.<method>()`` from ``caller`` release resources?"""
        if method in RELEASE_ATTRS:
            return True
        if caller.cls is None:
            return False
        m = self.ctx.project.method(caller.cls, method)
        return m is not None and m.qualname in self._release_summary

    # -- reporting --------------------------------------------------------
    def leak_exceptional(self, mod, res: _Resource, stmt: ast.stmt) -> None:
        dkey = (mod.relpath, id(res.node), "exc")
        if dkey in self._reported:
            return
        self._reported.add(dkey)
        self.findings.append((mod, res.node, "must-release", (
            f"{res.kind} acquired here is not released when line "
            f"{stmt.lineno} raises: no enclosing try releases it on the "
            f"exceptional path — wrap in try/finally (or unwind in an "
            f"except before re-raising)"
        )))

    def leak_exit(self, mod, res: _Resource, node) -> None:
        dkey = (mod.relpath, id(res.node), "exit")
        if dkey in self._reported:
            return
        self._reported.add(dkey)
        where = f"the return at line {node.lineno}" if node is not None \
            else "the end of the function"
        self.findings.append((mod, res.node, "must-release", (
            f"{res.kind} acquired here can reach {where} without being "
            f"released — release it, transfer ownership explicitly, or use "
            f"a with-block"
        )))

    # -- driver -----------------------------------------------------------
    def run(self) -> Iterator[RawFinding]:
        for fqn in sorted(self.ctx.project.functions):
            fn = self.ctx.project.functions[fqn]
            if fn.name in _PROTOCOL_FUNCS:
                continue
            if _is_contextmanager(fn.node):
                continue  # acquire-yield-finally: ownership is the with's
            _LifecycleFlow(self, fn).run(fn.node)
        yield from self.findings


def _run(ctx: AnalysisContext) -> Iterator[RawFinding]:
    return _LifecyclePass(ctx).run()


register_analysis(Analysis(
    id="must-release",
    summary="a lock/arena/socket/pool/context acquisition can miss its "
            "release on some path — including the exceptional edge "
            "(acquire, raise-before-release, leak)",
    paper="Fig 4 (lock-pool discipline); §V-D worker shm lifecycles",
    run=_run,
))
