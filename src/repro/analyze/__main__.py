"""``python -m repro.analyze`` — the whole-program analyzer CLI.

Usage::

    python -m repro.analyze [paths ...]          # default: src/repro or repro
    python -m repro.analyze src/repro --json report.json --sarif report.sarif
    python -m repro.analyze --seeds-out seeds.json   # sanitizer fuzz seeds
    python -m repro.analyze --list-analyses

Exit status: 0 when every finding is suppressed (with a written reason),
1 when any active finding remains, 2 on usage errors — the same contract
as ``python -m repro.lint``, whose configuration (``[tool.reprolint]``)
and suppression syntax this tool shares.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analyze.analyses import AnalyzeEngine, render_analysis_catalog
from repro.lint.engine import load_config
from repro.lint.report import render_json, render_sarif, render_text

TOOL = "repro.analyze"


def _find_pyproject(start: Path) -> Path | None:
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in [cur, *cur.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def _default_paths() -> list[str]:
    for candidate in ("src/repro", "repro"):
        if Path(candidate).is_dir():
            return [candidate]
    return ["."]


def _write(payload: str, dest: str) -> None:
    if dest == "-":
        sys.stdout.write(payload)
    else:
        Path(dest).write_text(payload, encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="whole-program static analyzer: kernel dispatch "
                    "contracts, resource lifecycles, static race "
                    "pre-screening, interprocedural hot-path rules "
                    "(docs/ANALYSIS.md)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to analyze (default: src/repro)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the deterministic JSON report to PATH "
                             "('-' for stdout)")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="write a SARIF 2.1.0 report to PATH ('-' for "
                             "stdout)")
    parser.add_argument("--seeds-out", metavar="PATH", default=None,
                        help="write the prioritized race-site list as "
                             "sanitizer fuzz seeds ('-' for stdout)")
    parser.add_argument("--config", metavar="PYPROJECT", default=None,
                        help="pyproject.toml to read [tool.reprolint] from "
                             "(default: discovered upward from the first path)")
    parser.add_argument("--analyses", metavar="ID[,ID...]", default=None,
                        help="run only these analysis ids")
    parser.add_argument("--list-analyses", action="store_true",
                        help="print the analysis catalog and exit")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the seeded-fault fixtures: verify every "
                             "analysis still catches its target bug class")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in the text output")
    args = parser.parse_args(argv)

    if args.list_analyses:
        sys.stdout.write(render_analysis_catalog())
        return 0

    if args.selfcheck:
        from repro.analyze.selfcheck import run_selfcheck

        failures = run_selfcheck()
        for line in failures:
            sys.stdout.write(line + "\n")
        sys.stdout.write(
            "repro.analyze --selfcheck: "
            + ("FAILED\n" if failures else
               "OK (every seeded bug class caught, clean twins clean)\n")
        )
        return 1 if failures else 0

    paths = args.paths or _default_paths()
    pyproject = Path(args.config) if args.config else _find_pyproject(Path(paths[0]))
    config = load_config(pyproject)
    selected = None
    if args.analyses:
        selected = [a.strip() for a in args.analyses.split(",") if a.strip()]
    try:
        engine = AnalyzeEngine(config, analyses=selected)
    except ValueError as exc:
        parser.error(str(exc))

    findings = engine.analyze_paths([Path(p) for p in paths])

    if args.json is not None:
        _write(render_json(findings, tool=TOOL), args.json)
    if args.sarif is not None:
        _write(render_sarif(findings, tool=TOOL), args.sarif)
    if args.seeds_out is not None:
        ctx = engine.last_context
        sites = ctx.artifacts.get("race_sites", []) if ctx is not None else []
        payload = json.dumps(
            {"version": 1, "tool": TOOL, "sites": sites},
            indent=2, sort_keys=True,
        ) + "\n"
        _write(payload, args.seeds_out)
    if args.json != "-" and args.sarif != "-" and args.seeds_out != "-":
        sys.stdout.write(render_text(
            findings, show_suppressed=args.show_suppressed, tool=TOOL,
        ))

    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
