"""Whole-program static analysis for the repro tree (docs/ANALYSIS.md).

Where :mod:`repro.lint` checks one module at a time, this package builds
the program: a symbol-resolved module graph (:mod:`.symbols`), a call
graph with light local type inference (:mod:`.callgraph`), and a forward
dataflow core (:mod:`.dataflow`) shared by four interprocedural
analyses:

* ``dispatch-contract`` (:mod:`.contracts`) — dtype/contiguity facts
  flow from array creation sites to every compiled-kernel boundary;
* ``must-release`` (:mod:`.lifecycle`) — locks, shm arenas, sockets,
  pools and manually entered contexts reach a release on **all** paths,
  exceptional edges included;
* ``escaped-shared-write`` (:mod:`.escape`) — unsynchronized writes to
  arrays that escape a dispatched task, exported as sanitizer fuzz
  seeds;
* ``hot-call`` (:mod:`.hotness`) — the Fig 1–4 performance rules follow
  the call graph below hot loops.

Reports, suppressions (``# reprolint: allow``), fingerprints and config
come from the lint engine, so ``repro analyze`` and ``repro lint`` are
two depths of one tool.  Run as ``python -m repro.analyze`` or
``repro analyze``.
"""

from repro.analyze.analyses import (
    ANALYSES,
    Analysis,
    AnalysisContext,
    AnalyzeEngine,
    register_analysis,
)

# the passes self-register on import; importing the package is enough for
# the lint engine to recognize analysis rule ids in suppression comments
from repro.analyze import contracts, escape, hotness, lifecycle  # noqa: E402,F401

__all__ = [
    "ANALYSES",
    "Analysis",
    "AnalysisContext",
    "AnalyzeEngine",
    "register_analysis",
]
