"""Project model: every module under a root, parsed once, names resolved.

Where :mod:`repro.lint.engine` sees one file at a time, this module builds
the *whole-program* view the interprocedural analyses need: each module's
import table (local alias → dotted target), its top-level functions and
classes (methods included), and a resolver that turns the dotted names
appearing in source (``_obs.span``, ``ShmArena.attach``, ``self.close``)
into project-wide fully-qualified names.

Nothing is ever imported: like the linter, the analyzer works purely on
:mod:`ast`, so analyzing the tree cannot execute it, and the result is a
pure function of the sources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import LintConfig, ModuleView

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method, addressable project-wide."""

    qualname: str  #: fully qualified: ``repro.serve.server.ReproServer.start``
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None" = None  #: owning class, when a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]


@dataclass
class ClassInfo:
    """One class: its methods and (project-resolved) base names."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  #: resolved FQNs (or raw)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class ModuleInfo:
    """One parsed module plus its local name bindings."""

    def __init__(self, name: str, path: Path, relpath: str, source: str,
                 tree: ast.Module, config: LintConfig):
        self.name = name  #: dotted module name, e.g. ``repro.runtime.locks``
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.view = ModuleView(path, relpath, source, tree, config)
        #: local alias → dotted target (``np`` → ``numpy``,
        #: ``_obs`` → ``repro.observe.spans``, ``ShmArena`` →
        #: ``repro.distributed.shm.ShmArena``).
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}  #: local name → info
        self.classes: dict[str, ClassInfo] = {}
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"
            elif isinstance(node, _FUNC_NODES):
                qn = f"{self.name}.{node.name}"
                self.functions[node.name] = FunctionInfo(qn, self, node)
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)

    def _from_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        # relative import: resolve against this module's dotted name
        parts = self.name.split(".")
        if node.level > len(parts):
            return None
        base = parts[: len(parts) - node.level]
        if node.module:
            base.append(node.module)
        return ".".join(base) if base else None

    def _collect_class(self, node: ast.ClassDef) -> None:
        qn = f"{self.name}.{node.name}"
        info = ClassInfo(qn, self, node)
        for b in node.bases:
            dotted = _dotted_name(b)
            if dotted is not None:
                info.bases.append(dotted)
        for item in node.body:
            if isinstance(item, _FUNC_NODES):
                m = FunctionInfo(f"{qn}.{item.name}", self, item, cls=info)
                info.methods[item.name] = m
        self.classes[node.name] = info


def _dotted_name(expr: ast.AST) -> str | None:
    """``a.b.c`` attribute/name chains as a dotted string, else ``None``."""
    parts: list[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


class Project:
    """All modules under one root, with cross-module name resolution."""

    def __init__(self, config: LintConfig | None = None):
        self.config = config if config is not None else LintConfig()
        self.modules: dict[str, ModuleInfo] = {}  #: dotted name → module
        #: Every function/method in the project, by fully qualified name.
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Files that failed to parse: relpath → error message.
        self.parse_errors: dict[str, str] = {}

    # ------------------------------------------------------------------
    def add_module(self, name: str, path: Path, relpath: str, source: str) -> None:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_errors[relpath] = f"syntax error: {exc.msg} (line {exc.lineno})"
            return
        mod = ModuleInfo(name, path, relpath, source, tree, self.config)
        self.modules[name] = mod
        for fn in mod.functions.values():
            self.functions[fn.qualname] = fn
        for cls in mod.classes.values():
            self.classes[cls.qualname] = cls
            for m in cls.methods.values():
                self.functions[m.qualname] = m

    # ------------------------------------------------------------------
    def resolve(self, mod: ModuleInfo, dotted: str) -> str:
        """Resolve a dotted name as used inside ``mod`` to a project FQN.

        ``_obs.span`` → ``repro.observe.spans.span``;
        ``ShmArena.attach`` → ``repro.distributed.shm.ShmArena.attach``;
        names that do not resolve into the project come back as their
        import-expanded form (``np.zeros`` → ``numpy.zeros``) so callers
        can still pattern-match external APIs.
        """
        head, _, rest = dotted.partition(".")
        target = None
        if head in mod.functions:
            target = mod.functions[head].qualname
        elif head in mod.classes:
            target = mod.classes[head].qualname
        elif head in mod.imports:
            target = mod.imports[head]
        else:
            target = head
        return f"{target}.{rest}" if rest else target

    def function(self, fqn: str) -> FunctionInfo | None:
        """Look up a function by FQN, following one ``module.attr`` hop.

        ``repro.observe.spans.span`` resolves whether registered directly
        or reachable as attribute ``span`` of module ``repro.observe.spans``;
        re-exports (``repro.observe.span``) resolve through the package's
        import table.
        """
        fn = self.functions.get(fqn)
        if fn is not None:
            return fn
        head, _, tail = fqn.rpartition(".")
        mod = self.modules.get(head)
        if mod is not None and tail:
            if tail in mod.functions:
                return mod.functions[tail]
            if tail in mod.imports:  # re-export hop
                return self.functions.get(mod.imports[tail])
        return None

    def klass(self, fqn: str) -> ClassInfo | None:
        cls = self.classes.get(fqn)
        if cls is not None:
            return cls
        head, _, tail = fqn.rpartition(".")
        mod = self.modules.get(head)
        if mod is not None and tail and tail in mod.imports:
            return self.classes.get(mod.imports[tail])
        return None

    def method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through the (project-visible) base-class chain."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                resolved = self.resolve(cur.module, base)
                base_cls = self.klass(resolved)
                if base_cls is not None:
                    stack.append(base_cls)
        return None


def _module_name(relpath: str) -> str:
    """``repro/runtime/locks.py`` → ``repro.runtime.locks``."""
    dotted = relpath[:-3] if relpath.endswith(".py") else relpath
    dotted = dotted.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def build_project(paths: list[Path], *, config: LintConfig | None = None,
                  package_anchor: str = "repro") -> Project:
    """Parse every ``.py`` under ``paths`` into one :class:`Project`."""
    from repro.lint.engine import LintEngine

    engine = LintEngine(config, package_anchor=package_anchor)
    project = Project(engine.config)
    for f in LintEngine.collect_files(paths):
        relpath = engine._relpath(f, None)
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            project.parse_errors[relpath] = f"cannot read file: {exc}"
            continue
        project.add_module(_module_name(relpath), f, relpath, source)
    return project
