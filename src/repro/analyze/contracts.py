"""Dispatch-contract checking: the dtype/layout lattice of the backends.

Phipps & Kolda's single-source portable kernels (arXiv:1809.09175) — and
this project's port of the idea, :mod:`repro.backend` — live or die by a
rigorously enforced data-layout contract: every compiled kernel entry
(numba ``nogil`` JIT, the ctypes C extension) receives **C-contiguous
float64** value arrays and **int64** index arrays, because the foreign
side reads raw pointers and never consults strides or dtype tags.  The
equivalence suite checks this dynamically at the boundary
(``canonical_factors``); this analysis checks it statically for every
*path*: an abstract ``(dtype, contiguity)`` fact is seeded at array
creation sites (``np.zeros``, ``asarray``/``ascontiguousarray``,
``Workspace.buf``, ``ShmArena`` views, ``astype``) and propagated
forward through assignments, branches and loops by the dataflow core;
any value that can reach a kernel parameter with a *known-conflicting*
fact is flagged.  Unknown facts pass — the analysis only reports
violations it can prove, so it stays quiet on the clean tree.

Interprocedural: a function that merely forwards a parameter into a
kernel inherits that parameter's requirement as a *summary*
(``fn: param → needs float64/C``), computed to a fixpoint over the call
graph, so a wrong-dtype array created two calls above the kernel is
still caught — the workspace-dtype aliasing bug class PR 4 fixed
dynamically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.analyses import (
    Analysis,
    AnalysisContext,
    RawFinding,
    register_analysis,
)
from repro.analyze.callgraph import CallSite
from repro.analyze.dataflow import Env, ForwardAnalysis
from repro.analyze.symbols import FunctionInfo, _dotted_name

__all__ = ["ArrayFact", "SINKS", "kernel_requirements"]

# ----------------------------------------------------------------------
# the lattice: (dtype, contiguity), None meaning unknown/top
# ----------------------------------------------------------------------
ArrayFact = tuple  # (dtype: str | None, contig: str | None)

_F64 = "float64"
_I64 = "int64"

#: Compiled-kernel entry points: method name → positional requirements.
#: ``"value"`` needs float64/C-contiguous, ``"index"`` needs int64.
SINKS: dict[str, dict[int, str]] = {
    "segment_sum": {0: "value", 1: "index", 2: "value"},
    "gather_segment_sum": {0: "value", 1: "index", 2: "index", 3: "value"},
    "ata": {0: "value", 1: "value"},
    "root_kernel": {1: "value", 4: "value"},
    "internal_kernel": {1: "value", 5: "value"},
    "leaf_kernel": {1: "value", 4: "value"},
    # plan-layer entries whose first argument is the contribs block
    "apply": {0: "value"},   # SegmentSum.apply(w, ws, tag)
    "reduce": {0: "value"},  # RowScatter.reduce(contribs, ws)
}

#: Fully-qualified prefixes a sink call must resolve to (or the attr-name
#: fallback below); keeps ``obj.apply(...)`` on unrelated classes quiet.
_SINK_OWNERS = (
    "repro.backend.",
    "repro.mttkrp.scatter.SegmentSum.apply",
    "repro.mttkrp.scatter.RowScatter.reduce",
)
#: Attr names unique enough to match even when the receiver's class is
#: statically unknown (``backend.segment_sum`` through a parameter).
_UNIQUE_SINK_ATTRS = frozenset({
    "segment_sum", "gather_segment_sum", "ata",
    "root_kernel", "internal_kernel", "leaf_kernel",
})

_DTYPE_NAMES = {
    "float64": _F64, "float32": "float32", "float16": "float16",
    "int64": _I64, "int32": "int32", "int16": "int16", "int8": "int8",
    "uint8": "uint8", "bool": "bool", "double": _F64,
}
#: Project constants that *are* dtypes.
_DTYPE_CONSTANTS = {
    "repro._util.VALUE_DTYPE": _F64,
    "repro._util.INDEX_DTYPE": _I64,
}

_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
})


def kernel_requirements(kind: str) -> ArrayFact:
    """The required fact for a sink parameter kind."""
    return (_F64, "C") if kind == "value" else (_I64, "C")


def _violates(fact: ArrayFact, kind: str) -> str | None:
    """A human-readable conflict, or None when the fact is compatible."""
    dtype, contig = fact
    want_dtype = _F64 if kind == "value" else _I64
    if dtype is not None and dtype != want_dtype:
        return f"dtype {dtype} where the kernel contract requires {want_dtype}"
    if contig == "no":
        return "a non-C-contiguous view where the kernel reads raw pointers"
    return None


# ----------------------------------------------------------------------
# per-function abstract interpretation
# ----------------------------------------------------------------------
class _ContractFlow(ForwardAnalysis):
    """Propagates ArrayFacts and checks sink calls as it walks."""

    def __init__(self, analysis: "_ContractsPass", fn_owner, mod):
        super().__init__()
        self.analysis = analysis
        self.owner = fn_owner
        self.mod = mod

    # -- lattice --------------------------------------------------------
    def join_values(self, a, b):
        if a == b:
            return a
        da, ca = a if a else (None, None)
        db, cb = b if b else (None, None)
        dtype = da if da == db else None
        contig = ca if ca == cb else None
        return (dtype, contig) if (dtype or contig) else None

    # -- dtype helpers --------------------------------------------------
    def _dtype_of_expr(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return _DTYPE_NAMES.get(expr.value)
        dotted = _dotted_name(expr)
        if dotted is None:
            return None
        resolved = self.analysis.ctx.project.resolve(self.mod, dotted)
        if resolved in _DTYPE_CONSTANTS:
            return _DTYPE_CONSTANTS[resolved]
        tail = resolved.rsplit(".", 1)[-1]
        return _DTYPE_NAMES.get(tail)

    def _kwarg(self, call: ast.Call, name: str) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    # -- creation-site transfer -----------------------------------------
    def eval_expr(self, expr: ast.expr, env: Env):
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            # x.T — transposed view of a known array loses C order
            base = self.eval_expr(expr.value, env)
            if expr.attr == "T" and base is not None:
                return (base[0], "no")
            return None
        if isinstance(expr, ast.Subscript):
            base = self.eval_expr(expr.value, env)
            if base is None:
                return None
            return (base[0], self._subscript_contig(expr, base[1]))
        if isinstance(expr, ast.IfExp):
            a = self.eval_expr(expr.body, env)
            b = self.eval_expr(expr.orelse, env)
            if a is None or b is None:
                return None
            return self.join_values(a, b)
        return None

    @staticmethod
    def _subscript_contig(expr: ast.Subscript, base_contig) -> str | None:
        """Leading simple slices keep contiguity; stepped slices lose it."""
        sl = expr.slice
        elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
        for e in elts:
            if isinstance(e, ast.Slice) and e.step is not None:
                return "no"
        if isinstance(sl, ast.Slice) and sl.step is None:
            return base_contig  # x[a:b] — a leading contiguous block
        return None  # fancy indexing yields a fresh array; stay unknown

    def _eval_call(self, call: ast.Call, env: Env):
        self._check_sink(call, env)
        f = call.func
        attr = f.attr if isinstance(f, ast.Attribute) else None
        is_np = (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id in ("np", "numpy")
        )
        if is_np and attr in _ALLOCATORS:
            dtype = self._dtype_of_expr(self._kwarg(call, "dtype"))
            if dtype is None and len(call.args) >= (3 if attr == "full" else 2):
                dtype = self._dtype_of_expr(
                    call.args[2 if attr == "full" else 1]
                )
            if dtype is None and not attr.endswith("_like"):
                dtype = _F64  # numpy's allocation default
            return (dtype, "C")
        if is_np and attr == "ascontiguousarray":
            dtype = self._dtype_of_expr(self._kwarg(call, "dtype"))
            if dtype is None and len(call.args) >= 2:
                dtype = self._dtype_of_expr(call.args[1])
            if dtype is None and call.args:
                src = self.eval_expr(call.args[0], env)
                dtype = src[0] if src else None
            return (dtype, "C")
        if is_np and attr == "asarray":
            dtype = self._dtype_of_expr(self._kwarg(call, "dtype"))
            if dtype is None and len(call.args) >= 2:
                dtype = self._dtype_of_expr(call.args[1])
            src = self.eval_expr(call.args[0], env) if call.args else None
            contig = src[1] if src else None  # asarray keeps the layout
            if dtype is None and src:
                dtype = src[0]
            return (dtype, contig) if (dtype or contig) else None
        if attr == "astype":
            dtype = self._dtype_of_expr(
                call.args[0] if call.args else self._kwarg(call, "dtype")
            )
            return (dtype, "C")  # astype copies to C order by default
        if attr == "buf":  # Workspace.buf(tag, shape, dtype=VALUE_DTYPE)
            dtype = self._dtype_of_expr(self._kwarg(call, "dtype"))
            if dtype is None and len(call.args) >= 3:
                dtype = self._dtype_of_expr(call.args[2])
            if dtype is None:
                dtype = _F64  # the Workspace default (VALUE_DTYPE)
            return (dtype, "C")
        if attr == "create":  # ShmArena.create(key, shape, dtype)
            dtype = self._dtype_of_expr(
                call.args[2] if len(call.args) >= 3
                else self._kwarg(call, "dtype")
            )
            return (dtype, "C")
        # walk nested arguments so sinks inside expressions are checked
        for a in call.args:
            if isinstance(a, ast.Call):
                self._eval_call(a, env)
        for kw in call.keywords:
            if isinstance(kw.value, ast.Call):
                self._eval_call(kw.value, env)
        return None

    # -- sink checking ---------------------------------------------------
    def _check_sink(self, call: ast.Call, env: Env) -> None:
        reqs = self.analysis.site_requirements(call)
        if not reqs:
            return
        for pos, kind in reqs.items():
            if pos >= len(call.args):
                continue
            fact = self.eval_expr(call.args[pos], env)
            if fact is None:
                continue
            conflict = _violates(fact, kind)
            if conflict is None:
                continue
            self.analysis.report(
                self.mod, call,
                f"array argument {pos} carries {conflict} "
                f"(paper's single-source layout contract, "
                f"docs/BACKENDS.md): coerce with canonical_factors / "
                f"ascontiguousarray(dtype={'float64' if kind == 'value' else 'int64'}) "
                f"before the kernel boundary",
            )


# ----------------------------------------------------------------------
# the pass: summaries to fixpoint, then one dataflow walk per function
# ----------------------------------------------------------------------
class _ContractsPass:
    def __init__(self, ctx: AnalysisContext):
        self.ctx = ctx
        self.findings: list[RawFinding] = []
        #: fn qualname → {param index → "value"|"index"}
        self.summaries: dict[str, dict[int, str]] = {}
        self._site_index: dict[int, CallSite] = {
            id(s.node): s for s in ctx.graph.sites
        }

    # -- sink resolution -------------------------------------------------
    def _direct_sink(self, site: CallSite) -> dict[int, str] | None:
        attr = site.attr
        if attr is None or attr not in SINKS:
            return None
        callee = site.callee or ""
        if callee.startswith("repro.backend.") or callee in (
            "repro.mttkrp.scatter.SegmentSum.apply",
            "repro.mttkrp.scatter.RowScatter.reduce",
        ):
            return SINKS[attr]
        if site.callee is None and attr in _UNIQUE_SINK_ATTRS:
            return SINKS[attr]
        return None

    def site_requirements(self, call: ast.Call) -> dict[int, str]:
        """Positional requirements at this call, direct or via summaries."""
        site = self._site_index.get(id(call))
        if site is None:
            return {}
        direct = self._direct_sink(site)
        if direct is not None:
            return direct
        if site.callee is not None:
            summary = self.summaries.get(site.callee)
            if summary:
                # method calls bound through a receiver drop ``self``
                fn = self.ctx.project.functions.get(site.callee)
                shift = 0
                if fn is not None and fn.cls is not None and site.receiver is not None:
                    shift = 1
                return {
                    pos - shift: kind
                    for pos, kind in summary.items()
                    if pos - shift >= 0
                }
        return {}

    # -- summaries --------------------------------------------------------
    def compute_summaries(self) -> None:
        project, graph = self.ctx.project, self.ctx.graph
        for _ in range(12):  # call chains deeper than this don't exist here
            changed = False
            for fqn, fn in project.functions.items():
                params = fn.params
                for site in graph.by_caller.get(fqn, ()):
                    reqs = self._requirements_for_summary(site)
                    for pos, kind in reqs.items():
                        if pos >= len(site.node.args):
                            continue
                        arg = site.node.args[pos]
                        if not isinstance(arg, ast.Name):
                            continue
                        if arg.id not in params:
                            continue
                        pidx = params.index(arg.id)
                        cur = self.summaries.setdefault(fqn, {})
                        if cur.get(pidx) != kind:
                            # "value" wins ties: it is the stricter contract
                            if cur.get(pidx) is None or kind == "value":
                                cur[pidx] = kind
                                changed = True
            if not changed:
                break

    def _requirements_for_summary(self, site: CallSite) -> dict[int, str]:
        direct = self._direct_sink(site)
        if direct is not None:
            return direct
        if site.callee is not None and site.callee in self.summaries:
            fn = self.ctx.project.functions.get(site.callee)
            shift = 1 if (fn is not None and fn.cls is not None
                          and site.receiver is not None) else 0
            return {
                pos - shift: kind
                for pos, kind in self.summaries[site.callee].items()
                if pos - shift >= 0
            }
        return {}

    # -- reporting --------------------------------------------------------
    def report(self, mod, node, message: str) -> None:
        self.findings.append((mod, node, "dispatch-contract", message))

    def run(self) -> Iterator[RawFinding]:
        self.compute_summaries()
        self.ctx.artifacts["contract_summaries"] = dict(self.summaries)
        for fqn in sorted(self.ctx.project.functions):
            fn: FunctionInfo = self.ctx.project.functions[fqn]
            flow = _ContractFlow(self, fn, fn.module)
            flow.run(fn.node)
        # determinism: findings sorted later by the engine; de-dup repeats
        # from loop-fixpoint repasses here.
        seen: set[tuple] = set()
        for mod, node, rid, msg in self.findings:
            key = (mod.relpath, getattr(node, "lineno", 0),
                   getattr(node, "col_offset", 0), rid, msg)
            if key in seen:
                continue
            seen.add(key)
            yield mod, node, rid, msg


def _run(ctx: AnalysisContext) -> Iterator[RawFinding]:
    return _ContractsPass(ctx).run()


register_analysis(Analysis(
    id="dispatch-contract",
    summary="an array with a statically known dtype/layout conflict can "
            "reach a compiled kernel entry (backends require C-contiguous "
            "float64 values and int64 indices)",
    paper="arXiv:1809.09175 §3 (portable kernels need enforced layout)",
    run=_run,
))
