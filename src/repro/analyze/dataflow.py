"""A small forward dataflow / abstract interpretation core.

The analyses in this package share one execution model: walk a function's
statements in order, keep an abstract *environment* (variable → lattice
value), split on ``if``/``try`` branches, join at merge points, and
iterate loop bodies to a fixpoint.  This module provides that driver —
:class:`ForwardAnalysis` — so each analysis only supplies its lattice and
transfer functions.

Lattice contract: values are immutable, compared with ``==``, and joined
with the analysis's :meth:`ForwardAnalysis.join_values`.  ``None`` inside
an environment means *unknown* (top).  Environments are plain dicts; the
driver copies them at branch points, joins them with
:meth:`~ForwardAnalysis.join_envs`, and drops variables that disagree
(their join is unknown) unless ``join_values`` says otherwise.

Exceptional flow: every statement that contains a call may raise.  The
driver accumulates the *union of environments observed before each
may-raise statement* of a ``try`` body and hands that to handlers and
``finally`` blocks — the exceptional-edge approximation the must-release
analysis relies on.  Loops run to a bounded fixpoint (the lattices here
are finite and tiny, so two or three passes converge; the driver caps at
``MAX_LOOP_PASSES`` and widens to unknown beyond it).
"""

from __future__ import annotations

import ast
from typing import Any

__all__ = ["ForwardAnalysis", "Env", "may_raise", "MAX_LOOP_PASSES"]

Env = dict[str, Any]

#: Fixpoint bound for loop bodies; beyond this everything widens to top.
MAX_LOOP_PASSES = 4

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def may_raise(stmt: ast.stmt) -> bool:
    """Conservative: any statement containing a call, raise or subscript
    may raise.  Constants, locals and plain attribute stores cannot (a
    ``self.x = y`` cannot fail in this codebase — no ``__slots__`` tricks
    or property setters that throw)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Subscript)):
            return True
        if isinstance(node, _FUNC_NODES):  # a nested def's body doesn't run here
            return False
    return False


class ForwardAnalysis:
    """Forward walker over one function body.  Subclass and override.

    The driver maintains ``self.env`` while walking; hooks receive the
    statement/expression plus the live environment and mutate it.  Branch
    handling, joins, loop fixpoints and exceptional edges are the
    driver's job.
    """

    def __init__(self) -> None:
        self.env: Env = {}
        self._exit_envs: list[Env] = []

    # -- hooks (override in analyses) -----------------------------------
    def join_values(self, a: Any, b: Any) -> Any:
        """Join two abstract values; default: keep only agreement."""
        return a if a == b else None

    def eval_expr(self, expr: ast.expr, env: Env) -> Any:
        """Abstract value of ``expr`` under ``env`` (default: unknown)."""
        return None

    def transfer_assign(self, target: ast.expr, value: Any,
                        node: ast.stmt, env: Env) -> None:
        """Bind ``target`` to abstract ``value`` (default: names only)."""
        if isinstance(target, ast.Name):
            if value is None:
                env.pop(target.id, None)
            else:
                env[target.id] = value

    def transfer_stmt(self, stmt: ast.stmt, env: Env) -> None:
        """Per-statement hook, called before structural handling."""

    def on_exit(self, env: Env, node: ast.stmt | None) -> None:
        """Called at every normal function exit (return / fall-through)."""

    # -- driver ----------------------------------------------------------
    def join_envs(self, a: Env, b: Env) -> Env:
        out: Env = {}
        for key in set(a) | set(b):
            if key in a and key in b:
                j = self.join_values(a[key], b[key])
                if j is not None:
                    out[key] = j
        return out

    def run(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
            initial: Env | None = None) -> list[Env]:
        """Walk ``fn``'s body; returns the environments at normal exits."""
        self.env = dict(initial) if initial else {}
        self._exit_envs = []
        env = self._walk_block(fn.body, self.env)
        if env is not None:  # fall-through exit
            self._exit_envs.append(env)
            self.on_exit(env, None)
        return self._exit_envs

    # returns the fall-through env, or None when the block cannot complete
    def _walk_block(self, body: list[ast.stmt], env: Env | None) -> Env | None:
        for stmt in body:
            if env is None:
                return None
            env = self._walk_stmt(stmt, env)
        return env

    def _walk_stmt(self, stmt: ast.stmt, env: Env) -> Env | None:
        self.transfer_stmt(stmt, env)

        if isinstance(stmt, (ast.Return,)):
            if stmt.value is not None:
                self.eval_expr(stmt.value, env)
            self._exit_envs.append(dict(env))
            self.on_exit(env, stmt)
            return None
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            return None

        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env)
            for target in stmt.targets:
                self.transfer_assign(target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval_expr(stmt.value, env)
            self.transfer_assign(stmt.target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            self.eval_expr(stmt.value, env)
            self.transfer_assign(stmt.target, None, stmt, env)
            return env
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value, env)
            return env

        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            env_t = self._walk_block(stmt.body, dict(env))
            env_f = self._walk_block(stmt.orelse, dict(env))
            return self._merge(env_t, env_f)

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter, env)
            self.transfer_assign(stmt.target, None, stmt, env)
            return self._loop(stmt.body, stmt.orelse, env)
        if isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, env)
            return self._loop(stmt.body, stmt.orelse, env)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self.transfer_assign(item.optional_vars, value, stmt, env)
            return self._walk_block(stmt.body, env)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, env)

        if isinstance(stmt, _FUNC_NODES) or isinstance(stmt, ast.ClassDef):
            return env  # nested definitions don't execute here
        return env

    def _merge(self, a: Env | None, b: Env | None) -> Env | None:
        if a is None:
            return b
        if b is None:
            return a
        return self.join_envs(a, b)

    def _loop(self, body: list[ast.stmt], orelse: list[ast.stmt],
              env: Env) -> Env | None:
        # zero iterations is always possible → start from env, iterate the
        # body joining states until stable (bounded).
        state = dict(env)
        for _ in range(MAX_LOOP_PASSES):
            after = self._walk_block(body, dict(state))
            nxt = self._merge(state, after) if after is not None else state
            if nxt == state:
                break
            state = nxt
        else:
            state = {}  # widen: give up on everything loop-carried
        return self._walk_block(orelse, state)

    def _try(self, stmt: ast.Try, env: Env) -> Env | None:
        # Exceptional entry: join of states before every may-raise
        # statement of the body (approximated statement-by-statement).
        exc_env: Env | None = None
        cur: Env | None = dict(env)
        for s in stmt.body:
            if cur is None:
                break
            if may_raise(s):
                exc_env = cur if exc_env is None else self.join_envs(exc_env, cur)
            cur = self._walk_stmt(s, cur)
            if cur is not None and may_raise(s):
                # state *after* a may-raise statement can also flow to the
                # handler (the raise can come from a later statement)
                exc_env = self.join_envs(exc_env, cur)
        body_env = cur

        handler_exits: list[Env | None] = []
        for handler in stmt.handlers:
            h_env = dict(exc_env) if exc_env is not None else dict(env)
            if handler.name:
                h_env.pop(handler.name, None)
            handler_exits.append(self._walk_block(handler.body, h_env))

        if body_env is not None:
            body_env = self._walk_block(stmt.orelse, body_env)

        merged: Env | None = body_env
        for h in handler_exits:
            merged = self._merge(merged, h)

        if stmt.finalbody:
            # finally runs on both normal and exceptional paths; we only
            # propagate the normal continuation here, but give the
            # exceptional state to the finally walk too so release
            # accounting sees it (subclasses hook transfer_stmt).
            if merged is None:
                fin_in = exc_env if exc_env is not None else dict(env)
                self._walk_block(stmt.finalbody, dict(fin_in))
                return None
            return self._walk_block(stmt.finalbody, merged)
        return merged
