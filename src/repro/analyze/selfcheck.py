"""Analyzer self-check: seeded-fault fixtures each analysis must catch.

A static analyzer that silently stops finding anything is worse than no
analyzer — CI would keep passing while the checks rot.  This module
holds one minimal *seeded bug* per analysis (a dtype-contract violation
reaching a compiled kernel, a lock acquired but not released on the
exceptional path, an unsynchronized shared-array write in a pooled task,
a hot anti-pattern one call level below the loop), runs the engine over
the fixtures in memory, and verifies every expected finding appears at
its expected line — and, just as important, that the *clean* twin of
each fixture stays clean.

``python -m repro.analyze --selfcheck`` runs it (CI does, alongside the
lint job); the test suite calls :func:`run_selfcheck` directly.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analyze.analyses import AnalyzeEngine
from repro.analyze.symbols import Project
from repro.lint.engine import LintConfig

__all__ = ["FIXTURES", "run_selfcheck"]


class Fixture:
    """One fixture module: source plus the findings it must produce."""

    def __init__(self, name: str, relpath: str, source: str,
                 expect: list[tuple[str, int]]):
        self.name = name  #: dotted module name inside the fake project
        self.relpath = relpath
        self.source = source
        #: (rule id, line) pairs that MUST be reported in this module
        self.expect = expect


# ----------------------------------------------------------------------
# dispatch-contract: a float32 array reaches a compiled kernel that the
# C ABI reads as packed float64 — silent garbage, the exact bug class
# canonical_factors guards dynamically.
# ----------------------------------------------------------------------
_CONTRACT_SRC = '''\
import numpy as np


def seeded_bad_dtype(backend, segments, n, rank):
    vals = np.zeros((n, rank), dtype=np.float32)   # WRONG dtype
    out = np.zeros((segments.max() + 1, rank))
    backend.segment_sum(vals, segments, out)       # line 7: violation
    return out


def seeded_bad_layout(backend, segments, n, rank):
    vals = np.zeros((n, rank))
    out = np.zeros((segments.max() + 1, rank))
    backend.segment_sum(vals.T, segments, out)     # line 14: transposed view
    return out


def forwards(backend, vals, segments, out):
    backend.segment_sum(vals, segments, out)


def seeded_interprocedural(backend, segments, n, rank):
    vals = np.zeros((n, rank), dtype=np.int32)     # WRONG dtype...
    out = np.zeros((segments.max() + 1, rank))
    forwards(backend, vals, segments, out)         # line 25: ...one call up
    return out


def clean(backend, segments, n, rank):
    vals = np.zeros((n, rank), dtype=np.float64)
    out = np.zeros((segments.max() + 1, rank))
    backend.segment_sum(vals, segments, out)       # fine: float64, C
    return out
'''

# ----------------------------------------------------------------------
# must-release: acquire with no release on the exceptional path, and an
# acquire that can reach a return unreleased.
# ----------------------------------------------------------------------
_LIFECYCLE_SRC = '''\
def seeded_exceptional_leak(lock, work):
    lock.acquire()              # line 2: leaks when work() raises
    work()
    lock.release()


def seeded_exit_leak(path, cond):
    fh = open(path)             # line 8: leaks on the early return
    if cond:
        return None
    data = fh.read()
    fh.close()
    return data


def clean_finally(lock, work):
    lock.acquire()
    try:
        work()
    finally:
        lock.release()


def clean_with(path):
    with open(path) as fh:
        return fh.read()
'''

# ----------------------------------------------------------------------
# escaped-shared-write: a pooled task body writing a closure array with
# no tid partitioning and no lock — the race the sanitizer hunts
# dynamically, caught before a single schedule runs.
# ----------------------------------------------------------------------
_ESCAPE_SRC = '''\
import numpy as np


def seeded_race(layer, values, ntasks):
    out = np.zeros(values.shape[1])

    def body(tid):
        out[0] += values[tid].sum()     # line 8: shared write, no guard

    layer.coforall(ntasks, body)
    return out


def clean_partitioned(layer, values, ntasks):
    out = np.zeros(ntasks)

    def body(tid):
        out[tid] = values[tid].sum()    # fine: tid-partitioned

    layer.coforall(ntasks, body)
    return out


def clean_locked(layer, values, ntasks, lock):
    out = np.zeros(values.shape[1])

    def body(tid):
        with lock:
            out[0] += values[tid].sum()  # fine: guarded

    layer.coforall(ntasks, body)
    return out
'''

# ----------------------------------------------------------------------
# hot-call: the allocation hides one call level below the hot loop, in a
# module the per-file linter does not cover.
# ----------------------------------------------------------------------
_HOT_KERNEL_SRC = '''\
from repro.fixture_helpers import accumulate


def kernel(n, out, rows):
    for i in range(n):
        accumulate(out, rows, i)
    return out
'''

_HOT_HELPER_SRC = '''\
import numpy as np


def accumulate(out, rows, i):
    tmp = np.zeros(out.shape[0])        # line 5: per-call alloc, hot caller
    tmp += rows[i]
    out += tmp
'''


FIXTURES: list[Fixture] = [
    Fixture(
        "repro.fixture_contract", "repro/fixture_contract.py",
        _CONTRACT_SRC,
        expect=[("dispatch-contract", 7), ("dispatch-contract", 14),
                ("dispatch-contract", 25)],
    ),
    Fixture(
        "repro.fixture_lifecycle", "repro/fixture_lifecycle.py",
        _LIFECYCLE_SRC,
        expect=[("must-release", 2), ("must-release", 8)],
    ),
    Fixture(
        "repro.fixture_escape", "repro/fixture_escape.py",
        _ESCAPE_SRC,
        expect=[("escaped-shared-write", 8)],
    ),
    Fixture(
        # relpath inside hot_modules so its loop seeds the hot set ...
        "repro.mttkrp.fixture_kernel", "repro/mttkrp/fixture_kernel.py",
        _HOT_KERNEL_SRC,
        expect=[],
    ),
    Fixture(
        # ... while the helper lives outside the linter's hot coverage
        "repro.fixture_helpers", "repro/fixture_helpers.py",
        _HOT_HELPER_SRC,
        expect=[("hot-call", 5)],
    ),
]


def fixture_project(config: LintConfig | None = None) -> Project:
    """The in-memory seeded-fault project (nothing touches the disk)."""
    project = Project(config if config is not None else LintConfig())
    for fx in FIXTURES:
        project.add_module(
            fx.name, Path(f"<selfcheck:{fx.relpath}>"), fx.relpath, fx.source,
        )
    return project


def run_selfcheck() -> list[str]:
    """Run every analysis over the fixtures; return failure descriptions.

    Empty list == the analyzer still catches every seeded bug class and
    reports nothing on the clean twins.
    """
    for fx in FIXTURES:  # the fixtures themselves must stay valid python
        ast.parse(fx.source)

    engine = AnalyzeEngine(LintConfig())
    findings = engine.analyze_project(fixture_project())
    got = {(f.path, f.rule, f.line) for f in findings if not f.suppressed}

    failures: list[str] = []
    expected: set[tuple[str, str, int]] = set()
    for fx in FIXTURES:
        for rule, line in fx.expect:
            expected.add((fx.relpath, rule, line))
            if (fx.relpath, rule, line) not in got:
                failures.append(
                    f"MISSED: {fx.relpath}:{line} should raise [{rule}] "
                    f"but the analysis no longer finds it"
                )
    for path, rule, line in sorted(got - expected):
        failures.append(
            f"SPURIOUS: {path}:{line} [{rule}] fires on a clean fixture "
            f"region — the analysis got noisier"
        )
    return failures
