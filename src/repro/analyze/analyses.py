"""Analysis registry and the whole-program engine.

Each analysis is registered here with an id, a summary and a ``run``
callable over an :class:`AnalysisContext` (the parsed project, its call
graph and the lint config).  The engine assembles the context once, runs
every selected analysis, converts their raw results into
:class:`repro.lint.engine.Finding` records, and then reuses the lint
machinery wholesale: the same ``# reprolint: allow(rule) — reason``
suppressions (matched by line, statement span and enclosing ``def``
scope), the same code-identity fingerprints, and the same deterministic
report renderers.

The analysis rule ids are also registered into :data:`repro.lint.RULES`
(category ``"analysis"``, ``check=None``) so the per-module linter
recognizes them in suppression comments; the *unused*-suppression audit
for those ids lives here, because only the whole-program engine can tell
whether such a suppression still silences anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.lint.engine import (
    Finding,
    LintConfig,
    LintEngine,
    Rule,
    RULES,
    apply_config_allowlist,
    assign_fingerprints,
    collect_suppressions,
    register,
)
from repro.analyze.callgraph import CallGraph, build_callgraph
from repro.analyze.symbols import ModuleInfo, Project, build_project

__all__ = [
    "Analysis",
    "ANALYSES",
    "AnalysisContext",
    "AnalyzeEngine",
    "RawFinding",
    "register_analysis",
]

#: One raw result: (module, node, rule id, message).
RawFinding = tuple[ModuleInfo, ast.AST, str, str]


@dataclass(frozen=True)
class Analysis:
    """One whole-program analysis: identity plus the pass itself."""

    id: str
    summary: str
    paper: str | None = None
    run: Callable[["AnalysisContext"], Iterator[RawFinding]] | None = None


#: Global analysis registry, id → :class:`Analysis`.
ANALYSES: dict[str, Analysis] = {}


def register_analysis(analysis: Analysis) -> Analysis:
    """Add to :data:`ANALYSES` and mirror the id into the lint registry."""
    if analysis.id in ANALYSES:
        raise ValueError(f"duplicate analysis id {analysis.id!r}")
    ANALYSES[analysis.id] = analysis
    if analysis.id not in RULES:
        register(Rule(
            id=analysis.id, category="analysis",
            summary=analysis.summary, paper=analysis.paper,
        ))
    return analysis


class AnalysisContext:
    """Everything an analysis pass may consult, built once per run."""

    def __init__(self, project: Project, graph: CallGraph, config: LintConfig):
        self.project = project
        self.graph = graph
        self.config = config
        #: scratch shared between analyses (e.g. escape → fuzzer seeds)
        self.artifacts: dict[str, object] = {}


class AnalyzeEngine:
    """Runs the registered whole-program analyses over a source tree."""

    def __init__(self, config: LintConfig | None = None, *,
                 analyses: Iterable[str] | None = None,
                 package_anchor: str = "repro"):
        # analysis modules register themselves on import
        from repro.analyze import contracts, escape, hotness, lifecycle  # noqa: F401

        self.config = config if config is not None else LintConfig()
        selected = set(analyses) if analyses is not None else set(ANALYSES)
        unknown = selected - set(ANALYSES)
        if unknown:
            raise ValueError(f"unknown analysis id(s): {sorted(unknown)}")
        self.analysis_ids = tuple(sorted(selected))
        self.package_anchor = package_anchor
        #: Context of the last run (exposes artifacts such as fuzzer seeds).
        self.last_context: AnalysisContext | None = None
        #: Per-run cache: relpath → parsed suppression comments.
        self._supp_cache: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def analyze_paths(self, paths: Iterable[Path | str]) -> list[Finding]:
        project = build_project(
            [Path(p) for p in paths], config=self.config,
            package_anchor=self.package_anchor,
        )
        return self.analyze_project(project)

    def analyze_project(self, project: Project) -> list[Finding]:
        graph = build_callgraph(project)
        ctx = AnalysisContext(project, graph, self.config)
        self.last_context = ctx
        self._supp_cache = {}

        findings: list[Finding] = []
        for relpath, message in sorted(project.parse_errors.items()):
            findings.append(Finding(
                rule="parse-error", path=relpath, line=1, col=0,
                message=message, snippet="", scope="<module>",
            ))
        for aid in self.analysis_ids:
            analysis = ANALYSES[aid]
            if analysis.run is None:
                continue
            for mod, node, rule_id, message in analysis.run(ctx):
                findings.append(Finding(
                    rule=rule_id, path=mod.relpath,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    snippet=mod.view.snippet(node),
                    scope=mod.view.scope_name(node),
                ))
                self._maybe_suppress(findings[-1], mod, node)

        findings.extend(self._audit_analysis_suppressions())
        findings.sort(key=Finding.sort_key)
        assign_fingerprints(findings)
        apply_config_allowlist(findings, self.config)
        return findings

    # ------------------------------------------------------------------
    # suppressions: same comment syntax, matched through the lint engine
    # ------------------------------------------------------------------
    def _suppressions(self, mod: ModuleInfo):
        cache = self._supp_cache.get(mod.relpath)
        if cache is None:
            cache = collect_suppressions(mod.source)
            self._supp_cache[mod.relpath] = cache
        return cache

    def _maybe_suppress(self, finding: Finding, mod: ModuleInfo,
                        node: ast.AST) -> None:
        supps = self._suppressions(mod)
        # Delegate to the lint engine's matcher so the two tools can never
        # drift: line, multi-line statement span, enclosing def/class.
        LintEngine._maybe_suppress(
            _ENGINE_SHIM, finding, mod.view, supps, node=node,
        )

    def _audit_analysis_suppressions(self) -> list[Finding]:
        """Unused suppressions naming *only* analysis rules.

        The per-module linter skips these (it can never match them); this
        engine is the one that knows whether they still silence anything.
        """
        from repro.lint.engine import _analysis_only

        if self.last_context is None:
            return []
        out: list[Finding] = []
        for mod in sorted(self.last_context.project.modules.values(),
                          key=lambda m: m.relpath):
            for supp in self._suppressions(mod).values():
                if supp.used or supp.reason is None:
                    continue
                if not _analysis_only(supp.rules):
                    continue
                out.append(Finding(
                    rule="unused-suppression", path=mod.relpath,
                    line=supp.line, col=0,
                    message=(
                        f"suppression for {', '.join(supp.rules)} matches no "
                        "analyzer finding — remove it"
                    ),
                    snippet=mod.view.lines[supp.line - 1].strip()
                    if supp.line <= len(mod.view.lines) else "",
                    scope="<module>",
                ))
        return out


class _EngineShim:
    """Just enough of a LintEngine to borrow its suppression matcher."""

    @staticmethod
    def _def_lines(mod, finding):
        return LintEngine._def_lines(mod, finding)


_ENGINE_SHIM = _EngineShim()


def render_analysis_catalog() -> str:
    """``--list-analyses`` output: id, paper mapping, summary."""
    lines = []
    for aid in sorted(ANALYSES):
        a = ANALYSES[aid]
        paper = f" [{a.paper}]" if a.paper else ""
        lines.append(f"{aid:<24} analysis{paper}")
        lines.append(f"    {a.summary}")
    return "\n".join(lines) + "\n"
