"""Call graph over a :class:`~repro.analyze.symbols.Project`.

Every call expression in every function body is resolved as far as static
information allows:

* plain names through the module's symbol/import tables
  (``mttkrp_csf(...)`` → ``repro.mttkrp.variants.mttkrp_csf``);
* attribute chains rooted at imported modules
  (``_obs.span(...)`` → ``repro.observe.spans.span``);
* ``self.method()`` through the enclosing class and its project-visible
  bases;
* method calls on locals whose class is statically known from a
  constructor assignment in the same function
  (``arena = ShmArena(); ...; arena.close()`` →
  ``repro.distributed.shm.ShmArena.close``) — a one-function type
  inference shared with the dataflow analyses;
* constructor calls resolve to the class (edge to ``__init__`` when the
  class defines one).

Unresolvable method calls keep their trailing attribute name so the
lifecycle/contract analyses can still pattern-match receiver protocols
(``.acquire`` / ``.close`` / ``.apply``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analyze.symbols import ClassInfo, FunctionInfo, ModuleInfo, Project, _dotted_name

__all__ = ["CallSite", "CallGraph", "build_callgraph", "local_types"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class CallSite:
    """One call expression inside one function."""

    caller: str  #: FQN of the enclosing function ("<module>" body → module name)
    node: ast.Call
    module: ModuleInfo
    callee: str | None = None  #: resolved FQN (function, method or class)
    callee_class: str | None = None  #: class FQN when this is a constructor
    attr: str | None = None  #: trailing attribute for unresolved method calls
    receiver: str | None = None  #: ``ast.dump`` of the receiver expression


@dataclass
class CallGraph:
    """Resolved call sites plus forward/reverse adjacency."""

    project: Project
    sites: list[CallSite] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)
    reverse: dict[str, set[str]] = field(default_factory=dict)
    #: call sites grouped by caller FQN, in source order.
    by_caller: dict[str, list[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        self.by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.edges.setdefault(site.caller, set()).add(site.callee)
            self.reverse.setdefault(site.callee, set()).add(site.caller)

    # ------------------------------------------------------------------
    def callees(self, fqn: str) -> set[str]:
        return self.edges.get(fqn, set())

    def callers(self, fqn: str) -> set[str]:
        return self.reverse.get(fqn, set())

    def reachable_from(self, seeds: set[str]) -> set[str]:
        """Transitive closure of ``seeds`` along call edges (seeds included)."""
        out = set(seeds)
        stack = list(seeds)
        while stack:
            cur = stack.pop()
            for nxt in self.edges.get(cur, ()):
                if nxt not in out:
                    out.add(nxt)
                    stack.append(nxt)
        return out

    def transitive_callers(self, seeds: set[str]) -> set[str]:
        out = set(seeds)
        stack = list(seeds)
        while stack:
            cur = stack.pop()
            for nxt in self.reverse.get(cur, ()):
                if nxt not in out:
                    out.add(nxt)
                    stack.append(nxt)
        return out


# ----------------------------------------------------------------------
# one-function type inference
# ----------------------------------------------------------------------
def local_types(project: Project, mod: ModuleInfo,
                fn: ast.AST) -> dict[str, str]:
    """Map local variable names to class FQNs where statically evident.

    Covers the dominant idioms: ``x = SomeClass(...)`` constructor
    assignment, ``x = SomeClass.attach(...)`` classmethod-constructor
    (resolves to the class when the attribute starts with a known class),
    and ``with SomeClass(...) as x:``.  Reassignment to anything else
    forgets the binding.
    """
    types: dict[str, str] = {}

    def class_of(call: ast.AST) -> str | None:
        if not isinstance(call, ast.Call):
            return None
        dotted = _dotted_name(call.func)
        if dotted is None:
            return None
        resolved = project.resolve(mod, dotted)
        if project.klass(resolved) is not None:
            return resolved
        # SomeClass.attach(...) — classmethod constructors return the class
        head, _, tail = resolved.rpartition(".")
        if tail and project.klass(head) is not None:
            return head
        return None

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            cls = class_of(node.value)
            name = node.targets[0].id
            if cls is not None:
                types[name] = cls
            else:
                types.pop(name, None)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    cls = class_of(item.context_expr)
                    if cls is not None:
                        types[item.optional_vars.id] = cls
    return types


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def resolve_call(project: Project, mod: ModuleInfo, caller: FunctionInfo | None,
                 call: ast.Call, types: dict[str, str]) -> CallSite:
    """Resolve one call expression into a :class:`CallSite`."""
    caller_fqn = caller.qualname if caller is not None else mod.name
    site = CallSite(caller=caller_fqn, node=call, module=mod)
    f = call.func
    if isinstance(f, ast.Attribute):
        site.attr = f.attr
        site.receiver = ast.dump(f.value)

    # self.method() through the enclosing class hierarchy
    if (
        isinstance(f, ast.Attribute)
        and isinstance(f.value, ast.Name)
        and f.value.id in ("self", "cls")
        and caller is not None
        and caller.cls is not None
    ):
        m = project.method(caller.cls, f.attr)
        if m is not None:
            site.callee = m.qualname
            return site

    # receiver with a statically known class: x = ShmArena(); x.close()
    if (
        isinstance(f, ast.Attribute)
        and isinstance(f.value, ast.Name)
        and f.value.id in types
    ):
        cls = project.klass(types[f.value.id])
        if cls is not None:
            m = project.method(cls, f.attr)
            if m is not None:
                site.callee = m.qualname
                site.receiver = ast.dump(f.value)
                return site

    dotted = _dotted_name(f)
    if dotted is None:
        return site
    resolved = project.resolve(mod, dotted)

    cls = project.klass(resolved)
    if cls is not None:  # constructor call
        site.callee = resolved
        site.callee_class = cls.qualname
        return site

    fn = project.function(resolved)
    if fn is not None:
        site.callee = fn.qualname
        return site

    # ClassName.method(...) used unbound / classmethod style
    head, _, tail = resolved.rpartition(".")
    if tail:
        owner = project.klass(head)
        if owner is not None:
            m = project.method(owner, tail)
            if m is not None:
                site.callee = m.qualname
                return site
    # unresolved: keep the import-expanded dotted form for pattern matching
    site.callee = None
    if site.attr is None and "." not in dotted:
        site.attr = dotted
    return site


def build_callgraph(project: Project) -> CallGraph:
    """Resolve every call site in every module of ``project``."""
    graph = CallGraph(project)
    for mod in sorted(project.modules.values(), key=lambda m: m.name):
        # module-level calls attribute to the module itself
        funcs: list[tuple[FunctionInfo | None, ast.AST]] = [(None, mod.tree)]
        for fn in mod.functions.values():
            funcs.append((fn, fn.node))
        for cls in mod.classes.values():
            for m in cls.methods.values():
                funcs.append((m, m.node))
        for owner, root in funcs:
            types = local_types(project, mod, root)
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                # skip calls that belong to a *nested* def collected
                # separately (methods inside classes when walking module)
                if root is mod.tree and _inside_function(mod, node):
                    continue
                graph.add(resolve_call(project, mod, owner, node, types))
    return graph


def _inside_function(mod: ModuleInfo, node: ast.AST) -> bool:
    for a in mod.view.ancestors(node):
        if isinstance(a, _FUNC_NODES):
            return True
    return False
