"""Static race pre-screen: shared-array writes reachable from tasks.

The dynamic sanitizer (:mod:`repro.sanitize`) finds real races by
perturbing schedules, but its search is only as good as its seeds.  This
analysis walks the task-dispatch boundary statically — everything passed
to ``coforall``/``forall``/``WorkerPool.run``/``submit`` or
``threading.Thread(target=...)`` — computes the set of functions those
task bodies can reach, and inside that set flags **writes to arrays that
escape the task**: closure variables of a nested task body, parameters
of a dispatched function, or ``self`` state.  A write is exonerated when
the model can see the discipline the paper prescribes:

* the index is derived from the task id (``out[tid] = ...`` and the
  block-partitioned ``out[lo:hi]`` where ``lo = tid * chunk`` — disjoint
  by construction, the §IV decomposition);
* it is lexically under a lock (``with self._lock:`` / a
  :mod:`repro.runtime.locks` pool guard — Fig 4's discipline);
* the target is a fresh local allocation (private to the task).

Everything else is a *candidate* race site.  Besides reporting
``escaped-shared-write`` findings, the pass publishes a prioritized site
list in ``AnalysisContext.artifacts["race_sites"]``; ``repro analyze
--seeds-out`` serializes it for
:class:`repro.sanitize.fuzz.SchedulePerturber`, which biases its
schedule perturbation toward the implicated sites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.analyses import (
    Analysis,
    AnalysisContext,
    RawFinding,
    register_analysis,
)
from repro.analyze.symbols import FunctionInfo, ModuleInfo, _dotted_name

__all__ = ["DISPATCH_ATTRS", "race_sites"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: ``receiver.<attr>(callable, ...)`` task-dispatch entry points.
DISPATCH_ATTRS = frozenset({"coforall", "forall", "run", "submit", "begin"})

#: Names that guard a region when they appear in a ``with`` item.
_LOCKISH = ("lock", "mutex", "guard", "sem")


def _is_lock_expr(expr: ast.expr) -> bool:
    for n in ast.walk(expr):
        name = None
        if isinstance(n, ast.Name):
            name = n.id
        elif isinstance(n, ast.Attribute):
            name = n.attr
        if name is not None and any(tok in name.lower() for tok in _LOCKISH):
            return True
    return False


class _TaskBody:
    """One analyzable task entry: a function node plus its shared names."""

    def __init__(self, mod: ModuleInfo, node, qualname: str,
                 shared: set[str], task_params: set[str],
                 origin: str):
        self.mod = mod
        self.node = node
        self.qualname = qualname
        #: names that refer to memory visible outside this task
        self.shared = shared
        #: parameters carrying the task id (their derivations partition writes)
        self.task_params = task_params
        self.origin = origin  #: "path:line" of the dispatch site


def _local_names(fn) -> set[str]:
    """Names bound inside the function: params, assignments, for-targets."""
    out: set[str] = set()
    a = fn.args
    for p in a.posonlyargs + a.args + a.kwonlyargs:
        out.add(p.arg)
    if a.vararg:
        out.add(a.vararg.arg)
    if a.kwarg:
        out.add(a.kwarg.arg)
    for n in ast.walk(fn):
        if isinstance(n, ast.Assign):
            for t in n.targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        elif isinstance(n, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(n.target, ast.Name):
                out.add(n.target.id)
        elif isinstance(n, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(n.target):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
        elif isinstance(n, (ast.With, ast.AsyncWith)):
            for item in n.items:
                if isinstance(item.optional_vars, ast.Name):
                    out.add(item.optional_vars.id)
        elif isinstance(n, ast.comprehension):
            for sub in ast.walk(n.target):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
    return out


#: Allocators producing task-private arrays when assigned to a local.
_PRIVATE_ALLOC = frozenset({
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "copy", "array", "arange",
})


def _private_locals(fn) -> set[str]:
    """Locals assigned from fresh allocations — private to the task."""
    out: set[str] = set()
    for n in ast.walk(fn):
        if not (isinstance(n, ast.Assign) and len(n.targets) == 1
                and isinstance(n.targets[0], ast.Name)):
            continue
        v = n.value
        if (
            isinstance(v, ast.Call)
            and isinstance(v.func, ast.Attribute)
            and v.func.attr in _PRIVATE_ALLOC
        ):
            out.add(n.targets[0].id)
        elif isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute) \
                and v.func.attr == "copy":
            out.add(n.targets[0].id)
    return out


def _tid_derived(fn, task_params: set[str]) -> set[str]:
    """Task params plus locals computed from them (``lo = tid * chunk``)."""
    derived = set(task_params)
    for _ in range(3):  # chains like lo = tid*c; hi = lo+c converge fast
        changed = False
        for n in ast.walk(fn):
            if not (isinstance(n, ast.Assign) and len(n.targets) == 1
                    and isinstance(n.targets[0], ast.Name)):
                continue
            name = n.targets[0].id
            if name in derived:
                continue
            uses = {s.id for s in ast.walk(n.value) if isinstance(s, ast.Name)}
            if uses & derived:
                derived.add(name)
                changed = True
        if not changed:
            break
    return derived


class _EscapePass:
    def __init__(self, ctx: AnalysisContext):
        self.ctx = ctx
        self.findings: list[RawFinding] = []
        self.sites: list[dict] = []
        self._seen: set[tuple] = set()

    # -- dispatch discovery ------------------------------------------------
    def _callable_args(self, call: ast.Call) -> list[ast.expr]:
        out = []
        f = call.func
        if isinstance(f, ast.Attribute) and f.attr in DISPATCH_ATTRS:
            out.extend(call.args)
            out.extend(kw.value for kw in call.keywords
                       if kw.arg in ("body", "fn", "func"))
        else:
            dotted = _dotted_name(f) or ""
            tail = dotted.rsplit(".", 1)[-1]
            if tail == "Thread":
                out.extend(kw.value for kw in call.keywords
                           if kw.arg == "target")
        return [a for a in out if isinstance(a, (ast.Name, ast.Attribute))]

    def _task_bodies(self) -> list[_TaskBody]:
        bodies: list[_TaskBody] = []
        project = self.ctx.project
        for mod in sorted(project.modules.values(), key=lambda m: m.name):
            for call in mod.view.walk(ast.Call):
                for arg in self._callable_args(call):
                    origin = f"{mod.relpath}:{call.lineno}"
                    body = self._resolve_body(mod, call, arg, origin)
                    if body is not None:
                        bodies.append(body)
        return bodies

    def _resolve_body(self, mod: ModuleInfo, call: ast.Call,
                      arg: ast.expr, origin: str) -> _TaskBody | None:
        # nested def in an enclosing function: `def body(tid): ...;
        # layer.coforall(n, body)` — the dominant idiom in this tree
        if isinstance(arg, ast.Name):
            for anc in mod.view.ancestors(call):
                if isinstance(anc, _FUNC_NODES):
                    for stmt in ast.walk(anc):
                        if isinstance(stmt, _FUNC_NODES) \
                                and stmt is not anc and stmt.name == arg.id:
                            return self._nested_body(mod, anc, stmt, origin)
                    break
        # a project-level function/method passed by (dotted) name
        dotted = _dotted_name(arg)
        if dotted is None:
            return None
        fn = self.ctx.project.function(self.ctx.project.resolve(mod, dotted))
        if fn is None:
            return None
        params = fn.params
        start = 1 if fn.cls is not None else 0
        shared = set(params[start:]) | {"self"}
        task_params = {params[start]} if len(params) > start else set()
        return _TaskBody(fn.module, fn.node, fn.qualname, shared,
                         task_params, origin)

    def _nested_body(self, mod: ModuleInfo, outer, inner,
                     origin: str) -> _TaskBody:
        locals_ = _local_names(inner)
        free = {
            n.id for n in ast.walk(inner)
            if isinstance(n, ast.Name) and n.id not in locals_
        }
        params = [p.arg for p in inner.args.args]
        task_params = {params[0]} if params else set()
        qual = f"{mod.name}.{outer.name}.<{inner.name}>"
        return _TaskBody(mod, inner, qual, free | {"self"}, task_params,
                         origin)

    # -- write screening ---------------------------------------------------
    def _screen(self, body: _TaskBody) -> None:
        fn = body.node
        mod = body.mod
        private = _private_locals(fn)
        tid_names = _tid_derived(fn, body.task_params)
        shared = (body.shared - private) - tid_names

        def base_name(t: ast.expr) -> str | None:
            cur = t
            while isinstance(cur, ast.Subscript):
                cur = cur.value
            if isinstance(cur, ast.Name):
                return cur.id
            if isinstance(cur, ast.Attribute) and \
                    isinstance(cur.value, ast.Name) and cur.value.id == "self":
                return "self"
            return None

        def partitioned(t: ast.Subscript) -> bool:
            names = {n.id for n in ast.walk(t.slice)
                     if isinstance(n, ast.Name)}
            return bool(names & tid_names)

        def locked(node: ast.AST) -> bool:
            for anc in mod.view.ancestors(node):
                if anc is fn:
                    return False
                if isinstance(anc, (ast.With, ast.AsyncWith)):
                    if any(_is_lock_expr(i.context_expr) for i in anc.items):
                        return True
                # Fig 4 discipline: pool.acquire(row) ... pool.release(row)
                if isinstance(anc, ast.Try):
                    for fin in anc.finalbody:
                        for c in ast.walk(fin):
                            if isinstance(c, ast.Call) and isinstance(
                                    c.func, ast.Attribute) \
                                    and c.func.attr == "release":
                                return True
            return False

        for n in ast.walk(fn):
            target: ast.expr | None = None
            score = 0
            label = ""
            if isinstance(n, (ast.Assign, ast.AugAssign)):
                tgts = n.targets if isinstance(n, ast.Assign) else [n.target]
                for t in tgts:
                    if isinstance(t, ast.Subscript):
                        target = t
                        label = "indexed store"
                        score = 2
            elif isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute):
                if n.func.attr == "at" and n.args:
                    target = n.args[0]
                    label = "ufunc.at scatter"
                    score = 3
                elif n.func.attr == "fill":
                    target = n.func.value
                    label = "whole-array fill"
                    score = 3
            if target is None:
                continue
            base = base_name(target)
            if base is None or base not in shared:
                continue
            if isinstance(target, ast.Subscript) and partitioned(target):
                continue
            if locked(n):
                continue
            key = (mod.relpath, n.lineno, n.col_offset)
            if key in self._seen:
                continue
            self._seen.add(key)
            self.findings.append((mod, n, "escaped-shared-write", (
                f"{label} to `{base}`, which escapes the task dispatched at "
                f"{body.origin}, with no task-id partitioning or lock in "
                f"scope — a static race candidate (paper Fig 4): partition "
                f"by tid, guard with a lock pool, or accumulate privately "
                f"and merge"
            )))
            self.sites.append({
                "path": mod.relpath,
                "line": n.lineno,
                "scope": body.qualname,
                "array": base,
                "kind": label,
                "dispatch": body.origin,
                "weight": score,
            })

    # -- driver ------------------------------------------------------------
    def run(self) -> Iterator[RawFinding]:
        bodies = self._task_bodies()
        screened: set[int] = set()
        for body in bodies:
            if id(body.node) in screened:
                continue
            screened.add(id(body.node))
            self._screen(body)
        # functions *called from* task bodies inherit the screen: their
        # parameters alias the task's shared arrays
        reach_seeds = {b.qualname for b in bodies
                       if b.qualname in self.ctx.project.functions}
        for body in bodies:
            # calls made inside nested bodies are attributed to the
            # enclosing function by the call graph; include both
            reach_seeds.add(body.qualname.rsplit(".<", 1)[0])
        for fqn in sorted(self.ctx.graph.reachable_from(reach_seeds)):
            fn = self.ctx.project.functions.get(fqn)
            if fn is None or id(fn.node) in screened:
                continue
            screened.add(id(fn.node))
            params = fn.params
            start = 1 if fn.cls is not None else 0
            if len(params) <= start:
                continue
            body = _TaskBody(
                fn.module, fn.node, fn.qualname,
                set(params[start:]) | {"self"}, set(),
                origin="(transitively from a task dispatch)",
            )
            # only flag unambiguous patterns at this distance: fills
            self._screen_transitive(body)
        self.sites.sort(key=lambda s: (-s["weight"], s["path"], s["line"]))
        self.ctx.artifacts["race_sites"] = list(self.sites)
        yield from self.findings

    def _screen_transitive(self, body: _TaskBody) -> None:
        """At transitive distance only ufunc.at/fill are certain enough."""
        fn, mod = body.node, body.mod
        private = _private_locals(fn)
        shared = body.shared - private
        for n in ast.walk(fn):
            if not (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)):
                continue
            if n.func.attr != "fill":
                continue
            t = n.func.value
            if not (isinstance(t, ast.Name) and t.id in shared):
                continue
            for anc in mod.view.ancestors(n):
                if isinstance(anc, (ast.With, ast.AsyncWith)) and any(
                        _is_lock_expr(i.context_expr) for i in anc.items):
                    break
            else:
                key = (mod.relpath, n.lineno, n.col_offset)
                if key in self._seen:
                    continue
                self._seen.add(key)
                self.findings.append((mod, n, "escaped-shared-write", (
                    f"whole-array fill of parameter `{t.id}` in a function "
                    f"reachable from a task dispatch, unguarded — if two "
                    f"tasks share this array the fill races (paper Fig 4)"
                )))
                self.sites.append({
                    "path": mod.relpath, "line": n.lineno,
                    "scope": body.qualname, "array": t.id,
                    "kind": "whole-array fill", "dispatch": body.origin,
                    "weight": 1,
                })


def race_sites(ctx: AnalysisContext) -> list[dict]:
    """The prioritized race-candidate list from the last escape run."""
    return list(ctx.artifacts.get("race_sites", []))


def _run(ctx: AnalysisContext) -> Iterator[RawFinding]:
    return _EscapePass(ctx).run()


register_analysis(Analysis(
    id="escaped-shared-write",
    summary="a write to an array that escapes a dispatched task (closure "
            "capture, shared parameter, self state) with no tid "
            "partitioning or lock in scope — a static race candidate, "
            "also exported as sanitizer fuzz seeds",
    paper="Fig 4 (shared-state updates need lock pools / partitioning)",
    run=_run,
))
