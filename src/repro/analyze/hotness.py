"""Interprocedural hot-context propagation (Fig 1–4 one level down).

The per-module linter enforces the paper's performance discipline only
inside the configured *hot modules* — and only lexically: an allocation
is flagged when it sits inside a loop the linter can see.  That misses
the classic evasion: the allocation moves into a helper one call level
below the loop.  ``np.zeros`` inside ``_accumulate`` costs exactly the
same when ``_accumulate`` is called from the MTTKRP iteration as the
inline version the linter would have caught (paper Fig 1).

This analysis closes the gap interprocedurally: every call site whose
lexical position is a hot context (loop body / amortized-kernel body in
a hot module) seeds the *hot set*; the call graph's transitive closure
extends it downward.  Functions in the hot set that live in modules the
linter already covers are skipped (no double reporting); for the rest,
the Fig 1–4 anti-pattern checks run over the whole function body — being
called per-iteration makes the entire body hot — and findings carry the
call chain back to the loop that makes them hot.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.analyses import (
    Analysis,
    AnalysisContext,
    RawFinding,
    register_analysis,
)
from repro.lint.rules_perf import (
    _ALLOCATORS,
    _is_np_call,
    _is_zero_size,
)

__all__ = ["hot_functions"]


def _seed_sites(ctx: AnalysisContext) -> dict[str, str]:
    """Callee FQN → "relpath:line" of the hot call that seeds it."""
    seeds: dict[str, str] = {}
    cfg = ctx.config
    for site in ctx.graph.sites:
        if site.callee is None:
            continue
        mod = site.module
        if not mod.view.matches(cfg.hot_modules, cfg.hot_exclude):
            continue
        if mod.view.hot_context(site.node) is None:
            continue
        origin = f"{mod.relpath}:{site.node.lineno}"
        # deterministic: keep the lexically first seeding site
        prev = seeds.get(site.callee)
        if prev is None or origin < prev:
            seeds[site.callee] = origin
    return seeds


def hot_functions(ctx: AnalysisContext) -> dict[str, str]:
    """All functions transitively callable from a hot call site, mapped
    to the hot origin that makes them hot (shortest-path, deterministic)."""
    seeds = _seed_sites(ctx)
    hot: dict[str, str] = dict(seeds)
    frontier = sorted(seeds)
    while frontier:
        nxt: list[str] = []
        for fqn in frontier:
            origin = hot[fqn]
            for callee in sorted(ctx.graph.callees(fqn)):
                if callee in hot:
                    continue
                hot[callee] = f"{origin} via {fqn.rsplit('.', 1)[-1]}()"
                nxt.append(callee)
        frontier = nxt
    return hot


def _check_body(mod, fn, origin: str) -> Iterator[tuple[ast.AST, str]]:
    """Fig 1–4 anti-patterns over a whole (hot-inherited) function body."""
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            f = node.func
            if _is_np_call(node, _ALLOCATORS) and not _is_zero_size(node):
                yield node, (
                    f"np.{f.attr} allocates in a function called from the "
                    f"hot loop at {origin} (paper Fig 1 one call level "
                    f"down): hoist the buffer to the caller or serve it "
                    f"from a Workspace"
                )
            elif (
                isinstance(f, ast.Attribute)
                and f.attr == "copy"
                and not node.args
                and isinstance(f.value, ast.Subscript)
            ):
                yield node, (
                    f"row slice-copy in a function called from the hot "
                    f"loop at {origin} (paper Figs 2–3): take a view or a "
                    f"plan-owned gather instead"
                )
            elif (
                isinstance(f, ast.Attribute)
                and f.attr == "at"
                and isinstance(f.value, ast.Attribute)
                and isinstance(f.value.value, ast.Name)
                and f.value.value.id in ("np", "numpy")
            ):
                yield node, (
                    f"np.{f.value.attr}.at scatter in a function called "
                    f"from the hot loop at {origin} (paper Fig 4): use a "
                    f"cached RowScatter/SegmentSum plan"
                )


def _run(ctx: AnalysisContext) -> Iterator[RawFinding]:
    cfg = ctx.config
    hot = hot_functions(ctx)
    ctx.artifacts["hot_functions"] = dict(hot)
    for fqn in sorted(hot):
        fn = ctx.project.functions.get(fqn)
        if fn is None:
            continue
        mod = fn.module
        # the linter already polices hot modules lexically — skip them
        if mod.view.matches(cfg.hot_modules, cfg.hot_exclude):
            continue
        for node, message in _check_body(mod, fn, hot[fqn]):
            yield mod, node, "hot-call", message


register_analysis(Analysis(
    id="hot-call",
    summary="a function transitively called from a hot kernel loop "
            "allocates/copies/scatters per call — the Fig 1–4 "
            "anti-patterns hidden one call level below the loop",
    paper="Fig 1 (Array-opt), Figs 2–3 (slicing), Fig 4 (scatter)",
    run=_run,
))
