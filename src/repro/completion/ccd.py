"""CCD++ — cyclic coordinate descent for tensor completion.

CCD++ updates one rank-one component at a time: for component ``r`` and
mode ``m``, with the residual ``ρ_x = v_x − ẑ_x`` maintained across
updates, each scalar ``A^m[i, r]`` has the closed form

    A^m[i, r] = Σ_{x ∈ Ω_i} ρ̂_x q_x / (λ + Σ_{x ∈ Ω_i} q_x²)

where ``ρ̂`` is the residual with component ``r``'s old contribution added
back and ``q_x = Π_{k≠m} A^k[i_k, r]`` is the component's other-mode
product.  Every column update is one ``bincount`` pass over the nonzeros,
so an epoch is ``O(R · N · nnz)`` with tiny constants — the memory-lean
member of SPLATT's completion trio (no ``R×R`` systems, no ``I·R²``
scratch).
"""

from __future__ import annotations

import numpy as np

from repro._util import VALUE_DTYPE
from repro.completion.losses import residuals
from repro.tensor.coo import SparseTensor

__all__ = ["ccd_epoch"]


def ccd_epoch(
    tensor: SparseTensor,
    factors: list[np.ndarray],
    *,
    regularization: float = 1e-2,
    residual: np.ndarray | None = None,
) -> np.ndarray:
    """One CCD++ epoch (every component, every mode), updating in place.

    Parameters
    ----------
    residual:
        The maintained ``v − ẑ`` vector from the previous epoch; computed
        fresh when omitted.  The updated residual is returned — passing it
        back in makes successive epochs ``O(nnz)`` cheaper and immune to
        drift (it is recomputed exactly here either way).

    Returns
    -------
    The up-to-date residual vector.
    """
    if regularization < 0:
        raise ValueError("regularization must be >= 0")
    coords = tensor.coords
    nmodes = tensor.nmodes
    rank = factors[0].shape[1]

    if residual is None:
        residual = residuals(coords, tensor.values, factors)
    residual = np.asarray(residual, dtype=VALUE_DTYPE)

    mode_rows = [coords[:, m] for m in range(nmodes)]

    for r in range(rank):
        # component r's per-entry contribution, then add it back
        comp = np.ones(tensor.nnz, dtype=VALUE_DTYPE)
        cols = [factors[m][:, r] for m in range(nmodes)]
        for m in range(nmodes):
            comp *= cols[m][mode_rows[m]]
        rho = residual + comp

        for m in range(nmodes):
            # q = component product excluding mode m
            q = np.ones(tensor.nnz, dtype=VALUE_DTYPE)
            for k in range(nmodes):
                if k != m:
                    q *= cols[k][mode_rows[k]]
            dim = tensor.dims[m]
            numer = np.bincount(mode_rows[m], weights=rho * q, minlength=dim)
            denom = np.bincount(mode_rows[m], weights=q * q, minlength=dim)
            denom += regularization
            # unobserved, unregularized rows have a 0/0 system; they stay 0
            new_col = np.zeros(dim, dtype=VALUE_DTYPE)
            np.divide(numer, denom, out=new_col, where=denom > 0)
            factors[m][:, r] = new_col
            cols[m] = new_col

        # subtract the refreshed component from the residual
        comp = np.ones(tensor.nnz, dtype=VALUE_DTYPE)
        for m in range(nmodes):
            comp *= cols[m][mode_rows[m]]
        residual = rho - comp

    return residual
