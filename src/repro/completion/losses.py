"""Loss and prediction primitives shared by the completion solvers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE

__all__ = ["predict_entries", "residuals", "rmse", "mae", "squared_loss", "evaluate"]


def predict_entries(
    coords: np.ndarray, factors: Sequence[np.ndarray]
) -> np.ndarray:
    """Model values at the given coordinates: ``Σ_r Π_m A^m[i_m, r]``.

    Completion models carry no separate λ — weights live in the factor
    magnitudes.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != len(factors):
        raise ValueError(
            f"coords shape {coords.shape} incompatible with {len(factors)} factors"
        )
    rank = factors[0].shape[1]
    acc = np.ones((coords.shape[0], rank), dtype=VALUE_DTYPE)
    for m, factor in enumerate(factors):
        acc *= factor[coords[:, m]]
    return acc.sum(axis=1)


def residuals(
    coords: np.ndarray, values: np.ndarray, factors: Sequence[np.ndarray]
) -> np.ndarray:
    """``observed − predicted`` at every coordinate."""
    return np.asarray(values, dtype=VALUE_DTYPE) - predict_entries(coords, factors)


def rmse(
    coords: np.ndarray, values: np.ndarray, factors: Sequence[np.ndarray]
) -> float:
    """Root-mean-square error over the given entries."""
    if len(values) == 0:
        return 0.0
    r = residuals(coords, values, factors)
    return float(np.sqrt(np.mean(r * r)))


def mae(
    coords: np.ndarray, values: np.ndarray, factors: Sequence[np.ndarray]
) -> float:
    """Mean absolute error over the given entries."""
    if len(values) == 0:
        return 0.0
    return float(np.mean(np.abs(residuals(coords, values, factors))))


def evaluate(
    factors: Sequence[np.ndarray],
    coords: np.ndarray,
    values: np.ndarray,
) -> dict[str, float]:
    """Held-out evaluation bundle: RMSE, MAE, and the mean-predictor
    baselines they must beat.

    Returns a dict with ``rmse``, ``mae``, ``baseline_rmse``,
    ``baseline_mae`` (predicting the test mean) — the standard completion
    scoreboard.
    """
    values = np.asarray(values, dtype=VALUE_DTYPE)
    if len(values) == 0:
        raise ValueError("cannot evaluate on an empty test set")
    mean = float(values.mean())
    return {
        "rmse": rmse(coords, values, factors),
        "mae": mae(coords, values, factors),
        "baseline_rmse": float(np.sqrt(np.mean((values - mean) ** 2))),
        "baseline_mae": float(np.mean(np.abs(values - mean))),
    }


def squared_loss(
    coords: np.ndarray,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    regularization: float = 0.0,
) -> float:
    """The completion objective: ``½‖P_Ω(X − Z)‖² + ½λ Σ‖A^m‖²``."""
    r = residuals(coords, values, factors)
    loss = 0.5 * float(r @ r)
    if regularization > 0:
        loss += 0.5 * regularization * sum(float((f * f).sum()) for f in factors)
    return loss
