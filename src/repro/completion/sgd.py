"""Stochastic gradient descent for tensor completion.

Per observed entry ``x`` with error ``e = v_x − ẑ_x``, the update for each
factor row is

    A^m[i_m] += η · (e · h_x^m − λ · A^m[i_m]),    h_x^m = ⊛_{k≠m} A^k[i_k]

SPLATT's HPC formulation processes entries in random order with a step
size decayed per epoch; in shared memory the updates race benignly
("HogWild"-style), which is also how we vectorize them here: the epoch is
processed in shuffled **chunks**, with each chunk's gradient contributions
scatter-added using the factor state at the chunk start.  Chunked HogWild
is semantically the mini-batch limit of the same algorithm;
``chunk_size=1`` recovers the strict sequential method (used in tests for
gradient verification).

The scatter-add goes through :mod:`repro.mttkrp.scatter`'s segment-sum
machinery (stable sort + ``reduceat``) rather than ``np.add.at``: a batch's
duplicate rows are pre-reduced in their original order, so the result
matches the element-at-a-time scatter to summation rounding while running
at vectorized speed, and every intermediate lands in a :class:`Workspace`
reused across the epoch's batches.
"""

from __future__ import annotations

import numpy as np

from repro._util import VALUE_DTYPE, as_rng
from repro.completion.losses import predict_entries
from repro.mttkrp.scatter import RowScatter, Workspace
from repro.tensor.coo import SparseTensor

__all__ = ["sgd_epoch"]


def sgd_epoch(
    tensor: SparseTensor,
    factors: list[np.ndarray],
    *,
    learn_rate: float,
    regularization: float = 1e-2,
    chunk_size: int = 256,
    rng: np.random.Generator | int | None = None,
    workspace: Workspace | None = None,
    backend=None,
) -> None:
    """One SGD epoch over all observed entries, updating in place.

    Parameters
    ----------
    learn_rate:
        Step size η for this epoch (the driver decays it across epochs).
    regularization:
        Weight-decay coefficient λ, applied per touched row per update.
    chunk_size:
        Entries per vectorized mini-batch; gradients within a chunk use
        the chunk-start factor state.
    rng:
        Shuffle source; pass the driver's generator for reproducibility.
    workspace:
        Scratch-buffer arena for the per-batch scatter; pass a persistent
        one (the completion driver does) so steady-state epochs reuse the
        same buffers instead of reallocating per batch.
    backend:
        Optional resolved compiled :class:`~repro.backend.registry.Backend`
        that fuses each batch's sort gather and segment reduction into one
        GIL-releasing pass; results agree to summation rounding.
    """
    if learn_rate <= 0:
        raise ValueError("learn_rate must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    ws = workspace if workspace is not None else Workspace()
    generator = as_rng(rng)
    order = generator.permutation(tensor.nnz)
    coords = tensor.coords
    values = tensor.values
    nmodes = tensor.nmodes
    rank = factors[0].shape[1]

    for start in range(0, tensor.nnz, chunk_size):
        batch = order[start : start + chunk_size]
        c = coords[batch]
        v = values[batch]
        err = v - predict_entries(c, factors)

        # h per mode = product of all rows / this mode's rows; computed by
        # forward/backward prefix products to stay O(N·B·R).
        rows = [factors[m][c[:, m]] for m in range(nmodes)]
        prefix = np.ones((len(batch), rank), dtype=VALUE_DTYPE)
        prefixes = []
        for m in range(nmodes):
            prefixes.append(prefix.copy())
            prefix = prefix * rows[m]
        suffix = np.ones((len(batch), rank), dtype=VALUE_DTYPE)
        for m in range(nmodes - 1, -1, -1):
            h = prefixes[m] * suffix
            grad = err[:, None] * h - regularization * rows[m]
            grad *= learn_rate
            # Batch rows change every chunk (shuffled), so the scatter
            # structure is built per batch; its sort is stable, keeping
            # each row's update order, and the segment reduction plus all
            # gathers run in reused workspace buffers.
            RowScatter(c[:, m], tag=("sgd",)).scatter_accumulate(
                factors[m], grad, ws, backend=backend
            )
            suffix = suffix * rows[m]
