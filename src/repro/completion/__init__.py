"""Tensor completion — CP with missing values (SPLATT's second workload).

SPLATT "includes routines for computing least-squares CP, as well as
constrained CP and CP with missing values (i.e., tensor completion)"
(paper §III, citing Smith et al., *HPC Formulations of Optimization
Algorithms for Tensor Completion*).  The paper ports only least-squares
CP-ALS; this package implements the completion side of the toolbox so the
reproduction covers the full SPLATT feature surface:

* :func:`~repro.completion.als.als_step` — alternating least squares over
  *observed entries only* (row-wise regularized normal equations);
* :func:`~repro.completion.sgd.sgd_epoch` — stochastic gradient descent
  with per-epoch permutation and decaying step size;
* :func:`~repro.completion.ccd.ccd_epoch` — CCD++ rank-one coordinate
  descent with residual maintenance;
* :func:`~repro.completion.driver.complete` — the common driver: train/
  validation split, epoch loop, convergence on validation RMSE.

All solvers share :class:`~repro.completion.driver.CompletionModel` (a
Kruskal model without the unit-column convention — completion keeps the
magnitudes in the factors) and are exact NumPy implementations validated
against finite-difference gradients and each other in the test suite.
"""

from repro.completion.als import als_step
from repro.completion.ccd import ccd_epoch
from repro.completion.driver import (
    ALGORITHMS,
    CompletionOptions,
    CompletionResult,
    complete,
)
from repro.completion.losses import predict_entries, rmse, squared_loss

__all__ = [
    "complete",
    "CompletionOptions",
    "CompletionResult",
    "ALGORITHMS",
    "als_step",
    "ccd_epoch",
    "sgd_epoch",
    "predict_entries",
    "rmse",
    "squared_loss",
]

from repro.completion.sgd import sgd_epoch  # noqa: E402  (circular-free tail import)
