"""The completion driver: train/validation loop over any of the solvers.

Mirrors SPLATT's ``splatt complete`` workflow: hold out a validation slice
of the observed entries, iterate the chosen optimizer, track train and
validation RMSE per epoch, and stop when validation stops improving (with
a patience window) or the epoch cap is hit.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_rank
from repro.completion.als import als_step
from repro.completion.ccd import ccd_epoch
from repro.completion.losses import predict_entries, rmse
from repro.completion.sgd import sgd_epoch
from repro.mttkrp.scatter import Workspace
from repro.observe import spans as _obs
from repro.resilience.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.tensor.coo import SparseTensor

__all__ = ["ALGORITHMS", "CompletionOptions", "CompletionResult", "complete"]

ALGORITHMS: tuple[str, ...] = ("als", "sgd", "ccd")


@dataclass
class CompletionOptions:
    """Configuration for :func:`complete`.

    Attributes
    ----------
    algorithm:
        ``"als"``, ``"sgd"`` or ``"ccd"``.
    max_epochs:
        Epoch cap (SPLATT default: 50 for completion).
    regularization:
        λ for all solvers.
    learn_rate / learn_rate_decay:
        SGD step size and its per-epoch multiplier.
    sgd_chunk_size:
        Entries per vectorized HogWild chunk (see
        :func:`repro.completion.sgd.sgd_epoch`); larger chunks are faster
        but amplify intra-chunk row collisions.
    validation_fraction:
        Share of observed entries held out for early stopping (0 disables
        the split and early stopping).
    patience:
        Stop after this many epochs without a new best validation RMSE.
    seed:
        Controls initialization, the validation split and SGD shuffling.
    checkpoint_path:
        When set, snapshot the training state (factors, best-so-far
        model, histories, RNG state) to this path every
        ``checkpoint_every`` epochs (atomic ``.npz``, see
        :mod:`repro.resilience.checkpoint`).
    checkpoint_every:
        Snapshot cadence in epochs.
    resume_from:
        Path of a ``completion`` checkpoint to resume; requires the same
        tensor, rank, algorithm and seed, and reproduces the
        uninterrupted run (the RNG resumes mid-stream, so SGD shuffles
        continue exactly where the killed run stopped).
    backend:
        Kernel execution backend for the ALS/SGD scatter reductions
        (``"numpy"``/``"numba"``/``"cext"``/``"auto"``/``None``; see
        ``docs/BACKENDS.md``).  CCD is scatter-free and ignores it.
    """

    algorithm: str = "als"
    max_epochs: int = 50
    regularization: float = 1e-2
    learn_rate: float = 1e-2
    learn_rate_decay: float = 0.95
    sgd_chunk_size: int = 256
    validation_fraction: float = 0.1
    patience: int = 5
    seed: int | None = 0
    checkpoint_path: str | os.PathLike | None = None
    checkpoint_every: int = 1
    resume_from: str | os.PathLike | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        if self.regularization < 0:
            raise ValueError("regularization must be >= 0")
        if self.algorithm == "als" and self.regularization <= 0:
            raise ValueError("ALS completion requires regularization > 0")
        if not 0 <= self.validation_fraction < 1:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.learn_rate <= 0 or not 0 < self.learn_rate_decay <= 1:
            raise ValueError("learn_rate > 0 and 0 < learn_rate_decay <= 1 required")
        if self.sgd_chunk_size < 1:
            raise ValueError("sgd_chunk_size must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.backend is not None and self.backend != "auto":
            from repro.backend import registered_backends

            if self.backend not in registered_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; choose from "
                    f"{', '.join(registered_backends())} or 'auto'"
                )


@dataclass
class CompletionResult:
    """Outcome of a completion run.

    ``factors`` carry the component magnitudes (no separate λ).
    """

    factors: list[np.ndarray]
    train_rmse: list[float]
    val_rmse: list[float]
    epochs: int
    converged: bool
    seconds: float
    algorithm: str
    best_epoch: int = field(default=0)

    def predict(self, coords: np.ndarray) -> np.ndarray:
        """Model values at arbitrary coordinates."""
        return predict_entries(coords, self.factors)

    @property
    def final_train_rmse(self) -> float:
        return self.train_rmse[-1] if self.train_rmse else float("nan")

    @property
    def final_val_rmse(self) -> float:
        return self.val_rmse[-1] if self.val_rmse else float("nan")


def _split(
    tensor: SparseTensor, fraction: float, rng: np.random.Generator
) -> tuple[SparseTensor, np.ndarray, np.ndarray]:
    """Hold out ``fraction`` of the entries for validation."""
    if fraction == 0 or tensor.nnz < 10:
        return tensor, np.empty((0, tensor.nmodes), dtype=np.int64), np.empty(0)
    n_val = max(1, int(tensor.nnz * fraction))
    val_idx = rng.choice(tensor.nnz, size=n_val, replace=False)
    mask = np.zeros(tensor.nnz, dtype=bool)
    mask[val_idx] = True
    train = SparseTensor(
        tensor.coords[~mask], tensor.values[~mask], tensor.dims, name=tensor.name
    )
    return train, tensor.coords[mask], tensor.values[mask]


def complete(
    tensor: SparseTensor,
    rank: int,
    options: CompletionOptions | None = None,
) -> CompletionResult:
    """Fit a rank-``R`` completion model to the observed entries.

    Returns the best-validation model (last model when no validation split
    is configured).
    """
    rank = check_rank(rank)
    if tensor.nnz == 0:
        raise ValueError("cannot complete an empty tensor")
    opts = options if options is not None else CompletionOptions()
    rng = as_rng(opts.seed)

    train, val_coords, val_values = _split(tensor, opts.validation_fraction, rng)

    # Initialization: small positive factors scaled so the initial model
    # magnitude matches the data's mean magnitude (standard for SGD
    # stability).
    mean_mag = float(np.abs(train.values).mean()) or 1.0
    scale = (mean_mag / rank) ** (1.0 / train.nmodes)
    factors = [
        np.asarray(rng.random((d, rank)) * scale, dtype=VALUE_DTYPE)
        for d in train.dims
    ]

    start = time.perf_counter()
    train_hist: list[float] = []
    val_hist: list[float] = []
    best_val = float("inf")
    best_epoch = 0
    best_factors = [f.copy() for f in factors]
    stall = 0
    converged = False
    learn_rate = opts.learn_rate
    ccd_residual: np.ndarray | None = None
    # one scratch arena for every SGD epoch: steady-state batches reuse the
    # same scatter buffers instead of reallocating per chunk
    sgd_workspace = Workspace()
    start_epoch = 0

    if opts.resume_from is not None:
        ck = load_checkpoint(opts.resume_from, expect_kind="completion")
        meta = ck.meta
        if meta.get("algorithm") != opts.algorithm or meta.get("rank") != rank or tuple(
            meta.get("dims", ())
        ) != tensor.dims:
            raise CheckpointError(
                f"{opts.resume_from}: checkpoint ({meta.get('algorithm')}, rank "
                f"{meta.get('rank')}, dims {meta.get('dims')}) does not match "
                f"this run ({opts.algorithm}, rank {rank}, dims {list(tensor.dims)})"
            )
        factors = [np.asarray(f, dtype=VALUE_DTYPE) for f in ck.factors]
        best_factors = [
            np.asarray(ck.arrays[f"best_factor{m}"], dtype=VALUE_DTYPE)
            for m in range(tensor.nmodes)
        ]
        train_hist = [float(v) for v in ck.arrays["train_rmse"]]
        val_hist = [float(v) for v in ck.arrays["val_rmse"]]
        if "ccd_residual" in ck.arrays:
            ccd_residual = np.asarray(ck.arrays["ccd_residual"], dtype=VALUE_DTYPE)
        best_val = float(meta["best_val"])
        best_epoch = int(meta["best_epoch"])
        stall = int(meta["stall"])
        learn_rate = float(meta["learn_rate"])
        start_epoch = ck.iteration
        if ck.rng_state is not None:
            # Resume the generator mid-stream so SGD shuffling (and any
            # later draw) continues exactly where the killed run stopped.
            rng.bit_generator.state = ck.rng_state

    def checkpoint(completed: int) -> None:
        if opts.checkpoint_path is None or completed % opts.checkpoint_every:
            return
        arrays = {
            "train_rmse": np.asarray(train_hist, dtype=float),
            "val_rmse": np.asarray(val_hist, dtype=float),
        }
        for m, f in enumerate(best_factors):
            arrays[f"best_factor{m}"] = f
        if ccd_residual is not None:
            arrays["ccd_residual"] = ccd_residual
        save_checkpoint(
            opts.checkpoint_path,
            kind="completion",
            iteration=completed,
            factors=factors,
            arrays=arrays,
            meta={
                "algorithm": opts.algorithm,
                "rank": rank,
                "dims": list(tensor.dims),
                "best_val": best_val,
                "best_epoch": best_epoch,
                "stall": stall,
                "learn_rate": learn_rate,
            },
            rng=rng,
        )

    epochs_run = start_epoch
    run_span = _obs.span(
        "completion",
        algorithm=opts.algorithm,
        rank=rank,
        nnz=train.nnz,
        dims=list(train.dims),
    )
    with run_span:
        from repro.backend import resolve_backend

        bk = resolve_backend(opts.backend)
        if bk.compiled:
            bk.ensure_ready()
        run_span.set_attrs(backend=bk.name)
        if start_epoch:
            run_span.set_attrs(resumed_from_iteration=start_epoch)
        for epoch in range(start_epoch, opts.max_epochs):
            with _obs.span("completion.epoch", epoch=epoch + 1):
                if opts.algorithm == "als":
                    als_step(
                        train, factors,
                        regularization=opts.regularization,
                        backend=bk,
                    )
                elif opts.algorithm == "sgd":
                    sgd_epoch(
                        train, factors,
                        learn_rate=learn_rate,
                        regularization=opts.regularization,
                        chunk_size=opts.sgd_chunk_size,
                        rng=rng,
                        workspace=sgd_workspace,
                        backend=bk,
                    )
                    learn_rate *= opts.learn_rate_decay
                else:  # ccd
                    ccd_residual = ccd_epoch(
                        train, factors,
                        regularization=opts.regularization,
                        residual=ccd_residual,
                    )

                epochs_run = epoch + 1
                train_hist.append(rmse(train.coords, train.values, factors))
            if val_values.size:
                val = rmse(val_coords, val_values, factors)
                val_hist.append(val)
                if val < best_val - 1e-12:
                    best_val = val
                    best_epoch = epochs_run
                    best_factors = [f.copy() for f in factors]
                    stall = 0
                else:
                    stall += 1
                    if stall >= opts.patience:
                        checkpoint(epochs_run)
                        converged = True
                        break
            checkpoint(epochs_run)
        run_span.set_attrs(epochs=epochs_run, converged=converged)

    elapsed = time.perf_counter() - start
    final = best_factors if val_values.size else factors
    return CompletionResult(
        factors=final,
        train_rmse=train_hist,
        val_rmse=val_hist,
        epochs=epochs_run,
        converged=converged,
        seconds=elapsed,
        algorithm=opts.algorithm,
        best_epoch=best_epoch if val_values.size else epochs_run,
    )
