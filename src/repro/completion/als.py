"""Alternating least squares for tensor completion.

Unlike full CP-ALS (whose normal equations use the *entire* tensor, zeros
included), completion solves each factor row against its **observed
entries only**:

    A^n[i] = (Σ_{x ∈ Ω_i} g_x g_xᵀ + λI)⁻¹ · Σ_{x ∈ Ω_i} v_x g_x

where ``Ω_i`` is the set of observed entries whose mode-``n`` index is
``i`` and ``g_x = ⊛_{m≠n} A^m[coords_x[m]]`` is the Hadamard of the other
factors' rows.  This is SPLATT-ALS from the tensor-completion paper the
reproduction's paper cites — the per-row ``R×R`` systems are independent,
which is exactly what SPLATT parallelizes over.

Implementation: fully vectorized — one ``(nnz, R)`` Hadamard pass, a
scatter of ``g gᵀ`` outer products into an ``(I, R, R)`` stack, and one
batched Cholesky solve.  Memory is ``O(I·R²)``, the same trade SPLATT
makes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE
from repro.mttkrp.scatter import RowScatter
from repro.observe import spans as _obs
from repro.tensor.coo import SparseTensor

__all__ = ["als_step", "als_update_mode"]


def _mode_scatter(tensor: SparseTensor, mode: int) -> RowScatter:
    """The cached :class:`RowScatter` over ``coords[:, mode]``.

    ``coords`` never changes for a given tensor, so the sort order and
    segment boundaries are computed once per (tensor, mode) and reused by
    every ALS sweep; the cache is invalidated if the coordinate array is
    swapped out.
    """
    cache = getattr(tensor, "_completion_scatters", None)
    if cache is None or cache.get("coords_id") != id(tensor.coords):
        cache = {"coords_id": id(tensor.coords)}
        tensor._completion_scatters = cache
    sc = cache.get(mode)
    if sc is None:
        sc = RowScatter(tensor.coords[:, mode])
        cache[mode] = sc
    return sc


def _hadamard_rows(
    coords: np.ndarray, factors: Sequence[np.ndarray], skip_mode: int
) -> np.ndarray:
    """``g_x`` for every observed entry: Hadamard of non-target rows."""
    rank = factors[0].shape[1]
    g = np.ones((coords.shape[0], rank), dtype=VALUE_DTYPE)
    for m, factor in enumerate(factors):
        if m != skip_mode:
            g *= factor[coords[:, m]]
    return g


def als_update_mode(
    tensor: SparseTensor,
    factors: list[np.ndarray],
    mode: int,
    regularization: float,
    backend=None,
) -> None:
    """Solve mode ``mode``'s rows in place against the observed entries.

    Rows with no observations shrink to zero (the λ-regularized solution
    of an empty system), matching SPLATT's behaviour.  A compiled
    ``backend`` (resolved :class:`~repro.backend.registry.Backend`)
    accelerates the two scatter reductions with the fused
    gather-segment-sum kernel; results agree to summation rounding.
    """
    if regularization <= 0:
        raise ValueError("completion ALS requires regularization > 0 "
                         "(unobserved rows would be singular)")
    coords = tensor.coords
    values = tensor.values
    dim = tensor.dims[mode]
    rank = factors[0].shape[1]

    with _obs.span("als.update_mode", mode=mode, nnz=tensor.nnz, rank=rank):
        g = _hadamard_rows(coords, factors, mode)
        scatter = _mode_scatter(tensor, mode)

        # Per-row right-hand sides: Σ v·g.
        rhs = np.zeros((dim, rank), dtype=VALUE_DTYPE)
        scatter.scatter_accumulate(rhs, values[:, None] * g, backend=backend)

        # Per-row normal matrices: Σ g gᵀ + λI, scattered as outer products.
        normal = np.zeros((dim, rank, rank), dtype=VALUE_DTYPE)
        outer = g[:, :, None] * g[:, None, :]
        scatter.scatter_accumulate(normal, outer, backend=backend)
        normal += regularization * np.eye(rank, dtype=VALUE_DTYPE)

        # batched solve: (I, R, R) x (I, R, 1) -> (I, R)
        factors[mode] = np.linalg.solve(normal, rhs[:, :, None])[:, :, 0]


def als_step(
    tensor: SparseTensor,
    factors: list[np.ndarray],
    *,
    regularization: float = 1e-2,
    backend=None,
) -> None:
    """One full ALS sweep (every mode once), updating ``factors`` in place."""
    for mode in range(tensor.nmodes):
        als_update_mode(tensor, factors, mode, regularization, backend=backend)
