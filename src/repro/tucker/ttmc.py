"""TTMc — sparse tensor times matrix chain (Tucker's dominant kernel).

For output mode ``n`` with factor matrices ``U_m ∈ R^{I_m × R_m}``, TTMc
computes the mode-``n`` unfolding of ``X ×_{m≠n} U_mᵀ``:

    Y[i_n, (r_{m1}, r_{m2}, …)] = Σ_{nonzeros with mode-n index i_n}
                                   v · Π_{m≠n} U_m[i_m, r_m]

an ``(I_n, Π_{m≠n} R_m)`` dense matrix.  Where MTTKRP's per-nonzero work
is a Hadamard product of rows (R flops), TTMc's is their *outer* product
(Π R_m flops) — the memory/compute blow-up that motivated SPLATT's
CSF-based formulation.

Implementation: vectorized over nonzero chunks — each chunk materializes
the growing Kronecker of its factor rows by broadcasting, then
scatter-adds into the output by mode-``n`` index.  Chunking bounds the
``(chunk, Π R_m)`` intermediate.  Column ordering matches
:func:`repro.linalg.khatri_rao`'s convention (lowest remaining mode varies
fastest), so dense references built from matricize/Kronecker line up.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE, check_axis, prod
from repro.mttkrp.scatter import sorted_scatter_add
from repro.observe import spans as _obs
from repro.tensor.coo import SparseTensor

__all__ = ["ttmc", "ttmc_dense_reference"]

#: Nonzeros per vectorized chunk; bounds the (chunk × ΠR) intermediate at
#: a few MB for typical Tucker ranks.
_CHUNK = 8192


def ttmc(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    chunk_size: int = _CHUNK,
    backend=None,
) -> np.ndarray:
    """Sparse TTMc for output ``mode`` (see module docstring).

    ``factors`` holds all ``N`` matrices; ``factors[mode]`` is ignored.
    Returns the ``(I_mode, Π_{m≠mode} R_m)`` unfolding with the lowest
    remaining mode's rank index varying fastest.  A compiled ``backend``
    (resolved :class:`~repro.backend.registry.Backend`) accelerates each
    chunk's scatter-add with the fused gather-segment-sum kernel.
    """
    mode = check_axis(mode, tensor.nmodes)
    if len(factors) != tensor.nmodes:
        raise ValueError(f"need {tensor.nmodes} factors, got {len(factors)}")
    for m, f in enumerate(factors):
        if f.ndim != 2 or f.shape[0] != tensor.dims[m]:
            raise ValueError(
                f"factor {m} has shape {f.shape}, expected ({tensor.dims[m]}, R_{m})"
            )
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if backend is not None and not hasattr(backend, "compiled"):
        from repro.backend import resolve_backend

        backend = resolve_backend(backend)

    rest = [m for m in range(tensor.nmodes) if m != mode]
    ncols = prod(factors[m].shape[1] for m in rest)
    out = np.zeros((tensor.dims[mode], ncols), dtype=VALUE_DTYPE)
    if tensor.nnz == 0:
        return out

    coords = tensor.coords
    values = tensor.values
    with _obs.span("ttmc", mode=mode, nnz=tensor.nnz, ncols=ncols):
        for start in range(0, tensor.nnz, chunk_size):
            sl = slice(start, min(start + chunk_size, tensor.nnz))
            c = coords[sl]
            # Kronecker of factor rows, highest remaining mode first so the
            # lowest remaining mode's index varies fastest in the flat column.
            acc = values[sl, None].copy()  # reprolint: allow(row-slice-copy) — (chunk, 1) Kronecker seed; acc grows R_m-fold per mode so it cannot share a buffer
            for m in reversed(rest):
                rows = factors[m][c[:, m]]  # reprolint: allow(row-slice-copy) — (chunk, R_m) gather; chunk coords change every call, nothing invariant to plan
                acc = (acc[:, :, None] * rows[:, None, :]).reshape(acc.shape[0], -1)  # reprolint: allow(hot-loop-alloc) — output width grows each mode; a fixed workspace buffer cannot hold it
            # chunk rows change every call, so use the one-shot segmented
            # scatter rather than a cached plan
            sorted_scatter_add(out, c[:, mode], acc, backend=backend)
    return out


def ttmc_dense_reference(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """Dense oracle: matricize, then multiply by the Kronecker of factors.

    Exponential memory; testing aid only.
    """
    mode = check_axis(mode, tensor.nmodes)
    unfolded = tensor.matricize(mode)
    rest = [m for m in range(tensor.nmodes) if m != mode]
    # matricize's columns have the lowest remaining mode fastest, so build
    # the Kronecker with the highest remaining mode as the left operand.
    kron = np.ones((1, 1), dtype=VALUE_DTYPE)
    for m in reversed(rest):
        kron = np.kron(kron, factors[m])
    return unfolded @ kron
