"""HOOI — higher-order orthogonal iteration for sparse Tucker.

Alternating scheme over the modes: with all factors but ``n`` fixed,

    Y_n = unfolding of  X ×_{m≠n} U_mᵀ          (sparse TTMc)
    U_n = leading R_n left singular vectors of Y_n

and after a full sweep the core is ``G = U_nᵀ Y_n`` (reshaped).  Because
the factors are orthonormal, the fit has the closed form

    ‖X − [G; U]‖² = ‖X‖² − ‖G‖²

so no reconstruction is ever materialized.  Factors start from random
orthonormal bases (QR of Gaussian); each HOOI sweep then performs the
(sequentially truncated) HOSVD projections, which is the standard sparse
practice — a direct HOSVD of the raw unfoldings would densify.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_positive
from repro.observe import spans as _obs
from repro.resilience.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.tensor.coo import SparseTensor
from repro.tucker.ttmc import ttmc

__all__ = ["TuckerResult", "tucker_hooi"]


@dataclass
class TuckerResult:
    """A Tucker model ``X ≈ G ×_1 U_1 ×_2 U_2 ⋯``.

    Attributes
    ----------
    core:
        The ``(R_1, …, R_N)`` core tensor.
    factors:
        Orthonormal-column factor matrices ``U_m ∈ R^{I_m × R_m}``.
    fits:
        Fit after each sweep.
    """

    core: np.ndarray
    factors: list[np.ndarray]
    fits: list[float]
    iterations: int
    converged: bool
    seconds: float

    @property
    def fit(self) -> float:
        """Final fit."""
        return self.fits[-1] if self.fits else 0.0

    @property
    def ranks(self) -> tuple[int, ...]:
        """Core ranks per mode."""
        return self.core.shape

    def to_dense(self) -> np.ndarray:
        """Materialize the reconstruction (testing aid)."""
        out = self.core
        for m, u in enumerate(self.factors):
            out = np.moveaxis(np.tensordot(u, out, axes=(1, m)), 0, m)
        return out

    def predict(self, coords: np.ndarray) -> np.ndarray:
        """Model values at sparse coordinates (no densification)."""
        coords = np.asarray(coords)
        if coords.ndim != 2 or coords.shape[1] != len(self.factors):
            raise ValueError(f"coords must be (k, {len(self.factors)})")
        # contract the core against each coordinate's factor rows
        acc = np.broadcast_to(
            self.core, (coords.shape[0], *self.core.shape)
        ).reshape(coords.shape[0], -1)
        shape = list(self.core.shape)
        for m, u in enumerate(self.factors):
            rows = u[coords[:, m]]  # reprolint: allow(row-slice-copy) — (k, R_m) gather; prediction coords change every call, no invariant layout to plan
            acc = acc.reshape(coords.shape[0], shape[0], -1)
            acc = np.einsum("kr,krj->kj", rows, acc)
            shape = shape[1:]
        return acc[:, 0]


def _random_orthonormal(rng: np.random.Generator, n: int, r: int) -> np.ndarray:
    q, _ = np.linalg.qr(rng.standard_normal((n, r)))
    return np.ascontiguousarray(q, dtype=VALUE_DTYPE)


def _hosvd_basis(tensor: SparseTensor, mode: int, rank: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Leading left singular vectors of the sparse mode unfolding.

    Uses ``scipy.sparse.linalg.svds`` on :meth:`SparseTensor.to_scipy`.
    ``svds`` requires ``rank < min(shape)``; degenerate cases fall back to
    a random orthonormal basis (HOOI converges from either — HOSVD just
    starts closer).
    """
    from scipy.sparse.linalg import svds

    unfolding = tensor.to_scipy(mode)
    if rank >= min(unfolding.shape):
        return _random_orthonormal(rng, tensor.dims[mode], rank)
    u, _s, _vt = svds(unfolding, k=rank, random_state=0)
    # svds returns ascending singular values; order is irrelevant for a
    # basis, but orthonormality can degrade for tiny tails — re-orthogonalize
    q, _ = np.linalg.qr(u)
    return np.ascontiguousarray(q[:, :rank], dtype=VALUE_DTYPE)


def tucker_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int],
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-5,
    init: str = "hosvd",
    seed: int | np.random.Generator | None = 0,
    checkpoint_path: str | os.PathLike | None = None,
    checkpoint_every: int = 1,
    resume_from: str | os.PathLike | None = None,
    backend: str | None = None,
) -> TuckerResult:
    """Fit a Tucker model with core ranks ``ranks`` by HOOI.

    Parameters
    ----------
    ranks:
        One core rank per mode, each ≤ the mode length.
    tolerance:
        Stop when the fit improves by less (0 disables).
    init:
        ``"hosvd"`` (default) seeds each mode with the leading left
        singular vectors of its *sparse* unfolding (truncated HOSVD via
        ``scipy.sparse.linalg.svds``); ``"random"`` uses random orthonormal
        bases.  HOSVD typically saves several sweeps.
    checkpoint_path / checkpoint_every / resume_from:
        Snapshot factors/core/fit history atomically every
        ``checkpoint_every`` sweeps and/or resume a killed run (see
        :mod:`repro.resilience.checkpoint`); a resumed run reproduces an
        uninterrupted one.
    backend:
        Kernel execution backend for the TTMc scatter reductions
        (``"numpy"``/``"numba"``/``"cext"``/``"auto"``/``None``; see
        ``docs/BACKENDS.md``).  Results are identical across backends.

    Returns
    -------
    :class:`TuckerResult` with orthonormal factors.
    """
    nmodes = tensor.nmodes
    if len(ranks) != nmodes:
        raise ValueError(f"need {nmodes} ranks, got {len(ranks)}")
    ranks = tuple(check_positive(f"ranks[{m}]", r) for m, r in enumerate(ranks))
    for m, (r, d) in enumerate(zip(ranks, tensor.dims)):
        if r > d:
            raise ValueError(f"ranks[{m}]={r} exceeds mode length {d}")
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an empty tensor")

    if init not in ("hosvd", "random"):
        raise ValueError(f"unknown init {init!r}; use 'hosvd' or 'random'")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    fits: list[float] = []
    start_iteration = 0
    core = np.zeros(ranks, dtype=VALUE_DTYPE)
    if resume_from is not None:
        ck = load_checkpoint(resume_from, expect_kind="hooi")
        if tuple(ck.meta.get("ranks", ())) != ranks or tuple(
            ck.meta.get("dims", ())
        ) != tensor.dims:
            raise CheckpointError(
                f"{resume_from}: checkpoint ranks/dims "
                f"{ck.meta.get('ranks')}/{ck.meta.get('dims')} do not match "
                f"this run ({list(ranks)}/{list(tensor.dims)})"
            )
        factors = [np.asarray(f, dtype=VALUE_DTYPE) for f in ck.factors]
        core = np.asarray(ck.arrays["core"], dtype=VALUE_DTYPE)
        fits = [float(f) for f in ck.arrays["fits"]]
        start_iteration = ck.iteration
    else:
        rng = as_rng(seed)
        if init == "hosvd":
            factors = [
                _hosvd_basis(tensor, m, r, rng) for m, r in enumerate(ranks)
            ]
        else:
            factors = [
                _random_orthonormal(rng, d, r) for d, r in zip(tensor.dims, ranks)
            ]
    xnorm2 = tensor.norm() ** 2

    converged = False
    iterations = start_iteration
    start = time.perf_counter()

    def checkpoint(completed: int) -> None:
        if checkpoint_path is None or completed % checkpoint_every:
            return
        save_checkpoint(
            checkpoint_path,
            kind="hooi",
            iteration=completed,
            factors=factors,
            arrays={"core": core, "fits": np.asarray(fits, dtype=float)},
            meta={"ranks": list(ranks), "dims": list(tensor.dims), "init": init},
        )

    run_span = _obs.span(
        "hooi",
        ranks=list(ranks),
        dims=list(tensor.dims),
        nnz=tensor.nnz,
        init=init,
    )
    with run_span:
        from repro.backend import resolve_backend

        bk = resolve_backend(backend)
        if bk.compiled:
            bk.ensure_ready()
        run_span.set_attrs(backend=bk.name)
        if start_iteration:
            run_span.set_attrs(resumed_from_iteration=start_iteration)
        for it in range(start_iteration, max_iterations):
            y_last: np.ndarray | None = None
            with _obs.span("hooi.sweep", iteration=it + 1):
                for mode in range(nmodes):
                    y = ttmc(tensor, factors, mode, backend=bk)  # (I_mode, prod other ranks)
                    with _obs.span("hooi.svd", mode=mode):
                        u, _s, _vt = np.linalg.svd(y, full_matrices=False)
                    factors[mode] = np.ascontiguousarray(u[:, : ranks[mode]], dtype=VALUE_DTYPE)
                    y_last = y

            if y_last is None:  # zero-mode tensors never reach the sweep
                raise RuntimeError(
                    "HOOI sweep produced no TTMc result; cannot form the core"
                )
            # core from the last mode's TTMc: G_(N-1) = U_{N-1}^T Y
            last = nmodes - 1
            core_unf = factors[last].T @ y_last  # (R_last, prod others)
            rest = [m for m in range(nmodes) if m != last]
            # TTMc columns put the lowest remaining mode fastest, so a C-order
            # unflatten enumerates the remaining modes highest-first; permute
            # the axes back to natural mode order afterwards.
            core_c = core_unf.reshape(ranks[last], *[ranks[m] for m in reversed(rest)])
            axis_modes = [last, *reversed(rest)]  # current axis -> mode id
            core = core_c.transpose([axis_modes.index(m) for m in range(nmodes)])

            residual2 = xnorm2 - float((core**2).sum())
            if residual2 < 8.0 * np.finfo(VALUE_DTYPE).eps * xnorm2:
                # ‖X‖² and ‖G‖² agree to machine precision: the sqrt would
                # amplify cancellation noise into O(1e-8) fit jitter, so
                # report exact recovery instead
                residual2 = 0.0
            fit = 1.0 - float(np.sqrt(residual2) / np.sqrt(xnorm2))
            fits.append(fit)
            iterations = it + 1
            checkpoint(iterations)
            if tolerance > 0 and it > 0 and abs(fits[-1] - fits[-2]) < tolerance:
                converged = True
                break
        run_span.set_attrs(
            iterations=iterations,
            converged=converged,
            fit=float(fits[-1]) if fits else 0.0,
        )

    return TuckerResult(
        core=core,
        factors=factors,
        fits=fits,
        iterations=iterations,
        converged=converged,
        seconds=time.perf_counter() - start,
    )
