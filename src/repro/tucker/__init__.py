"""Sparse Tucker decomposition (SPLATT's other factorization).

The paper describes SPLATT as "an open source software toolbox for sparse
tensor factorization and related kernels", citing its CSF-accelerated
Tucker decomposition (Smith & Karypis, Euro-Par 2017) alongside CP.  This
package implements that second factorization:

* :func:`~repro.tucker.ttmc.ttmc` — the **TTMc** kernel (tensor times
  matrix chain): contract a sparse tensor with the transposed factors of
  every mode but one.  TTMc is to Tucker what MTTKRP is to CP — the
  dominant sparse kernel.
* :func:`~repro.tucker.hooi.tucker_hooi` — HOOI (higher-order orthogonal
  iteration) with an HOSVD warm start: alternately recompute each mode's
  orthonormal basis from the leading left singular vectors of its TTMc
  unfolding, then contract the core.

Validated against dense ``einsum`` references and planted Tucker-structure
recovery in the test suite.
"""

from repro.tucker.hooi import TuckerResult, tucker_hooi
from repro.tucker.ttmc import ttmc, ttmc_dense_reference

__all__ = ["ttmc", "ttmc_dense_reference", "tucker_hooi", "TuckerResult"]
