"""The warm engine: every piece of amortizable state, kept alive.

This is the reason the service exists.  One process-wide instance owns:

* the **resolved backend** — compiled once at startup (``ensure_ready``
  runs the warm-up self-check), so no request ever pays JIT/compile cost;
* one **persistent tasking layer** whose worker pool threads survive
  across jobs (PR 1 measured pool spin-up as a dominant cold-start term);
* a **tensor cache** keyed by content fingerprint (path + mtime + size
  for file specs, a content hash for inline specs), so ten tenants
  decomposing the same tensor load it once;
* a **CSF/plan cache**: one :class:`~repro.csf.build.CsfSet` per
  (tensor, allocation, sort variant), whose generation-keyed
  :class:`~repro.mttkrp.scatter.MttkrpContext` carries scatter plans and
  workspaces from request to request — the cumulative ``plan_hits``
  counters surfaced at ``/metrics`` are the direct evidence of reuse.

Execution is **serialized** through one run lock: the compute plane is a
single shared worker pool (jobs inside a run still fan out across its
workers), while the protocol plane stays fully concurrent.  Each job
runs under the resilience layer — the ``serve.job`` fault site is poked
per attempt, injected faults are retried up to ``max_job_retries``, and
suspendable jobs checkpoint to the spool directory so ``suspend`` /
``resume`` round-trip through the standard checkpoint format.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any

import numpy as np

from repro._util import INDEX_DTYPE, VALUE_DTYPE
from repro.backend import resolve_backend
from repro.core.cpals import cp_als
from repro.core.options import CpalsOptions
from repro.csf.build import build_csf_set
from repro.observe import TraceRecorder, tracing
from repro.observe import spans as _obs
from repro.resilience import fault as _flt
from repro.runtime.env import ChapelEnv
from repro.runtime.tasking import make_tasking_layer
from repro.serve import jobstore as js
from repro.serve.jobstore import Job
from repro.tensor.coo import SparseTensor
from repro.tensor.io import load_binary, load_mmap, load_tns

__all__ = ["WarmEngine", "JOB_FAULT_SITE"]

#: The job-layer fault-injection site: poked once per execution attempt,
#: so a (site, occurrence) target fails exactly the Nth attempt served.
JOB_FAULT_SITE = "serve.job"

JOB_KINDS = ("cpd", "tucker", "complete")


def _tensor_bytes(tensor: SparseTensor) -> int:
    return int(tensor.coords.nbytes + tensor.values.nbytes)


class WarmEngine:
    """Executes jobs against long-lived caches.  One per server."""

    def __init__(
        self,
        *,
        tasks: int = 1,
        backend: str | None = "auto",
        allocation: str = "two",
        sort_variant: str = "lexsort",
        spool: str | Path,
        max_job_retries: int = 2,
        max_cached_tensors: int = 32,
    ) -> None:
        self.env = ChapelEnv(num_tasks=tasks)
        self.layer = make_tasking_layer(self.env)
        self.backend = resolve_backend(backend)
        if self.backend.compiled:
            self.backend.ensure_ready()
        self.allocation = allocation
        self.sort_variant = sort_variant
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.max_job_retries = max_job_retries
        self.max_cached_tensors = max_cached_tensors

        #: Serializes solver execution: one compute plane, many protocol
        #: threads.  Also protects the caches below.
        self._run_lock = threading.Lock()
        self._tensors: OrderedDict[str, SparseTensor] = OrderedDict()
        self._csf: OrderedDict[tuple, Any] = OrderedDict()
        self._metrics_lock = threading.Lock()
        self._counters: dict[str, float] = {
            "tensor_cache_hits": 0, "tensor_cache_misses": 0,
            "csf_cache_hits": 0, "csf_cache_misses": 0,
            "plan_hits": 0, "plan_misses": 0,
            "job_retries": 0, "jobs_executed": 0,
            "pool_dispatches": 0,
        }
        self.started_s = time.time()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def bump(self, name: str, n: float = 1) -> None:
        with self._metrics_lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counters(self) -> dict[str, float]:
        with self._metrics_lock:
            out = dict(self._counters)
        out["backend_compile_seconds"] = float(self.backend.compile_seconds or 0.0)
        out["cached_tensors"] = len(self._tensors)
        out["cached_csf_sets"] = len(self._csf)
        if self.layer._pool is not None:
            stats = self.layer.worker_pool.stats()
            out["pool_workers"] = stats.get("workers", 0)
            out["pool_dispatches"] = stats.get("dispatches", 0)
        return out

    # ------------------------------------------------------------------
    # tensor + CSF caches
    # ------------------------------------------------------------------
    def tensor_key(self, spec: dict[str, Any]) -> str:
        """Content fingerprint for the job's tensor reference."""
        if "tensor" in spec:
            p = Path(spec["tensor"]).resolve()
            st = p.stat()
            return f"path:{p}:{st.st_mtime_ns}:{st.st_size}"
        if "inline" in spec:
            inline = spec["inline"]
            h = hashlib.blake2b(digest_size=16)
            h.update(repr(tuple(inline["dims"])).encode())
            h.update(np.asarray(inline["coords"], dtype=INDEX_DTYPE).tobytes())
            h.update(np.asarray(inline["values"], dtype=VALUE_DTYPE).tobytes())
            return f"inline:{h.hexdigest()}"
        raise ValueError('job spec needs a "tensor" path or an "inline" tensor')

    def _load_spec_tensor(self, spec: dict[str, Any]) -> SparseTensor:
        if "tensor" in spec:
            p = Path(spec["tensor"])
            if p.suffix == ".tnsb":
                return load_mmap(p)
            if p.suffix == ".npz":
                return load_binary(p)
            return load_tns(p).deduplicate()
        inline = spec["inline"]
        return SparseTensor(
            np.asarray(inline["coords"], dtype=INDEX_DTYPE),
            np.asarray(inline["values"], dtype=VALUE_DTYPE),
            tuple(int(d) for d in inline["dims"]),
            name=str(inline.get("name", "inline")),
        ).deduplicate()

    def load_tensor(self, spec: dict[str, Any]) -> tuple[SparseTensor, str]:
        """Load (or fetch from cache) the tensor a job spec references."""
        key = self.tensor_key(spec)
        with self._run_lock:
            cached = self._tensors.get(key)
            if cached is not None:
                self._tensors.move_to_end(key)
        if cached is not None:
            self.bump("tensor_cache_hits")
            return cached, key
        tensor = self._load_spec_tensor(spec)
        self.bump("tensor_cache_misses")
        with self._run_lock:
            self._tensors[key] = tensor
            while len(self._tensors) > self.max_cached_tensors:
                old_key, _ = self._tensors.popitem(last=False)
                for ck in [k for k in self._csf if k[0] == old_key]:
                    del self._csf[ck]
        return tensor, key

    def _csf_for(self, tensor: SparseTensor, key: str):
        """The cached CSF set for ``tensor`` (built on first use).

        Caller must hold ``_run_lock`` — the set's plan cache and
        workspaces are not safe under concurrent solves.
        """
        ck = (key, self.allocation, self.sort_variant)
        cs = self._csf.get(ck)
        if cs is not None:
            self._csf.move_to_end(ck)
            self.bump("csf_cache_hits")
            return cs
        with _obs.span("serve.csf_build", key=key):
            cs = build_csf_set(
                tensor, allocation=self.allocation, sort_variant=self.sort_variant
            )
        self._csf[ck] = cs
        self.bump("csf_cache_misses")
        return cs

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def execute(self, job: Job, store: js.JobStore) -> None:
        """Run one job to a terminal (or suspended) state.

        Injected faults at the ``serve.job`` site (or escaping the solver
        after the layer's own retries degrade) are retried up to
        ``max_job_retries`` times; real errors fail the job with a
        structured ``job.error``.
        """
        attempts = 1 + max(0, self.max_job_retries)
        for attempt in range(attempts):
            store.transition(job, js.RUNNING)
            try:
                _flt.poke(JOB_FAULT_SITE)
                self._execute_once(job, store)
                return
            except _flt.InjectedFault as exc:
                if attempt + 1 >= attempts:
                    store.transition(job, js.FAILED, error={
                        "code": "job.fault_retries_exhausted",
                        "message": f"injected fault persisted across "
                                   f"{attempts} attempts: {exc}",
                    })
                    return
                self.bump("job_retries")
                _obs.count("serve.job_retries")
            except Exception as exc:  # noqa: BLE001 — job boundary: a bad
                # job must fail *that job*, never the daemon serving others
                store.transition(job, js.FAILED, error={
                    "code": "job.error",
                    "message": f"{type(exc).__name__}: {exc}",
                })
                return

    def _execute_once(self, job: Job, store: js.JobStore) -> None:
        spec = job.spec
        recorder = TraceRecorder() if spec.get("trace") else None
        with self._run_lock:
            tensor = self._tensors.get(job.tensor_key)
            if tensor is None:  # evicted while queued: reload
                tensor, job.tensor_key = self.load_tensor(spec)
                tensor = self._tensors[job.tensor_key]
            with _obs.span("serve.job", id=job.id, kind=job.kind,
                           tenant=job.tenant):
                if recorder is not None:
                    with tracing(recorder=recorder):
                        outcome = self._solve(job, tensor, store)
                else:
                    outcome = self._solve(job, tensor, store)
        self.bump("jobs_executed")
        if recorder is not None:
            job.trace = recorder.chrome_trace()
        if outcome == "suspended":
            store.transition(job, js.SUSPENDED)
            _obs.count("serve.jobs_suspended")
        else:
            store.transition(job, js.DONE)
            _obs.count("serve.jobs_done")

    def _solve(self, job: Job, tensor: SparseTensor, store: js.JobStore) -> str:
        if job.kind == "cpd":
            return self._solve_cpd(job, tensor)
        if job.kind == "tucker":
            return self._solve_tucker(job, tensor)
        if job.kind == "complete":
            return self._solve_complete(job, tensor)
        raise ValueError(f"unknown job kind {job.kind!r}; choose from {JOB_KINDS}")

    # -- cpd ------------------------------------------------------------
    def _solve_cpd(self, job: Job, tensor: SparseTensor) -> str:
        spec = job.spec
        rank = int(spec.get("rank", 8))
        suspend_after = spec.get("suspend_after_iterations")
        # a job suspended while still queued has no snapshot yet — it
        # simply starts from scratch on resume
        resume_from = None
        if job.resumed and job.checkpoint_path and Path(job.checkpoint_path).exists():
            resume_from = job.checkpoint_path
        ck_path = self.spool / f"{job.id}.ck.npz"
        opts = CpalsOptions(
            max_iterations=int(spec.get("iterations", 20)),
            tolerance=float(spec.get("tolerance", 1e-5)),
            variant=str(spec.get("variant", "vectorized")),
            allocation=self.allocation,
            sort_variant=self.sort_variant,
            env=self.env,
            seed=spec.get("seed", 0),
            backend=self.backend.name,
            checkpoint_path=str(ck_path),
            checkpoint_every=int(spec.get("checkpoint_every", 1)),
            resume_from=resume_from,
        )
        job.checkpoint_path = str(ck_path)
        suspended = {"flag": False}

        def observer(iteration: int, fit: float, factors) -> bool:
            job.iterations_done = iteration
            if job.suspend_requested.is_set() or (
                suspend_after is not None and iteration >= int(suspend_after)
                and iteration < opts.max_iterations
            ):
                suspended["flag"] = True
                return True
            return False

        csf_set = self._csf_for(tensor, job.tensor_key)
        result = cp_als(tensor, rank, opts, callback=observer,
                        csf_set=csf_set, layer=self.layer)
        self._absorb_engine_stats(result.engine_stats)
        if suspended["flag"]:
            # the per-iteration checkpoint written just before the
            # callback stopped the loop is the resume point
            return "suspended"
        job.iterations_done = result.iterations
        job.result = {
            "kind": "cpd",
            "fit": float(result.fit),
            "fits": [float(f) for f in result.fits],
            "iterations": result.iterations,
            "converged": bool(result.converged),
            "lambda": [float(x) for x in result.kruskal.weights],
            "backend": result.engine_stats.get("backend"),
            "plan_hits": int(result.engine_stats.get("plan_hits", 0)),
        }
        if spec.get("return_factors"):
            job.result["factors"] = [f.tolist() for f in result.kruskal.factors]
        return "done"

    def _absorb_engine_stats(self, stats: dict) -> None:
        # MttkrpContext.stats() is cumulative per context; recomputing the
        # global totals from every cached context avoids double counting.
        totals = {"plan_hits": 0, "plan_misses": 0}
        for cs in self._csf.values():
            ctx = getattr(cs, "_mttkrp_context", None)
            if ctx is not None:
                st = ctx.stats()
                totals["plan_hits"] += st.get("plan_hits", 0)
                totals["plan_misses"] += st.get("plan_misses", 0)
        with self._metrics_lock:
            self._counters["plan_hits"] = totals["plan_hits"]
            self._counters["plan_misses"] = totals["plan_misses"]

    # -- tucker ---------------------------------------------------------
    def _solve_tucker(self, job: Job, tensor: SparseTensor) -> str:
        from repro.tucker import tucker_hooi

        spec = job.spec
        ranks = spec.get("ranks", [4])
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) == 1:
            ranks = ranks * tensor.nmodes
        result = tucker_hooi(
            tensor, ranks,
            max_iterations=int(spec.get("iterations", 20)),
            tolerance=float(spec.get("tolerance", 1e-5)),
            seed=spec.get("seed", 0),
            backend=self.backend.name,
        )
        job.iterations_done = result.iterations
        job.result = {
            "kind": "tucker",
            "fit": float(result.fit),
            "iterations": result.iterations,
            "converged": bool(result.converged),
            "ranks": list(result.ranks),
            "core_norm": float(np.linalg.norm(result.core)),
        }
        return "done"

    # -- complete -------------------------------------------------------
    def _solve_complete(self, job: Job, tensor: SparseTensor) -> str:
        from repro.completion.driver import CompletionOptions, complete

        spec = job.spec
        opts = CompletionOptions(
            algorithm=str(spec.get("algorithm", "als")),
            max_epochs=int(spec.get("epochs", 20)),
            regularization=float(spec.get("regularization", 1e-2)),
            learn_rate=float(spec.get("learn_rate", 1e-2)),
            validation_fraction=float(spec.get("validation", 0.1)),
            seed=spec.get("seed", 0),
            backend=self.backend.name,
        )
        result = complete(tensor, int(spec.get("rank", 8)), opts)
        job.iterations_done = result.epochs
        job.result = {
            "kind": "complete",
            "algorithm": result.algorithm,
            "epochs": result.epochs,
            "best_epoch": result.best_epoch,
            "converged": bool(result.converged),
            "train_rmse": float(result.final_train_rmse),
            "val_rmse": float(min(result.val_rmse)) if result.val_rmse else None,
        }
        return "done"

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the worker pool and drop the caches."""
        self.layer.shutdown()
        with self._run_lock:
            self._tensors.clear()
            self._csf.clear()
