"""The ``repro serve`` daemon: a threaded TCP server over the warm engine.

The protocol plane is a :class:`socketserver.ThreadingTCPServer` — one
daemon thread per connection, each reading line-delimited JSON requests
and answering in order.  Compute runs on the scheduler's single executor
thread against the :class:`~repro.serve.engine.WarmEngine`; the two
planes meet only through the :class:`~repro.serve.jobstore.JobStore` and
the scheduler queue, both lock-protected.

Lifecycle: ``start()`` binds the socket (port 0 picks a free port, the
bound one lands in ``.port`` and optionally ``--port-file``), starts the
scheduler, and optionally installs the concurrency sanitizer and a
fault-injection plan process-wide; ``close()`` stops accepting, lets the
running job finish, cancels the rest, shuts the worker pool down and —
when sanitizing — stores the race report in ``.sanitize_report``.

Metrics are exposed through the ``metrics`` op in two shapes: a JSON
dict, and a Prometheus-style ``# TYPE``-annotated text page
(``repro_serve_*`` families) for scrape pipelines; per-job Chrome traces
recorded with ``{"trace": true}`` come back through the ``trace`` op.
See docs/SERVING.md.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Any

from repro.resilience import FaultPlan, inject_faults
from repro.serve import jobstore as js
from repro.serve import protocol as proto
from repro.serve.engine import WarmEngine
from repro.serve.jobstore import JobStore
from repro.serve.quotas import QuotaExceeded, QuotaPolicy
from repro.serve.scheduler import Scheduler

__all__ = ["ServeConfig", "ReproServer"]

DEFAULT_TENANT = "default"


class ServeConfig:
    """Everything configurable about one daemon instance."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.05,
        tasks: int = 1,
        backend: str | None = "auto",
        allocation: str = "two",
        spool: str | Path | None = None,
        quotas: QuotaPolicy | None = None,
        max_job_retries: int = 2,
        max_cached_tensors: int = 32,
        sanitize: bool = False,
        sanitize_seed: int | None = None,
        fault_targets: list[tuple[str, int]] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.batch_window = batch_window
        self.tasks = tasks
        self.backend = backend
        self.allocation = allocation
        self.spool = spool
        self.quotas = quotas if quotas is not None else QuotaPolicy()
        self.max_job_retries = max_job_retries
        self.max_cached_tensors = max_cached_tensors
        self.sanitize = sanitize
        self.sanitize_seed = sanitize_seed
        self.fault_targets = list(fault_targets or [])


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "_TcpServer"

    def handle(self) -> None:
        repro_server = self.server.repro_server
        while True:
            request: dict[str, Any] = {}
            try:
                line = self.rfile.readline(proto.MAX_LINE_BYTES + 2)
            except (OSError, ValueError):
                return
            if not line:
                return
            if line.strip() == b"":
                continue
            try:
                request = proto.decode_line(line)
                response = repro_server.dispatch(request)
            except proto.ProtocolError as exc:
                response = proto.err(exc.code, str(exc))
            except Exception as exc:  # noqa: BLE001 — connection boundary:
                # a handler bug must fail this request, not kill the daemon
                response = proto.err("protocol.internal",
                                     f"{type(exc).__name__}: {exc}")
            try:
                self.wfile.write(proto.encode(response))
                self.wfile.flush()
            except (OSError, ValueError):
                return
            if request.get("op") == "shutdown" and response.get("ok"):
                # close this connection; the server is tearing down
                return


class _TcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro_server: "ReproServer"


class ReproServer:
    """The long-lived decomposition service (see the module docstring)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        spool = self.config.spool
        if spool is None:
            import tempfile

            spool = tempfile.mkdtemp(prefix="repro-serve-spool-")
        self.store = JobStore()
        self.engine = WarmEngine(
            tasks=self.config.tasks,
            backend=self.config.backend,
            allocation=self.config.allocation,
            spool=spool,
            max_job_retries=self.config.max_job_retries,
            max_cached_tensors=self.config.max_cached_tensors,
        )
        self.scheduler = Scheduler(self.engine, self.store,
                                   batch_window=self.config.batch_window)
        self._tcp: _TcpServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()
        self._closed = False
        self._close_lock = threading.Lock()
        self._san_cm = None
        self.sanitizer = None
        self.sanitize_report = None
        self._fault_cm = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._tcp is None:
            raise RuntimeError("server not started")
        return self._tcp.server_address[1]

    def start(self) -> "ReproServer":
        """Bind, start the scheduler and the accept loop (non-blocking).

        The sanitizer and fault-plan installs are process-global; if the
        bind (or anything else mid-start) fails they must be unwound, or
        the failed daemon leaves every later decomposition in this
        process running sanitized/faulted.
        """
        try:
            if self.config.sanitize:
                from repro.sanitize import sanitizing

                self._san_cm = sanitizing(seed=self.config.sanitize_seed)
                self.sanitizer = self._san_cm.__enter__()
            if self.config.fault_targets:
                self._fault_cm = inject_faults(
                    FaultPlan(targets=self.config.fault_targets)
                )
                self._fault_cm.__enter__()
            self._tcp = _TcpServer(
                (self.config.host, self.config.port), _Handler
            )
            self._tcp.repro_server = self
            self.scheduler.start()
            self._serve_thread = threading.Thread(
                target=self._tcp.serve_forever, name="serve-accept",
                daemon=True,
            )
            self._serve_thread.start()
        except BaseException:
            self.close()
            raise
        return self

    def wait_for_shutdown(self, timeout: float | None = None) -> bool:
        """Block until a client issues ``shutdown`` (CLI foreground mode)."""
        return self._shutdown_requested.wait(timeout)

    def close(self) -> None:
        """Graceful teardown: drain, stop the pool, collect reports."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
        self.scheduler.stop()
        self.engine.shutdown()
        if self._fault_cm is not None:
            self._fault_cm.__exit__(None, None, None)
            self._fault_cm = None
        if self._san_cm is not None:
            self.sanitize_report = self.sanitizer.report()
            self._san_cm.__exit__(None, None, None)
            self._san_cm = None

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return proto.err("protocol.unknown_op", f"unknown op {op!r}")
        return handler(request)

    def _job_or_error(self, request: dict[str, Any]):
        job_id = request.get("id")
        job = self.store.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            return None, proto.err("job.unknown", f"no job {job_id!r}")
        return job, None

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return proto.ok(
            pong=True,
            backend=self.engine.backend.name,
            uptime_s=time.time() - self.engine.started_s,
        )

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        spec = request.get("job")
        if not isinstance(spec, dict):
            return proto.err("protocol.bad_envelope", 'submit needs a "job" object')
        tenant = str(request.get("tenant", DEFAULT_TENANT))
        kind = str(spec.get("kind", "cpd"))
        if kind not in ("cpd", "tucker", "complete"):
            return proto.err("job.bad_kind", f"unknown job kind {kind!r}")
        try:
            tensor, key = self.engine.load_tensor(spec)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            return proto.err("job.bad_tensor", f"cannot load tensor: {exc}")
        tensor_bytes = int(tensor.coords.nbytes + tensor.values.nbytes)
        try:
            self.config.quotas.admit(
                tenant,
                nnz=tensor.nnz,
                tensor_bytes=tensor_bytes,
                active_jobs=self.store.tenant_active_jobs(tenant),
                resident_bytes=self.store.tenant_resident_bytes(tenant),
            )
        except QuotaExceeded as exc:
            self.engine.bump("jobs_rejected")
            return proto.err(exc.code, str(exc), **exc.details())
        job = self.store.create(tenant, kind, spec)
        job.nnz = tensor.nnz
        job.resident_bytes = tensor_bytes
        job.tensor_key = key
        self.engine.bump("jobs_submitted")
        self.scheduler.enqueue(job)
        return proto.ok(id=job.id, state=job.state)

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        return proto.ok(job=job.snapshot())

    def _op_result(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        if job.state != js.DONE:
            return proto.err("job.not_done",
                             f"job {job.id} is {job.state}, not done",
                             state=job.state)
        return proto.ok(job=job.snapshot(), result=job.result)

    def _op_wait(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        timeout = request.get("timeout")
        timeout = float(timeout) if timeout is not None else None
        if not job.done.wait(timeout=timeout):
            return proto.err("job.timeout",
                             f"job {job.id} still {job.state} after {timeout}s",
                             state=job.state)
        payload = proto.ok(job=job.snapshot())
        if job.state == js.DONE:
            payload["result"] = job.result
        return payload

    def _op_suspend(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        if job.state in js.TERMINAL_STATES or job.state == js.SUSPENDED:
            return proto.err("job.bad_state",
                             f"cannot suspend a {job.state} job", state=job.state)
        if job.state == js.RUNNING and job.kind != "cpd":
            return proto.err(
                "job.not_suspendable",
                f"running {job.kind} jobs cannot be suspended mid-flight "
                "(no per-iteration callback); only cpd jobs can",
            )
        job.suspend_requested.set()
        if job.state == js.QUEUED and self.scheduler.remove_queued(job):
            self.store.transition(job, js.SUSPENDED)
            self.engine.bump("jobs_suspended")
            return proto.ok(id=job.id, state=job.state)
        # running: the engine callback will checkpoint and stop at the
        # next iteration boundary
        job.done.wait(timeout=float(request.get("timeout", 300.0)))
        if job.state == js.SUSPENDED:
            self.engine.bump("jobs_suspended")
        return proto.ok(id=job.id, state=job.state)

    def _op_resume(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        if job.state != js.SUSPENDED:
            return proto.err("job.bad_state",
                             f"cannot resume a {job.state} job", state=job.state)
        job.resumed += 1
        # a resumed job must run to completion unless suspended again
        job.spec.pop("suspend_after_iterations", None)
        self.store.transition(job, js.QUEUED)
        self.engine.bump("jobs_resumed")
        self.scheduler.enqueue(job)
        return proto.ok(id=job.id, state=job.state,
                        from_iteration=job.iterations_done)

    def _op_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        if job.state != js.QUEUED or not self.scheduler.remove_queued(job):
            return proto.err("job.bad_state",
                             f"only queued jobs can be cancelled (job is "
                             f"{job.state})", state=job.state)
        self.store.transition(job, js.CANCELLED, error={
            "code": "job.cancelled", "message": "cancelled by client",
        })
        self.engine.bump("jobs_cancelled")
        return proto.ok(id=job.id, state=job.state)

    def _op_trace(self, request: dict[str, Any]) -> dict[str, Any]:
        job, error = self._job_or_error(request)
        if error is not None:
            return error
        if job.trace is None:
            return proto.err(
                "job.no_trace",
                f"job {job.id} recorded no trace (submit with "
                '{"trace": true} to record one)',
            )
        return proto.ok(id=job.id, trace=job.trace)

    def _op_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        fmt = str(request.get("format", "json"))
        metrics = self.metrics()
        if fmt == "prometheus":
            return proto.ok(format="prometheus", text=render_prometheus(metrics))
        return proto.ok(format="json", metrics=metrics)

    def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self._shutdown_requested.set()
        return proto.ok(shutting_down=True)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, Any]:
        """The full scrape: engine counters, scheduler stats, job states,
        per-tenant usage, sanitizer findings."""
        jobs = self.store.jobs()
        by_state: dict[str, int] = {}
        tenants: dict[str, dict[str, int]] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
            t = tenants.setdefault(job.tenant, {"jobs": 0, "resident_bytes": 0})
            t["jobs"] += 1
            if job.state not in js.TERMINAL_STATES:
                t["resident_bytes"] += job.resident_bytes
        out: dict[str, Any] = {
            "uptime_seconds": time.time() - self.engine.started_s,
            "backend": self.engine.backend.name,
            "engine": self.engine.counters(),
            "scheduler": self.scheduler.stats(),
            "jobs_by_state": by_state,
            "tenants": tenants,
        }
        if self.sanitizer is not None:
            report = self.sanitizer.report()
            out["sanitize_findings"] = len(report.findings)
        return out


def render_prometheus(metrics: dict[str, Any]) -> str:
    """Render the metrics dict as a Prometheus text-format page."""
    lines: list[str] = []

    def emit(name: str, value, help_text: str = "", labels: str = "") -> None:
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{labels} {float(value):g}")

    emit("repro_serve_uptime_seconds", metrics["uptime_seconds"],
         "seconds since the engine warmed up")
    engine = metrics["engine"]
    for key in sorted(engine):
        emit(f"repro_serve_{key}", engine[key])
    sched = metrics["scheduler"]
    for key in ("batches", "batched_jobs", "largest_batch", "queue_depth"):
        emit(f"repro_serve_{key}", sched[key])
    for state, n in sorted(metrics["jobs_by_state"].items()):
        emit("repro_serve_jobs", n, labels=f'{{state="{state}"}}')
    for tenant, usage in sorted(metrics["tenants"].items()):
        emit("repro_serve_tenant_jobs", usage["jobs"],
             labels=f'{{tenant="{tenant}"}}')
        emit("repro_serve_tenant_resident_bytes", usage["resident_bytes"],
             labels=f'{{tenant="{tenant}"}}')
    if "sanitize_findings" in metrics:
        emit("repro_serve_sanitize_findings", metrics["sanitize_findings"])
    lines.append(f'repro_serve_backend_info{{backend="{metrics["backend"]}"}} 1')
    return "\n".join(lines) + "\n"
