"""Per-tenant admission control for the decomposition service.

A long-lived multi-tenant daemon must bound what any one tenant can pin:
one 100M-nnz submission would evict every other tenant's hot plans, and
an unbounded queue lets a runaway client starve the batch scheduler.
Three limits, each with its own structured rejection code:

=======================  =============================================
``max_nnz``              largest single tensor a job may reference
                         (``quota.max_nnz``)
``max_resident_bytes``   total tensor bytes the tenant's queued +
                         running jobs may pin in the cache
                         (``quota.max_resident_bytes``)
``max_queued_jobs``      queued + running jobs per tenant
                         (``quota.max_queued_jobs``)
=======================  =============================================

Rejections are *structured*: the client receives the code, the limit,
the observed value and the tenant, so an SDK can distinguish "shrink
your tensor" from "back off and retry" without parsing prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["TenantQuotas", "QuotaPolicy", "QuotaExceeded", "UNLIMITED"]

#: Sentinel limit meaning "no cap" (0 or negative limits also disable).
UNLIMITED = 0


class QuotaExceeded(Exception):
    """An admission rejection carrying its structured payload."""

    def __init__(self, code: str, message: str, *, tenant: str,
                 limit: int, actual: int):
        super().__init__(message)
        self.code = code
        self.tenant = tenant
        self.limit = limit
        self.actual = actual

    def details(self) -> dict[str, Any]:
        return {"tenant": self.tenant, "limit": self.limit, "actual": self.actual}


@dataclass(frozen=True)
class TenantQuotas:
    """Limits for one tenant (``UNLIMITED``/≤0 disables a limit)."""

    max_nnz: int = UNLIMITED
    max_resident_bytes: int = UNLIMITED
    max_queued_jobs: int = UNLIMITED


class QuotaPolicy:
    """Default limits plus per-tenant overrides.

    The policy is pure decision logic: the server passes in the observed
    usage (from the :class:`~repro.serve.jobstore.JobStore`) and the
    candidate job's size, and gets either silence or a
    :class:`QuotaExceeded` naming the violated limit.
    """

    def __init__(self, default: TenantQuotas | None = None,
                 overrides: dict[str, TenantQuotas] | None = None):
        self.default = default if default is not None else TenantQuotas()
        self.overrides = dict(overrides or {})

    def quotas_for(self, tenant: str) -> TenantQuotas:
        return self.overrides.get(tenant, self.default)

    def admit(self, tenant: str, *, nnz: int, tensor_bytes: int,
              active_jobs: int, resident_bytes: int) -> None:
        """Raise :class:`QuotaExceeded` if the job must be rejected.

        Parameters
        ----------
        nnz / tensor_bytes:
            The candidate job's tensor size.
        active_jobs / resident_bytes:
            The tenant's usage *before* this job is admitted.
        """
        q = self.quotas_for(tenant)
        if q.max_queued_jobs > 0 and active_jobs + 1 > q.max_queued_jobs:
            raise QuotaExceeded(
                "quota.max_queued_jobs",
                f"tenant {tenant!r} already has {active_jobs} queued/running "
                f"jobs (limit {q.max_queued_jobs})",
                tenant=tenant, limit=q.max_queued_jobs, actual=active_jobs + 1,
            )
        if q.max_nnz > 0 and nnz > q.max_nnz:
            raise QuotaExceeded(
                "quota.max_nnz",
                f"tensor has {nnz} nonzeros, over tenant {tenant!r}'s "
                f"per-job limit of {q.max_nnz}",
                tenant=tenant, limit=q.max_nnz, actual=nnz,
            )
        if q.max_resident_bytes > 0 and resident_bytes + tensor_bytes > q.max_resident_bytes:
            raise QuotaExceeded(
                "quota.max_resident_bytes",
                f"admitting this job would pin {resident_bytes + tensor_bytes} "
                f"tensor bytes for tenant {tenant!r} (limit {q.max_resident_bytes})",
                tenant=tenant, limit=q.max_resident_bytes,
                actual=resident_bytes + tensor_bytes,
            )
