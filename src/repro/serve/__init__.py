"""``repro.serve`` — the long-lived decomposition service (ROADMAP item 3).

Every CLI invocation pays the full cold-start: CSF build, scatter-plan
construction, worker-pool spin-up, backend compile (BENCH_mttkrp puts
cold/steady at ~5x).  This package keeps all of that state alive in one
process and serves decompose/tucker/complete jobs over a line-delimited
JSON socket:

* :mod:`~repro.serve.protocol` — the wire format (one JSON object per
  line, versioned envelope, structured error codes);
* :mod:`~repro.serve.jobstore` — job records and their state machine
  (``queued → running → done/failed``, plus ``suspended`` and
  ``cancelled``);
* :mod:`~repro.serve.quotas` — per-tenant admission control (max nnz,
  max resident bytes, max queued jobs) with structured rejections;
* :mod:`~repro.serve.engine` — the warm state: tensor + CSF/plan caches,
  one persistent tasking layer and worker pool, the resolved backend,
  per-job checkpoint/suspend/resume and job-level fault retry;
* :mod:`~repro.serve.scheduler` — batching: jobs arriving within the
  batch window that share a batch key (same tensor, rank and solver
  options modulo seed) run back-to-back against the same hot CSF set;
* :mod:`~repro.serve.server` — the TCP daemon (``repro serve``);
* :mod:`~repro.serve.client` — the thin client (``repro submit``).

See docs/SERVING.md for the protocol, batching semantics, quota
configuration, the metrics scrape and suspend/resume.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobstore import Job, JobStore
from repro.serve.quotas import QuotaExceeded, QuotaPolicy, TenantQuotas
from repro.serve.server import ReproServer, ServeConfig

__all__ = [
    "ReproServer",
    "ServeConfig",
    "ServeClient",
    "ServeError",
    "Job",
    "JobStore",
    "QuotaPolicy",
    "TenantQuotas",
    "QuotaExceeded",
]
