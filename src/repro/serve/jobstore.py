"""Job records and their state machine for the decomposition service.

A job moves through::

    queued ──> running ──> done
       │          │   └──> failed      (real error, or retries exhausted)
       │          └──────> suspended   (operator suspend / quantum expiry)
       ├────────> cancelled            (cancel while still queued)
       └────────> suspended            (suspend while still queued)

    suspended ──resume──> queued       (continues from its checkpoint)

Terminal states are ``done``, ``failed`` and ``cancelled``.  Suspension
relies on the resilience layer: a suspendable job checkpoints its solver
state to the server's spool directory, and resume re-enqueues it with
``resume_from`` pointing at that snapshot, so the resumed run reproduces
the uninterrupted one (the checkpoint golden tests pin this down).

All mutation goes through :class:`JobStore`, which holds one lock; the
protocol handlers, the scheduler thread and the engine all touch jobs
concurrently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Job", "JobStore", "QUEUED", "RUNNING", "SUSPENDED", "DONE",
           "FAILED", "CANCELLED", "TERMINAL_STATES"]

QUEUED = "queued"
RUNNING = "running"
SUSPENDED = "suspended"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class Job:
    """One submitted decomposition job.

    ``spec`` is the client's job object (kind, tensor reference, rank,
    solver options); everything else is server-side bookkeeping.  The
    ``done`` event fires on every transition into a terminal state *or*
    into ``suspended`` — both end the current execution, which is what
    ``wait`` callers block on.
    """

    id: str
    tenant: str
    kind: str
    spec: dict[str, Any]
    state: str = QUEUED
    submitted_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    nnz: int = 0
    resident_bytes: int = 0
    tensor_key: str = ""
    batch_id: int | None = None
    attempts: int = 0
    iterations_done: int = 0
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    trace: dict[str, Any] | None = None
    checkpoint_path: str | None = None
    resumed: int = 0
    suspend_requested: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)

    def snapshot(self) -> dict[str, Any]:
        """The JSON-safe status view returned by the ``status`` op."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "state": self.state,
            "nnz": self.nnz,
            "batch": self.batch_id,
            "attempts": self.attempts,
            "iterations": self.iterations_done,
            "resumed": self.resumed,
            "error": self.error,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }


class JobStore:
    """Thread-safe registry of every job the server has seen."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._next = 0

    def create(self, tenant: str, kind: str, spec: dict[str, Any]) -> Job:
        with self._lock:
            self._next += 1
            job = Job(id=f"job-{self._next:06d}", tenant=tenant, kind=kind, spec=spec)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: str | None = None) -> list[Job]:
        with self._lock:
            out = list(self._jobs.values())
        if tenant is not None:
            out = [j for j in out if j.tenant == tenant]
        return out

    # ------------------------------------------------------------------
    # per-tenant accounting the quota policy reads at admission time
    # ------------------------------------------------------------------
    def tenant_active_jobs(self, tenant: str) -> int:
        """Jobs of ``tenant`` currently holding a queue/run slot."""
        with self._lock:
            return sum(
                1 for j in self._jobs.values()
                if j.tenant == tenant and j.state in (QUEUED, RUNNING)
            )

    def tenant_resident_bytes(self, tenant: str) -> int:
        """Tensor bytes pinned by ``tenant``'s non-terminal jobs."""
        with self._lock:
            return sum(
                j.resident_bytes for j in self._jobs.values()
                if j.tenant == tenant and j.state not in TERMINAL_STATES
            )

    # ------------------------------------------------------------------
    # transitions (all under the store lock; events fired outside it)
    # ------------------------------------------------------------------
    def transition(self, job: Job, state: str, *, error: dict | None = None) -> None:
        """Move ``job`` to ``state``, stamping times and firing events."""
        fire = False
        with self._lock:
            job.state = state
            if state == RUNNING:
                job.started_s = time.time()
                job.attempts += 1
                job.done.clear()
            elif state in TERMINAL_STATES or state == SUSPENDED:
                job.finished_s = time.time()
                if error is not None:
                    job.error = error
                fire = True
            elif state == QUEUED:  # resume path
                job.done.clear()
                job.suspend_requested.clear()
        if fire:
            job.done.set()
