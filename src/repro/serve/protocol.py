"""Wire protocol for the decomposition service: line-delimited JSON.

One request or response per line; a connection may carry any number of
request/response pairs (responses come back in request order).  The
format is deliberately transport-trivial — ``nc localhost PORT`` with a
hand-typed line works — because the interesting state lives server-side.

Requests::

    {"op": "submit", "tenant": "acme", "job": {...}}
    {"op": "status" | "result" | "wait" | "suspend" | "resume" |
           "cancel" | "trace", "id": "job-000001"}
    {"op": "metrics", "format": "json" | "prometheus"}
    {"op": "ping"} / {"op": "shutdown"}

Responses::

    {"ok": true,  "v": 1, ...payload...}
    {"ok": false, "v": 1, "error": {"code": "quota.max_nnz",
                                    "message": "...", ...details...}}

Error codes are namespaced: ``protocol.*`` (malformed requests),
``quota.*`` (admission rejections, one code per limit — see
:mod:`repro.serve.quotas`), ``job.*`` (unknown id, bad state
transition, execution failure).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "encode",
    "decode_line",
    "ok",
    "err",
    "ProtocolError",
]

PROTOCOL_VERSION = 1

#: Cap on one request line; a line longer than this is rejected rather
#: than buffered (inline tensors for larger jobs should go through a
#: file path — the server mmaps/caches it once for every tenant).
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a request envelope."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def encode(obj: dict[str, Any]) -> bytes:
    """Serialize one message as a single newline-terminated JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes, *, require_op: bool = True) -> dict[str, Any]:
    """Parse one message line into its envelope dict.

    ``require_op`` is True for the server side (requests must carry an
    ``"op"`` string); the client decodes responses with it off.

    Raises
    ------
    ProtocolError
        With ``protocol.bad_json`` / ``protocol.bad_envelope`` codes the
        server turns into structured error responses.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "protocol.line_too_long",
            f"request line is {len(line)} bytes (limit {MAX_LINE_BYTES}); "
            "submit large tensors by path, not inline",
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("protocol.bad_json", f"unparseable request: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("protocol.bad_envelope", "message must be a JSON object")
    if require_op and not isinstance(obj.get("op"), str):
        raise ProtocolError(
            "protocol.bad_envelope", 'request must be a JSON object with an "op" string'
        )
    return obj


def ok(**payload: Any) -> dict[str, Any]:
    """A success response envelope."""
    return {"ok": True, "v": PROTOCOL_VERSION, **payload}


def err(code: str, message: str, **details: Any) -> dict[str, Any]:
    """A structured error response envelope."""
    return {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message, **details},
    }
