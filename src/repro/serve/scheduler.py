"""Batching scheduler: group compatible jobs, run them against hot caches.

Production decomposition traffic is bursty and repetitive — the same
tensor decomposed at the same rank with different seeds (multistart), or
re-decomposed as data refreshes.  The scheduler exploits that: jobs
arriving within ``batch_window`` seconds are drained together and
grouped by **batch key**

    (kind, tensor fingerprint, rank/ranks, solver-relevant options)

i.e. everything that determines the CSF set and scatter plans, *modulo
seed*.  Each group becomes one batch: its first job may pay the CSF/plan
build, every subsequent job in the group runs against caches that are
guaranteed hot (no other tensor's jobs run in between to evict or cool
them).  Groups run in arrival order of their earliest member, so
batching never starves a lone job behind an unrelated flood.

The scheduler owns exactly one executor thread; the engine's run lock
makes that the single compute plane.  Suspending a *queued* job removes
it from the queue before it ever runs; suspending a *running* job sets
its ``suspend_requested`` event, which the per-iteration callback in the
engine honors at the next checkpoint boundary.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.observe import spans as _obs
from repro.serve import jobstore as js
from repro.serve.engine import WarmEngine
from repro.serve.jobstore import Job, JobStore

__all__ = ["Scheduler", "batch_key"]


def batch_key(job: Job) -> tuple:
    """The fusion key: jobs sharing it reuse each other's warm state."""
    spec = job.spec
    if job.kind == "cpd":
        shape = ("rank", int(spec.get("rank", 8)))
    elif job.kind == "tucker":
        shape = ("ranks", tuple(int(r) for r in spec.get("ranks", [4])))
    else:
        shape = ("rank", int(spec.get("rank", 8)), str(spec.get("algorithm", "als")))
    return (
        job.kind,
        job.tensor_key,
        shape,
        str(spec.get("variant", "vectorized")),
        int(spec.get("iterations", spec.get("epochs", 20))),
    )


class Scheduler:
    """One executor thread draining a window-batched job queue."""

    def __init__(self, engine: WarmEngine, store: JobStore,
                 *, batch_window: float = 0.05) -> None:
        self.engine = engine
        self.store = store
        self.batch_window = max(0.0, float(batch_window))
        self._queue: list[Job] = []
        self._cv = threading.Condition()
        self._stop = False
        self._stop_event = threading.Event()
        self._running_job: Job | None = None
        self._batches = 0
        self._batched_jobs = 0
        self._largest_batch = 0
        self._thread = threading.Thread(
            target=self._run, name="serve-scheduler", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    # ------------------------------------------------------------------
    # queue operations (called from protocol threads)
    # ------------------------------------------------------------------
    def enqueue(self, job: Job) -> None:
        with self._cv:
            self._queue.append(job)
            self._cv.notify()

    def remove_queued(self, job: Job) -> bool:
        """Pull a still-queued job out of the queue (cancel/suspend)."""
        with self._cv:
            try:
                self._queue.remove(job)
                return True
            except ValueError:
                return False

    def queue_depth(self) -> int:
        with self._cv:
            return len(self._queue)

    def running_job(self) -> Job | None:
        with self._cv:
            return self._running_job

    def stats(self) -> dict[str, Any]:
        with self._cv:
            return {
                "batches": self._batches,
                "batched_jobs": self._batched_jobs,
                "largest_batch": self._largest_batch,
                "queue_depth": len(self._queue),
                "running": self._running_job.id if self._running_job else None,
            }

    # ------------------------------------------------------------------
    # executor
    # ------------------------------------------------------------------
    def _drain_window(self) -> list[Job]:
        """Block for work, then hold the batch window open and drain."""
        with self._cv:
            while not self._queue and not self._stop:
                self._cv.wait(timeout=0.5)
            if self._stop:
                return []
        if self.batch_window > 0:
            # let same-burst submissions land so they can be grouped
            # (returns early when stop() fires mid-window)
            self._stop_event.wait(self.batch_window)
        with self._cv:
            if self._stop:  # leave the queue for stop() to cancel
                return []
            drained = self._queue
            self._queue = []
            return drained

    def _run(self) -> None:
        while True:
            batch = self._drain_window()
            if not batch:
                if self._stop:
                    return
                continue
            groups: dict[tuple, list[Job]] = {}
            order: list[tuple] = []
            for job in batch:
                key = batch_key(job)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(job)
            for key in order:
                group = groups[key]
                with self._cv:
                    self._batches += 1
                    batch_id = self._batches
                    self._batched_jobs += len(group)
                    self._largest_batch = max(self._largest_batch, len(group))
                _obs.count("serve.batches")
                _obs.count("serve.batched_jobs", len(group))
                for job in group:
                    job.batch_id = batch_id
                    if self._stop:
                        break
                    if job.state != js.QUEUED:  # cancelled/suspended meanwhile
                        continue
                    if job.suspend_requested.is_set():
                        self.store.transition(job, js.SUSPENDED)
                        continue
                    with self._cv:
                        self._running_job = job
                    try:
                        self.engine.execute(job, self.store)
                    finally:
                        with self._cv:
                            self._running_job = None
                    if self._stop:
                        break
                if self._stop:
                    break
            if self._stop:
                with self._cv:
                    leftovers = self._queue + [
                        j for k in order for j in groups[k] if j.state == js.QUEUED
                    ]
                    self._queue = []
                for job in leftovers:
                    self.store.transition(job, js.CANCELLED, error={
                        "code": "job.server_shutdown",
                        "message": "server shut down before the job ran",
                    })
                return

    def stop(self, *, join_timeout: float = 30.0) -> None:
        """Finish (at most) the running job, cancel the rest, join."""
        with self._cv:
            self._stop = True
            self._stop_event.set()
            self._cv.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=join_timeout)
        # cancel anything still queued after the thread exits
        with self._cv:
            leftovers, self._queue = self._queue, []
        for job in leftovers:
            self.store.transition(job, js.CANCELLED, error={
                "code": "job.server_shutdown",
                "message": "server shut down before the job ran",
            })
