"""Thin synchronous client for the ``repro serve`` daemon.

One TCP connection, one request/response pair per call, line-delimited
JSON both ways (see :mod:`repro.serve.protocol`).  The client is a
context manager::

    with ServeClient(port=7461) as c:
        job = c.submit({"kind": "cpd", "tensor": "data/x.tns", "rank": 8})
        done = c.wait(job["id"], timeout=60)
        print(done["result"]["fit"])

Errors come back in-band as ``{"ok": false, "code": ..., ...}``; by
default every method raises :class:`ServeError` on them so callers can
``try/except`` one type.  Pass ``check=False`` to get the raw envelope
(the quota tests inspect rejection payloads this way).
"""

from __future__ import annotations

import socket
from typing import Any

from repro.serve import protocol as proto

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A structured server-side rejection (``ok: false`` envelope)."""

    def __init__(self, envelope: dict[str, Any]):
        error = envelope.get("error") or {}
        super().__init__(error.get("message", "server error"))
        self.code = error.get("code", "unknown")
        self.error = error
        self.envelope = envelope


class ServeClient:
    """One connection to a running :class:`~repro.serve.server.ReproServer`."""

    def __init__(self, *, host: str = "127.0.0.1", port: int,
                 tenant: str = "default", timeout: float | None = 300.0):
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile = None

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            self._rfile = self._sock.makefile("rb")
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def call(self, op: str, *, check: bool = True, **fields: Any) -> dict[str, Any]:
        """Send one request, read one response."""
        if self._sock is None:
            self.connect()
        request = {"op": op, **fields}
        self._sock.sendall(proto.encode(request))
        line = self._rfile.readline(proto.MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError(f"server closed the connection during {op!r}")
        response = proto.decode_line(line, require_op=False)
        if check and not response.get("ok"):
            raise ServeError(response)
        return response

    # ------------------------------------------------------------------
    # one method per op
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.call("ping")

    def submit(self, job: dict[str, Any], *, tenant: str | None = None,
               check: bool = True) -> dict[str, Any]:
        return self.call("submit", job=job,
                         tenant=tenant if tenant is not None else self.tenant,
                         check=check)

    def status(self, job_id: str) -> dict[str, Any]:
        return self.call("status", id=job_id)

    def result(self, job_id: str) -> dict[str, Any]:
        return self.call("result", id=job_id)

    def wait(self, job_id: str, *, timeout: float | None = None) -> dict[str, Any]:
        return self.call("wait", id=job_id, timeout=timeout)

    def suspend(self, job_id: str, *, timeout: float = 300.0) -> dict[str, Any]:
        return self.call("suspend", id=job_id, timeout=timeout)

    def resume(self, job_id: str) -> dict[str, Any]:
        return self.call("resume", id=job_id)

    def cancel(self, job_id: str, *, check: bool = True) -> dict[str, Any]:
        return self.call("cancel", id=job_id, check=check)

    def trace(self, job_id: str) -> dict[str, Any]:
        return self.call("trace", id=job_id)

    def metrics(self, *, format: str = "json") -> dict[str, Any]:
        return self.call("metrics", format=format)

    def shutdown(self) -> dict[str, Any]:
        return self.call("shutdown")
