"""CSF traversal API — structured walking of slices, fibers and nonzeros.

The MTTKRP kernels index the CSF arrays directly for speed; downstream
users writing custom kernels (or debugging a tree) want a readable
traversal instead.  These generators expose the tree level by level with
plain Python objects, matching the loop structure of SPLATT's reference
kernels:

    for s in iter_slices(csf):                       # level 0
        for f in iter_fibers(csf, s):                # level 1
            for idx, val in iter_leaves(csf, f):     # leaf level (order 3)
                ...

For arbitrary order, :func:`iter_children` walks any level, and
:func:`walk_paths` yields complete root-to-leaf coordinate paths with
values (the CSF's logical contents, used by the round-trip tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.csf.tree import CsfTensor

__all__ = ["CsfNode", "iter_slices", "iter_fibers", "iter_leaves",
           "iter_children", "walk_paths"]


@dataclass(frozen=True)
class CsfNode:
    """One tree node: its level, position, and mode index.

    ``position`` indexes the level's ``fids``/``fptr`` arrays; ``index`` is
    the node's coordinate in mode ``csf.dim_perm[level]``.
    """

    level: int
    position: int
    index: int


def iter_slices(csf: CsfTensor) -> Iterator[CsfNode]:
    """Yield the root-level nodes (slices)."""
    fids = csf.fids[0]
    for pos in range(csf.nslices):
        yield CsfNode(0, pos, int(fids[pos]))


def iter_children(csf: CsfTensor, node: CsfNode) -> Iterator[CsfNode]:
    """Yield a node's children at the next level.

    Raises on leaf nodes (they have values, not children).
    """
    if node.level >= csf.nmodes - 1:
        raise ValueError(f"level-{node.level} nodes are leaves; no children")
    ptr = csf.fptr[node.level]
    child_fids = csf.fids[node.level + 1]
    for pos in range(int(ptr[node.position]), int(ptr[node.position + 1])):
        yield CsfNode(node.level + 1, pos, int(child_fids[pos]))


def iter_fibers(csf: CsfTensor, slice_node: CsfNode) -> Iterator[CsfNode]:
    """Yield a root slice's level-1 fibers (3rd-order vocabulary)."""
    if slice_node.level != 0:
        raise ValueError("iter_fibers expects a root-level node")
    return iter_children(csf, slice_node)


def iter_leaves(csf: CsfTensor, node: CsfNode) -> Iterator[tuple[int, float]]:
    """Yield ``(mode_index, value)`` for the leaves under a level-(N-2) node."""
    if node.level != csf.nmodes - 2:
        raise ValueError(
            f"iter_leaves expects a level-{csf.nmodes - 2} node, got level {node.level}"
        )
    ptr = csf.fptr[node.level]
    leaf_fids = csf.fids[node.level + 1]
    values = csf.values
    for pos in range(int(ptr[node.position]), int(ptr[node.position + 1])):
        yield int(leaf_fids[pos]), float(values[pos])


def walk_paths(csf: CsfTensor) -> Iterator[tuple[tuple[int, ...], float]]:
    """Yield every nonzero as ``(coords_in_original_mode_order, value)``.

    Depth-first over the tree; the logical inverse of CSF construction.
    """
    nmodes = csf.nmodes
    inverse = np.empty(nmodes, dtype=np.int64)
    for level, mode in enumerate(csf.dim_perm):
        inverse[level] = mode

    def descend(node: CsfNode, prefix: list[int]):
        prefix.append(node.index)
        if node.level == nmodes - 2:
            for leaf_index, value in iter_leaves(csf, node):
                path = prefix + [leaf_index]
                coords = [0] * nmodes
                for level, idx in enumerate(path):
                    coords[int(inverse[level])] = idx
                yield tuple(coords), value
        else:
            for child in iter_children(csf, node):
                yield from descend(child, prefix)
        prefix.pop()

    if nmodes == 1:
        for pos in range(csf.nnz):
            yield (int(csf.fids[0][pos]),), float(csf.values[pos])
        return
    for root in iter_slices(csf):
        yield from descend(root, [])
