"""CSF mode-ordering and allocation policies (SPLATT's ``csf_find_mode_order``).

Two orthogonal choices determine how many CSF trees exist and which modes
root them:

*Mode ordering* — given a root constraint, in what order do the remaining
modes descend the tree?  SPLATT's default (``CSF_SORTED_SMALLEST``) sorts
modes by length ascending so the root has the fewest slices, maximizing
prefix sharing; ``CSF_SORTED_BIGGEST`` is the reverse and
``CSF_INORDER`` keeps natural order.

*Allocation* — how many trees to build:

``one``   a single tree (smallest mode at root); other modes use the
          internal/leaf MTTKRP algorithms.
``two``   SPLATT's default: one tree rooted smallest + one rooted at the
          *largest* mode (which is the most expensive to handle as a leaf).
``all``   one tree per mode, each rooted at that mode (fastest, most
          memory).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_axis

__all__ = ["MODE_ORDERINGS", "CSF_ALLOCATIONS", "mode_order"]

MODE_ORDERINGS: tuple[str, ...] = ("sorted_smallest", "sorted_biggest", "inorder")
CSF_ALLOCATIONS: tuple[str, ...] = ("one", "two", "all")


def mode_order(
    dims: tuple[int, ...],
    *,
    ordering: str = "sorted_smallest",
    root: int | None = None,
) -> tuple[int, ...]:
    """Choose a CSF mode permutation.

    Parameters
    ----------
    dims:
        Tensor mode lengths.
    ordering:
        One of :data:`MODE_ORDERINGS`.
    root:
        Force this original mode to level 0 (used by the ``all`` allocation,
        which roots one tree at every mode); remaining modes still follow
        ``ordering``.

    Returns
    -------
    ``dim_perm`` — ``perm[level] = original mode``.

    Notes
    -----
    Ties are broken by mode index, matching SPLATT's stable sort, so results
    are deterministic.
    """
    nmodes = len(dims)
    if ordering not in MODE_ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}; choose from {MODE_ORDERINGS}")
    if ordering == "inorder":
        order = list(range(nmodes))
    else:
        keys = np.asarray(dims, dtype=np.int64)
        if ordering == "sorted_biggest":
            keys = -keys
        order = list(np.argsort(keys, kind="stable"))
        order = [int(m) for m in order]
    if root is not None:
        root = check_axis(root, nmodes)
        order.remove(root)
        order.insert(0, root)
    return tuple(order)
