"""Compressed Sparse Fiber (CSF) tensors — SPLATT's core data structure.

A CSF stores a sorted sparse tensor as a forest of prefix trees: level 0
holds the distinct indices of the root mode, level ``l`` the distinct
``(root..mode_l)`` prefixes, and the leaves hold the nonzero values.  The
MTTKRP kernels in :mod:`repro.mttkrp` walk these trees.

The paper ports SPLATT v2.0.0's CSF including its mode-ordering policy
(smallest dimension at the root) and its one/two/all-mode allocation
schemes; mode *tiling* is intentionally omitted, as it was from the paper's
port.
"""

from repro.csf.build import CsfSet, build_csf, build_csf_set
from repro.csf.permute import CSF_ALLOCATIONS, MODE_ORDERINGS, mode_order
from repro.csf.tree import CsfTensor

__all__ = [
    "CsfTensor",
    "build_csf",
    "build_csf_set",
    "CsfSet",
    "mode_order",
    "MODE_ORDERINGS",
    "CSF_ALLOCATIONS",
]
