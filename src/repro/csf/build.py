"""CSF construction from COO tensors (SPLATT's ``csf_alloc`` pipeline).

Construction is: sort the nonzeros lexicographically in ``dim_perm`` order
(:mod:`repro.tensor.sort`), then detect prefix boundaries level by level —
a fully vectorized rendition of SPLATT's ``p_mk_fptr``/``p_mk_outerptr``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import INDEX_DTYPE
from repro.csf.permute import CSF_ALLOCATIONS, mode_order
from repro.csf.tree import CsfTensor
from repro.observe import spans as _obs
from repro.tensor.coo import SparseTensor
from repro.tensor.sort import sort_tensor

__all__ = ["build_csf", "build_csf_set", "CsfSet"]


def build_csf(
    tensor: SparseTensor,
    dim_perm: tuple[int, ...] | None = None,
    *,
    sort_variant: str = "lexsort",
) -> CsfTensor:
    """Build one CSF tree for ``tensor`` with the given mode permutation.

    Parameters
    ----------
    tensor:
        Deduplicated COO tensor.
    dim_perm:
        Mode permutation (level → original mode).  Defaults to SPLATT's
        smallest-mode-first policy.
    sort_variant:
        Which sort implementation performs the pre-processing sort (the
        paper's Fig 1 ladder or the vectorized ``lexsort`` baseline).

    Notes
    -----
    SPLATT sorts with the *output mode primary, rest ascending*; CSF
    construction instead needs a full lexicographic sort in ``dim_perm``
    order.  We therefore sort with a permuted view and un-permute after,
    which is exactly what SPLATT's pointer-swap trick accomplishes.
    """
    if dim_perm is None:
        dim_perm = mode_order(tensor.dims)
    nmodes = tensor.nmodes
    if sorted(dim_perm) != list(range(nmodes)):
        raise ValueError(f"dim_perm {dim_perm} is not a permutation of 0..{nmodes - 1}")
    with _obs.span(
        "csf.build", root=int(dim_perm[0]), nnz=tensor.nnz, sort_variant=sort_variant
    ):
        return _build_csf_sorted(tensor, tuple(dim_perm), sort_variant)


def _build_csf_sorted(
    tensor: SparseTensor, dim_perm: tuple[int, ...], sort_variant: str
) -> CsfTensor:
    nmodes = tensor.nmodes
    # Sort nonzeros lexicographically in dim_perm order.  sort_tensor sorts
    # (mode, then remaining ascending); permuting modes first makes its key
    # order equal dim_perm, then we map columns back.
    permuted = tensor.permute_modes(dim_perm)
    sorted_perm = sort_tensor(permuted, 0, variant=sort_variant)

    coords = sorted_perm.coords  # (nnz, N) in dim_perm level order
    values = sorted_perm.values
    nnz = tensor.nnz

    fids: list[np.ndarray] = []
    fptr: list[np.ndarray] = []
    if nnz == 0:
        for level in range(nmodes):
            fids.append(np.empty(0, dtype=INDEX_DTYPE))
            if level < nmodes - 1:
                fptr.append(np.zeros(1, dtype=INDEX_DTYPE))
        return CsfTensor(tensor.dims, tuple(dim_perm), fptr, fids, values)

    # new_prefix[level][x] — nonzero x starts a new node at `level`
    # (i.e. differs from its predecessor in any of modes 0..level).
    new_prefix = np.zeros((nmodes, nnz), dtype=bool)
    new_prefix[:, 0] = True
    running = np.zeros(nnz - 1, dtype=bool)
    for level in range(nmodes):
        running |= coords[1:, level] != coords[:-1, level]
        new_prefix[level, 1:] = running

    # Node ids per level: cumulative count of starts.
    for level in range(nmodes):
        starts = np.flatnonzero(new_prefix[level])
        fids.append(coords[starts, level].astype(INDEX_DTYPE))
    # fptr[level][i] = index into level+1 nodes where node i's children begin.
    for level in range(nmodes - 1):
        starts = np.flatnonzero(new_prefix[level])
        child_rank = np.cumsum(new_prefix[level + 1]) - 1  # node id at child level
        ptr = np.empty(starts.size + 1, dtype=INDEX_DTYPE)
        ptr[:-1] = child_rank[starts]
        ptr[-1] = fids[level + 1].shape[0]
        fptr.append(ptr)

    return CsfTensor(tensor.dims, tuple(dim_perm), fptr, fids, values)


@dataclass
class CsfSet:
    """A set of CSF trees covering all MTTKRP output modes.

    Produced by :func:`build_csf_set`; consumed by
    :func:`repro.mttkrp.mttkrp_csf`, which asks :meth:`tree_for_mode` which
    tree to use for a given output mode and which algorithm (root /
    internal / leaf) applies.
    """

    allocation: str
    trees: list[CsfTensor]

    @property
    def nmodes(self) -> int:
        return self.trees[0].nmodes

    @property
    def mttkrp_context(self):
        """The set's lazily created :class:`~repro.mttkrp.scatter.MttkrpContext`.

        Scatter plans and workspaces are keyed by tree identity, so the
        cache lives with the object that owns the trees; repeated
        :func:`~repro.mttkrp.mttkrp_csf` calls on the same set amortize all
        per-call setup through it.
        """
        ctx = getattr(self, "_mttkrp_context", None)
        if ctx is None:
            from repro.mttkrp.scatter import MttkrpContext

            ctx = MttkrpContext()
            object.__setattr__(self, "_mttkrp_context", ctx)
        return ctx

    def clear_plan_cache(self) -> None:
        """Drop the set's cached MTTKRP plans/workspaces (no-op when the
        context was never created).  See
        :meth:`repro.mttkrp.scatter.MttkrpContext.clear_plan_cache`."""
        ctx = getattr(self, "_mttkrp_context", None)
        if ctx is not None:
            ctx.clear_plan_cache()

    def memory_bytes(self) -> int:
        """Total storage over all trees (the one/two/all trade-off number)."""
        return sum(t.memory_bytes() for t in self.trees)

    def tree_for_mode(self, mode: int) -> tuple[CsfTensor, str]:
        """Select ``(tree, algorithm)`` for output mode ``mode``.

        Follows SPLATT's dispatch: prefer a tree rooted at ``mode`` (root
        algorithm); otherwise prefer one where ``mode`` is an internal
        level; fall back to the leaf algorithm on the first tree.
        """
        for tree in self.trees:
            if tree.dim_perm[0] == mode:
                return tree, "root"
        best: tuple[CsfTensor, str] | None = None
        for tree in self.trees:
            level = tree.level_of_mode(mode)
            if level < tree.nmodes - 1:
                return tree, "internal"
            if best is None:
                best = (tree, "leaf")
        if best is None:  # only possible on a CsfSet with no trees
            raise RuntimeError(
                f"CsfSet has no tree that can serve mode {mode}: the set is "
                "empty or was built inconsistently"
            )
        return best


def build_csf_set(
    tensor: SparseTensor,
    *,
    allocation: str = "two",
    ordering: str = "sorted_smallest",
    sort_variant: str = "lexsort",
) -> CsfSet:
    """Build CSF tree(s) per the chosen allocation policy.

    ``allocation`` is one of :data:`repro.csf.permute.CSF_ALLOCATIONS`:
    ``"one"`` (single tree), ``"two"`` (SPLATT's default: smallest-rooted +
    largest-rooted), or ``"all"`` (one per mode).
    """
    if allocation not in CSF_ALLOCATIONS:
        raise ValueError(f"unknown allocation {allocation!r}; choose from {CSF_ALLOCATIONS}")
    dims = tensor.dims
    nmodes = tensor.nmodes
    roots: list[int]
    base = mode_order(dims, ordering=ordering)
    if allocation == "one" or nmodes == 1:
        roots = [base[0]]
    elif allocation == "two":
        smallest = base[0]
        biggest = base[-1]
        roots = [smallest] if biggest == smallest else [smallest, biggest]
    else:  # all
        roots = list(range(nmodes))
    with _obs.span(
        "csf.build_set", allocation=allocation, ntrees=len(roots), nnz=tensor.nnz
    ):
        trees = [
            build_csf(
                tensor,
                mode_order(dims, ordering=ordering, root=r),
                sort_variant=sort_variant,
            )
            for r in roots
        ]
    return CsfSet(allocation=allocation, trees=trees)
