"""The CSF tree container (SPLATT's ``splatt_csf`` / ``csf_sparsity``).

Terminology follows Smith & Karypis, *Tensor-Matrix Products with a
Compressed Sparse Tensor* (IA³ 2015): for an order-``N`` tensor stored with
mode permutation ``dim_perm``,

* level ``0`` nodes are the distinct root-mode indices ("slices"),
* level ``l`` nodes are the distinct ``(dim_perm[0..l])`` index prefixes
  ("fibers" at the last internal level),
* the ``N-1`` leaf level has one node per nonzero, holding its value.

Each level ``l < N-1`` has a ``fptr`` array mapping a node to its children
range in level ``l+1``, and every level has a ``fids`` array with the node's
index in mode ``dim_perm[l]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import INDEX_DTYPE, VALUE_DTYPE, check_axis

__all__ = ["CsfTensor"]


@dataclass
class CsfTensor:
    """One CSF representation of a sparse tensor.

    Attributes
    ----------
    dims:
        Mode lengths in the tensor's *original* mode order.
    dim_perm:
        ``dim_perm[l]`` is the original mode stored at tree level ``l``.
    fptr:
        ``fptr[l][i]:fptr[l][i+1]`` is the children range of node ``i`` of
        level ``l``; list of ``N-1`` arrays.
    fids:
        ``fids[l][i]`` is node ``i``'s index within mode ``dim_perm[l]``;
        list of ``N`` arrays.
    values:
        Leaf values, aligned with ``fids[N-1]``.
    """

    dims: tuple[int, ...]
    dim_perm: tuple[int, ...]
    fptr: list[np.ndarray]
    fids: list[np.ndarray]
    values: np.ndarray

    def __post_init__(self) -> None:
        self.dims = tuple(int(d) for d in self.dims)
        self.dim_perm = tuple(int(p) for p in self.dim_perm)
        nmodes = len(self.dims)
        if sorted(self.dim_perm) != list(range(nmodes)):
            raise ValueError(f"dim_perm {self.dim_perm} is not a mode permutation")
        if len(self.fptr) != nmodes - 1 or len(self.fids) != nmodes:
            raise ValueError("need N-1 fptr levels and N fids levels")
        self.fptr = [np.ascontiguousarray(p, dtype=INDEX_DTYPE) for p in self.fptr]
        self.fids = [np.ascontiguousarray(f, dtype=INDEX_DTYPE) for f in self.fids]
        self.values = np.ascontiguousarray(self.values, dtype=VALUE_DTYPE)
        self._validate()

    def _validate(self) -> None:
        """Structural invariants; raises ValueError on a malformed tree."""
        nmodes = self.nmodes
        for level in range(nmodes - 1):
            ptr = self.fptr[level]
            nnodes = self.fids[level].shape[0]
            if ptr.shape[0] != nnodes + 1:
                raise ValueError(
                    f"level {level}: fptr length {ptr.shape[0]} != nodes+1 ({nnodes + 1})"
                )
            if nnodes and (np.diff(ptr) <= 0).any():
                raise ValueError(f"level {level}: empty fiber (fptr not strictly increasing)")
            if ptr.shape[0] and (ptr[0] != 0 or ptr[-1] != self.fids[level + 1].shape[0]):
                raise ValueError(f"level {level}: fptr does not span child level")
        if self.fids[nmodes - 1].shape[0] != self.values.shape[0]:
            raise ValueError("leaf fids and values length mismatch")
        for level in range(nmodes):
            dim = self.dims[self.dim_perm[level]]
            f = self.fids[level]
            if f.size and (f.min() < 0 or f.max() >= dim):
                raise ValueError(f"level {level}: fids out of range for dim {dim}")

    # ------------------------------------------------------------------
    @property
    def nmodes(self) -> int:
        """Tensor order ``N``."""
        return len(self.dims)

    @property
    def nnz(self) -> int:
        """Stored nonzero (leaf) count."""
        return int(self.values.shape[0])

    @property
    def nfibs(self) -> tuple[int, ...]:
        """Node count per level (SPLATT's ``pt->nfibs``)."""
        return tuple(int(f.shape[0]) for f in self.fids)

    @property
    def nslices(self) -> int:
        """Root-level node count."""
        return int(self.fids[0].shape[0])

    def level_of_mode(self, mode: int) -> int:
        """Tree level at which original mode ``mode`` is stored."""
        mode = check_axis(mode, self.nmodes)
        return self.dim_perm.index(mode)

    def memory_bytes(self) -> int:
        """Storage footprint of the tree (the CSF memory/computation
        trade-off number SPLATT reports)."""
        total = self.values.nbytes
        total += sum(p.nbytes for p in self.fptr)
        total += sum(f.nbytes for f in self.fids)
        return total

    # ------------------------------------------------------------------
    def expand_coords(self) -> np.ndarray:
        """Recover the ``(nnz, N)`` coordinate matrix (original mode order).

        Inverse of CSF construction; used by round-trip tests.
        """
        nmodes = self.nmodes
        nnz = self.nnz
        permuted = np.empty((nnz, nmodes), dtype=INDEX_DTYPE)
        permuted[:, nmodes - 1] = self.fids[nmodes - 1]
        # Walk levels top-down, repeating each node's id over its leaves.
        for level in range(nmodes - 2, -1, -1):
            # leaf span of each node at this level
            spans = self._leaf_spans(level)
            permuted[:, level] = np.repeat(self.fids[level], spans)
        coords = np.empty_like(permuted)
        for level, mode in enumerate(self.dim_perm):
            coords[:, mode] = permuted[:, level]
        return coords

    def _leaf_spans(self, level: int) -> np.ndarray:
        """Number of leaves under each node of ``level``."""
        ends = self.fptr[level][1:].copy()
        starts = self.fptr[level][:-1].copy()
        for lower in range(level + 1, self.nmodes - 1):
            ends = self.fptr[lower][ends]
            starts = self.fptr[lower][starts]
        return ends - starts

    def tile(self, *args, **kwargs):  # noqa: D401 - deliberate stub
        """Mode tiling — intentionally unimplemented.

        SPLATT's optional cache-tiling of tensor modes was omitted from the
        paper's Chapel port ("as it is not commonly used, and is not
        evaluated in our experiments", §V-A); we mirror that scoping
        decision and keep the hook for future work.
        """
        raise NotImplementedError(
            "mode tiling was omitted from the paper's port (§V-A) and from "
            "this reproduction; see DESIGN.md §6"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsfTensor(dims={self.dims}, perm={self.dim_perm}, "
            f"nfibs={self.nfibs}, bytes={self.memory_bytes()})"
        )
