"""Shared internal helpers: validation, RNG handling, index math.

These utilities are deliberately tiny and dependency-free so every
subpackage (tensor, csf, mttkrp, runtime, perfmodel) can use them without
import cycles.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "INDEX_DTYPE",
    "VALUE_DTYPE",
    "as_rng",
    "check_axis",
    "check_positive",
    "check_rank",
    "ensure_index_array",
    "ensure_value_array",
    "human_bytes",
    "prod",
]

#: Canonical dtype for nonzero coordinates.  SPLATT uses 64-bit indices by
#: default (``IDX_TYPEWIDTH 64``); we mirror that.
INDEX_DTYPE = np.int64

#: Canonical dtype for nonzero values and factor matrices (SPLATT's
#: ``VAL_TYPEWIDTH 64`` → double precision).
VALUE_DTYPE = np.float64


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass through.

    Accepting either form in public APIs lets callers write
    ``generate(..., seed=0)`` in scripts and share one generator across many
    calls in tests.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def prod(values: Iterable[int]) -> int:
    """Exact integer product (``math.prod`` but tolerant of numpy ints)."""
    out = 1
    for v in values:
        out *= int(v)
    return out


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = int(value)
    if ivalue <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return ivalue


def check_rank(rank: int) -> int:
    """Validate a decomposition rank."""
    return check_positive("rank", rank)


def check_axis(axis: int, nmodes: int) -> int:
    """Validate a mode index against the tensor order, supporting negatives."""
    ax = int(axis)
    if ax < 0:
        ax += nmodes
    if not 0 <= ax < nmodes:
        raise ValueError(f"mode {axis} out of range for order-{nmodes} tensor")
    return ax


def ensure_index_array(arr: Sequence | np.ndarray, *, name: str = "indices") -> np.ndarray:
    """Coerce to a C-contiguous :data:`INDEX_DTYPE` ndarray, validating values.

    Negative coordinates are rejected: SPLATT tensors are 1-indexed on disk
    and 0-indexed in memory, never negative.
    """
    out = np.ascontiguousarray(arr, dtype=INDEX_DTYPE)
    if out.size and out.min() < 0:
        raise ValueError(f"{name} must be non-negative")
    return out


def ensure_value_array(arr: Sequence | np.ndarray, *, name: str = "values") -> np.ndarray:
    """Coerce to a C-contiguous :data:`VALUE_DTYPE` ndarray of finite values."""
    out = np.ascontiguousarray(arr, dtype=VALUE_DTYPE)
    if out.size and not np.isfinite(out).all():
        raise ValueError(f"{name} must be finite")
    return out


def human_bytes(nbytes: float) -> str:
    """Render a byte count the way the paper's Table I does (``240 MB``)."""
    units = ["B", "KB", "MB", "GB", "TB"]
    size = float(nbytes)
    for unit in units:
        if size < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.2f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")
