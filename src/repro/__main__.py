"""``python -m repro`` — the command-line tool (see :mod:`repro.cli`)."""

from repro.cli import main

raise SystemExit(main())
