"""Extension experiments beyond the paper's figures.

* ``memory`` — the CSF memory/computation trade-off SPLATT's CSF paper
  quantifies: COO vs one/two/all-mode CSF footprints, measured on the
  stand-ins and extrapolated to the published nnz.
* ``fwdist`` — the future-work projection: what the planned multi-locale
  port would do at paper scale, combining the calibrated node model with
  the *measured* fold/expand traffic of the simulated decomposition.
* ``calibration`` — the model's report card: every Table III cell, paper
  vs simulated, with relative errors (the model is fitted to this table
  once; all other figures are predictions).
"""

from __future__ import annotations

from repro._util import INDEX_DTYPE, VALUE_DTYPE, human_bytes
from repro.bench.datasets import bench_dataset
from repro.bench.runner import ExperimentResult, experiment
from repro.csf.build import build_csf_set
from repro.perfmodel.distributed import project_distributed
from repro.tensor.generate import DATASET_SIGNATURES

__all__ = ["memory", "fwdist", "calibration", "sensitivity"]


@experiment("sensitivity")
def sensitivity(*, measured: bool = False, perturbation: float = 0.25) -> ExperimentResult:
    """Robustness of the headline conclusions to the calibration.

    Perturbs the most influential calibrated constants by ±``perturbation``
    (one at a time) and re-derives the paper's two headline claims — the
    Chapel/C MTTKRP band and the Fig 4 sync-vs-atomic gap at 32 tasks.
    Conclusions that only hold at the fitted point would be fragile; this
    experiment shows they survive coarse mis-calibration.
    """
    import dataclasses

    from repro.perfmodel.calibration import CALIBRATION
    from repro.perfmodel.simulate import SimConfig, paper_scale_stats, simulate_cpals

    stats = paper_scale_stats("yelp")

    def headline(cal) -> tuple[float, float]:
        """(worst C/opt ratio over 1..32 tasks, sync/atomic gap at 32)."""
        ratios = []
        for p in (1, 2, 4, 8, 16, 32):
            c = simulate_cpals(stats, SimConfig.c_reference(p), cal=cal)["mttkrp"]
            o = simulate_cpals(stats, SimConfig.chapel_optimized(p), cal=cal)["mttkrp"]
            ratios.append(c / o)
        sync_cfg = dataclasses.replace(SimConfig.chapel_optimized(32), mutex_kind="sync")
        sync = simulate_cpals(stats, sync_cfg, cal=cal)["mttkrp"]
        atomic = simulate_cpals(stats, SimConfig.chapel_optimized(32), cal=cal)["mttkrp"]
        return min(ratios), sync / atomic

    knobs = [
        "contention_kappa",
        "sync_sleep_share",
        "sync_convoy_factor",
        "spin_contended_cost",
        "mttkrp_serial_fraction_chapel",
    ]
    rows = []
    base_low, base_gap = headline(CALIBRATION)
    rows.append(["(fitted)", "-", f"{100 * base_low:.0f}%", round(base_gap, 1)])
    for knob in knobs:
        for direction in (-1, 1):
            value = getattr(CALIBRATION, knob) * (1 + direction * perturbation)
            cal = dataclasses.replace(CALIBRATION, **{knob: value})
            low, gap = headline(cal)
            rows.append([
                knob, f"{'+' if direction > 0 else '-'}{100 * perturbation:.0f}%",
                f"{100 * low:.0f}%", round(gap, 1),
            ])
    return ExperimentResult(
        exp_id="sensitivity",
        title="Calibration sensitivity of the headline conclusions (YELP)",
        headers=["constant", "perturbation", "min C/opt", "sync/atomic @32"],
        rows=rows,
        notes=[
            "headline claims: Chapel within 83-96% of C (min C/opt stays "
            "near or above ~0.8) and atomic ~14.5x faster than sync at 32 "
            "tasks (gap stays order-10x) under every ±25% perturbation",
        ],
    )


@experiment("calibration")
def calibration(*, measured: bool = False) -> ExperimentResult:
    """Model-vs-paper error table over every Table III cell."""
    from repro.bench.tables import PAPER_TABLE3
    from repro.core.timers import ROUTINES
    from repro.perfmodel.simulate import SimConfig, paper_scale_stats, simulate_cpals

    rows = []
    worst = 0.0
    for (dataset, threads, code), paper in sorted(PAPER_TABLE3.items()):
        key = dataset.lower().replace("nell-2", "nell-2")
        stats = paper_scale_stats(key)
        cfg = (SimConfig.c_reference(threads) if code == "C"
               else SimConfig.chapel_initial(threads))
        run = simulate_cpals(stats, cfg)
        for routine in ROUTINES:
            sim = run.seconds[routine]
            pap = paper[routine]
            err = abs(sim - pap) / pap if pap else 0.0
            # only the two dominant routines are calibration targets; the
            # sub-second kernels are reported but not scored
            scored = routine in ("mttkrp", "sort")
            if scored:
                worst = max(worst, err)
            rows.append([
                dataset, threads, code, routine,
                round(pap, 3), round(sim, 3), f"{100 * err:.1f}%",
                "yes" if scored else "no",
            ])
    return ExperimentResult(
        exp_id="calibration",
        title="Calibration report card: paper Table III vs the model",
        headers=["dataset", "threads", "code", "routine", "paper s",
                 "model s", "rel err", "scored"],
        rows=rows,
        notes=[
            f"worst scored (MTTKRP/Sort) relative error: {100 * worst:.1f}%",
            "the model is calibrated against this table once; Figs 1-10 and "
            "§V-E are then predictions (see docs/PERFMODEL.md)",
        ],
    )


@experiment("memory")
def memory(*, measured: bool = False) -> ExperimentResult:
    """CSF storage vs COO, per allocation policy (measured + extrapolated)."""
    rows = []
    bytes_per_nnz_coo = 3 * INDEX_DTYPE().itemsize + VALUE_DTYPE().itemsize
    for key in ("yelp", "nell-2"):
        tensor = bench_dataset(key)
        sig = DATASET_SIGNATURES[key]
        coo = tensor.nnz * bytes_per_nnz_coo
        scale = sig.nnz / tensor.nnz
        row = [sig.name, human_bytes(coo)]
        for alloc in ("one", "two", "all"):
            csf = build_csf_set(tensor, allocation=alloc)
            row.append(f"{csf.memory_bytes() / coo:.2f}x")
        row.append(human_bytes(coo * scale))
        rows.append(row)
    return ExperimentResult(
        exp_id="memory",
        title="CSF memory vs COO, by allocation policy",
        headers=["dataset", "COO (bench)", "CSF one", "CSF two", "CSF all",
                 "COO @ paper scale"],
        rows=rows,
        notes=[
            "CSF ratios are measured on the stand-ins (ratios are "
            "scale-stable for fixed structure)",
            "shape criterion: one-tree CSF is smaller than COO per tree; "
            "all-mode trades ~N trees of memory for lock-free MTTKRP "
            "everywhere",
        ],
    )


@experiment("fwdist")
def fwdist(*, measured: bool = False, dataset: str = "nell-2") -> ExperimentResult:
    """Projected multi-locale scaling (the paper's future work)."""
    rows = []
    base = None
    for nlocales in (1, 2, 4, 8, 16):
        proj = project_distributed(dataset, nlocales, iterations=20)
        if base is None:
            base = proj.total_seconds
        rows.append([
            nlocales,
            "x".join(str(g) for g in proj.grid),
            round(proj.compute_seconds, 2),
            round(proj.comm_seconds, 4),
            round(proj.total_seconds, 2),
            round(base / proj.total_seconds, 2),
            f"{100 * proj.comm_fraction:.2f}%",
        ])
    return ExperimentResult(
        exp_id="fwdist",
        title=f"Future-work projection: medium-grained distributed CP-ALS, "
              f"{dataset.upper()} at paper scale",
        headers=["locales", "grid", "compute s", "comm s", "total s",
                 "speedup", "comm share"],
        rows=rows,
        notes=[
            "compute: calibrated 36-core node model / locales; comm: α-β "
            "network over the *measured* fold/expand traffic of the "
            "simulated decomposition, scaled to published mode dims "
            "(exchanges move factor rows)",
            "shape criterion: near-linear speedup while the comm share "
            "stays small (the medium-grained paper's finding at this "
            "locale range)",
        ],
    )
