"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Regenerates any subset of the paper's tables and figures::

    repro-bench                    # everything, simulated
    repro-bench fig4 fig9 fig10    # a subset
    repro-bench --measured table3  # real wall-clock at bench scale
    repro-bench --list
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.runner import all_experiments, get_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-bench``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all); see --list")
    parser.add_argument("--measured", action="store_true",
                        help="run real wall-clock kernels instead of the "
                             "paper-scale simulation")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale for measured mode (default 1.0)")
    parser.add_argument("--plot", action="store_true",
                        help="also render figure-shaped experiments as ASCII "
                             "charts (log-scale, like the paper's figures)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    registry = all_experiments()
    if args.list:
        for exp_id, fn in sorted(registry.items()):
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{exp_id:10s} {doc[0] if doc else ''}")
        return 0

    ids = args.experiments or sorted(registry)
    status = 0
    for exp_id in ids:
        try:
            fn = get_experiment(exp_id)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        kwargs: dict = {"measured": args.measured}
        if args.scale is not None and "scale" in fn.__code__.co_varnames:
            kwargs["scale"] = args.scale
        try:
            result = fn(**kwargs)
        except TypeError:
            # experiments without a `scale`/`measured` parameter
            result = fn()
        print(result.render())
        if args.plot:
            chart = result.chart()
            if chart:
                print()
                print(chart)
        print()
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
