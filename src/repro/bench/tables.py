"""Tables I-III of the paper.

* Table I — dataset properties: published values next to the generated
  stand-ins' actual properties.
* Table II — environment: the paper's testbed next to this reproduction's
  substitutions.
* Table III — initial per-routine runtimes (C vs the unoptimized Chapel
  port at 1 and 32 threads/tasks): simulated at paper scale, or measured
  wall-clock at bench scale (``measured=True``).
"""

from __future__ import annotations

import platform

from repro.bench.datasets import BENCH_SCALE, bench_dataset
from repro.bench.runner import ExperimentResult, experiment
from repro.core.cpals import cp_als
from repro.core.options import CpalsOptions
from repro.core.timers import ROUTINES
from repro.perfmodel.machine import MACHINE
from repro.perfmodel.simulate import SimConfig, paper_scale_stats, simulate_cpals
from repro.tensor.generate import DATASET_SIGNATURES
from repro._util import human_bytes, prod

__all__ = ["table1", "table2", "table3"]

#: Paper Table III values (seconds), for side-by-side display:
#: (dataset, threads, code) → routine values in ROUTINES order
#: (mttkrp, sort, mat_ata, mat_norm, cpd_fit, inverse).
PAPER_TABLE3 = {
    ("YELP", 1, "C"): dict(mttkrp=13.31, sort=0.82, mat_ata=0.34, mat_norm=0.14, cpd_fit=0.04, inverse=0.94),
    ("YELP", 1, "Chapel-initial"): dict(mttkrp=225.11, sort=7.21, mat_ata=0.36, mat_norm=0.14, cpd_fit=0.04, inverse=0.98),
    ("YELP", 32, "C"): dict(mttkrp=0.73, sort=0.07, mat_ata=0.41, mat_norm=0.01, cpd_fit=0.01, inverse=0.05),
    ("YELP", 32, "Chapel-initial"): dict(mttkrp=118.93, sort=0.47, mat_ata=0.56, mat_norm=0.06, cpd_fit=0.01, inverse=0.98),
    ("NELL-2", 1, "C"): dict(mttkrp=109.25, sort=7.90, mat_ata=0.13, mat_norm=0.06, cpd_fit=0.01, inverse=0.37),
    ("NELL-2", 1, "Chapel-initial"): dict(mttkrp=1999.0, sort=69.04, mat_ata=0.14, mat_norm=0.06, cpd_fit=0.01, inverse=0.39),
    ("NELL-2", 32, "C"): dict(mttkrp=5.81, sort=0.63, mat_ata=0.24, mat_norm=0.02, cpd_fit=0.01, inverse=0.04),
    ("NELL-2", 32, "Chapel-initial"): dict(mttkrp=88.3, sort=5.01, mat_ata=0.19, mat_norm=0.02, cpd_fit=0.01, inverse=0.39),
}


@experiment("table1")
def table1(*, scale: float = BENCH_SCALE, measured: bool = False) -> ExperimentResult:
    """Dataset properties: published vs generated stand-in."""
    headers = ["Name", "Dims (paper)", "NNZ (paper)", "Density (paper)",
               "Dims (generated)", "NNZ (gen)", "Density (gen)", "Disk (gen)"]
    rows = []
    for key, sig in DATASET_SIGNATURES.items():
        t = bench_dataset(key, scale)
        rows.append([
            sig.name,
            "x".join(f"{d//1000}k" for d in sig.dims),
            f"{sig.nnz/1e6:.0f}M",
            f"{sig.nnz / prod(sig.dims):.2E}",
            "x".join(str(d) for d in t.dims),
            t.nnz,
            f"{t.density:.2E}",
            human_bytes(t.size_on_disk),
        ])
    return ExperimentResult(
        exp_id="table1",
        title="Properties of data sets (paper Table I vs synthetic stand-ins)",
        headers=headers,
        rows=rows,
        notes=["stand-ins use per-dataset bench shapes that preserve the paper's "
               "lock-decision dichotomy at measured task counts (see DESIGN.md §2 "
               "and repro.tensor.generate); paper-scale experiments use the "
               "published dims/nnz via the performance model"],
    )


@experiment("table2")
def table2(*, measured: bool = False) -> ExperimentResult:
    """Environment: the paper's testbed vs this reproduction."""
    rows = [
        ["CPU", "2x E5-2697v4 Xeon Broadwell", platform.processor() or platform.machine()],
        ["Cores", str(MACHINE.ncores), "simulated 36 (measured: host cores)"],
        ["Language", "Chapel 1.16 / C + OpenMP 3.1", f"Python {platform.python_version()} + NumPy"],
        ["Tasking", "Qthreads (default), fifo", "repro.runtime tasking layers (threading)"],
        ["BLAS/LAPACK", "OpenBLAS 0.2.20 (syrk/potrf/potrs)", "scipy.linalg (syrk/cholesky)"],
        ["Baseline", "SPLATT v2.0.0 (C)", "vectorized NumPy kernels"],
        ["OMP_NUM_THREADS", "1 (Chapel runs)", "modeled via perfmodel.interference"],
    ]
    return ExperimentResult(
        exp_id="table2",
        title="Environment and system properties (paper Table II vs reproduction)",
        headers=["Property", "Paper", "This reproduction"],
        rows=rows,
        notes=["paper-scale timings are produced by the calibrated performance model "
               "(repro.perfmodel); see DESIGN.md §2 for the substitution table"],
    )


def _simulated_table3_rows() -> list[list]:
    rows = []
    for ds_key, label in (("yelp", "YELP"), ("nell-2", "NELL-2")):
        stats = paper_scale_stats(ds_key)
        for p in (1, 32):
            for cfg_name, cfg in (
                ("C", SimConfig.c_reference(p)),
                ("Chapel-initial", SimConfig.chapel_initial(p)),
            ):
                run = simulate_cpals(stats, cfg)
                paper = PAPER_TABLE3[(label, p, cfg_name)]
                row = [label, p, cfg_name]
                for r in ROUTINES:
                    row.append(round(run.seconds[r], 3))
                row.append(round(sum(paper.values()), 2))
                rows.append(row)
    return rows


def _measured_table3_rows(scale: float, rank: int, iterations: int) -> list[list]:
    rows = []
    for ds_key, label in (("yelp", "YELP"), ("nell-2", "NELL-2")):
        tensor = bench_dataset(ds_key, scale)
        for cfg_name, opts in (
            ("C(vectorized)", CpalsOptions(max_iterations=iterations, tolerance=0.0,
                                           variant="vectorized", sort_variant="lexsort")),
            ("Chapel-initial", CpalsOptions(max_iterations=iterations, tolerance=0.0,
                                            variant="slicing", sort_variant="initial",
                                            mutex_kind="sync")),
        ):
            result = cp_als(tensor, rank, opts)
            row = [label, 1, cfg_name]
            for r in ROUTINES:
                row.append(round(result.timers.total(r), 4))
            row.append("")
            rows.append(row)
    return rows


@experiment("table3")
def table3(
    *,
    measured: bool = False,
    scale: float = BENCH_SCALE,
    rank: int = 16,
    iterations: int = 2,
) -> ExperimentResult:
    """Initial per-routine runtimes: C vs the naive Chapel port.

    Simulated mode reproduces the paper's Table III at full scale;
    measured mode wall-clocks the real kernels at bench scale (serial —
    interpreted-kernel scaling is not meaningful under the GIL).
    """
    headers = ["Data set", "Tasks", "Code", *ROUTINES, "paper_total"]
    if measured:
        rows = _measured_table3_rows(scale, rank, iterations)
        notes = [
            f"measured wall-clock, scale={scale:g}, rank={rank}, iters={iterations}, 1 task",
            "shape criterion: Chapel-initial MTTKRP and Sort are the dominant, "
            "order-of-magnitude-slower routines, as in the paper",
        ]
    else:
        rows = _simulated_table3_rows()
        notes = [
            "simulated at paper scale (20 iterations, rank 35)",
            "paper anchors: YELP C 13.31/0.82 s; Chapel-initial 225.11/7.21 s "
            "(MTTKRP/Sort, serial); NELL-2 C 109.25/7.90 s; Chapel-initial 1999/69 s",
        ]
    return ExperimentResult(
        exp_id="table3",
        title="Runtime in seconds for CP-ALS routines — initial results (paper Table III)",
        headers=headers,
        rows=rows,
        notes=notes,
    )
