"""``python -m repro.bench`` — see :mod:`repro.bench.cli`."""

from repro.bench.cli import main

raise SystemExit(main())
