"""ASCII line charts for experiment series (the paper's figures, in text).

The paper's Figs 1-4 and 9-10 are log-scale runtime-vs-tasks line charts.
:func:`render_chart` draws the same series as a terminal plot so
``repro-bench fig9 --plot`` shows the crossovers without leaving the
shell.  Pure text, no dependencies.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_chart"]

#: Mark characters assigned to series, in column order.
_MARKS = "ox+*#@%&"


def _log_position(value: float, lo: float, hi: float, height: int) -> int:
    """Row index (0 = top) for ``value`` on a log scale."""
    if value <= 0 or hi <= lo:
        return height - 1
    frac = (math.log10(value) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    frac = min(max(frac, 0.0), 1.0)
    return int(round((1.0 - frac) * (height - 1)))


def render_chart(
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    height: int = 12,
    log_y: bool = True,
) -> str:
    """Render named series against shared x positions.

    Parameters
    ----------
    x_values:
        Labels for the x positions (task counts, in the paper's figures).
    series:
        Name → y values (one per x position; non-positive values are
        skipped on a log axis).
    height:
        Plot rows (excluding axes and legend).
    log_y:
        Log-scale the y axis, as the paper's figures do.
    """
    if not series:
        raise ValueError("need at least one series")
    npoints = len(x_values)
    for name, ys in series.items():
        if len(ys) != npoints:
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {npoints}"
            )
    ys_all = [y for ys in series.values() for y in ys if y > 0 or not log_y]
    if not ys_all:
        raise ValueError("no plottable values")
    lo, hi = min(ys_all), max(ys_all)
    if log_y and lo <= 0:
        lo = min(y for y in ys_all if y > 0)
    if hi == lo:
        hi = lo * 10 if log_y else lo + 1

    col_width = max(max(len(str(x)) for x in x_values) + 2, 6)
    width = npoints * col_width
    grid = [[" "] * width for _ in range(height)]

    for si, (name, ys) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        prev = None
        for xi, y in enumerate(ys):
            if log_y and y <= 0:
                prev = None
                continue
            if log_y:
                row = _log_position(y, lo, hi, height)
            else:
                frac = (y - lo) / (hi - lo)
                row = int(round((1.0 - min(max(frac, 0.0), 1.0)) * (height - 1)))
            col = xi * col_width + col_width // 2
            grid[row][col] = mark
            # light vertical interpolation toward the previous point
            if prev is not None and prev[0] != row:
                prow, pcol = prev
                step = 1 if row > prow else -1
                denom = row - prow
                for r in range(prow + step, row, step):
                    c = pcol + (col - pcol) * (r - prow) // denom
                    if grid[r][c] == " ":
                        grid[r][c] = "."
            prev = (row, col)

    lines = []
    if title:
        lines.append(title)
    scale = "log" if log_y else "linear"
    top_label = f"{hi:.3g}"
    bot_label = f"{lo:.3g}"
    label_pad = max(len(top_label), len(bot_label), 8)
    for ri, row_chars in enumerate(grid):
        if ri == 0:
            label = top_label
        elif ri == height - 1:
            label = bot_label
        else:
            label = ""
        lines.append(f"{label:>{label_pad}} |" + "".join(row_chars))
    lines.append(" " * label_pad + " +" + "-" * width)
    x_axis = "".join(str(x).center(col_width) for x in x_values)
    lines.append(" " * label_pad + "  " + x_axis)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{label_pad}}  [{scale} y]  {legend}")
    return "\n".join(lines)
