"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment function returns an :class:`~repro.bench.runner.ExperimentResult`
whose rows/series mirror what the paper reports.  Two modes:

* **simulated** — the calibrated performance model at paper scale
  (Tables/Figures as published; DESIGN.md explains the substitution).
* **measured** — real wall-clock runs of this library's kernels on the
  scaled synthetic datasets (1-task variant ladders and parallel runs that
  are meaningful under the Python GIL).

Run everything from the command line::

    python -m repro.bench            # all experiments, simulated
    python -m repro.bench fig4 fig9  # a subset
    python -m repro.bench --measured table3

or via pytest-benchmark: ``pytest benchmarks/ --benchmark-only``.
"""

from repro.bench.datasets import bench_dataset
from repro.bench.runner import ExperimentResult, all_experiments, get_experiment

__all__ = ["ExperimentResult", "all_experiments", "get_experiment", "bench_dataset"]
