"""Figures 1-10 and §V-E of the paper, regenerated.

Simulated mode produces the same series the paper plots (seconds vs
threads/tasks, 1..32) from the calibrated performance model.  Measured mode
runs the real kernels at bench scale where that is meaningful on a GIL-bound
interpreter: serial optimization ladders (Figs 1-3, 5, 6) and real
multi-threaded lock-pool behaviour (Fig 4's contention counters).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.bench.datasets import BENCH_SCALE, bench_dataset
from repro.bench.runner import ExperimentResult, experiment
from repro.core.cpals import cp_als
from repro.core.options import CpalsOptions
from repro.core.timers import ROUTINES
from repro.csf.build import build_csf_set
from repro.mttkrp.variants import mttkrp_csf
from repro.perfmodel.routines import inverse_time, norm_time
from repro.perfmodel.simulate import SimConfig, paper_scale_stats, simulate_cpals
from repro.runtime.accounting import CostCounters
from repro.runtime.env import ChapelEnv, DEFAULT_SPINCOUNT
from repro.runtime.locks import make_mutex_pool
from repro.runtime.tasking import make_tasking_layer
from repro.tensor.sort import sort_tensor
from repro._util import as_rng

__all__ = []  # experiments are reached through the registry

TASKS = (1, 2, 4, 8, 16, 32)


# ----------------------------------------------------------------------
# Fig 1 — sorting optimization ladder (NELL-2)
# ----------------------------------------------------------------------
@experiment("fig1")
def fig1(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    """Chapel sorting runtime, NELL-2: Initial / Array-opt / Slices-opt / All-opts."""
    variants = ("initial", "array_opt", "slices_opt", "all_opts")
    if measured:
        tensor = bench_dataset("nell-2", scale)
        rows = []
        for ntasks in (1, 2, 4):
            env = ChapelEnv(num_tasks=ntasks)
            row = [ntasks]
            for v in (*variants, "lexsort"):
                best = float("inf")
                for _ in range(3):
                    start = time.perf_counter()
                    sort_tensor(tensor, 0, variant=v, env=env)
                    best = min(best, time.perf_counter() - start)
                row.append(round(best, 4))
            rows.append(row)
        notes = [
            f"measured wall-clock at scale {scale:g}, best of 3; >1 task rows "
            "run the real parallel bucket sort (GIL-bound for interpreted "
            "quicksorts, so no speedup is expected — structure and "
            "correctness are what is exercised)",
            "shape criterion: the interpreted ladder is far slower than the "
            "vectorized lexsort (C stand-in) and initial >= all_opts; the "
            "intra-ladder deltas compress under the interpreter because the "
            "per-comparison cost dominates both de-optimizations",
        ]
        headers = ["tasks", "Initial", "Array-opt", "Slices-opt", "All-opts", "C(lexsort)"]
    else:
        stats = paper_scale_stats("nell-2")
        rows = []
        for p in TASKS:
            row = [p]
            for v in variants:
                cfg = replace(SimConfig.chapel_initial(p), sort_variant=v)
                row.append(round(simulate_cpals(stats, cfg).seconds["sort"], 3))
            rows.append(row)
        notes = [
            "simulated at paper scale",
            "paper anchors (serial): Initial 69.04 s, All-opts 9.86 s (~8x); "
            "Slices-opt alone ~4x (§V-C)",
        ]
        headers = ["tasks", "Initial", "Array-opt", "Slices-opt", "All-opts"]
    return ExperimentResult(
        exp_id="fig1",
        title="Chapel sorting runtime on NELL-2, optimization ladder (paper Fig 1)",
        headers=headers,
        rows=rows,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Figs 2 & 3 — MTTKRP matrix-access ladder
# ----------------------------------------------------------------------
def _access_ladder(dataset: str, fig_id: str, paper_note: str, *, measured: bool, scale: float):
    variants = ("slicing", "index2d", "pointer")
    if measured:
        tensor = bench_dataset(dataset, scale)
        csf_set = build_csf_set(tensor, allocation="two")
        rank = 16
        rng = as_rng(0)
        factors = [np.asarray(rng.random((d, rank))) for d in tensor.dims]
        row = [1]
        for v in (*variants, "vectorized"):
            start = time.perf_counter()
            for mode in range(tensor.nmodes):
                mttkrp_csf(csf_set, factors, mode, variant=v)
            row.append(round(time.perf_counter() - start, 4))
        rows = [row]
        headers = ["tasks", "Initial(slicing)", "2D Index", "Pointer", "C(vectorized)"]
        notes = [
            f"measured wall-clock at scale {scale:g}, serial, all 3 modes once",
            "shape criterion: slicing slowest, pointer fastest interpreted, "
            "vectorized (the C stand-in) fastest overall",
        ]
    else:
        stats = paper_scale_stats(dataset)
        rows = []
        for p in TASKS:
            row = [p]
            for v in variants:
                # Figs 2/3 predate the mutex fix: sync-variable locks.
                cfg = replace(SimConfig.chapel_initial(p), mttkrp_variant=v)
                row.append(round(simulate_cpals(stats, cfg).seconds["mttkrp"], 3))
            rows.append(row)
        headers = ["tasks", "Initial(slicing)", "2D Index", "Pointer"]
        notes = ["simulated at paper scale (sync mutexes, as in the paper's Figs 2-3)",
                 paper_note]
    return ExperimentResult(
        exp_id=fig_id,
        title=f"Chapel MTTKRP runtime, matrix-access ladder, {dataset.upper()} "
              f"(paper {fig_id.replace('fig', 'Fig ')})",
        headers=headers,
        rows=rows,
        notes=notes,
    )


@experiment("fig2")
def fig2(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _access_ladder(
        "yelp", "fig2",
        "paper anchors: 2D-index 12x over slicing; pointer another 1.26x; "
        "YELP scales poorly under sync locks beyond 2 tasks",
        measured=measured, scale=scale,
    )


@experiment("fig3")
def fig3(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _access_ladder(
        "nell-2", "fig3",
        "paper anchors: 2D-index 17x over slicing; pointer another 1.26x; "
        "NELL-2 scales near-linearly (no locks at any task count)",
        measured=measured, scale=scale,
    )


# ----------------------------------------------------------------------
# Fig 4 — sync vs atomic vs fifo-sync mutex pools (YELP)
# ----------------------------------------------------------------------
@experiment("fig4")
def fig4(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    """Mutex-pool comparison on YELP's locked MTTKRP."""
    if measured:
        return _fig4_measured(scale)
    stats = paper_scale_stats("yelp")
    rows = []
    for p in TASKS:
        sync = simulate_cpals(stats, replace(SimConfig.chapel_optimized(p), mutex_kind="sync"))
        atomic = simulate_cpals(stats, SimConfig.chapel_optimized(p))
        fifo = simulate_cpals(
            stats,
            replace(SimConfig.chapel_optimized(p), mutex_kind="sync", tasking_layer="fifo"),
        )
        rows.append([
            p,
            round(sync.seconds["mttkrp"], 3),
            round(atomic.seconds["mttkrp"], 3),
            round(fifo.seconds["mttkrp"], 3),
            bool(sync.locked_modes),
        ])
    return ExperimentResult(
        exp_id="fig4",
        title="Chapel MTTKRP on YELP: sync vs atomic vs FIFO-sync mutex pools (paper Fig 4)",
        headers=["tasks", "Sync(qthreads)", "Atomic", "FIFO-sync", "locks engaged"],
        rows=rows,
        notes=[
            "simulated at paper scale; pointer access variant throughout (as in Fig 4)",
            "paper anchors: atomic ~14.5x faster than sync at 32 tasks; FIFO-sync "
            "competitive with atomic; locks engage only beyond 2 tasks",
        ],
    )


def _fig4_measured(scale: float) -> ExperimentResult:
    """Real multi-threaded lock pools: wall time + contention counters.

    Python threads genuinely contend on the pools; the vectorized kernel
    releases the GIL inside NumPy, so lock traffic and sleep-vs-spin
    behaviour are real even though speedups are GIL-bound.
    """
    tensor = bench_dataset("yelp", scale)
    csf_set = build_csf_set(tensor, allocation="two")
    rank = 16
    rng = as_rng(0)
    factors = [np.asarray(rng.random((d, rank))) for d in tensor.dims]
    # the internal (non-root) mode is the one that locks
    locked_mode = next(
        m for m in range(tensor.nmodes) if csf_set.tree_for_mode(m)[1] != "root"
    )
    rows = []
    for p in (1, 2, 4):
        for kind, layer_name in (("sync", "qthreads"), ("atomic", "qthreads"), ("sync", "fifo")):
            env = ChapelEnv(num_tasks=p, tasking_layer=layer_name)
            counters = CostCounters()
            layer = make_tasking_layer(env, counters)
            # A deliberately small pool concentrates lock traffic so real
            # contention (and sync sleeps) show up at bench scale.
            pool = make_mutex_pool(kind, size=8, env=env, counters=counters)
            start = time.perf_counter()
            mttkrp_csf(
                csf_set, factors, locked_mode,
                variant="vectorized", layer=layer, pool=pool, force_locks=True,
            )
            elapsed = time.perf_counter() - start
            snap = counters.snapshot()
            rows.append([
                p, f"{kind}/{layer_name}", round(elapsed, 4),
                snap["lock_acquires"], snap["lock_contended"], snap["sync_sleeps"],
            ])
    return ExperimentResult(
        exp_id="fig4",
        title="Measured lock pools on YELP's locked MTTKRP mode (real threads)",
        headers=["tasks", "pool/layer", "seconds", "acquires", "contended", "sleeps"],
        rows=rows,
        notes=[
            f"measured at scale {scale:g}; locks forced on the non-root mode",
            "shape criterion: only sync/qthreads records sleeps; contention "
            "appears once tasks > 1",
        ],
    )


# ----------------------------------------------------------------------
# Figs 5-8 — per-routine breakdowns, C vs Chapel-optimized
# ----------------------------------------------------------------------
def _routines_figure(dataset: str, ntasks: int, fig_id: str, *, measured: bool, scale: float):
    label = dataset.upper().replace("NELL-2", "NELL-2")
    if measured:
        tensor = bench_dataset(dataset, scale)
        rows = []
        for cfg_name, opts in (
            ("C(vectorized)", CpalsOptions(max_iterations=3, tolerance=0.0,
                                           variant="vectorized", sort_variant="lexsort")),
            ("Chapel-optimize", CpalsOptions(max_iterations=3, tolerance=0.0,
                                             variant="pointer", sort_variant="all_opts",
                                             mutex_kind="atomic")),
        ):
            result = cp_als(tensor, 16, opts)
            rows.append([cfg_name, *(round(result.timers.total(r), 4) for r in ROUTINES)])
        notes = [
            f"measured wall-clock at scale {scale:g}, serial, 3 iterations, rank 16",
            "shape criterion: per-routine parity except MTTKRP/Sort where the "
            "interpreted pointer kernel trails the vectorized baseline",
        ]
    else:
        stats = paper_scale_stats(dataset)
        rows = []
        for cfg_name, cfg in (
            ("C", SimConfig.c_reference(ntasks)),
            ("Chapel-optimize", SimConfig.chapel_optimized(ntasks)),
        ):
            run = simulate_cpals(stats, cfg)
            rows.append([cfg_name, *(round(run.seconds[r], 3) for r in ROUTINES)])
        notes = [
            f"simulated at paper scale, {ntasks} threads/tasks",
            "paper anchors: serial MTTKRP 13.13 vs 14.01 s (YELP) and 109.25 vs "
            "118.33 s (NELL-2); at 32 tasks the Chapel inverse stays serial "
            "(OMP_NUM_THREADS=1) while C's parallelizes",
        ]
    return ExperimentResult(
        exp_id=fig_id,
        title=f"Per-routine CP-ALS runtimes, {label}, {ntasks} thread(s)/task(s) "
              f"(paper {fig_id.replace('fig', 'Fig ')})",
        headers=["code", *ROUTINES],
        rows=rows,
        notes=notes,
    )


@experiment("fig5")
def fig5(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _routines_figure("yelp", 1, "fig5", measured=measured, scale=scale)


@experiment("fig6")
def fig6(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _routines_figure("nell-2", 1, "fig6", measured=measured, scale=scale)


@experiment("fig7")
def fig7(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _routines_figure("yelp", 32, "fig7", measured=measured, scale=scale)


@experiment("fig8")
def fig8(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _routines_figure("nell-2", 32, "fig8", measured=measured, scale=scale)


# ----------------------------------------------------------------------
# Figs 9 & 10 — MTTKRP scaling: C vs Chapel-initial vs Chapel-optimize
# ----------------------------------------------------------------------
def _scaling_figure(dataset: str, fig_id: str, paper_note: str, *, measured: bool, scale: float):
    if measured:
        # Serial-only measured comparison (parallel interpreted loops are
        # GIL-bound); the simulated series carries the scaling claim.
        tensor = bench_dataset(dataset, scale)
        csf_set = build_csf_set(tensor, allocation="two")
        rank = 16
        rng = as_rng(0)
        factors = [np.asarray(rng.random((d, rank))) for d in tensor.dims]
        row = [1]
        times = {}
        for v in ("vectorized", "slicing", "pointer"):
            start = time.perf_counter()
            for mode in range(tensor.nmodes):
                mttkrp_csf(csf_set, factors, mode, variant=v)
            times[v] = time.perf_counter() - start
            row.append(round(times[v], 4))
        row.append(f"{100 * times['vectorized'] / times['pointer']:.1f}%")
        rows = [row]
        notes = [f"measured wall-clock at scale {scale:g}, serial, all modes once",
                 "shape criterion: C < optimized << initial"]
    else:
        stats = paper_scale_stats(dataset)
        rows = []
        for p in TASKS:
            c = simulate_cpals(stats, SimConfig.c_reference(p)).seconds["mttkrp"]
            ini = simulate_cpals(stats, SimConfig.chapel_initial(p)).seconds["mttkrp"]
            opt = simulate_cpals(stats, SimConfig.chapel_optimized(p)).seconds["mttkrp"]
            rows.append([p, round(c, 3), round(ini, 2), round(opt, 3),
                         f"{100 * c / opt:.1f}%"])
        notes = ["simulated at paper scale", paper_note]
    return ExperimentResult(
        exp_id=fig_id,
        title=f"MTTKRP runtime, {dataset.upper()}: C vs Chapel-initial vs "
              f"Chapel-optimize (paper {fig_id.replace('fig', 'Fig ')})",
        headers=["tasks", "C", "Chapel-initial", "Chapel-optimize", "C/opt"],
        rows=rows,
        notes=notes,
    )


@experiment("fig9")
def fig9(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _scaling_figure(
        "yelp", "fig9",
        "paper: Chapel-optimize achieves 83-93% of C MTTKRP on YELP, near-linear "
        "scaling; Chapel-initial only ~1.9x total speedup (sync locks)",
        measured=measured, scale=scale,
    )


@experiment("fig10")
def fig10(*, measured: bool = False, scale: float = BENCH_SCALE) -> ExperimentResult:
    return _scaling_figure(
        "nell-2", "fig10",
        "paper: Chapel-optimize achieves 84-96% of C MTTKRP on NELL-2, "
        "near-linear scaling for both optimized codes",
        measured=measured, scale=scale,
    )


# ----------------------------------------------------------------------
# §V-E — Qthreads × OpenMP interference
# ----------------------------------------------------------------------
@experiment("sec5e")
def sec5e(*, measured: bool = False) -> ExperimentResult:
    """Inverse-routine interference sweep (paper §V-E, YELP)."""
    stats = paper_scale_stats("yelp")
    rank, iters = 35, 20
    rows = []
    for omp in TASKS:
        t_default = inverse_time(stats.dims, rank, iters, is_c=False, omp_threads=omp,
                                 qt_affinity=True, qt_spincount=DEFAULT_SPINCOUNT)
        t_noaff = inverse_time(stats.dims, rank, iters, is_c=False, omp_threads=omp,
                               qt_affinity=False, qt_spincount=DEFAULT_SPINCOUNT)
        t_spin = inverse_time(stats.dims, rank, iters, is_c=False, omp_threads=omp,
                              qt_affinity=False, qt_spincount=300)
        t_c = inverse_time(stats.dims, rank, iters, is_c=True, omp_threads=omp,
                           qt_affinity=True, qt_spincount=DEFAULT_SPINCOUNT)
        norm_pen = norm_time(stats.dims, rank, iters, omp, is_c=False,
                             qt_affinity=False, omp_threads=omp) / max(
            norm_time(stats.dims, rank, iters, omp, is_c=False,
                      qt_affinity=True, omp_threads=omp), 1e-12)
        rows.append([omp, round(t_default, 3), round(t_noaff, 3), round(t_spin, 3),
                     round(t_c, 3), f"{norm_pen:.1f}x"])
    return ExperimentResult(
        exp_id="sec5e",
        title="Inverse routine under Qthreads x OpenMP interference, YELP (paper §V-E)",
        headers=["omp threads", "Chapel default", "QT_AFFINITY=no",
                 "+QT_SPINCOUNT=300", "C", "mat_norm penalty"],
        rows=rows,
        notes=[
            "simulated; paper anchors at 32 threads: default 15x slower than serial; "
            "affinity=no → 2x speedup; +spincount → further 2.3x, still ~4x slower "
            "than C; mat_norm degrades 7-13x when affinity is off",
        ],
    )


# ----------------------------------------------------------------------
# Headline — 83-96% of C, near-linear scaling
# ----------------------------------------------------------------------
@experiment("headline")
def headline(*, measured: bool = False) -> ExperimentResult:
    """The paper's abstract claim: 83-96% of C MTTKRP, near-linear scaling."""
    rows = []
    for ds in ("yelp", "nell-2"):
        stats = paper_scale_stats(ds)
        ratios = []
        opt_series = []
        for p in TASKS:
            c = simulate_cpals(stats, SimConfig.c_reference(p)).seconds["mttkrp"]
            o = simulate_cpals(stats, SimConfig.chapel_optimized(p)).seconds["mttkrp"]
            ratios.append(c / o)
            opt_series.append(o)
        speedup32 = opt_series[0] / opt_series[-1]
        rows.append([
            stats.name,
            f"{100 * min(ratios):.0f}%",
            f"{100 * max(ratios):.0f}%",
            round(speedup32, 1),
            f"{100 * speedup32 / 32:.0f}%",
        ])
    return ExperimentResult(
        exp_id="headline",
        title="Headline: Chapel MTTKRP performance relative to C, and scaling to 32 tasks",
        headers=["dataset", "min C/opt", "max C/opt", "opt speedup @32", "parallel efficiency"],
        rows=rows,
        notes=["paper: 83-96% of C performance and near-linear scalability up to 32 cores"],
    )
