"""Experiment registry and the result container.

Every table/figure module registers its experiment functions here via the
:func:`experiment` decorator; the CLI (:mod:`repro.bench.cli`) and the
pytest-benchmark suite both dispatch through :func:`get_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.report import render_table

__all__ = ["ExperimentResult", "experiment", "get_experiment", "all_experiments"]


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    Attributes
    ----------
    exp_id:
        Short id (``table3``, ``fig4``, ``sec5e``, ``headline``).
    title:
        Human-readable description (the paper's caption, abbreviated).
    headers / rows:
        The regenerated table: for figures, one row per task count with one
        column per series — exactly the data the paper plots.
    notes:
        Shape criteria, paper anchor values, caveats.
    """

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = [render_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")]
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def column(self, header: str) -> list:
        """Extract one column by header name (assertion helper)."""
        try:
            idx = list(self.headers).index(header)
        except ValueError:
            raise KeyError(f"no column {header!r}; have {list(self.headers)}") from None
        return [row[idx] for row in self.rows]

    def chart(self, *, height: int = 12) -> str | None:
        """ASCII chart of this experiment's series, if it is figure-shaped.

        Figure-shaped means: first column is the sweep axis (tasks/threads)
        and at least one later column is numeric across all rows.  Returns
        ``None`` for table-shaped experiments.
        """
        from repro.bench.plot import render_chart

        headers = list(self.headers)
        if len(self.rows) < 2 or not headers:
            return None
        x = self.column(headers[0])
        if not all(isinstance(v, (int, float)) for v in x):
            return None
        series: dict[str, list[float]] = {}
        for h in headers[1:]:
            col = self.column(h)
            if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in col):
                series[h] = [float(v) for v in col]
        if not series:
            return None
        return render_chart(x, series, title=f"[{self.exp_id}] {self.title}",
                            height=height)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def experiment(exp_id: str):
    """Register an experiment function under ``exp_id``."""

    def deco(fn: Callable[..., ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = fn
        fn.exp_id = exp_id
        return fn

    return deco


def get_experiment(exp_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment, importing the defining modules."""
    _ensure_loaded()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, Callable[..., ExperimentResult]]:
    """All registered experiments, keyed by id."""
    _ensure_loaded()
    return dict(_REGISTRY)


def _ensure_loaded() -> None:
    # Import for registration side effects.
    from repro.bench import extensions, figures, tables  # noqa: F401
