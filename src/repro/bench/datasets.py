"""Cached scaled datasets for the measured benchmarks.

Measured-mode experiments run the real kernels on the Table I stand-ins at
a benchmark-friendly scale.  Generation is deterministic and memoized per
process so a pytest-benchmark session pays it once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.tensor.coo import SparseTensor
from repro.tensor.generate import synthetic_dataset

__all__ = ["bench_dataset", "BENCH_SCALE"]

#: Default scale on the signatures' bench shape (1.0 = as designed: YELP
#: 60k nonzeros with the locks-beyond-2-tasks property, NELL-2 32k
#: lock-free — large enough for the variant ladders to separate cleanly,
#: small enough for interpreted kernels in seconds).
BENCH_SCALE = 1.0


@lru_cache(maxsize=None)
def bench_dataset(name: str, scale: float = BENCH_SCALE, seed: int = 0) -> SparseTensor:
    """Memoized scaled synthetic stand-in for a Table I dataset."""
    return synthetic_dataset(name, scale=scale, seed=seed)
