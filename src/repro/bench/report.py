"""Plain-text rendering of experiment results (tables and series).

The harness reports everything as aligned ASCII tables — one row per
configuration, one column per routine or task count — matching how the
paper's tables and figure series read.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_cell", "render_table", "render_ratio"]


def format_cell(value) -> str:
    """Human-format one table cell (floats get 4 significant digits)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned table with a header rule."""
    cells = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_ratio(numerator: float, denominator: float) -> str:
    """``a/b`` as a percentage string, guarding division by zero."""
    if denominator == 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.1f}%"
