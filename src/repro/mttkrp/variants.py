"""MTTKRP row-access variants and the top-level dispatcher.

The paper's Figs 2-3 ladder, reproduced as real implementations whose cost
ordering mirrors the Chapel port's:

``slicing``
    The naive port.  Every factor-row access materializes a *copy* (the
    NumPy analogue of Chapel's slice-descriptor overhead, Chapel issue
    #8203), accumulation allocates fresh arrays instead of updating in
    place, and a new accumulation buffer is allocated per slice/fiber.

``index2d``
    Direct 2-D indexing: factor rows are zero-copy basic-index views,
    accumulation is in-place, buffers are reused.

``pointer``
    The ``c_ptrTo`` translation: factor matrices are accessed through their
    flat 1-D storage with manually computed row offsets (pointer
    arithmetic), the closest an interpreted loop gets to the C code.

``vectorized``
    The compiled-speed baseline (:mod:`repro.mttkrp.csf_kernels`), playing
    the role of SPLATT's C in every comparison.

The interpreted variants implement the full root/internal/leaf algorithm
set for **3rd-order tensors only** — the same restriction the paper's port
made (§V-A); ``vectorized`` supports arbitrary order (the paper's stated
future work).

:func:`mttkrp_csf` is the entry point used by CP-ALS: it picks the tree and
algorithm from the :class:`~repro.csf.build.CsfSet`, decides locks vs
privatization for non-root modes (:func:`~repro.mttkrp.locks_policy.needs_locks`),
and returns the output matrix plus an :class:`MttkrpInfo` describing what
actually ran — which the tests and the performance model both consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._util import VALUE_DTYPE, check_axis
from repro.backend import canonical_factors, prepare_call, resolve_backend
from repro.csf.build import CsfSet, build_csf_set
from repro.csf.tree import CsfTensor
from repro.mttkrp import csf_kernels
from repro.mttkrp.locks_policy import needs_locks
from repro.mttkrp.partition import nnz_balanced_blocks
from repro.observe import spans as _obs
from repro.runtime.env import ChapelEnv
from repro.sanitize import detector as _san
from repro.runtime.locks import DEFAULT_POOL_SIZE, MutexPool, make_mutex_pool
from repro.runtime.reductions import array_reduce_buffers
from repro.runtime.tasking import TaskingLayer, make_tasking_layer
from repro.tensor.coo import SparseTensor

__all__ = ["ACCESS_VARIANTS", "MttkrpInfo", "mttkrp", "mttkrp_csf"]

ACCESS_VARIANTS: tuple[str, ...] = ("slicing", "index2d", "pointer", "vectorized")


@dataclass
class MttkrpInfo:
    """What one MTTKRP invocation actually executed.

    ``plan_hit`` reports scatter-plan cache behaviour for the vectorized
    amortized path: ``True`` (cached plan reused), ``False`` (plan built
    this call), or ``None`` (no plan involved — interpreted variants or
    ``amortize=False``).
    """

    mode: int
    algorithm: str  # "root" | "internal" | "leaf"
    variant: str
    used_locks: bool
    ntasks: int
    plan_hit: bool | None = None


# ======================================================================
# interpreted 3rd-order kernels
# ======================================================================
def _check_third_order(csf: CsfTensor, variant: str) -> None:
    if csf.nmodes != 3:
        raise NotImplementedError(
            f"the {variant!r} interpreted variant is 3rd-order only, mirroring "
            "the paper's port (§V-A); use variant='vectorized' for other orders"
        )


def _root_slicing(csf, factors, out, lo, hi, lock_row=None):  # reprolint: allow(hot-loop-alloc, row-slice-copy) — deliberate naive-port exhibit of the paper's Figs 2–3 anti-patterns
    """Naive-port root kernel: copying row 'slices', no in-place updates."""
    a_mode, b_mode, c_mode = csf.dim_perm
    b_mat, c_mat = factors[b_mode], factors[c_mode]
    fptr0, fptr1 = csf.fptr
    fids0, fids1, fids2 = csf.fids
    vals = csf.values
    rank = out.shape[1]
    for s in range(lo, hi):
        accum = np.zeros(rank, dtype=VALUE_DTYPE)  # fresh per slice
        for f in range(fptr0[s], fptr0[s + 1]):
            fib = np.zeros(rank, dtype=VALUE_DTYPE)  # fresh per fiber
            for nz in range(fptr1[f], fptr1[f + 1]):
                crow = c_mat[fids2[nz], :].copy()  # slice → copy
                fib = fib + vals[nz] * crow  # new array every nonzero
            brow = b_mat[fids1[f], :].copy()
            accum = accum + fib * brow
        out[fids0[s], :] = out[fids0[s], :] + accum


def _root_index2d(csf, factors, out, lo, hi, lock_row=None):
    """2-D-indexing root kernel: row views, in-place accumulation."""
    a_mode, b_mode, c_mode = csf.dim_perm
    b_mat, c_mat = factors[b_mode], factors[c_mode]
    fptr0, fptr1 = csf.fptr
    fids0, fids1, fids2 = csf.fids
    vals = csf.values
    rank = out.shape[1]
    accum = np.empty(rank, dtype=VALUE_DTYPE)
    fib = np.empty(rank, dtype=VALUE_DTYPE)
    for s in range(lo, hi):
        accum[:] = 0.0
        for f in range(fptr0[s], fptr0[s + 1]):
            fib[:] = 0.0
            for nz in range(fptr1[f], fptr1[f + 1]):
                fib += vals[nz] * c_mat[fids2[nz]]
            fib *= b_mat[fids1[f]]
            accum += fib
        out[fids0[s]] += accum


def _root_pointer(csf, factors, out, lo, hi, lock_row=None):
    """Pointer-arithmetic root kernel: flat storage + manual row offsets.

    The ``c_ptrTo`` translation: matrices are walked through their raw 1-D
    buffers, and the tree's index arrays are pre-extracted to plain Python
    ints (raw loads) instead of going through ndarray scalar descriptors on
    every access — the interpreter's analogue of dropping from Chapel array
    views to C pointers.
    """
    a_mode, b_mode, c_mode = csf.dim_perm
    rank = out.shape[1]
    b_flat = factors[b_mode].ravel()
    c_flat = factors[c_mode].ravel()
    out_flat = out.ravel()
    fptr0, fptr1 = (p.tolist() for p in csf.fptr)
    fids0, fids1, fids2 = (f.tolist() for f in csf.fids)
    vals = csf.values.tolist()
    accum = np.empty(rank, dtype=VALUE_DTYPE)
    fib = np.empty(rank, dtype=VALUE_DTYPE)
    for s in range(lo, hi):
        accum[:] = 0.0
        for f in range(fptr0[s], fptr0[s + 1]):
            fib[:] = 0.0
            for nz in range(fptr1[f], fptr1[f + 1]):
                off = fids2[nz] * rank
                fib += vals[nz] * c_flat[off : off + rank]
            off = fids1[f] * rank
            fib *= b_flat[off : off + rank]
            accum += fib
        off = fids0[s] * rank
        out_flat[off : off + rank] += accum


def _internal_slicing(csf, factors, out, lo, hi, lock_row=None):  # reprolint: allow(hot-loop-alloc, row-slice-copy) — deliberate naive-port exhibit of the paper's Figs 2–3 anti-patterns
    """Naive-port internal kernel (output rows at level 1; may need locks)."""
    a_mode, b_mode, c_mode = csf.dim_perm
    a_mat, c_mat = factors[a_mode], factors[c_mode]
    fptr0, fptr1 = csf.fptr
    fids0, fids1, fids2 = csf.fids
    vals = csf.values
    rank = out.shape[1]
    for s in range(lo, hi):
        arow = a_mat[fids0[s], :].copy()
        for f in range(fptr0[s], fptr0[s + 1]):
            fib = np.zeros(rank, dtype=VALUE_DTYPE)
            for nz in range(fptr1[f], fptr1[f + 1]):
                crow = c_mat[fids2[nz], :].copy()
                fib = fib + vals[nz] * crow
            row = int(fids1[f])
            contrib = fib * arow
            if lock_row is None:
                out[row, :] = out[row, :] + contrib
            else:
                with lock_row(row):
                    out[row, :] = out[row, :] + contrib


def _internal_index2d(csf, factors, out, lo, hi, lock_row=None):
    a_mode, b_mode, c_mode = csf.dim_perm
    a_mat, c_mat = factors[a_mode], factors[c_mode]
    fptr0, fptr1 = csf.fptr
    fids0, fids1, fids2 = csf.fids
    vals = csf.values
    rank = out.shape[1]
    fib = np.empty(rank, dtype=VALUE_DTYPE)
    for s in range(lo, hi):
        arow = a_mat[fids0[s]]
        for f in range(fptr0[s], fptr0[s + 1]):
            fib[:] = 0.0
            for nz in range(fptr1[f], fptr1[f + 1]):
                fib += vals[nz] * c_mat[fids2[nz]]
            fib *= arow
            row = int(fids1[f])
            if lock_row is None:
                out[row] += fib
            else:
                with lock_row(row):
                    out[row] += fib


def _internal_pointer(csf, factors, out, lo, hi, lock_row=None):
    a_mode, b_mode, c_mode = csf.dim_perm
    rank = out.shape[1]
    a_flat = factors[a_mode].ravel()
    c_flat = factors[c_mode].ravel()
    out_flat = out.ravel()
    fptr0, fptr1 = (p.tolist() for p in csf.fptr)
    fids0, fids1, fids2 = (f.tolist() for f in csf.fids)
    vals = csf.values.tolist()
    fib = np.empty(rank, dtype=VALUE_DTYPE)
    for s in range(lo, hi):
        aoff = fids0[s] * rank
        arow = a_flat[aoff : aoff + rank]
        for f in range(fptr0[s], fptr0[s + 1]):
            fib[:] = 0.0
            for nz in range(fptr1[f], fptr1[f + 1]):
                off = fids2[nz] * rank
                fib += vals[nz] * c_flat[off : off + rank]
            fib *= arow
            row = int(fids1[f])
            off = row * rank
            if lock_row is None:
                out_flat[off : off + rank] += fib
            else:
                with lock_row(row):
                    out_flat[off : off + rank] += fib


def _leaf_slicing(csf, factors, out, lo, hi, lock_row=None):  # reprolint: allow(hot-loop-alloc, row-slice-copy) — deliberate naive-port exhibit of the paper's Figs 2–3 anti-patterns
    """Naive-port leaf kernel (output rows at the leaf level)."""
    a_mode, b_mode, c_mode = csf.dim_perm
    a_mat, b_mat = factors[a_mode], factors[b_mode]
    fptr0, fptr1 = csf.fptr
    fids0, fids1, fids2 = csf.fids
    vals = csf.values
    for s in range(lo, hi):
        arow = a_mat[fids0[s], :].copy()
        for f in range(fptr0[s], fptr0[s + 1]):
            brow = b_mat[fids1[f], :].copy()
            prow = arow * brow
            for nz in range(fptr1[f], fptr1[f + 1]):
                row = int(fids2[nz])
                contrib = vals[nz] * prow
                if lock_row is None:
                    out[row, :] = out[row, :] + contrib
                else:
                    with lock_row(row):
                        out[row, :] = out[row, :] + contrib


def _leaf_index2d(csf, factors, out, lo, hi, lock_row=None):
    a_mode, b_mode, c_mode = csf.dim_perm
    a_mat, b_mat = factors[a_mode], factors[b_mode]
    fptr0, fptr1 = csf.fptr
    fids0, fids1, fids2 = csf.fids
    vals = csf.values
    rank = out.shape[1]
    prow = np.empty(rank, dtype=VALUE_DTYPE)
    for s in range(lo, hi):
        arow = a_mat[fids0[s]]
        for f in range(fptr0[s], fptr0[s + 1]):
            np.multiply(arow, b_mat[fids1[f]], out=prow)
            for nz in range(fptr1[f], fptr1[f + 1]):
                row = int(fids2[nz])
                if lock_row is None:
                    out[row] += vals[nz] * prow
                else:
                    with lock_row(row):
                        out[row] += vals[nz] * prow


def _leaf_pointer(csf, factors, out, lo, hi, lock_row=None):
    a_mode, b_mode, c_mode = csf.dim_perm
    rank = out.shape[1]
    a_flat = factors[a_mode].ravel()
    b_flat = factors[b_mode].ravel()
    out_flat = out.ravel()
    fptr0, fptr1 = (p.tolist() for p in csf.fptr)
    fids0, fids1, fids2 = (f.tolist() for f in csf.fids)
    vals = csf.values.tolist()
    prow = np.empty(rank, dtype=VALUE_DTYPE)
    for s in range(lo, hi):
        aoff = fids0[s] * rank
        arow = a_flat[aoff : aoff + rank]
        for f in range(fptr0[s], fptr0[s + 1]):
            boff = fids1[f] * rank
            np.multiply(arow, b_flat[boff : boff + rank], out=prow)
            for nz in range(fptr1[f], fptr1[f + 1]):
                row = int(fids2[nz])
                off = row * rank
                if lock_row is None:
                    out_flat[off : off + rank] += vals[nz] * prow
                else:
                    with lock_row(row):
                        out_flat[off : off + rank] += vals[nz] * prow


_INTERPRETED: dict[tuple[str, str], Callable] = {
    ("root", "slicing"): _root_slicing,
    ("root", "index2d"): _root_index2d,
    ("root", "pointer"): _root_pointer,
    ("internal", "slicing"): _internal_slicing,
    ("internal", "index2d"): _internal_index2d,
    ("internal", "pointer"): _internal_pointer,
    ("leaf", "slicing"): _leaf_slicing,
    ("leaf", "index2d"): _leaf_index2d,
    ("leaf", "pointer"): _leaf_pointer,
}


# ======================================================================
# drivers
# ======================================================================
def _run_interpreted(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    algorithm: str,
    variant: str,
    layer: TaskingLayer,
    pool: MutexPool | None,
) -> None:
    """Parallelize an interpreted kernel over nnz-balanced slice blocks.

    Root needs no synchronization; internal/leaf take the mutex pool when
    given one, otherwise privatize per-task buffers.
    """
    _check_third_order(csf, variant)
    kernel = _INTERPRETED[(algorithm, variant)]
    ntasks = layer.env.num_tasks
    bounds = nnz_balanced_blocks(csf, ntasks)

    if algorithm == "root" or ntasks == 1:
        def task(tid: int) -> None:
            kernel(csf, factors, out, int(bounds[tid]), int(bounds[tid + 1]))

        layer.coforall(ntasks, task)
        return

    if pool is not None:
        def task(tid: int) -> None:
            kernel(
                csf, factors, out,
                int(bounds[tid]), int(bounds[tid + 1]),
                lock_row=pool.guard_row,
            )

        layer.coforall(ntasks, task)
        return

    # privatization: thread-local outputs + parallel reduction
    buffers = [np.zeros_like(out) for _ in range(ntasks)]  # reprolint: allow(hot-loop-alloc) — interpreted ladder is deliberately unamortized; the amortized path lives in csf_kernels

    def task(tid: int) -> None:
        kernel(csf, factors, buffers[tid], int(bounds[tid]), int(bounds[tid + 1]))

    layer.coforall(ntasks, task)
    array_reduce_buffers(layer, out, buffers)


def mttkrp_csf(
    csf_set: CsfSet,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    variant: str = "vectorized",
    env: ChapelEnv | None = None,
    layer: TaskingLayer | None = None,
    mutex_kind: str = "atomic",
    pool_size: int = DEFAULT_POOL_SIZE,
    pool: MutexPool | None = None,
    force_locks: bool | None = None,
    out: np.ndarray | None = None,
    amortize: bool = True,
    backend=None,
) -> tuple[np.ndarray, MttkrpInfo]:
    """MTTKRP for output ``mode`` using a prebuilt CSF set.

    Parameters
    ----------
    csf_set:
        Trees built by :func:`repro.csf.build_csf_set`.
    factors:
        All ``N`` factor matrices; ``factors[mode]`` is ignored.
    mode:
        Output mode.
    variant:
        Row-access variant from :data:`ACCESS_VARIANTS`.
    env / layer:
        Runtime configuration; ``layer`` wins if both given, default is a
        serial Qthreads layer.
    mutex_kind / pool_size / pool:
        Mutex pool configuration when locks are selected; pass ``pool`` to
        share one pool (and its counters) across calls.
    force_locks:
        Override the lock decision (used by Fig 4's sweep); ``None`` defers
        to :func:`needs_locks`.
    out:
        Optional preallocated ``(I_mode, R)`` output, zeroed by this call.
    amortize:
        Use the CSF set's :class:`~repro.mttkrp.scatter.MttkrpContext`
        (vectorized variant only): precomputed scatter plans and reusable
        workspaces make repeated calls on the same set allocation-free.
        ``False`` recovers the seed per-call behaviour (used as the
        benchmark baseline).  Results are identical either way.
    backend:
        Execution backend for the numerical hot spots (``vectorized``
        variant, order >= 2): a name (``"numpy"``, ``"numba"``, ``"cext"``,
        ``"auto"``), a :class:`~repro.backend.registry.Backend` instance,
        or ``None`` (defer to ``$REPRO_BACKEND``, default ``numpy``).  See
        ``docs/BACKENDS.md``.  Compiled backends replace the NumPy tree
        walk and scatter reductions with GIL-releasing kernels; scatter
        structure, lock traffic and results (``allclose`` at 1e-10) are
        unchanged.  Interpreted variants always run in-process regardless
        of backend.

    Returns
    -------
    (out, info):
        The MTTKRP result and an :class:`MttkrpInfo` record.
    """
    if variant not in ACCESS_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; choose from {ACCESS_VARIANTS}")
    if layer is None:
        layer = make_tasking_layer(env if env is not None else ChapelEnv())
    env = layer.env

    nmodes = csf_set.nmodes
    mode = check_axis(mode, nmodes)
    tree, algorithm = csf_set.tree_for_mode(mode)
    bk = resolve_backend(backend)
    # Identical coercion for every backend (C-contiguous float64), so
    # backend choice can never change how an exotic input is interpreted.
    factors = canonical_factors(factors)
    rank = factors[0].shape[1]
    dim = tree.dims[mode]
    if factors[mode].shape != (dim, rank):
        raise ValueError(
            f"factor {mode} has shape {factors[mode].shape}, expected {(dim, rank)}"
        )

    if out is None:
        out = np.zeros((dim, rank), dtype=VALUE_DTYPE)
    else:
        if out.shape != (dim, rank):
            raise ValueError(f"out has shape {out.shape}, expected {(dim, rank)}")
        out[:] = 0.0

    if algorithm == "root":
        use_locks = False
    elif force_locks is not None:
        use_locks = force_locks and env.num_tasks > 1
    else:
        use_locks = needs_locks(dim, tree.nnz, env.num_tasks)

    the_pool: MutexPool | None = None
    if use_locks:
        if pool is not None:
            the_pool = pool
        elif variant == "vectorized" and amortize:
            the_pool = csf_set.mttkrp_context.mutex_pool(mutex_kind, pool_size, env)
        else:
            the_pool = make_mutex_pool(mutex_kind, size=pool_size, env=env)

    plan_hit: bool | None = None

    # Compiled backends take over the vectorized tree walk for order >= 2
    # (order-1 trees have no kernel work to speak of).  The dispatch layer
    # computes *contributions* only — scatter structure, privatization,
    # mutex traffic and the sanitizer hooks are shared with the numpy path,
    # which is what makes cross-backend equivalence structural.
    use_compiled = bk.compiled and variant == "vectorized" and tree.nmodes >= 2
    bctx = None
    if use_compiled:
        bctx = prepare_call(bk, csf_set.mttkrp_context, tree, factors)
        _obs.count("backend.dispatch." + bk.name)
    scatter_bk = bk if use_compiled else None

    san = _san._active
    if san is not None:
        san.register_array(out, f"mttkrp.out.mode{mode}")

    def _execute() -> None:
        nonlocal plan_hit
        if variant == "vectorized":
            plan = None
            workspaces = None
            buffers = None
            ntasks = env.num_tasks
            if amortize:
                ctx = csf_set.mttkrp_context
                level = 0 if algorithm == "root" else tree.level_of_mode(mode)
                psize = the_pool.size if the_pool is not None else None
                plan, plan_hit = ctx.plan(tree, level, ntasks, psize)
                workspaces = ctx.workspaces(tree, ntasks, bk.name)
                if the_pool is None and algorithm != "root" and ntasks > 1:
                    buffers = ctx.buffers(tree, level, ntasks, out.shape)
            if algorithm == "root":
                csf_kernels.run_root_parallel(
                    tree, factors, out, layer, plan=plan, workspaces=workspaces,
                    bctx=bctx,
                )
            else:
                def _ctx(tid):
                    if plan is None:
                        return None, None
                    return plan.traversals[tid], workspaces[tid] if workspaces else None

                presorted = False
                if algorithm == "leaf":
                    if (plan is not None and plan.leaf_expand_sorted is not None
                            and bctx is None):
                        # contribs come out already in scatter-sorted order; the
                        # per-call O(nnz) sort gather disappears entirely.
                        # (Compiled backends emit in tree order instead and fuse
                        # the gather into their segment-sum reduction.)
                        presorted = True

                        def compute(lo, hi, tid):
                            ws = workspaces[tid]
                            return None, csf_kernels.leaf_range_sorted(
                                tree, factors, plan, tid, ws
                            )
                    else:
                        def compute(lo, hi, tid):
                            trav, ws = _ctx(tid)
                            return csf_kernels.leaf_range_vectorized(
                                tree, factors, lo, hi, trav=trav, ws=ws, bctx=bctx
                            )
                else:
                    level = tree.level_of_mode(mode)

                    def compute(lo, hi, tid):
                        trav, ws = _ctx(tid)
                        return csf_kernels.internal_range_vectorized(
                            tree, factors, level, lo, hi, trav=trav, ws=ws,
                            bctx=bctx,
                        )
                if the_pool is not None:
                    csf_kernels.run_scatter_mutex(
                        tree, factors, out, layer, the_pool, compute,
                        plan=plan, workspaces=workspaces, presorted=presorted,
                        backend=scatter_bk,
                    )
                else:
                    csf_kernels.run_scatter_privatized(
                        tree, factors, out, layer, compute,
                        plan=plan, buffers=buffers, workspaces=workspaces,
                        presorted=presorted, backend=scatter_bk,
                    )
        else:
            _run_interpreted(tree, factors, out, algorithm, variant, layer, the_pool)

    rec = _obs._active
    if rec is None:
        _execute()
    else:
        # Fold the CostCounters delta over this call into the span so the
        # trace carries the lock-pressure story (paper Fig 4) per mode.
        lock_before = the_pool.counters.snapshot() if the_pool is not None else None
        with rec.span(
            f"mttkrp.mode{mode}",
            {
                "mode": mode,
                "algorithm": algorithm,
                "variant": variant,
                "ntasks": env.num_tasks,
                "used_locks": use_locks,
                "backend": bk.name,
            },
        ) as sp:
            _execute()
            post: dict = {"plan_hit": plan_hit}
            if lock_before is not None:
                after = the_pool.counters.snapshot()
                for key in ("lock_acquires", "lock_contended", "sync_sleeps"):
                    post[key] = after[key] - lock_before[key]
            else:
                post.update(lock_acquires=0, lock_contended=0, sync_sleeps=0)
            sp.set_attrs(**post)

    info = MttkrpInfo(
        mode=mode,
        algorithm=algorithm,
        variant=variant,
        used_locks=use_locks,
        ntasks=env.num_tasks,
        plan_hit=plan_hit,
    )
    return out, info


def mttkrp(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    allocation: str = "two",
    **kwargs,
) -> np.ndarray:
    """One-shot MTTKRP on a COO tensor (builds a CSF set internally).

    Convenience wrapper for scripts and tests; CP-ALS builds the CSF set
    once and calls :func:`mttkrp_csf` directly.
    """
    csf_set = build_csf_set(tensor, allocation=allocation)
    out, _ = mttkrp_csf(csf_set, factors, mode, **kwargs)
    return out
