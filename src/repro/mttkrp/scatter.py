"""Precomputed scatter plans and reusable workspaces for MTTKRP.

Every non-root MTTKRP ends in a scatter-add: per-task ``(rows, contribs)``
pairs accumulated into shared output rows.  The seed implementation paid
three per-call costs that are *invariant across CP-ALS iterations*:

* ``np.add.at`` — an unbuffered, element-at-a-time scatter (an order of
  magnitude slower than a segmented reduction);
* in the mutex path, a fresh ``np.argsort`` over lock buckets on every
  call, even though the ``fids`` row arrays never change for a given tree;
* fresh ``np.zeros_like`` privatization buffers and ``O(nnz)`` tree-walk
  intermediates on every call.

Following the amortization playbook of Dynasor and the ALTO work (see
PAPERS.md), this module precomputes the memory-access layout once per
``(tree, level, ntasks[, pool_size])`` and reuses it every iteration:

* :class:`RowScatter` — cached stable sort order, segment boundaries, and
  unique output rows for one invariant ``rows`` array, turning the scatter
  into ``np.add.reduceat`` + one vectorized indexed add (and, in the mutex
  flavour, a cached bucket grouping that preserves one lock acquire per
  task-bucket pair);
* :class:`SegmentSum` — precomputed CSR segment-sum operators replacing
  ``np.add.reduceat`` in the tree walk, whose per-segment dispatch cost
  dominates on fiber-sized (few-nonzero) segments;
* :class:`TaskTraversal` — cached per-task node ranges, segment
  boundaries/operators and downward expansion indices for the CSF tree
  walk;
* :class:`Workspace` — a keyed arena of scratch arrays so steady-state
  kernels allocate nothing proportional to ``nnz``;
* :class:`ScatterPlan` — the per-task bundle of the above for one output
  level;
* :class:`MttkrpContext` — the cache (attached to a
  :class:`~repro.csf.build.CsfSet`) handing out plans, workspaces and
  privatization buffers, with hit/miss accounting surfaced by ``cp_als``.

Stable sorts keep each output row's contributions in their original
order, so plan-based results match the ``np.add.at`` path to summation
rounding (``reduceat`` sums pairwise where ``add.at`` is sequential —
``allclose`` at ~1e-15, and typically *more* accurate).

:func:`sorted_scatter_add` is the plan-less one-shot flavour for call
sites whose rows change every call (TTMc chunks, one-off scatters).
"""

from __future__ import annotations

import itertools
import threading  # reprolint: allow(raw-threading) — generation-token cache lock only; no task parallelism originates here
import weakref

import numpy as np

from repro._util import VALUE_DTYPE
from repro.csf.tree import CsfTensor
from repro.mttkrp.partition import nnz_balanced_blocks
from repro.observe import spans as _obs
from repro.sanitize import detector as _san

__all__ = [
    "sorted_scatter_add",
    "RowScatter",
    "SegmentSum",
    "TaskTraversal",
    "Workspace",
    "ScatterPlan",
    "MttkrpContext",
]

try:  # y += A @ x without allocating: private but long-stable scipy kernel
    from scipy.sparse._sparsetools import csr_matvecs as _csr_matvecs
except ImportError:  # pragma: no cover - older/newer scipy layouts
    _csr_matvecs = None


def _compiled(backend) -> bool:
    """True when ``backend`` should take the compiled primitive path."""
    return backend is not None and backend.compiled


def sorted_scatter_add(
    out: np.ndarray,
    rows: np.ndarray,
    contribs: np.ndarray,
    backend=None,
) -> np.ndarray:
    """``np.add.at(out, rows, contribs)`` via stable sort + ``reduceat``.

    The per-row accumulation order equals the input order (stable sort), so
    the result matches ``np.add.at`` to summation rounding while running at
    vectorized-reduction speed.  Use :class:`RowScatter` instead when
    ``rows`` is invariant across calls.  A compiled ``backend`` replaces
    the materialized sort gather + ``reduceat`` with one fused
    gather-segment-sum pass (same per-segment input order, so results
    agree to summation rounding).
    """
    if rows.size == 0:
        return out
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.flatnonzero(sorted_rows[1:] != sorted_rows[:-1]) + 1
    starts = np.concatenate(([0], starts))
    if (
        _compiled(backend)
        and contribs.dtype == VALUE_DTYPE
        and contribs.flags.c_contiguous
    ):
        reduced = np.empty((starts.size,) + contribs.shape[1:], dtype=VALUE_DTYPE)
        backend.gather_segment_sum(
            contribs,
            order.astype(np.int64, copy=False),
            starts.astype(np.int64, copy=False),
            reduced,
        )
        out[sorted_rows[starts]] += reduced
        return out
    out[sorted_rows[starts]] += np.add.reduceat(contribs[order], starts, axis=0)
    return out


class Workspace:
    """A keyed arena of reusable scratch arrays (one per task).

    ``buf(tag, shape)`` returns the cached array for ``tag``, reallocating
    only when the requested shape changes (e.g. a new rank).  Tags include
    the tree level so the per-level intermediates of different output modes
    on the same tree do not thrash each other.  The arena key includes the
    dtype, so a tag reused with a different dtype gets its own slot instead
    of evicting (or worse, aliasing) the other dtype's scratch.
    """

    def __init__(self) -> None:
        self._bufs: dict = {}

    def buf(self, tag, shape, dtype=VALUE_DTYPE) -> np.ndarray:
        """The cached array for ``(tag, dtype)``, allocated/resized on demand."""
        shape = tuple(shape)
        key = (tag, np.dtype(dtype))
        arr = self._bufs.get(key)
        if arr is None or arr.shape != shape:
            arr = np.empty(shape, dtype=dtype)
            self._bufs[key] = arr
        return arr

    def take(self, source: np.ndarray, indices: np.ndarray, tag) -> np.ndarray:
        """``source[indices]`` (axis 0) materialized into the ``tag`` buffer.

        ``mode="clip"`` skips bounds handling — with ``out=``, the default
        ``mode="raise"`` materializes a temporary and copies it, costing an
        extra full pass.  All callers pass CSF-derived indices that are
        in range by construction, so clipping never actually clips.
        """
        out = self.buf(tag, (indices.shape[0],) + source.shape[1:], source.dtype)
        np.take(source, indices, axis=0, out=out, mode="clip")
        return out

    def nbytes(self) -> int:
        """Total bytes held by the arena."""
        return sum(a.nbytes for a in self._bufs.values())


class RowScatter:
    """Cached scatter structure for one invariant ``rows`` array.

    Precomputes the stable sort ``order``, the ``reduceat`` segment
    boundaries ``seg_starts``, and the unique output rows ``out_rows``.
    When ``pool_size`` is given, rows are additionally grouped by mutex
    bucket (``row % pool_size``, SPLATT's hashing) with cached per-bucket
    bounds, so the locked scatter needs no per-call ``argsort``.
    """

    __slots__ = ("nrows_in", "order", "seg_starts", "out_rows",
                 "bucket_ids", "bucket_bounds", "tag", "_order64", "_starts64")

    def __init__(self, rows: np.ndarray, pool_size: int | None = None, tag=None):
        self.nrows_in = int(rows.shape[0])
        self.tag = ("scatter",) if tag is None else tag
        # int64 views of order/seg_starts for compiled backends, built on
        # first backend use (np.intp is int64 on 64-bit platforms, so these
        # are usually zero-copy aliases).
        self._order64 = None
        self._starts64 = None
        if self.nrows_in == 0:
            self.order = np.empty(0, dtype=np.intp)
            self.seg_starts = np.empty(0, dtype=np.intp)
            self.out_rows = np.empty(0, dtype=rows.dtype)
            self.bucket_ids = None
            self.bucket_bounds = None
            return
        if pool_size is None:
            self.order = np.argsort(rows, kind="stable").astype(np.intp, copy=False)
            buckets = None
        else:
            buckets = rows % pool_size
            # lexsort is stable: groups by bucket, then row, preserving the
            # original order of each row's contributions.
            self.order = np.lexsort((rows, buckets)).astype(np.intp, copy=False)
        sorted_rows = rows[self.order]
        starts = np.flatnonzero(sorted_rows[1:] != sorted_rows[:-1]) + 1
        self.seg_starts = np.concatenate(([0], starts)).astype(np.intp, copy=False)
        self.out_rows = sorted_rows[self.seg_starts]
        if buckets is None:
            self.bucket_ids = None
            self.bucket_bounds = None
        else:
            seg_buckets = buckets[self.order][self.seg_starts]
            bstarts = np.flatnonzero(seg_buckets[1:] != seg_buckets[:-1]) + 1
            self.bucket_bounds = np.concatenate(
                ([0], bstarts, [seg_buckets.size])
            ).astype(np.intp, copy=False)
            self.bucket_ids = seg_buckets[self.bucket_bounds[:-1]]

    # ------------------------------------------------------------------
    def reduce(
        self,
        contribs: np.ndarray,
        ws: Workspace | None = None,
        *,
        presorted: bool = False,
        backend=None,
    ) -> np.ndarray:
        """Per-unique-row segment sums, aligned with :attr:`out_rows`.

        ``presorted=True`` promises ``contribs`` is already in
        :attr:`order` order (the producer folded the permutation into its
        own gathers), skipping the sort gather entirely.  A compiled
        ``backend`` fuses gather and reduction into one GIL-releasing
        pass over the same segments, agreeing to summation rounding.
        """
        if (
            _compiled(backend)
            and contribs.dtype == VALUE_DTYPE
            and contribs.flags.c_contiguous
        ):
            if self._starts64 is None:
                self._order64 = self.order.astype(np.int64, copy=False)
                self._starts64 = self.seg_starts.astype(np.int64, copy=False)
            shape = (self.seg_starts.size,) + contribs.shape[1:]
            if ws is None:
                reduced = np.empty(shape, dtype=VALUE_DTYPE)
            else:
                reduced = ws.buf(self.tag + ("reduced",), shape, VALUE_DTYPE)
            # The compiled kernels take 2-D (n, width) arrays; trailing
            # dims (e.g. ALS's (nnz, R, R) outer-product stacks) flatten
            # to zero-copy views thanks to the C-contiguity guard above.
            width = 1
            for d in contribs.shape[1:]:
                width *= d
            flat = contribs.reshape(contribs.shape[0], width)
            flat_out = reduced.reshape(reduced.shape[0], width)
            if presorted:
                backend.segment_sum(flat, self._starts64, flat_out)
            else:
                backend.gather_segment_sum(
                    flat, self._order64, self._starts64, flat_out
                )
            return reduced
        if presorted:
            sorted_c = contribs
        elif ws is None:
            sorted_c = contribs[self.order]
        else:
            sorted_c = ws.take(contribs, self.order, self.tag + ("sorted",))
        if ws is None:
            return np.add.reduceat(sorted_c, self.seg_starts, axis=0)
        reduced = ws.buf(
            self.tag + ("reduced",),
            (self.seg_starts.size,) + contribs.shape[1:],
            contribs.dtype,
        )
        np.add.reduceat(sorted_c, self.seg_starts, axis=0, out=reduced)
        return reduced

    def scatter_accumulate(
        self,
        out: np.ndarray,
        contribs: np.ndarray,
        ws: Workspace | None = None,
        *,
        presorted: bool = False,
        backend=None,
    ) -> None:
        """``out[rows] += contribs`` with duplicate rows pre-reduced."""
        if self.nrows_in == 0:
            return
        out[self.out_rows] += self.reduce(
            contribs, ws, presorted=presorted, backend=backend
        )
        san = _san._active
        if san is not None:
            san.on_access(
                out, self.out_rows, write=True, site="RowScatter.scatter_accumulate"
            )

    def scatter_assign(
        self,
        out: np.ndarray,
        contribs: np.ndarray,
        ws: Workspace | None = None,
        *,
        presorted: bool = False,
        backend=None,
    ) -> None:
        """Overwrite ``out``'s :attr:`out_rows` with the segment sums.

        Used for reusable privatization buffers: rows outside
        :attr:`out_rows` are never written by this plan, so a buffer stays
        valid across calls without re-zeroing — provided it is only ever
        written through this same plan.
        """
        if self.nrows_in == 0:
            return
        out[self.out_rows] = self.reduce(
            contribs, ws, presorted=presorted, backend=backend
        )
        san = _san._active
        if san is not None:
            san.on_access(
                out, self.out_rows, write=True, site="RowScatter.scatter_assign"
            )

    def scatter_mutex(
        self,
        out: np.ndarray,
        contribs: np.ndarray,
        pool,
        ws: Workspace | None = None,
        *,
        presorted: bool = False,
        backend=None,
    ) -> None:
        """Locked scatter: one pool acquire per cached bucket group.

        Lock traffic is identical to the seed path (one acquire per
        task-bucket pair, same hashed lock ids), but bucket grouping and
        per-row reduction come from the plan instead of a per-call sort.
        """
        if self.nrows_in == 0:
            return
        reduced = self.reduce(contribs, ws, presorted=presorted, backend=backend)
        san = _san._active
        for k in range(self.bucket_ids.size):
            s = int(self.bucket_bounds[k])
            e = int(self.bucket_bounds[k + 1])
            lid = int(self.bucket_ids[k])
            pool.acquire(lid)
            try:
                out[self.out_rows[s:e]] += reduced[s:e]
                if san is not None:
                    # Recorded *inside* the critical section so the access
                    # carries the bucket lock in its lockset.
                    san.on_access(
                        out, self.out_rows[s:e], write=True,
                        site="RowScatter.scatter_mutex",
                    )
            finally:
                pool.release(lid)


class SegmentSum:
    """Cached segment-sum operator over contiguous row segments.

    ``np.add.reduceat`` pays a per-segment dispatch cost that dominates
    when segments are tiny (CSF fibers average only a few nonzeros), so
    the amortized kernels precompute a sparse 0/1 matrix whose rows are
    the segments and apply it with scipy's compiled CSR matmul — ~10×
    faster on fiber-sized segments, identical segment membership, with
    per-segment sums accumulated sequentially (``allclose`` to the
    reduceat path's pairwise sums).
    """

    __slots__ = ("matrix", "nseg", "nin", "starts64")

    def __init__(self, starts: np.ndarray, nin: int):
        import scipy.sparse as sp

        self.nseg = int(starts.shape[0])
        self.nin = int(nin)
        # Kept separately from matrix.indptr (scipy may downcast that to
        # int32): the compiled backends require int64 segment starts.
        self.starts64 = np.ascontiguousarray(starts, dtype=np.int64)
        indptr = np.empty(self.nseg + 1, dtype=np.int64)
        indptr[: self.nseg] = starts
        indptr[self.nseg] = nin
        self.matrix = sp.csr_matrix(
            (np.ones(nin, dtype=VALUE_DTYPE), np.arange(nin, dtype=np.int64), indptr),
            shape=(self.nseg, nin),
        )

    def apply(self, w: np.ndarray, ws: Workspace, tag, backend=None) -> np.ndarray:
        """Per-segment sums of ``w``'s rows, in a reused ``tag`` buffer."""
        out = ws.buf(tag, (self.nseg,) + w.shape[1:], w.dtype)
        if (
            _compiled(backend)
            and w.dtype == VALUE_DTYPE
            and w.flags.c_contiguous
        ):
            backend.segment_sum(w, self.starts64, out)
            return out
        m = self.matrix
        if _csr_matvecs is not None and w.flags["C_CONTIGUOUS"]:
            out[:] = 0.0
            _csr_matvecs(
                self.nseg, self.nin, w.shape[1],
                m.indptr, m.indices, m.data, w.ravel(), out.ravel(),
            )
        else:
            out[:] = m @ w
        return out

    def nbytes(self) -> int:
        m = self.matrix
        return (m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
                + self.starts64.nbytes)


class TaskTraversal:
    """Cached CSF tree-walk structure for one task's root slices ``[lo, hi)``.

    Holds everything the upward/downward kernels recompute per call in the
    seed implementation: per-level node ``ranges``, ``reduceat`` child
    boundaries (``up_starts``), downward expansion indices
    (``down_expand``, replacing per-call ``np.repeat`` span math), and the
    per-level ``fids``/``values`` slices.
    """

    __slots__ = ("lo", "hi", "ranges", "up_starts", "up_segsum", "down_expand",
                 "fids", "values")

    def __init__(self, csf: CsfTensor, lo: int, hi: int):
        self.lo, self.hi = lo, hi
        nmodes = csf.nmodes
        ranges = [(lo, hi)]
        for level in range(nmodes - 1):
            clo, chi = ranges[-1]
            ranges.append((int(csf.fptr[level][clo]), int(csf.fptr[level][chi])))
        self.ranges = ranges
        self.up_starts = []
        self.up_segsum = []
        for level in range(nmodes - 1):
            nlo, nhi = ranges[level]
            clo = ranges[level + 1][0]
            starts = (csf.fptr[level][nlo:nhi] - clo).astype(np.intp, copy=False)
            self.up_starts.append(starts)
            self.up_segsum.append(SegmentSum(starts, ranges[level + 1][1] - clo))
        self.down_expand: list[np.ndarray | None] = [None]
        for level in range(1, nmodes):
            plo, phi = ranges[level - 1]
            spans = np.diff(csf.fptr[level - 1][plo : phi + 1])
            self.down_expand.append(
                np.repeat(np.arange(phi - plo, dtype=np.intp), spans)  # reprolint: allow(hot-loop-alloc) — one-time plan construction in TaskTraversal.__init__, amortized over every later call
            )
        self.fids = [csf.fids[level][ranges[level][0] : ranges[level][1]] for level in range(nmodes)]
        self.values = csf.values[ranges[nmodes - 1][0] : ranges[nmodes - 1][1]]


class ScatterPlan:
    """Everything invariant about one ``(tree, level, ntasks[, pool_size])``.

    ``bounds`` are the nnz-balanced root-slice blocks, ``traversals[tid]``
    the cached tree walk per task, and ``scatters[tid]`` the cached scatter
    structure over the level's ``fids`` rows.  Build once (via
    :class:`MttkrpContext`), apply every iteration.

    For the **leaf** level the scatter permutation is folded into the
    traversal itself: ``leaf_expand_sorted[tid]`` composes the final
    downward expansion with the scatter sort order, and
    ``leaf_values_sorted[tid]`` pre-permutes the nonzero values, so the
    leaf kernel emits contributions already in sorted order and the
    per-call ``O(nnz)`` sort gather disappears (``presorted=True``).
    """

    __slots__ = ("level", "ntasks", "pool_size", "bounds", "traversals", "scatters",
                 "leaf_expand_sorted", "leaf_values_sorted")

    def __init__(
        self,
        csf: CsfTensor,
        level: int,
        ntasks: int,
        pool_size: int | None = None,
        *,
        bounds: np.ndarray | None = None,
        traversals: list[TaskTraversal] | None = None,
    ):
        self.level = level
        self.ntasks = ntasks
        self.pool_size = pool_size
        self.bounds = nnz_balanced_blocks(csf, ntasks) if bounds is None else bounds
        if traversals is None:
            traversals = [
                TaskTraversal(csf, int(self.bounds[t]), int(self.bounds[t + 1]))
                for t in range(ntasks)
            ]
        self.traversals = traversals
        lock_tag = "mutex" if pool_size is not None else "priv"
        self.scatters = [
            RowScatter(trav.fids[level], pool_size, tag=("scatter", level, lock_tag))
            for trav in traversals
        ]
        if level == csf.nmodes - 1:
            self.leaf_expand_sorted = [
                trav.down_expand[level][sc.order]
                for trav, sc in zip(self.traversals, self.scatters)
            ]
            self.leaf_values_sorted = [
                trav.values[sc.order]
                for trav, sc in zip(self.traversals, self.scatters)
            ]
        else:
            self.leaf_expand_sorted = None
            self.leaf_values_sorted = None

    def memory_bytes(self) -> int:
        """Plan storage footprint (index arrays; roughly tree-sized)."""
        total = 0
        for trav in self.traversals:
            total += sum(a.nbytes for a in trav.up_starts)
            total += sum(s.nbytes() for s in trav.up_segsum)
            total += sum(a.nbytes for a in trav.down_expand if a is not None)
        for sc in self.scatters:
            total += sc.order.nbytes + sc.seg_starts.nbytes + sc.out_rows.nbytes
            if sc.bucket_ids is not None:
                total += sc.bucket_ids.nbytes + sc.bucket_bounds.nbytes
        if self.leaf_expand_sorted is not None:
            total += sum(a.nbytes for a in self.leaf_expand_sorted)
            total += sum(a.nbytes for a in self.leaf_values_sorted)
        return total


#: Monotone generation tokens for CSF trees: unlike ``id()``, a token is
#: never reused, so a cache keyed by token can never alias a new tree onto
#: a dead tree's plan.  Assigned lazily, one per tree, process-wide.
_tree_token_counter = itertools.count(1)
_tree_token_lock = threading.Lock()


def _tree_token(tree: CsfTensor) -> int:
    """The tree's generation token, assigned on first use."""
    token = getattr(tree, "_mttkrp_token", None)
    if token is None:
        with _tree_token_lock:
            token = getattr(tree, "_mttkrp_token", None)
            if token is None:
                token = next(_tree_token_counter)
                tree._mttkrp_token = token
    return token


def _evict_context_tree(ctx_ref: "weakref.ref[MttkrpContext]", token: int) -> None:
    """``weakref.finalize`` callback: drop a dead tree's cache entries."""
    ctx = ctx_ref()
    if ctx is not None:
        ctx._evict_tree(token)


class MttkrpContext:
    """Per-:class:`~repro.csf.build.CsfSet` cache of plans and workspaces.

    Tree-scoped entries are keyed by a per-tree *generation token* rather
    than ``id(tree)``: Python reuses object ids after garbage collection,
    so an id-keyed cache in a long-lived context could silently hand a new
    tree another tree's stale plan.  Tokens are never reused, and a
    ``weakref.finalize`` on each tree evicts its entries when the tree is
    collected, so a context fed a stream of transient trees does not grow
    without bound.  Tracks plan hits/misses for the engine report
    (``cp_als`` summary, benchmarks).
    """

    def __init__(self) -> None:
        self._traversals: dict = {}
        self._plans: dict = {}
        self._buffers: dict = {}
        self._workspaces: dict = {}
        self._packed: dict = {}
        self._mutex_pools: dict = {}
        self._finalized_tokens: set[int] = set()
        # Reentrant: a finalize-driven eviction can fire from a GC pass
        # triggered by an allocation while this thread already holds it.
        self._evict_lock = threading.RLock()
        self.plan_hits = 0
        self.plan_misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _tree_key(self, tree: CsfTensor) -> int:
        """The tree's token, registering the eviction finalizer once per
        (context, tree) pair."""
        token = _tree_token(tree)
        with self._evict_lock:
            if token not in self._finalized_tokens:
                self._finalized_tokens.add(token)
                weakref.finalize(tree, _evict_context_tree, weakref.ref(self), token)
        return token

    def _evict_tree(self, token: int) -> None:
        """Drop every cache entry belonging to a collected tree."""
        with self._evict_lock:
            for cache in (self._traversals, self._plans, self._workspaces,
                          self._buffers, self._packed):
                for key in [k for k in cache if k[0] == token]:
                    del cache[key]
            self._finalized_tokens.discard(token)
            self.evictions += 1

    def _shared_traversals(
        self, tree: CsfTensor, ntasks: int
    ) -> tuple[np.ndarray, list[TaskTraversal]]:
        key = (self._tree_key(tree), ntasks)
        entry = self._traversals.get(key)
        if entry is None:
            bounds = nnz_balanced_blocks(tree, ntasks)
            travs = [
                TaskTraversal(tree, int(bounds[t]), int(bounds[t + 1]))
                for t in range(ntasks)
            ]
            entry = (bounds, travs)
            self._traversals[key] = entry
        return entry

    def plan(
        self, tree: CsfTensor, level: int, ntasks: int, pool_size: int | None = None
    ) -> tuple[ScatterPlan, bool]:
        """The cached :class:`ScatterPlan` for the key, plus a hit flag."""
        key = (self._tree_key(tree), level, ntasks, pool_size)
        cached = self._plans.get(key)
        if cached is not None:
            self.plan_hits += 1
            _obs.count("mttkrp.plan_hits")
            return cached, True
        self.plan_misses += 1
        _obs.count("mttkrp.plan_misses")
        with _obs.span(
            "mttkrp.plan_build", level=level, ntasks=ntasks, pool_size=pool_size
        ):
            bounds, travs = self._shared_traversals(tree, ntasks)
            plan = ScatterPlan(
                tree, level, ntasks, pool_size, bounds=bounds, traversals=travs
            )
        self._plans[key] = plan
        return plan, False

    def workspaces(
        self, tree: CsfTensor, ntasks: int, backend: str = "numpy"
    ) -> list[Workspace]:
        """One :class:`Workspace` per task, shared by all levels of a tree.

        Keyed by ``backend`` name as well: compiled and NumPy kernels shape
        their scratch differently, so sharing one arena across backends
        would thrash its buffers when comparing backends on one tree.
        """
        key = (self._tree_key(tree), ntasks, backend)
        ws = self._workspaces.get(key)
        if ws is None:
            ws = [Workspace() for _ in range(ntasks)]
            self._workspaces[key] = ws
        return ws

    def packed_tree(self, tree: CsfTensor):
        """The tree's cached :class:`~repro.backend.packing.PackedTree`
        (flat compiled-kernel layout), built once per tree generation."""
        from repro.backend.packing import PackedTree

        key = (self._tree_key(tree),)
        pk = self._packed.get(key)
        if pk is None:
            pk = PackedTree(tree)
            self._packed[key] = pk
        return pk

    def pack_workspace(self, tree: CsfTensor, backend: str) -> Workspace:
        """The arena holding a backend's packed factor matrix for ``tree``
        (rebuilt into the same buffer every MTTKRP call)."""
        return self.workspaces(tree, 1, "pack:" + backend)[0]

    def mutex_pool(self, kind: str, size: int, env):
        """A cached mutex pool for amortized calls that didn't pass one.

        Building a pool is ``size`` lock allocations per call — another
        iteration-invariant setup cost.  Callers that pass their own pool
        (``cp_als`` shares one across the whole run) never reach this.
        """
        key = (kind, size, id(env))
        the_pool = self._mutex_pools.get(key)
        if the_pool is None:
            from repro.runtime.locks import make_mutex_pool

            the_pool = make_mutex_pool(kind, size=size, env=env)
            self._mutex_pools[key] = the_pool
        return the_pool

    def buffers(
        self, tree: CsfTensor, level: int, ntasks: int, shape: tuple[int, ...]
    ) -> list[np.ndarray]:
        """Reusable privatization buffers for one plan key.

        Zeroed on first allocation only: the plan's ``scatter_assign``
        overwrites exactly the rows it owns, so the invariant "rows outside
        ``out_rows`` are zero" holds across calls.
        """
        key = (self._tree_key(tree), level, ntasks, tuple(shape))
        bufs = self._buffers.get(key)
        if bufs is None:
            bufs = [np.zeros(shape, dtype=VALUE_DTYPE) for _ in range(ntasks)]  # reprolint: allow(hot-loop-alloc) — first-miss privatization buffers, cached in self._buffers for the tensor's lifetime
            self._buffers[key] = bufs
        return bufs

    # ------------------------------------------------------------------
    def cache_entries(self) -> dict[str, int]:
        """Entry counts per internal cache (size accounting for tests and
        capacity planning; byte totals live in :meth:`stats`)."""
        return {
            "plans": len(self._plans),
            "traversals": len(self._traversals),
            "workspaces": len(self._workspaces),
            "buffers": len(self._buffers),
            "packed": len(self._packed),
            "mutex_pools": len(self._mutex_pools),
        }

    def clear_plan_cache(self) -> None:
        """Drop every cached plan, traversal, workspace, privatization
        buffer and mutex pool.

        Dead trees evict their own entries automatically (token keys +
        ``weakref.finalize``); this clears everything at once for processes
        that want to release plan memory for *live* trees too.  Hit/miss
        counters are preserved — they describe the run, not the cache
        contents.  The next :meth:`plan` call rebuilds from scratch (a
        miss) and yields identical results.
        """
        with self._evict_lock:
            self._traversals.clear()
            self._plans.clear()
            self._buffers.clear()
            self._workspaces.clear()
            self._packed.clear()
            self._mutex_pools.clear()
            self._finalized_tokens.clear()

    def stats(self) -> dict[str, int]:
        """Cache accounting: plans held, hits, misses, bytes cached."""
        plan_bytes = sum(p.memory_bytes() for p in self._plans.values())
        ws_bytes = sum(w.nbytes() for group in self._workspaces.values() for w in group)
        buf_bytes = sum(b.nbytes for group in self._buffers.values() for b in group)
        packed_bytes = sum(p.nbytes() for p in self._packed.values())
        return {
            "plans": len(self._plans),
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_bytes": plan_bytes,
            "workspace_bytes": ws_bytes,
            "buffer_bytes": buf_bytes,
            "packed_bytes": packed_bytes,
            "evictions": self.evictions,
        }
