"""Dense reference MTTKRP — the oracle every optimized kernel is tested against.

Computes ``M = X_(n) · (A^(m_k) ⊙ … ⊙ A^(m_1))`` literally: densify the
matricized tensor, form the Khatri-Rao product, multiply.  Exponential in
memory, suitable only for small test tensors — which is the point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import check_axis
from repro.linalg.khatri_rao import khatri_rao
from repro.tensor.coo import SparseTensor

__all__ = ["dense_mttkrp_reference"]


def dense_mttkrp_reference(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """Reference MTTKRP for output ``mode``.

    ``factors`` must contain all ``N`` factor matrices (the one at ``mode``
    is ignored, as in Algorithm 1).  Non-target factors enter the
    Khatri-Rao in *descending* mode order to match
    :meth:`SparseTensor.matricize`'s lowest-mode-fastest column layout.
    """
    mode = check_axis(mode, tensor.nmodes)
    if len(factors) != tensor.nmodes:
        raise ValueError(f"need {tensor.nmodes} factors, got {len(factors)}")
    for m, f in enumerate(factors):
        if f.shape[0] != tensor.dims[m]:
            raise ValueError(
                f"factor {m} has {f.shape[0]} rows but mode length is {tensor.dims[m]}"
            )
    unfolded = tensor.matricize(mode)
    others = [factors[m] for m in range(tensor.nmodes) if m != mode]
    companion = khatri_rao(list(reversed(others))) if others else np.ones((1, factors[0].shape[1]))
    return unfolded @ companion
