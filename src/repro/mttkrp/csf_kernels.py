"""Vectorized CSF MTTKRP kernels (SPLATT's root / internal / leaf algorithms).

These are the compiled-speed implementations standing in for SPLATT's C
(DESIGN.md §2): every per-node loop is replaced by NumPy segment primitives
(``np.add.reduceat`` going up the tree, ``np.repeat`` going down), so the
interpreted overhead per nonzero is gone — exactly the role the C baseline
plays in the paper's comparison.

All kernels operate on a contiguous range ``[lo, hi)`` of root slices so
they can serve as the per-task body of the parallel drivers at the bottom of
this module:

* root mode — tasks own disjoint output rows; no synchronization.
* internal/leaf modes — output rows are shared; the driver either
  *privatizes* (per-task buffer + reduction) or takes rows through the
  *mutex pool*, per :func:`repro.mttkrp.locks_policy.needs_locks`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE
from repro.csf.tree import CsfTensor
from repro.mttkrp.partition import nnz_balanced_blocks
from repro.runtime.locks import MutexPool
from repro.runtime.reductions import array_reduce_buffers
from repro.runtime.tasking import TaskingLayer

__all__ = [
    "root_range_vectorized",
    "internal_range_vectorized",
    "leaf_range_vectorized",
    "run_root_parallel",
    "run_scatter_privatized",
    "run_scatter_mutex",
]


def _level_ranges(csf: CsfTensor, lo: int, hi: int) -> list[tuple[int, int]]:
    """Node ranges per level covered by root slices ``[lo, hi)``."""
    ranges = [(lo, hi)]
    for level in range(csf.nmodes - 1):
        lo, hi = int(csf.fptr[level][lo]), int(csf.fptr[level][hi])
        ranges.append((lo, hi))
    return ranges


def _upward_product(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    ranges: list[tuple[int, int]],
    stop_level: int,
) -> np.ndarray:
    """Bottom-up subtree accumulation down to (and excluding) ``stop_level``.

    Returns ``W`` with one row per node of ``stop_level + 1`` already
    multiplied by that level's factor rows, then segment-reduced so the
    caller gets one row per node of ``stop_level`` *without* the
    ``stop_level`` factor applied.
    """
    nmodes = csf.nmodes
    leaf_lo, leaf_hi = ranges[nmodes - 1]
    leaf_mode = csf.dim_perm[nmodes - 1]
    w = csf.values[leaf_lo:leaf_hi, None] * factors[leaf_mode][csf.fids[nmodes - 1][leaf_lo:leaf_hi]]
    for level in range(nmodes - 2, stop_level, -1):
        nlo, nhi = ranges[level]
        clo = ranges[level + 1][0]
        starts = csf.fptr[level][nlo:nhi] - clo
        w = np.add.reduceat(w, starts, axis=0)
        mode = csf.dim_perm[level]
        w *= factors[mode][csf.fids[level][nlo:nhi]]
    # final reduction onto stop_level nodes (factor NOT applied)
    nlo, nhi = ranges[stop_level]
    clo = ranges[stop_level + 1][0]
    starts = csf.fptr[stop_level][nlo:nhi] - clo
    return np.add.reduceat(w, starts, axis=0)


def _downward_product(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    ranges: list[tuple[int, int]],
    stop_level: int,
) -> np.ndarray:
    """Top-down root-to-node row products, expanded to ``stop_level`` nodes.

    The returned matrix has one row per node of ``stop_level`` and excludes
    the ``stop_level`` factor itself.
    """
    lo, hi = ranges[0]
    d = np.array(factors[csf.dim_perm[0]][csf.fids[0][lo:hi]], dtype=VALUE_DTYPE)
    for level in range(1, stop_level + 1):
        plo, phi = ranges[level - 1]
        spans = np.diff(csf.fptr[level - 1][plo : phi + 1])
        d = np.repeat(d, spans, axis=0)
        if level < stop_level:
            nlo, nhi = ranges[level]
            d = d * factors[csf.dim_perm[level]][csf.fids[level][nlo:nhi]]
    return d


def root_range_vectorized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Root-mode MTTKRP over slices ``[lo, hi)``, accumulated into ``out``.

    Output rows ``fids[0][lo:hi]`` are distinct, so concurrent calls on
    disjoint slice ranges are race-free.
    """
    if hi <= lo:
        return
    ranges = _level_ranges(csf, lo, hi)
    if csf.nmodes == 1:
        np.add.at(out, csf.fids[0][lo:hi], csf.values[lo:hi, None])
        return
    w = _upward_product(csf, factors, ranges, stop_level=0)
    out[csf.fids[0][lo:hi]] += w


def leaf_range_vectorized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Leaf-mode MTTKRP contributions from slices ``[lo, hi)``.

    Returns ``(rows, contribs)`` — the caller owns the scatter-add, because
    leaf rows repeat across tasks and synchronization policy lives a level
    up (privatize vs mutex).
    """
    nmodes = csf.nmodes
    if nmodes < 2:
        raise ValueError("leaf algorithm requires order >= 2")
    if hi <= lo:
        rank = factors[0].shape[1]
        return np.empty(0, dtype=np.int64), np.empty((0, rank), dtype=VALUE_DTYPE)
    ranges = _level_ranges(csf, lo, hi)
    d = _downward_product(csf, factors, ranges, stop_level=nmodes - 1)
    leaf_lo, leaf_hi = ranges[nmodes - 1]
    rows = csf.fids[nmodes - 1][leaf_lo:leaf_hi]
    contribs = csf.values[leaf_lo:leaf_hi, None] * d
    return rows, contribs


def internal_range_vectorized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    level: int,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Internal-mode MTTKRP contributions for tree ``level`` (0<level<N-1).

    Combines the downward product (modes above ``level``) with the upward
    product (modes below) at each ``level`` node.  Returns
    ``(rows, contribs)`` like :func:`leaf_range_vectorized`.
    """
    nmodes = csf.nmodes
    if not 0 < level < nmodes - 1:
        raise ValueError(f"internal level must be in (0, {nmodes - 1}), got {level}")
    if hi <= lo:
        rank = factors[0].shape[1]
        return np.empty(0, dtype=np.int64), np.empty((0, rank), dtype=VALUE_DTYPE)
    ranges = _level_ranges(csf, lo, hi)
    d = _downward_product(csf, factors, ranges, stop_level=level)
    u = _upward_product(csf, factors, ranges, stop_level=level)
    nlo, nhi = ranges[level]
    rows = csf.fids[level][nlo:nhi]
    return rows, d * u


# ----------------------------------------------------------------------
# parallel drivers
# ----------------------------------------------------------------------
def run_root_parallel(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    layer: TaskingLayer,
) -> None:
    """Parallel root-mode MTTKRP: nnz-balanced slice blocks, no locks."""
    ntasks = layer.env.num_tasks
    bounds = nnz_balanced_blocks(csf, ntasks)

    def task(tid: int) -> None:
        root_range_vectorized(csf, factors, out, int(bounds[tid]), int(bounds[tid + 1]))

    layer.coforall(ntasks, task)


def run_scatter_privatized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    layer: TaskingLayer,
    compute_range,
) -> None:
    """Privatized parallel scatter: per-task buffers + reduction.

    ``compute_range(lo, hi) -> (rows, contribs)`` is one of the
    internal/leaf range kernels.  Each task scatter-adds into its own
    ``out``-shaped buffer; buffers are combined by a row-blocked parallel
    reduction (the reduction is ``O(ntasks · I · R)`` work and memory —
    the cost SPLATT's privatization heuristic is guarding).
    """
    ntasks = layer.env.num_tasks
    bounds = nnz_balanced_blocks(csf, ntasks)
    if ntasks == 1:
        rows, contribs = compute_range(int(bounds[0]), int(bounds[1]))
        np.add.at(out, rows, contribs)
        return
    buffers = [np.zeros_like(out) for _ in range(ntasks)]

    def task(tid: int) -> None:
        rows, contribs = compute_range(int(bounds[tid]), int(bounds[tid + 1]))
        np.add.at(buffers[tid], rows, contribs)

    layer.coforall(ntasks, task)
    array_reduce_buffers(layer, out, buffers)


def run_scatter_mutex(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    layer: TaskingLayer,
    pool: MutexPool,
    compute_range,
) -> None:
    """Mutex-pool parallel scatter: shared output, hashed row locks.

    Each task groups its ``(rows, contribs)`` by lock bucket and performs
    each bucket's scatter-add while holding that bucket's lock — the
    vectorized rendition of SPLATT's lock-per-row update, preserving real
    lock traffic and contention.
    """
    ntasks = layer.env.num_tasks
    bounds = nnz_balanced_blocks(csf, ntasks)

    def task(tid: int) -> None:
        rows, contribs = compute_range(int(bounds[tid]), int(bounds[tid + 1]))
        if rows.size == 0:
            return
        buckets = rows % pool.size
        order = np.argsort(buckets, kind="stable")
        rows_sorted = rows[order]
        contribs_sorted = contribs[order]
        buckets_sorted = buckets[order]
        starts = np.flatnonzero(np.diff(buckets_sorted)) + 1
        starts = np.concatenate(([0], starts, [rows_sorted.size]))
        for b in range(starts.size - 1):
            s, e = int(starts[b]), int(starts[b + 1])
            lid = int(buckets_sorted[s])
            pool.acquire(lid)
            try:
                np.add.at(out, rows_sorted[s:e], contribs_sorted[s:e])
            finally:
                pool.release(lid)

    layer.coforall(ntasks, task)
