"""Vectorized CSF MTTKRP kernels (SPLATT's root / internal / leaf algorithms).

These are the compiled-speed implementations standing in for SPLATT's C
(DESIGN.md §2): every per-node loop is replaced by NumPy segment primitives
(``np.add.reduceat`` going up the tree, ``np.repeat`` going down), so the
interpreted overhead per nonzero is gone — exactly the role the C baseline
plays in the paper's comparison.

All kernels operate on a contiguous range ``[lo, hi)`` of root slices so
they can serve as the per-task body of the parallel drivers at the bottom of
this module:

* root mode — tasks own disjoint output rows; no synchronization.
* internal/leaf modes — output rows are shared; the driver either
  *privatizes* (per-task buffer + reduction) or takes rows through the
  *mutex pool*, per :func:`repro.mttkrp.locks_policy.needs_locks`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE
from repro.csf.tree import CsfTensor
from repro.mttkrp.partition import nnz_balanced_blocks
from repro.mttkrp.scatter import ScatterPlan, TaskTraversal, Workspace
from repro.sanitize import detector as _san
from repro.runtime.locks import MutexPool
from repro.runtime.reductions import array_reduce_buffers
from repro.runtime.tasking import TaskingLayer

__all__ = [
    "root_range_vectorized",
    "internal_range_vectorized",
    "leaf_range_vectorized",
    "leaf_range_sorted",
    "run_root_parallel",
    "run_scatter_privatized",
    "run_scatter_mutex",
]


def _level_ranges(csf: CsfTensor, lo: int, hi: int) -> list[tuple[int, int]]:
    """Node ranges per level covered by root slices ``[lo, hi)``."""
    ranges = [(lo, hi)]
    for level in range(csf.nmodes - 1):
        lo, hi = int(csf.fptr[level][lo]), int(csf.fptr[level][hi])
        ranges.append((lo, hi))
    return ranges


def _upward_product(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    ranges: list[tuple[int, int]],
    stop_level: int,
    *,
    trav: TaskTraversal | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Bottom-up subtree accumulation down to (and excluding) ``stop_level``.

    Returns ``W`` with one row per node of ``stop_level + 1`` already
    multiplied by that level's factor rows, then segment-reduced so the
    caller gets one row per node of ``stop_level`` *without* the
    ``stop_level`` factor applied.

    ``trav`` supplies the precomputed per-level segment structure and
    ``fids``/``values`` slices; ``ws`` supplies reusable output buffers so
    the steady state allocates nothing.  With both, segment reductions run
    through the traversal's cached :class:`~repro.mttkrp.scatter.SegmentSum`
    operators (compiled CSR matmul) instead of ``np.add.reduceat`` — same
    segment membership, sums accumulated sequentially rather than pairwise,
    so the paths agree to summation rounding (``allclose``).
    """
    nmodes = csf.nmodes
    if trav is None:
        leaf_lo, leaf_hi = ranges[nmodes - 1]
        leaf_fids = csf.fids[nmodes - 1][leaf_lo:leaf_hi]
        leaf_vals = csf.values[leaf_lo:leaf_hi]
    else:
        leaf_fids = trav.fids[nmodes - 1]
        leaf_vals = trav.values
    leaf_mode = csf.dim_perm[nmodes - 1]
    if ws is None:
        w = leaf_vals[:, None] * factors[leaf_mode][leaf_fids]
    else:
        w = ws.take(factors[leaf_mode], leaf_fids, ("up_take", nmodes - 1))
        w *= leaf_vals[:, None]
    for level in range(nmodes - 2, stop_level, -1):
        nlo, nhi = ranges[level]
        if trav is None:
            clo = ranges[level + 1][0]
            starts = csf.fptr[level][nlo:nhi] - clo
            fids = csf.fids[level][nlo:nhi]
        else:
            starts = trav.up_starts[level]
            fids = trav.fids[level]
        mode = csf.dim_perm[level]
        if ws is None:
            w = np.add.reduceat(w, starts, axis=0)
            w *= factors[mode][fids]
        elif trav is not None:
            w = trav.up_segsum[level].apply(w, ws, ("up", level))
            w *= ws.take(factors[mode], fids, ("up_take", level))
        else:
            reduced = ws.buf(("up", level), (nhi - nlo,) + w.shape[1:], w.dtype)
            np.add.reduceat(w, starts, axis=0, out=reduced)
            w = reduced
            w *= ws.take(factors[mode], fids, ("up_take", level))
    # final reduction onto stop_level nodes (factor NOT applied)
    nlo, nhi = ranges[stop_level]
    if trav is None:
        clo = ranges[stop_level + 1][0]
        starts = csf.fptr[stop_level][nlo:nhi] - clo
    else:
        starts = trav.up_starts[stop_level]
    if ws is None:
        return np.add.reduceat(w, starts, axis=0)
    if trav is not None:
        return trav.up_segsum[stop_level].apply(w, ws, ("up", stop_level))
    reduced = ws.buf(("up", stop_level), (nhi - nlo,) + w.shape[1:], w.dtype)
    np.add.reduceat(w, starts, axis=0, out=reduced)
    return reduced


def _downward_product(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    ranges: list[tuple[int, int]],
    stop_level: int,
    *,
    trav: TaskTraversal | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Top-down root-to-node row products, expanded to ``stop_level`` nodes.

    The returned matrix has one row per node of ``stop_level`` and excludes
    the ``stop_level`` factor itself.  With ``trav``, the per-call
    ``np.repeat`` span math is replaced by the traversal's cached expansion
    indices; with ``ws``, every intermediate lands in a reused buffer.
    """
    lo, hi = ranges[0]
    root_fids = csf.fids[0][lo:hi] if trav is None else trav.fids[0]
    if ws is None:
        d = factors[csf.dim_perm[0]][root_fids].astype(VALUE_DTYPE, copy=False)
    else:
        d = ws.take(factors[csf.dim_perm[0]], root_fids, ("down_take", 0))
    for level in range(1, stop_level + 1):
        if trav is None:
            plo, phi = ranges[level - 1]
            spans = np.diff(csf.fptr[level - 1][plo : phi + 1])
            d = np.repeat(d, spans, axis=0)
        elif ws is None:
            d = d[trav.down_expand[level]]
        else:
            d = ws.take(d, trav.down_expand[level], ("down", level))
        if level < stop_level:
            nlo, nhi = ranges[level]
            fids = csf.fids[level][nlo:nhi] if trav is None else trav.fids[level]
            if ws is None:
                d = d * factors[csf.dim_perm[level]][fids]
            else:
                d *= ws.take(factors[csf.dim_perm[level]], fids, ("down_take", level))
    return d


def root_range_vectorized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    lo: int,
    hi: int,
    *,
    trav: TaskTraversal | None = None,
    ws: Workspace | None = None,
    bctx=None,
) -> None:
    """Root-mode MTTKRP over slices ``[lo, hi)``, accumulated into ``out``.

    Output rows ``fids[0][lo:hi]`` are distinct, so concurrent calls on
    disjoint slice ranges are race-free.  ``trav``/``ws`` enable the
    amortized path (cached traversal indices, reused buffers).  ``bctx``
    (a :class:`~repro.backend.registry.BackendCall`) routes the subtree
    products through a compiled, GIL-releasing kernel instead of the
    NumPy tree walk; scatter and sanitizer behaviour are unchanged.
    """
    if hi <= lo:
        return
    if bctx is not None and csf.nmodes >= 2:
        w = bctx.root_w(lo, hi, ws)
        rows = csf.fids[0][lo:hi] if trav is None else trav.fids[0]
        out[rows] += w
        san = _san._active
        if san is not None:
            san.on_access(out, rows, write=True, site="root_range_vectorized")
        return
    ranges = _level_ranges(csf, lo, hi) if trav is None else trav.ranges
    if csf.nmodes == 1:
        # Order-1 tree: the root is also the leaf, so the "subtree product"
        # is just the nonzero values broadcast across the rank.  Root fids
        # are distinct, so a direct indexed add replaces the old
        # element-at-a-time np.add.at; the rank-wide broadcast temporary
        # comes from the plan-owned workspace like the other kernels.
        rows = csf.fids[0][lo:hi] if trav is None else trav.fids[0]
        vals = csf.values[lo:hi] if trav is None else trav.values
        if ws is None:
            contribs = np.broadcast_to(
                vals[:, None], (vals.shape[0], out.shape[1])
            )
        else:
            contribs = ws.buf(("root_bcast",), (vals.shape[0], out.shape[1]),
                              out.dtype)
            contribs[:] = vals[:, None]
        out[rows] += contribs
        san = _san._active
        if san is not None:
            san.on_access(out, rows, write=True, site="root_range_vectorized")
        return
    w = _upward_product(csf, factors, ranges, stop_level=0, trav=trav, ws=ws)
    rows = csf.fids[0][lo:hi] if trav is None else trav.fids[0]
    out[rows] += w
    san = _san._active
    if san is not None:
        # Root tasks own disjoint slice ranges, hence disjoint rows — the
        # sanitizer verifies that claim rather than assuming it.
        san.on_access(out, rows, write=True, site="root_range_vectorized")


def leaf_range_vectorized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    lo: int,
    hi: int,
    *,
    trav: TaskTraversal | None = None,
    ws: Workspace | None = None,
    bctx=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Leaf-mode MTTKRP contributions from slices ``[lo, hi)``.

    Returns ``(rows, contribs)`` — the caller owns the scatter-add, because
    leaf rows repeat across tasks and synchronization policy lives a level
    up (privatize vs mutex).  With ``ws``, ``contribs`` is a reused
    workspace buffer valid until the task's next kernel call.  ``bctx``
    computes the same contributions with a compiled single-pass kernel.
    """
    nmodes = csf.nmodes
    if nmodes < 2:
        raise ValueError("leaf algorithm requires order >= 2")
    if hi <= lo:
        rank = factors[0].shape[1]
        return np.empty(0, dtype=np.int64), np.empty((0, rank), dtype=VALUE_DTYPE)
    ranges = _level_ranges(csf, lo, hi) if trav is None else trav.ranges
    if bctx is not None:
        leaf_lo, leaf_hi = ranges[nmodes - 1]
        rows = csf.fids[nmodes - 1][leaf_lo:leaf_hi] if trav is None else trav.fids[nmodes - 1]
        contribs = bctx.leaf_contribs(lo, hi, leaf_hi - leaf_lo, ws)
        return rows, contribs
    d = _downward_product(csf, factors, ranges, stop_level=nmodes - 1, trav=trav, ws=ws)
    if trav is None:
        leaf_lo, leaf_hi = ranges[nmodes - 1]
        rows = csf.fids[nmodes - 1][leaf_lo:leaf_hi]
        vals = csf.values[leaf_lo:leaf_hi]
    else:
        rows = trav.fids[nmodes - 1]
        vals = trav.values
    if ws is None:
        contribs = vals[:, None] * d
    else:
        d *= vals[:, None]
        contribs = d
    return rows, contribs


def leaf_range_sorted(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    plan: ScatterPlan,
    tid: int,
    ws: Workspace,
) -> np.ndarray:
    """Leaf-mode contributions emitted directly in scatter-sorted order.

    Uses the plan's ``leaf_expand_sorted`` indices (the final downward
    expansion composed with the scatter sort permutation) and pre-permuted
    values, so the caller's :class:`~repro.mttkrp.scatter.RowScatter` can
    reduce with ``presorted=True`` — no per-call ``O(nnz)`` sort gather.
    Elementwise products are identical to :func:`leaf_range_vectorized`
    followed by the sort gather, so results match that path exactly.
    """
    trav = plan.traversals[tid]
    nmodes = csf.nmodes
    if trav.hi <= trav.lo:
        rank = factors[0].shape[1]
        return np.empty((0, rank), dtype=VALUE_DTYPE)
    d = _downward_product(
        csf, factors, trav.ranges, stop_level=nmodes - 2, trav=trav, ws=ws
    )
    if nmodes > 2:
        level = nmodes - 2
        d *= ws.take(factors[csf.dim_perm[level]], trav.fids[level], ("down_take", level))
    contribs = ws.take(d, plan.leaf_expand_sorted[tid], ("leaf_sorted",))
    contribs *= plan.leaf_values_sorted[tid][:, None]
    return contribs


def internal_range_vectorized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    level: int,
    lo: int,
    hi: int,
    *,
    trav: TaskTraversal | None = None,
    ws: Workspace | None = None,
    bctx=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Internal-mode MTTKRP contributions for tree ``level`` (0<level<N-1).

    Combines the downward product (modes above ``level``) with the upward
    product (modes below) at each ``level`` node.  Returns
    ``(rows, contribs)`` like :func:`leaf_range_vectorized`.  ``bctx``
    computes the same contributions with a compiled single-pass kernel.
    """
    nmodes = csf.nmodes
    if not 0 < level < nmodes - 1:
        raise ValueError(f"internal level must be in (0, {nmodes - 1}), got {level}")
    if hi <= lo:
        rank = factors[0].shape[1]
        return np.empty(0, dtype=np.int64), np.empty((0, rank), dtype=VALUE_DTYPE)
    ranges = _level_ranges(csf, lo, hi) if trav is None else trav.ranges
    if bctx is not None:
        nlo, nhi = ranges[level]
        rows = csf.fids[level][nlo:nhi] if trav is None else trav.fids[level]
        contribs = bctx.internal_contribs(level, lo, hi, nhi - nlo, ws)
        return rows, contribs
    d = _downward_product(csf, factors, ranges, stop_level=level, trav=trav, ws=ws)
    u = _upward_product(csf, factors, ranges, stop_level=level, trav=trav, ws=ws)
    nlo, nhi = ranges[level]
    rows = csf.fids[level][nlo:nhi] if trav is None else trav.fids[level]
    if ws is None:
        return rows, d * u
    np.multiply(d, u, out=d)
    return rows, d


# ----------------------------------------------------------------------
# parallel drivers
# ----------------------------------------------------------------------
def _task_context(
    plan: ScatterPlan | None,
    workspaces: Sequence[Workspace] | None,
    tid: int,
) -> tuple[TaskTraversal | None, Workspace | None]:
    trav = plan.traversals[tid] if plan is not None else None
    ws = workspaces[tid] if workspaces is not None else None
    return trav, ws


def run_root_parallel(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    layer: TaskingLayer,
    *,
    plan: ScatterPlan | None = None,
    workspaces: Sequence[Workspace] | None = None,
    bctx=None,
) -> None:
    """Parallel root-mode MTTKRP: nnz-balanced slice blocks, no locks.

    With a :class:`~repro.mttkrp.scatter.ScatterPlan` the per-call
    partitioning and traversal setup come from the cache.  With ``bctx``,
    each task's subtree products run in a compiled GIL-releasing kernel.
    """
    ntasks = layer.env.num_tasks
    bounds = plan.bounds if plan is not None else nnz_balanced_blocks(csf, ntasks)

    def task(tid: int) -> None:
        trav, ws = _task_context(plan, workspaces, tid)
        root_range_vectorized(
            csf, factors, out, int(bounds[tid]), int(bounds[tid + 1]),
            trav=trav, ws=ws, bctx=bctx,
        )

    layer.coforall(ntasks, task)


def run_scatter_privatized(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    layer: TaskingLayer,
    compute_range,
    *,
    plan: ScatterPlan | None = None,
    buffers: Sequence[np.ndarray] | None = None,
    workspaces: Sequence[Workspace] | None = None,
    presorted: bool = False,
    backend=None,
) -> None:
    """Privatized parallel scatter: per-task buffers + reduction.

    ``compute_range(lo, hi, tid) -> (rows, contribs)`` is one of the
    internal/leaf range kernels.  Each task scatter-adds into its own
    ``out``-shaped buffer; buffers are combined by a row-blocked parallel
    reduction (the reduction is ``O(ntasks · I · R)`` work and memory —
    the cost SPLATT's privatization heuristic is guarding).

    With a plan, each task's scatter runs through its cached
    :class:`~repro.mttkrp.scatter.RowScatter` (segment sums instead of
    ``np.add.at``), and ``buffers`` — reusable, owned by the plan's cache —
    are *assigned* rather than accumulated: rows a task never touches stay
    zero across calls, so the buffers are never re-zeroed.
    """
    ntasks = layer.env.num_tasks
    bounds = plan.bounds if plan is not None else nnz_balanced_blocks(csf, ntasks)
    if ntasks == 1:
        rows, contribs = compute_range(int(bounds[0]), int(bounds[1]), 0)
        if plan is not None:
            ws = workspaces[0] if workspaces is not None else None
            plan.scatters[0].scatter_accumulate(
                out, contribs, ws, presorted=presorted, backend=backend
            )
        else:
            np.add.at(out, rows, contribs)
        return
    if plan is None or buffers is None:
        buffers = [np.zeros_like(out) for _ in range(ntasks)]

        def task(tid: int) -> None:
            rows, contribs = compute_range(int(bounds[tid]), int(bounds[tid + 1]), tid)
            if plan is not None:
                ws = workspaces[tid] if workspaces is not None else None
                plan.scatters[tid].scatter_accumulate(
                    buffers[tid], contribs, ws, presorted=presorted, backend=backend
                )
            else:
                np.add.at(buffers[tid], rows, contribs)
                san = _san._active
                if san is not None:
                    san.on_access(
                        buffers[tid], rows, write=True, site="run_scatter_privatized"
                    )

    else:

        def task(tid: int) -> None:
            _, contribs = compute_range(int(bounds[tid]), int(bounds[tid + 1]), tid)
            ws = workspaces[tid] if workspaces is not None else None
            plan.scatters[tid].scatter_assign(
                buffers[tid], contribs, ws, presorted=presorted, backend=backend
            )

    layer.coforall(ntasks, task)
    array_reduce_buffers(layer, out, buffers)


def run_scatter_mutex(
    csf: CsfTensor,
    factors: Sequence[np.ndarray],
    out: np.ndarray,
    layer: TaskingLayer,
    pool: MutexPool,
    compute_range,
    *,
    plan: ScatterPlan | None = None,
    workspaces: Sequence[Workspace] | None = None,
    presorted: bool = False,
    backend=None,
) -> None:
    """Mutex-pool parallel scatter: shared output, hashed row locks.

    Each task groups its ``(rows, contribs)`` by lock bucket and performs
    each bucket's scatter-add while holding that bucket's lock — the
    vectorized rendition of SPLATT's lock-per-row update, preserving real
    lock traffic and contention.  With a plan (built with this pool's
    size), the bucket grouping and per-row pre-reduction are cached, so the
    steady state sorts nothing — lock traffic is unchanged: one acquire per
    task-bucket pair, same hashed lock ids.
    """
    ntasks = layer.env.num_tasks
    bounds = plan.bounds if plan is not None else nnz_balanced_blocks(csf, ntasks)

    def task(tid: int) -> None:  # reprolint: allow(hot-loop-alloc, raw-scatter) — plan-less mutex fallback kept verbatim so plan/no-plan equivalence tests compare identical lock traffic
        rows, contribs = compute_range(int(bounds[tid]), int(bounds[tid + 1]), tid)
        if plan is not None:
            ws = workspaces[tid] if workspaces is not None else None
            plan.scatters[tid].scatter_mutex(
                out, contribs, pool, ws, presorted=presorted, backend=backend
            )
            return
        if rows.size == 0:
            return
        buckets = rows % pool.size
        order = np.argsort(buckets, kind="stable")
        rows_sorted = rows[order]
        contribs_sorted = contribs[order]
        buckets_sorted = buckets[order]
        starts = np.flatnonzero(np.diff(buckets_sorted)) + 1
        starts = np.concatenate(([0], starts, [rows_sorted.size]))
        for b in range(starts.size - 1):
            s, e = int(starts[b]), int(starts[b + 1])
            lid = int(buckets_sorted[s])
            pool.acquire(lid)
            try:
                np.add.at(out, rows_sorted[s:e], contribs_sorted[s:e])
                san = _san._active
                if san is not None:
                    # Inside the critical section: the access carries the
                    # bucket lock in its lockset.
                    san.on_access(
                        out, rows_sorted[s:e], write=True, site="run_scatter_mutex"
                    )
            finally:
                pool.release(lid)

    layer.coforall(ntasks, task)
