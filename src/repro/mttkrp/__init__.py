"""MTTKRP — matricized tensor times Khatri-Rao product.

The critical kernel of CP-ALS (lines 5/8/11 of Algorithm 1) and the routine
the paper spends Figs 2-4 and 9-10 optimizing.  Three independent axes are
modeled, matching the paper:

1. **Algorithm** (:mod:`repro.mttkrp.csf_kernels`): SPLATT's root /
   internal / leaf CSF algorithms, selected per output mode by the CSF
   allocation (:class:`repro.csf.CsfSet`).
2. **Row-access variant** (:mod:`repro.mttkrp.variants`): the paper's
   optimization ladder — ``slicing`` (naive port), ``index2d``,
   ``pointer`` — plus ``vectorized``, the compiled-speed baseline standing
   in for SPLATT's C.
3. **Synchronization** (:mod:`repro.mttkrp.locks_policy`): non-root modes
   update shared rows; SPLATT either privatizes (thread-local buffers +
   reduction) or locks rows via the mutex pool, decided per
   (tensor, mode, task count) — the YELP-vs-NELL-2 dichotomy.
"""

from repro.mttkrp.locks_policy import needs_locks
from repro.mttkrp.partition import nnz_balanced_blocks
from repro.mttkrp.reference import dense_mttkrp_reference
from repro.mttkrp.scatter import (
    MttkrpContext,
    RowScatter,
    ScatterPlan,
    Workspace,
    sorted_scatter_add,
)
from repro.mttkrp.variants import ACCESS_VARIANTS, mttkrp, mttkrp_csf

__all__ = [
    "mttkrp",
    "mttkrp_csf",
    "ACCESS_VARIANTS",
    "dense_mttkrp_reference",
    "needs_locks",
    "nnz_balanced_blocks",
    "sorted_scatter_add",
    "RowScatter",
    "ScatterPlan",
    "Workspace",
    "MttkrpContext",
]
