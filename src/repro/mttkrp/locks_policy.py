"""Mutex-vs-privatization decision for non-root MTTKRP modes.

When the output mode is not the CSF root, different tasks update the same
factor rows.  SPLATT chooses between

* **privatization** — each task accumulates into a thread-local copy of the
  output matrix, reduced at the end.  Cheap synchronization, but memory and
  reduction cost scale with ``ntasks × I_n × R``.
* **mutex pool** — one shared output protected by hashed row locks.

following a memory-ratio heuristic: privatize only while the combined
private buffers stay small relative to the nonzero count.  The paper's §V-D
observes the resulting dichotomy: *"for all thread/task counts beyond two
for the YELP data set, the SPLATT algorithm will require the use of locks
during the MTTKRP, while the NELL-2 data set will perform 'no-lock'
versions ... for all thread/task counts"* — YELP has large mode dims
relative to its 8M nonzeros, NELL-2 small dims against 77M.
"""

from __future__ import annotations

__all__ = ["needs_locks", "PRIVATIZATION_RATIO"]

#: Privatize while ``ntasks * dim <= PRIVATIZATION_RATIO * nnz``.  The value
#: reproduces SPLATT's published behaviour on the Table I datasets, where
#: the decision applies to the non-root (internal/leaf) modes: YELP's
#: internal mode (dim 41k, 8M nnz) privatizes at ≤2 tasks and locks beyond
#: (4 × 41k > 0.018 × 8M but 2 × 41k is below); NELL-2's internal mode
#: (dim 12k, 77M nnz) privatizes at every task count ≤ 32.  Because the
#: synthetic datasets scale dims and nnz by the same factor, the decision is
#: scale-invariant.
PRIVATIZATION_RATIO = 0.018


def needs_locks(mode_dim: int, nnz: int, ntasks: int) -> bool:
    """True when the mutex-pool MTTKRP should be used for this mode.

    Parameters
    ----------
    mode_dim:
        Length ``I_n`` of the output mode.
    nnz:
        Tensor nonzero count.
    ntasks:
        Parallel task count.

    Notes
    -----
    Serial execution never needs locks.  Root-mode MTTKRP never calls this
    (tasks own disjoint output rows by construction).
    """
    if mode_dim < 1 or nnz < 0 or ntasks < 1:
        raise ValueError("mode_dim >= 1, nnz >= 0 and ntasks >= 1 required")
    if ntasks == 1:
        return False
    return ntasks * mode_dim > PRIVATIZATION_RATIO * nnz
