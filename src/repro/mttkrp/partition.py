"""Work partitioning for parallel MTTKRP (SPLATT's ``csf_partition_1d``).

Tasks are assigned contiguous ranges of root *slices*, balanced by the
number of nonzeros underneath each slice rather than by slice count —
essential for skewed tensors (a YELP hub slice can hold orders of magnitude
more nonzeros than the median).
"""

from __future__ import annotations

import numpy as np

from repro.csf.tree import CsfTensor

__all__ = ["nnz_balanced_blocks", "leaf_counts_per_slice"]


def leaf_counts_per_slice(csf: CsfTensor) -> np.ndarray:
    """Number of nonzeros under each root-level node."""
    return csf._leaf_spans(0) if csf.nmodes > 1 else np.ones(csf.nslices, dtype=np.int64)


def nnz_balanced_blocks(csf: CsfTensor, ntasks: int) -> np.ndarray:
    """Slice boundaries per task, balancing nonzeros.

    Returns an ``(ntasks + 1,)`` array ``b`` with task ``t`` owning root
    slices ``b[t]:b[t+1]``.  Boundaries are chosen by the chains-on-chains
    style prefix-sum split SPLATT uses: task ``t`` starts at the first
    slice whose cumulative nonzero count reaches ``t/ntasks`` of the total.
    Empty tasks (more tasks than slices) receive empty ranges.
    """
    if ntasks < 1:
        raise ValueError("ntasks must be >= 1")
    nslices = csf.nslices
    counts = leaf_counts_per_slice(csf)
    if nslices == 0:
        return np.zeros(ntasks + 1, dtype=np.int64)
    cum = np.concatenate(([0], np.cumsum(counts)))
    total = cum[-1]
    targets = (np.arange(ntasks + 1, dtype=np.float64) / ntasks) * total
    bounds = np.searchsorted(cum, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = nslices
    # Enforce monotonicity (searchsorted can step back across ties).
    np.maximum.accumulate(bounds, out=bounds)
    return bounds
