"""Deterministic fault injection: seeded or targeted simulated failures.

Long CP-ALS runs on failure-prone machines die in the middle of a tasking
dispatch or a fold/expand exchange, not at a convenient iteration boundary.
To *test* the retry/degradation/checkpoint machinery we need failures that
are (a) injected at the real dispatch sites and (b) perfectly reproducible.
A :class:`FaultPlan` provides both:

* **targeted** faults — ``targets=[("pool.dispatch", 3)]`` fails exactly
  the third arrival at the ``pool.dispatch`` site and nothing else;
* **probabilistic** faults — ``probability=0.05, seed=7`` fails each
  matching arrival with a seeded Bernoulli draw, so a given plan always
  fails the same arrivals in a serial execution order.

The instrumented sites (see docs/RESILIENCE.md for the full table):

==================  =====================================================
``tasking.coforall``  before every multi-task ``coforall`` dispatch
``pool.dispatch``     inside :meth:`WorkerPool.run`, before task submit
``pool.task``         at the start of every pooled task body
``schedule.chunk``    before each claimed chunk of a scheduled ``forall``
``comm.fold``         each metered fold (reduce-scatter) exchange
``comm.expand``       each metered expand (allgather) exchange
==================  =====================================================

A plan is installed for a ``with`` block via :class:`inject_faults`; the
instrumented call sites read the single module-global slot (``None`` when
injection is off, the same near-zero disabled path the tracing layer
uses).  A firing site raises :class:`InjectedFault`, which the resilience
policies in :mod:`repro.resilience.retry` know how to retry or degrade
around; every injection is counted on the active trace recorder as the
``fault.injected`` counter.
"""

from __future__ import annotations

import threading
from fnmatch import fnmatchcase
from typing import Iterable, Sequence

import numpy as np

from repro.observe import spans as _obs

__all__ = ["InjectedFault", "FaultPlan", "inject_faults", "active_plan"]


class InjectedFault(RuntimeError):
    """A simulated infrastructure failure raised by a firing fault site.

    Distinct from any real error type so that retry policies can tell
    "the (simulated) machine broke" apart from "the task body is buggy":
    only :class:`InjectedFault` is retried; user exceptions propagate.
    """

    def __init__(self, site: str, occurrence: int):
        super().__init__(f"injected fault at {site!r} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence
        #: Cleared by a handler when replaying the failed operation would
        #: lose or double-apply work (e.g. an already-claimed schedule
        #: chunk); the tasking layer's dispatch retry honors it.
        self.retry_safe = True


class FaultPlan:
    """A deterministic schedule of simulated failures.

    Parameters
    ----------
    targets:
        ``(site, occurrence)`` pairs; the plan fails exactly the
        ``occurrence``-th (1-based) arrival at ``site``.
    probability:
        Per-arrival failure probability for sites matching ``sites``
        (0 disables the probabilistic mode).
    sites:
        ``fnmatch`` pattern (or sequence of patterns) selecting which
        sites the probabilistic mode applies to.  Targeted faults ignore
        this filter.
    seed:
        Seed for the probabilistic draws — same plan, same execution
        order, same failures.
    max_failures:
        Optional cap on total injections (useful with ``probability`` to
        model a bounded burst of failures).

    Thread safety: arrival counting and the RNG draw happen under one
    lock, so concurrent pokes from pool workers see consistent occurrence
    numbers.  All counters survive the plan's ``with`` block for
    post-mortem assertions (``arrivals``, ``injected``,
    ``faults_injected``).
    """

    def __init__(
        self,
        *,
        targets: Iterable[tuple[str, int]] = (),
        probability: float = 0.0,
        sites: str | Sequence[str] = "*",
        seed: int | None = 0,
        max_failures: int | None = None,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.targets = frozenset((str(s), int(n)) for s, n in targets)
        for site, occurrence in self.targets:
            if occurrence < 1:
                raise ValueError(f"occurrence for {site!r} must be >= 1 (got {occurrence})")
        self.probability = probability
        self.site_patterns: tuple[str, ...] = (
            (sites,) if isinstance(sites, str) else tuple(sites)
        )
        self.max_failures = max_failures
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._arrivals: dict[str, int] = {}
        #: ``(site, occurrence)`` pairs that actually fired, in order.
        self.injected: list[tuple[str, int]] = []

    # ------------------------------------------------------------------
    def _matches(self, site: str) -> bool:
        return any(fnmatchcase(site, pat) for pat in self.site_patterns)

    def arrivals(self, site: str | None = None) -> int | dict[str, int]:
        """Arrival count for one site (or the full per-site dict)."""
        with self._lock:
            if site is None:
                return dict(self._arrivals)
            return self._arrivals.get(site, 0)

    @property
    def faults_injected(self) -> int:
        """Total failures fired so far."""
        with self._lock:
            return len(self.injected)

    def reset(self) -> None:
        """Clear arrival counts and injection history (not the RNG)."""
        with self._lock:
            self._arrivals.clear()
            self.injected.clear()

    # ------------------------------------------------------------------
    def poke(self, site: str) -> None:
        """Record an arrival at ``site``; raise :class:`InjectedFault` if
        the plan schedules a failure for it."""
        with self._lock:
            occurrence = self._arrivals.get(site, 0) + 1
            self._arrivals[site] = occurrence
            fire = (site, occurrence) in self.targets
            if not fire and self.probability > 0.0 and self._matches(site):
                fire = bool(self._rng.random() < self.probability)
            if fire and self.max_failures is not None and len(self.injected) >= self.max_failures:
                fire = False
            if fire:
                self.injected.append((site, occurrence))
        if fire:
            _obs.count("fault.injected")
            raise InjectedFault(site, occurrence)


#: The installed plan, or ``None`` when fault injection is off.  Hot call
#: sites read this directly (one global load on the disabled path).
_active_plan: FaultPlan | None = None
_install_lock = threading.Lock()


def active_plan() -> FaultPlan | None:
    """The installed :class:`FaultPlan`, or ``None``."""
    return _active_plan


def poke(site: str) -> None:
    """Poke ``site`` on the active plan (no-op when injection is off)."""
    plan = _active_plan
    if plan is not None:
        plan.poke(site)


class inject_faults:
    """Install a :class:`FaultPlan` for a ``with`` block::

        plan = FaultPlan(targets=[("pool.dispatch", 2)])
        with inject_faults(plan):
            cp_als(x, rank=8, options=opts)   # 2nd pool dispatch fails

    Nesting restores the previous plan on exit; the installed plan is
    process-global (like the trace recorder), so inject into one region
    at a time.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._prev: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        global _active_plan
        with _install_lock:
            self._prev = _active_plan
            _active_plan = self.plan
        return self.plan

    def __exit__(self, *exc) -> bool:
        global _active_plan
        with _install_lock:
            _active_plan = self._prev
        self._prev = None
        return False
