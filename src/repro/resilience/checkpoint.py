"""Checkpoint/restart: atomic ``.npz`` snapshots of iterative solver state.

A long CP-ALS / HOOI / completion run killed at iteration *k* should cost
*k mod N* iterations, not the whole run.  The drivers snapshot their loop
state every ``checkpoint_every`` iterations through
:func:`save_checkpoint` and resume through ``resume_from=``; the golden
tests assert that a killed-and-resumed run is ``allclose`` to an
uninterrupted one.

File format (version 1) — one NumPy ``.npz`` archive:

========================  =============================================
``header``                ``uint8`` bytes of a JSON object: ``version``,
                          ``kind`` ("cp_als" / "hooi" / "completion"),
                          ``iteration`` (completed iterations), ``nfactors``,
                          optional ``rng_state`` (NumPy bit-generator
                          state), and a free-form ``meta`` dict the
                          driver uses for compatibility checks.
``factor0..factorN-1``    the factor matrices.
``arr_<name>``            any extra driver arrays (λ, fit history,
                          residuals, best-so-far factors, ...).
========================  =============================================

Writes are **atomic**: the archive is written to a same-directory
temporary file, flushed and fsynced, then ``os.replace``-d over the
destination — a kill mid-write leaves either the previous complete
checkpoint or none, never a torn one.  ``allow_pickle`` stays ``False``
on both ends.

Every save/load is traced as a ``checkpoint.save`` / ``checkpoint.load``
span with ``kind``, ``iteration`` and ``path`` attributes (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.observe import spans as _obs

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is missing, malformed, or incompatible."""


def _jsonable(obj):
    """Recursively convert NumPy scalars/arrays to JSON-serializable types
    (bit-generator states mix plain ints with ``uint64`` arrays)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return obj


@dataclass
class Checkpoint:
    """One loaded checkpoint (see the module docstring for the format)."""

    kind: str
    iteration: int
    factors: list[np.ndarray]
    arrays: dict[str, np.ndarray]
    meta: dict
    rng_state: dict | None
    version: int


def save_checkpoint(
    path: str | os.PathLike,
    *,
    kind: str,
    iteration: int,
    factors: list[np.ndarray],
    arrays: dict[str, np.ndarray] | None = None,
    meta: dict | None = None,
    rng: np.random.Generator | None = None,
) -> None:
    """Atomically write a solver checkpoint.

    Parameters
    ----------
    kind:
        Driver tag (``"cp_als"`` / ``"hooi"`` / ``"completion"``);
        :func:`load_checkpoint` refuses a mismatched kind.
    iteration:
        Iterations/epochs *completed* when this state was captured.
    factors:
        The factor matrices (snapshotted by the write itself).
    arrays:
        Extra named arrays (fit history, λ, residuals, ...).
    meta:
        JSON-serializable driver metadata (dims, rank, algorithm, ...)
        used for compatibility checks on resume.
    rng:
        Generator whose bit-generator state should be captured (needed by
        stochastic solvers — SGD shuffling must resume mid-stream).
    """
    path = Path(path)
    header = {
        "version": CHECKPOINT_VERSION,
        "kind": str(kind),
        "iteration": int(iteration),
        "nfactors": len(factors),
        "meta": _jsonable(meta or {}),
    }
    if rng is not None:
        header["rng_state"] = _jsonable(rng.bit_generator.state)
    payload: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    }
    for m, factor in enumerate(factors):
        payload[f"factor{m}"] = np.ascontiguousarray(factor)
    for name, arr in (arrays or {}).items():
        payload[f"arr_{name}"] = np.asarray(arr)

    with _obs.span("checkpoint.save", kind=kind, iteration=iteration, path=str(path)):
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # failed write: don't litter
                tmp.unlink(missing_ok=True)
    _obs.count("checkpoint.saves")


def load_checkpoint(
    path: str | os.PathLike, *, expect_kind: str | None = None
) -> Checkpoint:
    """Load and validate a checkpoint written by :func:`save_checkpoint`.

    Raises
    ------
    CheckpointError
        When the file is unreadable, from a newer format version, or its
        ``kind`` does not match ``expect_kind``.
    """
    path = Path(path)
    with _obs.span("checkpoint.load", path=str(path)):
        try:
            with np.load(path, allow_pickle=False) as data:
                if "header" not in data:
                    raise CheckpointError(f"{path}: not a repro checkpoint (no header)")
                try:
                    header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise CheckpointError(f"{path}: corrupt checkpoint header: {exc}") from exc
                version = int(header.get("version", -1))
                if version > CHECKPOINT_VERSION or version < 1:
                    raise CheckpointError(
                        f"{path}: checkpoint version {version} not supported "
                        f"(this build reads <= {CHECKPOINT_VERSION})"
                    )
                kind = str(header.get("kind", ""))
                if expect_kind is not None and kind != expect_kind:
                    raise CheckpointError(
                        f"{path}: checkpoint kind {kind!r} cannot resume a "
                        f"{expect_kind!r} run"
                    )
                nfactors = int(header.get("nfactors", 0))
                missing = [m for m in range(nfactors) if f"factor{m}" not in data]
                if missing:
                    raise CheckpointError(f"{path}: missing factor arrays {missing}")
                factors = [np.array(data[f"factor{m}"]) for m in range(nfactors)]
                arrays = {
                    name[len("arr_"):]: np.array(data[name])
                    for name in data.files
                    if name.startswith("arr_")
                }
        except CheckpointError:
            raise
        except (OSError, BadZipFile, ValueError) as exc:
            # np.load raises BadZipFile for truncated archives and
            # ValueError for garbage it mistakes for pickled data
            raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    _obs.count("checkpoint.loads")
    return Checkpoint(
        kind=kind,
        iteration=int(header.get("iteration", 0)),
        factors=factors,
        arrays=arrays,
        meta=dict(header.get("meta", {})),
        rng_state=header.get("rng_state"),
        version=version,
    )
