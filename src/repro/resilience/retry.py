"""Retry-with-backoff and graceful-degradation policies.

A :class:`RetryPolicy` describes how the runtime reacts to an
:class:`~repro.resilience.fault.InjectedFault` (or, more generally, any
exception type listed in ``retry_on``):

* retry the failed operation up to ``max_retries`` times, with an
  exponential *simulated* backoff — by default the backoff seconds are
  only **accounted** (into :class:`~repro.distributed.comm.CommStats`,
  the worker-pool stats and the ``retry.backoff_s`` trace counter), not
  slept, so tests stay fast; set ``sleep=True`` to really wait;
* once retries are exhausted, optionally **degrade**: the tasking layer
  falls back to running the coforall's tasks serially inline, and the
  simulated fold/expand exchanges fall back to a degraded transport
  (metered as ``degraded_exchanges``), instead of killing the run.

Real errors raised by task bodies are never retried — only the exception
types in ``retry_on`` — so a buggy kernel still fails fast.

**Idempotency caveat**: dispatch-level sites (``tasking.coforall``,
``pool.dispatch``, ``comm.*``) fire *before* any task body runs, so
retrying them is always safe.  Task-level sites (``pool.task``) fire
after sibling tasks may have done work; retrying a dispatch whose bodies
mutate shared state non-idempotently (e.g. lock-protected accumulation)
can double-apply that work.  Use task-level injection to test error
*propagation*, and dispatch-level injection to test *recovery* (see
docs/RESILIENCE.md).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.observe import spans as _obs
from repro.resilience.fault import InjectedFault

__all__ = ["RetryPolicy", "retrying", "active_policy"]

#: Real sleeps are capped so a mis-configured policy can't hang a test run.
_MAX_REAL_SLEEP_S = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How to react to a retryable failure.

    Attributes
    ----------
    max_retries:
        Retries per operation after the initial attempt.
    backoff_base:
        Simulated seconds before the first retry.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    sleep:
        ``True`` really sleeps (capped at 50 ms per wait); ``False``
        (default) only accounts the backoff.
    degrade:
        After retries are exhausted: tasking layers run the loop
        serially, comm exchanges complete on the degraded transport.
        ``False`` re-raises instead.
    retry_on:
        Exception types eligible for retry/degradation.
    """

    max_retries: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    sleep: bool = False
    degrade: bool = True
    retry_on: tuple[type[BaseException], ...] = field(default=(InjectedFault,))

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Simulated backoff before retry ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt

    def handles(self, exc: BaseException) -> bool:
        """True when ``exc`` is eligible for retry under this policy."""
        return isinstance(exc, self.retry_on)

    def pause(self, backoff_s: float) -> None:
        """Wait out one backoff period (really, only when ``sleep``)."""
        _obs.count("retry.backoff_s", backoff_s)
        if self.sleep and backoff_s > 0:
            time.sleep(min(backoff_s, _MAX_REAL_SLEEP_S))


#: The installed policy, or ``None`` (failures propagate immediately).
_active_policy: RetryPolicy | None = None
_install_lock = threading.Lock()


def active_policy() -> RetryPolicy | None:
    """The installed :class:`RetryPolicy`, or ``None``."""
    return _active_policy


class retrying:
    """Install a :class:`RetryPolicy` for a ``with`` block::

        with inject_faults(plan), retrying(RetryPolicy(max_retries=5)):
            cp_als(x, rank=8)      # injected dispatch faults are retried

    Nesting restores the previous policy on exit.
    """

    def __init__(self, policy: RetryPolicy | None = None):
        self.policy = policy if policy is not None else RetryPolicy()
        self._prev: RetryPolicy | None = None

    def __enter__(self) -> RetryPolicy:
        global _active_policy
        with _install_lock:
            self._prev = _active_policy
            _active_policy = self.policy
        return self.policy

    def __exit__(self, *exc) -> bool:
        global _active_policy
        with _install_lock:
            _active_policy = self._prev
        self._prev = None
        return False
