"""repro.resilience — fault injection, retry policies, checkpoint/restart.

Production tensor-decomposition runs outlive the machines they run on: a
tasking dispatch can die, a communication exchange can drop, a process
can be killed between iterations.  This package makes the reproduction
survivable — and makes the survival *testable*:

* :mod:`repro.resilience.fault` — :class:`FaultPlan`, a deterministic
  (seeded or ``(site, occurrence)``-targeted) fault-injection harness
  wired into the tasking, pool, schedule and comm layers;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, retry-with-
  simulated-backoff plus graceful degradation (serial fallback for a
  failing tasking layer, degraded transport for failing exchanges);
* :mod:`repro.resilience.checkpoint` — atomic write-temp-then-rename
  ``.npz`` snapshots with a ``resume_from=`` path in the CP-ALS, HOOI
  and completion drivers (``--checkpoint`` / ``--resume`` on the CLI).

See docs/RESILIENCE.md for the site table, the checkpoint format, and
the guarantees the golden tests pin down.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.fault import FaultPlan, InjectedFault, active_plan, inject_faults
from repro.resilience.retry import RetryPolicy, active_policy, retrying

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "inject_faults",
    "active_plan",
    "RetryPolicy",
    "retrying",
    "active_policy",
    "Checkpoint",
    "CheckpointError",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
]
