"""Factor-matrix column normalization (the paper's ``Mat norm`` routine).

SPLATT normalizes each factor's columns after solving for it, accumulating
the norms into the Kruskal weights ``λ`` (lines 6/9/12 of Algorithm 1).
Two norms are used: the 2-norm on the first ALS iteration and the max-norm
afterwards (``mat_normalize(..., MAT_NORM_2 / MAT_NORM_MAX)``) — max-norm
keeps ``λ`` from oscillating once the factors are roughly scaled.
"""

from __future__ import annotations

import numpy as np

from repro._util import VALUE_DTYPE

__all__ = ["normalize_columns"]


def normalize_columns(
    factor: np.ndarray,
    *,
    which: str = "2",
    out_lambda: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize the columns of ``factor`` in place, returning ``(factor, λ)``.

    Parameters
    ----------
    factor:
        ``(I, R)`` matrix, modified in place.
    which:
        ``"2"`` for the Euclidean column norm, ``"max"`` for SPLATT's
        max-norm (``max(|a_ir|, 1)`` — columns already below unit magnitude
        are left untouched, exactly as ``mat_normalize`` does).
    out_lambda:
        Optional ``(R,)`` buffer to write the norms into.

    Notes
    -----
    Zero columns get ``λ_r = 1`` under the 2-norm path (leaving the column
    zero) rather than dividing by zero; SPLATT's C code has the same guard.
    """
    a = np.asarray(factor)
    if a.ndim != 2:
        raise ValueError(f"factor must be 2-D, got shape {a.shape}")
    if a.dtype != VALUE_DTYPE:
        raise TypeError(f"factor must be {VALUE_DTYPE} (normalized in place), got {a.dtype}")
    rank = a.shape[1]
    if out_lambda is None:
        out_lambda = np.empty(rank, dtype=VALUE_DTYPE)
    if out_lambda.shape != (rank,):
        raise ValueError(f"out_lambda must have shape ({rank},)")

    if which == "2":
        norms = np.sqrt(np.einsum("ir,ir->r", a, a))
        norms[norms == 0.0] = 1.0
    elif which == "max":
        norms = np.abs(a).max(axis=0) if a.shape[0] else np.zeros(rank)
        np.maximum(norms, 1.0, out=norms)
    else:
        raise ValueError(f"unknown norm {which!r}; use '2' or 'max'")
    a /= norms
    out_lambda[:] = norms
    return a, out_lambda
