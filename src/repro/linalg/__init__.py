"""Dense factor-matrix kernels used by CP-ALS.

These are the non-MTTKRP routines of the paper's per-routine breakdown:
``Mat AᵀA`` (:mod:`repro.linalg.ata`), ``Inverse``
(:mod:`repro.linalg.inverse`), ``Mat norm`` (:mod:`repro.linalg.norms`) and
``CPD fit`` (:mod:`repro.linalg.fit`), plus the Khatri-Rao product used by
the dense reference MTTKRP in tests.

SPLATT calls OpenBLAS ``syrk``/``potrf``/``potrs`` here; we call the same
algorithms through :mod:`scipy.linalg` (see DESIGN.md §2).
"""

from repro.linalg.ata import gram, hadamard_gram
from repro.linalg.fit import kruskal_inner, kruskal_norm_squared, calc_fit
from repro.linalg.inverse import pseudo_inverse_gram, solve_normal_equations
from repro.linalg.khatri_rao import khatri_rao
from repro.linalg.norms import normalize_columns

__all__ = [
    "gram",
    "hadamard_gram",
    "pseudo_inverse_gram",
    "solve_normal_equations",
    "khatri_rao",
    "normalize_columns",
    "calc_fit",
    "kruskal_inner",
    "kruskal_norm_squared",
]
