"""Moore–Penrose inverse of the normal-equations matrix (paper's ``Inverse``).

SPLATT's ``mat_solve_normals`` factorizes the ``R×R`` symmetric
positive-semidefinite matrix ``V`` with LAPACK ``potrf`` (Cholesky) and
applies ``potrs`` to solve ``A·V = M`` in place.  When ``V`` is singular
(rank-deficient factors) it falls back to a pseudo-inverse; we mirror both
paths using :mod:`scipy.linalg`.

This is the routine at the center of the paper's §V-E: in the Chapel port it
runs under OpenBLAS/OpenMP and suffers from Qthreads interference — modeled
in :mod:`repro.perfmodel.interference`.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro._util import VALUE_DTYPE

__all__ = ["pseudo_inverse_gram", "solve_normal_equations"]


def _validate_square(mat: np.ndarray) -> np.ndarray:
    v = np.asarray(mat, dtype=VALUE_DTYPE)
    if v.ndim != 2 or v.shape[0] != v.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {v.shape}")
    return v


def pseudo_inverse_gram(v: np.ndarray, *, rcond: float = 1e-12) -> np.ndarray:
    """Moore–Penrose inverse ``V†`` of a symmetric PSD matrix.

    Tries Cholesky (``potrf`` + ``potrs`` against the identity, SPLATT's
    fast path); on ``LinAlgError`` (singular ``V``) falls back to the
    SVD-based pseudo-inverse, which is SPLATT's documented degenerate-rank
    behaviour.
    """
    v = _validate_square(v)
    try:
        chol = sla.cho_factor(v, lower=False, check_finite=False)
        return sla.cho_solve(chol, np.eye(v.shape[0], dtype=VALUE_DTYPE), check_finite=False)
    except sla.LinAlgError:
        return np.linalg.pinv(v, rcond=rcond, hermitian=True)


def solve_normal_equations(mttkrp_result: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Solve ``A = M · V†`` for the new factor (lines 5/8/11 of Algorithm 1).

    Parameters
    ----------
    mttkrp_result:
        ``(I, R)`` MTTKRP output ``M = X_(n) (⊙ A)``.
    v:
        ``(R, R)`` Hadamard-of-Grams matrix.

    Notes
    -----
    The Cholesky path solves ``Vᵀ Aᵀ = Mᵀ`` directly (one ``potrf`` + one
    ``potrs``), never forming ``V†`` — the same operation count as SPLATT.
    """
    m = np.asarray(mttkrp_result, dtype=VALUE_DTYPE)
    v = _validate_square(v)
    if m.ndim != 2 or m.shape[1] != v.shape[0]:
        raise ValueError(f"MTTKRP result shape {m.shape} incompatible with V {v.shape}")
    try:
        chol = sla.cho_factor(v, lower=False, check_finite=False)
        return sla.cho_solve(chol, m.T, check_finite=False).T
    except sla.LinAlgError:
        return m @ np.linalg.pinv(v, hermitian=True)
