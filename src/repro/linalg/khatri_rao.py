"""Khatri-Rao (column-wise Kronecker) product.

Used by the dense *reference* MTTKRP that every optimized kernel is tested
against: ``M = X_(n) · (A^(m_k) ⊙ … ⊙ A^(m_1))`` where the Khatri-Rao runs
over the non-target modes.  The column ordering here matches
:meth:`repro.tensor.coo.SparseTensor.matricize` (lowest remaining mode
varies fastest).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE

__all__ = ["khatri_rao"]


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Khatri-Rao product of two or more ``(I_k, R)`` matrices.

    The row index of the result enumerates the Cartesian product of the
    input rows with the **last** matrix's row index varying fastest::

        out[(((i1*I2 + i2)*I3 + i3)...), r] = Π_k  M_k[i_k, r]

    To build the MTTKRP companion for output mode ``n`` under
    :meth:`SparseTensor.matricize`'s convention (lowest remaining mode
    fastest), pass the non-target factors in *descending* mode order.
    """
    mats = [np.asarray(m, dtype=VALUE_DTYPE) for m in matrices]
    if not mats:
        raise ValueError("need at least one matrix")
    if any(m.ndim != 2 for m in mats):
        raise ValueError("all inputs must be 2-D")
    rank = mats[0].shape[1]
    if any(m.shape[1] != rank for m in mats):
        raise ValueError("all inputs must share the same column count")
    out = mats[0]
    for m in mats[1:]:
        # (I, 1, R) * (1, J, R) -> (I, J, R) -> (I*J, R); J varies fastest.
        out = (out[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return out
