"""CP decomposition fit (the paper's ``CPD fit`` routine, line 13 of Alg. 1).

SPLATT's ``p_calc_fit`` evaluates the relative fit

    fit = 1 − √(‖X‖² + ‖Z‖² − 2⟨X, Z⟩) / ‖X‖

without materializing the Kruskal tensor ``Z``:

* ``‖Z‖² = λᵀ (∗_n A^(n)ᵀA^(n)) λ`` — Hadamard product over *all* Grams;
* ``⟨X, Z⟩ = Σ_r λ_r Σ_i M[i,r]·A[i,r]`` where ``M`` is the last MTTKRP
  output and ``A`` the matching (already updated, pre-normalization is
  handled by λ) factor — the MTTKRP is thus reused, costing only an
  elementwise pass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE
from repro.linalg.ata import gram

__all__ = ["kruskal_norm_squared", "kruskal_inner", "calc_fit"]


def kruskal_norm_squared(
    weights: np.ndarray,
    factors: Sequence[np.ndarray] | None = None,
    *,
    grams: Sequence[np.ndarray] | None = None,
) -> float:
    """``‖Z‖²`` of the Kruskal tensor ``Z = Σ_r λ_r a_r ∘ b_r ∘ …``.

    Provide either the factor matrices or precomputed Grams.
    """
    lam = np.asarray(weights, dtype=VALUE_DTYPE)
    if grams is None:
        if factors is None:
            raise ValueError("need factors or grams")
        grams = [gram(f) for f in factors]
    rank = lam.shape[0]
    had = np.ones((rank, rank), dtype=VALUE_DTYPE)
    for g in grams:
        had *= g
    return float(max(lam @ had @ lam, 0.0))


def kruskal_inner(
    weights: np.ndarray,
    last_mttkrp: np.ndarray,
    last_factor: np.ndarray,
) -> float:
    """``⟨X, Z⟩`` computed from the final-mode MTTKRP of the iteration."""
    lam = np.asarray(weights, dtype=VALUE_DTYPE)
    m = np.asarray(last_mttkrp, dtype=VALUE_DTYPE)
    a = np.asarray(last_factor, dtype=VALUE_DTYPE)
    if m.shape != a.shape:
        raise ValueError(f"MTTKRP shape {m.shape} != factor shape {a.shape}")
    per_col = np.einsum("ir,ir->r", m, a)
    return float(lam @ per_col)


def calc_fit(
    x_norm_squared: float,
    weights: np.ndarray,
    factors: Sequence[np.ndarray],
    last_mttkrp: np.ndarray,
    *,
    grams: Sequence[np.ndarray] | None = None,
) -> float:
    """Relative fit of the decomposition against the data tensor.

    Parameters
    ----------
    x_norm_squared:
        ``‖X‖²`` of the data tensor (computed once, up front).
    weights, factors:
        Current Kruskal model.
    last_mttkrp:
        The MTTKRP output for the *last* mode of the just-finished
        iteration (reused, SPLATT-style, to get ``⟨X, Z⟩`` for free).
    grams:
        Optional cached Grams.

    Returns
    -------
    ``fit ≤ 1``; 1 means exact reconstruction.  Guarded against tiny
    negative residuals from floating-point cancellation.
    """
    if x_norm_squared < 0:
        raise ValueError("x_norm_squared must be non-negative")
    znorm2 = kruskal_norm_squared(weights, factors, grams=grams)
    inner = kruskal_inner(weights, last_mttkrp, factors[-1])
    residual_sq = max(x_norm_squared + znorm2 - 2.0 * inner, 0.0)
    xnorm = float(np.sqrt(x_norm_squared))
    if xnorm == 0.0:
        return 1.0
    return 1.0 - float(np.sqrt(residual_sq)) / xnorm
