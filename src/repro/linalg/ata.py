"""Gram matrices of factor matrices (the paper's ``Mat AᵀA`` routine).

SPLATT computes each ``AᵀA`` with BLAS ``dsyrk`` (symmetric rank-k update,
filling one triangle) and forms ``V`` as the elementwise (Hadamard) product
of the Grams of every factor except the one being solved for — lines 4, 7
and 10 of Algorithm 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.linalg.blas import dsyrk

from repro._util import VALUE_DTYPE

__all__ = ["gram", "hadamard_gram"]


def gram(factor: np.ndarray, backend=None) -> np.ndarray:
    """``AᵀA`` of one ``(I, R)`` factor matrix via BLAS ``syrk``.

    Only the upper triangle is computed by the BLAS call (as in SPLATT);
    the result is symmetrized before returning so callers can treat it as a
    plain dense matrix.  A compiled ``backend``
    (:class:`~repro.backend.registry.Backend`) computes the same symmetric
    product with its own GIL-releasing kernel instead of BLAS.
    """
    a = np.asarray(factor, dtype=VALUE_DTYPE)
    if a.ndim != 2:
        raise ValueError(f"factor must be 2-D, got shape {a.shape}")
    if backend is not None and backend.compiled:
        a = np.ascontiguousarray(a)
        out = np.empty((a.shape[1], a.shape[1]), dtype=VALUE_DTYPE)
        backend.ata(a, out)
        return out
    # dsyrk computes alpha * A^T A in the requested triangle for trans=1.
    upper = dsyrk(1.0, a, trans=1, lower=0)
    full = np.triu(upper) + np.triu(upper, k=1).T
    return full


def hadamard_gram(
    factors: Sequence[np.ndarray],
    skip_mode: int,
    *,
    grams: Sequence[np.ndarray] | None = None,
) -> np.ndarray:
    """Hadamard product of all factor Grams except ``skip_mode``.

    Parameters
    ----------
    factors:
        All ``N`` factor matrices (same column count ``R``).
    skip_mode:
        The mode currently being solved for (its Gram is excluded).
    grams:
        Optional precomputed Grams (SPLATT caches them between modes and
        only recomputes the one just updated); when given, ``factors`` is
        only used for shape validation.

    Returns
    -------
    The ``(R, R)`` normal-equations matrix ``V``.
    """
    nmodes = len(factors)
    if not 0 <= skip_mode < nmodes:
        raise ValueError(f"skip_mode {skip_mode} out of range for {nmodes} factors")
    rank = factors[0].shape[1]
    if any(f.shape[1] != rank for f in factors):
        raise ValueError("all factors must share the same rank")
    if grams is None:
        grams = [gram(f) for f in factors]
    out = np.ones((rank, rank), dtype=VALUE_DTYPE)
    for mode, g in enumerate(grams):
        if mode != skip_mode:
            out *= g
    return out
