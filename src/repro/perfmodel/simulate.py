"""Whole-CP-ALS simulation: the paper-scale experiment driver.

:func:`simulate_cpals` composes the routine models into the paper's
six-routine breakdown for a given dataset signature and runtime
configuration.  The MTTKRP lock decision per mode mirrors the real
dispatcher (:func:`repro.mttkrp.mttkrp_csf`): with the default two-tree CSF
allocation the smallest- and largest-dimension modes run the lock-free root
algorithm and the remaining mode(s) run internal-mode kernels whose lock
usage follows :func:`repro.mttkrp.locks_policy.needs_locks`.

Dataset statistics at paper scale come from :func:`paper_scale_stats`: the
published dims/nnz (Table I) combined with hub-concentration measured on
the scaled synthetic stand-in (power-law shares are scale-robust).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.core.timers import ROUTINES
from repro.mttkrp.locks_policy import needs_locks
from repro.perfmodel import routines as rt
from repro.perfmodel.calibration import CALIBRATION, Calibration
from repro.perfmodel.contention import lock_overhead_seconds
from repro.perfmodel.machine import MACHINE
from repro.runtime.env import DEFAULT_SPINCOUNT
from repro.tensor.generate import DATASET_SIGNATURES, synthetic_dataset
from repro.tensor.stats import tensor_stats

__all__ = ["SimStats", "SimConfig", "SimulatedRun", "paper_scale_stats", "simulate_cpals"]


@dataclass(frozen=True)
class SimStats:
    """The workload statistics the simulator needs."""

    name: str
    dims: tuple[int, ...]
    nnz: int
    #: Per-mode hub concentration (fraction of nonzeros in the top 1% of
    #: slices), measured on real data.
    top_slice_share: tuple[float, ...]

    @property
    def nmodes(self) -> int:
        return len(self.dims)


@lru_cache(maxsize=None)
def paper_scale_stats(name: str, *, scale: float = 1.0, seed: int = 0) -> SimStats:
    """Published Table I dims/nnz + hub shares measured on the synthetic
    stand-in generated at ``scale``."""
    sig = DATASET_SIGNATURES[name.lower()]
    tensor = synthetic_dataset(name, scale=scale, seed=seed)
    stats = tensor_stats(tensor)
    return SimStats(
        name=sig.name,
        dims=sig.dims,
        nnz=sig.nnz,
        top_slice_share=tuple(ms.top_slice_share for ms in stats.modes),
    )


@dataclass(frozen=True)
class SimConfig:
    """One simulated runtime configuration.

    ``impl`` is ``"c"`` (the SPLATT reference) or ``"chapel"``.  The
    remaining fields only matter for Chapel runs except ``ntasks`` and
    ``omp_threads`` (the C code parallelizes everything with OpenMP, so its
    ``omp_threads`` defaults to ``ntasks``; Chapel's defaults to 1 as in
    the paper's final setup, §V-E).
    """

    impl: str = "chapel"
    ntasks: int = 1
    mttkrp_variant: str = "pointer"
    sort_variant: str = "all_opts"
    mutex_kind: str = "atomic"
    tasking_layer: str = "qthreads"
    omp_threads: int | None = None
    qt_affinity: bool = True
    qt_spincount: int = DEFAULT_SPINCOUNT
    allocation: str = "two"
    force_locks: bool | None = None

    def __post_init__(self) -> None:
        if self.impl not in ("c", "chapel"):
            raise ValueError(f"impl must be 'c' or 'chapel', got {self.impl!r}")
        if self.ntasks < 1:
            raise ValueError("ntasks must be >= 1")

    @property
    def is_c(self) -> bool:
        return self.impl == "c"

    @property
    def effective_omp_threads(self) -> int:
        if self.omp_threads is not None:
            return self.omp_threads
        return self.ntasks if self.is_c else 1

    # ---------------------------------------------------------- presets
    @classmethod
    def c_reference(cls, ntasks: int) -> "SimConfig":
        """SPLATT's C/OpenMP code with ``OMP_NUM_THREADS = ntasks``."""
        return cls(impl="c", ntasks=ntasks)

    @classmethod
    def chapel_initial(cls, ntasks: int) -> "SimConfig":
        """The unoptimized port: slicing accesses, naive sort, sync mutexes."""
        return cls(
            impl="chapel",
            ntasks=ntasks,
            mttkrp_variant="slicing",
            sort_variant="initial",
            mutex_kind="sync",
        )

    @classmethod
    def chapel_optimized(cls, ntasks: int) -> "SimConfig":
        """The fully optimized port: pointers, sort fixes, atomic mutexes."""
        return cls(
            impl="chapel",
            ntasks=ntasks,
            mttkrp_variant="pointer",
            sort_variant="all_opts",
            mutex_kind="atomic",
        )

    def with_tasks(self, ntasks: int) -> "SimConfig":
        return replace(self, ntasks=ntasks)


@dataclass
class SimulatedRun:
    """Simulated per-routine seconds (paper breakdown) plus lock metadata."""

    stats: SimStats
    config: SimConfig
    seconds: dict[str, float]
    #: Modes whose MTTKRP used the mutex pool.
    locked_modes: tuple[int, ...] = field(default_factory=tuple)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def __getitem__(self, routine: str) -> float:
        return self.seconds[routine]


def _mode_algorithms(dims: tuple[int, ...], allocation: str) -> dict[int, str]:
    """Which MTTKRP algorithm serves each output mode — mirrors
    :meth:`repro.csf.build.CsfSet.tree_for_mode`."""
    order = sorted(range(len(dims)), key=lambda m: (dims[m], m))
    smallest, biggest = order[0], order[-1]
    algos: dict[int, str] = {}
    for mode in range(len(dims)):
        if allocation == "all" or mode == smallest:
            algos[mode] = "root"
        elif allocation == "two" and mode == biggest:
            algos[mode] = "root"
        else:
            # non-root modes sit at internal levels of the smallest-rooted
            # tree for 3rd-order tensors (leaf only for the last level of a
            # one-tree allocation, costed identically here).
            algos[mode] = "internal"
    return algos


def _ntrees(nmodes: int, allocation: str) -> int:
    if allocation == "one":
        return 1
    if allocation == "two":
        return min(2, nmodes)
    return nmodes


def simulate_cpals(
    stats: SimStats,
    config: SimConfig,
    *,
    rank: int = 35,
    iterations: int = 20,
    cal: Calibration = CALIBRATION,
) -> SimulatedRun:
    """Simulate one full CP-ALS run (the paper's 20-iteration experiment).

    Returns the six-routine breakdown in seconds.
    """
    dims = stats.dims
    nmodes = stats.nmodes
    p = config.ntasks
    is_c = config.is_c
    variant = "c" if is_c else config.mttkrp_variant

    # ----------------------------------------------------------- MTTKRP
    mttkrp = rt.mttkrp_compute_time(
        stats.nnz, rank, iterations, nmodes, p,
        variant=variant, is_c=is_c, cal=cal,
    )
    locked: list[int] = []
    algos = _mode_algorithms(dims, config.allocation)
    hold = rank * MACHINE.flop_time * cal.mttkrp_variant_mult[variant] * 2.0
    for mode, algo in algos.items():
        if algo == "root":
            continue
        if config.force_locks is None:
            use = needs_locks(dims[mode], stats.nnz, p)
        else:
            use = config.force_locks and p > 1
        if not use:
            continue
        locked.append(mode)
        lock_ops = iterations * int(rt.FIBER_RATIO * stats.nnz)
        # The C code keeps its own cheap pthread-spinlock pool; Chapel pays
        # per its mutex kind and tasking layer.
        mttkrp += lock_overhead_seconds(
            lock_ops, p, stats.top_slice_share[mode],
            mutex_kind="c" if is_c else config.mutex_kind,
            tasking_layer="qthreads" if is_c else config.tasking_layer,
            hold_time=hold, cal=cal,
        )

    # ------------------------------------------------------------- sort
    sort = rt.sort_time(
        stats.nnz, _ntrees(nmodes, config.allocation), p,
        variant=config.sort_variant, is_c=is_c, cal=cal,
    )

    # ---------------------------------------------------------- inverse
    inverse = rt.inverse_time(
        dims, rank, iterations,
        is_c=is_c,
        omp_threads=config.effective_omp_threads,
        qt_affinity=config.qt_affinity,
        qt_spincount=config.qt_spincount,
        cal=cal,
    )

    # ----------------------------------------------------- small kernels
    ata = rt.ata_time(dims, rank, iterations, p, is_c=is_c, cal=cal)
    norm = rt.norm_time(
        dims, rank, iterations, p,
        is_c=is_c,
        qt_affinity=config.qt_affinity,
        omp_threads=config.effective_omp_threads,
        cal=cal,
    )
    fit = rt.fit_time(dims, rank, iterations, p, cal=cal)

    seconds = {
        "mttkrp": mttkrp,
        "sort": sort,
        "mat_ata": ata,
        "mat_norm": norm,
        "cpd_fit": fit,
        "inverse": inverse,
    }
    if set(seconds) != set(ROUTINES):
        raise RuntimeError(
            f"simulated routine set {sorted(seconds)} does not match "
            f"ROUTINES {sorted(ROUTINES)}; update simulate() alongside the "
            "routine catalog"
        )
    return SimulatedRun(stats=stats, config=config, seconds=seconds, locked_modes=tuple(locked))
