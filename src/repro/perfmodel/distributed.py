"""Projected distributed performance (the future-work figure).

Combines the calibrated shared-memory MTTKRP model with a standard
latency/bandwidth (α-β) network model to project what the paper's planned
multi-locale port would do at paper scale:

    T(ℓ) = T_mttkrp(36 cores)/ℓ  +  α·messages(ℓ)  +  β·volume(ℓ)

Messages and volume come from the *measured* fold/expand traffic of the
real simulated decomposition (:mod:`repro.distributed`), scaled from the
bench stand-in to published nnz — so the projection's communication side
is data-driven, not guessed.  Network constants default to a commodity
InfiniBand-class fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.distributed.cpals import distributed_cp_als
from repro.perfmodel.simulate import SimConfig, paper_scale_stats, simulate_cpals
from repro.tensor.generate import DATASET_SIGNATURES, synthetic_dataset

__all__ = [
    "NetworkModel",
    "DEFAULT_NETWORK",
    "DistributedProjection",
    "project_distributed",
]


@dataclass(frozen=True)
class NetworkModel:
    """α-β interconnect model."""

    #: Per-message latency (seconds); ~1.5 µs for InfiniBand-class MPI.
    alpha: float = 1.5e-6
    #: Per-byte transfer time (seconds); ~10 GB/s effective bandwidth.
    beta: float = 1.0e-10


DEFAULT_NETWORK = NetworkModel()


@dataclass(frozen=True)
class DistributedProjection:
    """One locale-count row of the projection."""

    nlocales: int
    grid: tuple[int, ...]
    compute_seconds: float
    comm_seconds: float
    messages: int
    volume_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        t = self.total_seconds
        return self.comm_seconds / t if t else 0.0


@lru_cache(maxsize=None)
def _measured_traffic(dataset: str, nlocales: int, rank: int, iterations: int):
    """Real fold/expand traffic of the bench stand-in, per run."""
    tensor = synthetic_dataset(dataset, seed=0)
    result = distributed_cp_als(
        tensor, rank, nlocales=nlocales, max_iterations=iterations, tolerance=0.0
    )
    return (
        result.grid.shape,
        result.comm.total_messages,
        result.comm.fold_rows + result.comm.expand_rows,
        tensor.nnz,
    )


def project_distributed(
    dataset: str,
    nlocales: int,
    *,
    rank: int = 35,
    iterations: int = 20,
    network: NetworkModel = DEFAULT_NETWORK,
) -> DistributedProjection:
    """Project one configuration's distributed runtime at paper scale.

    Compute time is the calibrated 36-core C MTTKRP+solve time divided by
    the locale count (each locale is one paper-grade node); communication
    scales the stand-in's measured row traffic by the published/stand-in
    *dimension* ratio — fold/expand exchanges move factor **rows**, so the
    traffic surface grows with mode lengths, not with the nonzero count.
    """
    if nlocales < 1:
        raise ValueError("nlocales must be >= 1")
    stats = paper_scale_stats(dataset)
    node_run = simulate_cpals(stats, SimConfig.c_reference(32),
                              rank=rank, iterations=iterations)
    compute = node_run.total / nlocales

    grid, messages, rows, _bench_nnz = _measured_traffic(dataset, nlocales, 8, iterations)
    sig = DATASET_SIGNATURES[dataset.lower()]
    dim_ratios = [d / b for d, b in zip(sig.dims, sig.bench_dims)]
    scale = sum(dim_ratios) / len(dim_ratios)
    scaled_rows = rows * scale
    volume = int(scaled_rows * rank * 8)
    comm = network.alpha * messages + network.beta * volume
    return DistributedProjection(
        nlocales=nlocales,
        grid=grid,
        compute_seconds=compute,
        comm_seconds=comm,
        messages=messages,
        volume_bytes=volume,
    )
