"""Hardware model of the paper's testbed (Table II).

Dual-socket Intel Xeon E5-2697v4 (Broadwell), 36 cores @ 2.3 GHz, 45 MB
last-level cache, 512 GB DDR4.  Only a handful of aggregate numbers matter
to the routine models; they live here so every model shares one machine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "MACHINE"]


@dataclass(frozen=True)
class MachineModel:
    """Aggregate machine parameters used by the cost models.

    Attributes
    ----------
    ncores:
        Physical cores (36 on the testbed; experiments sweep tasks 1..32).
    frequency_hz:
        Core clock.
    flop_time:
        Effective seconds per MTTKRP "element op" (one multiply-accumulate
        on one rank-column element, *including* its share of memory traffic
        for irregular sparse access).  Calibrated from Table III's C MTTKRP
        rows: YELP 13.31 s / (20 iters × 3 modes × 8M nnz × R=35) ≈ 0.79 ns
        and NELL-2 109.25 s / (20 × 3 × 77M × 35) ≈ 0.68 ns; we use their
        geometric mean.
    context_switch_time:
        Cost of descheduling + rescheduling a task (the sync-variable sleep
        path under Qthreads), order 5 µs on Linux.
    spin_iteration_time:
        Cost of one spin-wait loop iteration (test-and-set retry), a few ns.
    """

    ncores: int = 36
    frequency_hz: float = 2.3e9
    flop_time: float = 0.73e-9
    context_switch_time: float = 5.0e-6
    spin_iteration_time: float = 4.0e-9


#: The paper's machine; every model imports this singleton.
MACHINE = MachineModel()
