"""Calibrated performance model of the paper's 36-core testbed.

We cannot time 32 hardware threads faithfully under the Python GIL, so the
paper-scale experiments are *simulated*: every routine of CP-ALS gets an
analytic cost model driven by the real structural statistics of the tensor
(:class:`repro.tensor.stats.TensorStats`) and by the runtime configuration
(implementation, MTTKRP variant, mutex kind, tasking layer, task count,
OpenMP settings).  The per-operation constants are calibrated once against
the paper's published Table III and stay fixed for every figure — so who
wins, by what factor and where the crossovers fall are *predictions* of the
model, not per-figure fits.

Modules
-------
machine       hardware constants (cores, base flop cost)
calibration   the calibrated per-operation constants + their provenance
contention    mutex-pool cost model (sync-sleep vs atomic-spin vs fifo)
interference  Qthreads × OpenMP conflict model for the LAPACK inverse
routines      per-routine time models (MTTKRP, sort, AᵀA, norm, fit, inverse)
simulate      whole-CP-ALS simulation returning the paper's breakdown
"""

from repro.perfmodel.calibration import CALIBRATION, Calibration
from repro.perfmodel.machine import MACHINE, MachineModel
from repro.perfmodel.simulate import SimConfig, SimulatedRun, paper_scale_stats, simulate_cpals

__all__ = [
    "CALIBRATION",
    "Calibration",
    "MACHINE",
    "MachineModel",
    "SimConfig",
    "SimulatedRun",
    "simulate_cpals",
    "paper_scale_stats",
]
