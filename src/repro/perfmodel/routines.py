"""Per-routine analytic time models.

Each function returns seconds for the whole experiment configuration (the
paper reports routine totals over 20 CP-ALS iterations).  Work terms are
expressed in the units the calibration constants were derived in
(:mod:`repro.perfmodel.calibration`): MTTKRP and sort scale with ``nnz``,
the dense kernels with factor-matrix sizes ``ΣI·R^k``.

Amdahl scaling is used throughout: ``T(p) = T(1)·((1-s)/p + s)`` with the
calibrated serial fraction ``s`` — this reproduces the paper's "near linear
scalability up to 32 cores" with the measured efficiency (~57-60% at 32).
"""

from __future__ import annotations

from repro.perfmodel.calibration import CALIBRATION, Calibration
from repro.perfmodel.interference import inverse_interference_factor, norm_interference_factor
from repro.perfmodel.machine import MACHINE, MachineModel

__all__ = [
    "amdahl",
    "mttkrp_compute_time",
    "sort_time",
    "inverse_time",
    "ata_time",
    "norm_time",
    "fit_time",
]

#: Fibers-per-nonzero ratio used for internal-mode lock-op counts; typical
#: of 3rd-order review/NLP tensors in CSF form (fiber term is otherwise
#: folded into the calibrated element-op time).
FIBER_RATIO = 0.6


def amdahl(t1: float, ntasks: int, serial_fraction: float) -> float:
    """``T(p)`` under Amdahl's law with serial fraction ``s``."""
    if ntasks < 1:
        raise ValueError("ntasks must be >= 1")
    return t1 * ((1.0 - serial_fraction) / ntasks + serial_fraction)


def mttkrp_compute_time(
    nnz: int,
    rank: int,
    iterations: int,
    nmodes: int,
    ntasks: int,
    *,
    variant: str,
    is_c: bool,
    cal: Calibration = CALIBRATION,
    machine: MachineModel = MACHINE,
) -> float:
    """Lock-free MTTKRP time for all modes over all iterations.

    ``variant`` indexes :attr:`Calibration.mttkrp_variant_mult`; lock
    overhead (when the configuration engages the mutex pool) is added
    separately by the simulator via
    :func:`repro.perfmodel.contention.lock_overhead_seconds`.
    """
    mult = cal.mttkrp_variant_mult[variant if not is_c else "c"]
    t1 = iterations * nmodes * rank * nnz * machine.flop_time * mult
    s = cal.mttkrp_serial_fraction_c if is_c else cal.mttkrp_serial_fraction_chapel
    return amdahl(t1, ntasks, s)


def sort_time(
    nnz: int,
    ntrees: int,
    ntasks: int,
    *,
    variant: str,
    is_c: bool,
    cal: Calibration = CALIBRATION,
) -> float:
    """Pre-processing sort time (one counting+quick sort per CSF tree)."""
    key = "lexsort" if is_c else variant
    mult = cal.sort_variant_mult[key]
    t1 = ntrees * nnz * cal.sort_cost_per_nnz * mult
    return amdahl(t1, ntasks, cal.sort_serial_fraction[key])


def inverse_time(
    dims: tuple[int, ...],
    rank: int,
    iterations: int,
    *,
    is_c: bool,
    omp_threads: int,
    qt_affinity: bool,
    qt_spincount: int,
    cal: Calibration = CALIBRATION,
) -> float:
    """Moore–Penrose inverse (potrf + potrs applied to all mode solves).

    The dominant potrs cost is ``2·I_n·R²`` per mode-solve.  The C code
    scales with OpenMP threads at the calibrated efficiency; the Chapel
    code pays the §V-E interference factor instead.
    """
    serial = iterations * sum(2 * d * rank * rank for d in dims) * cal.inverse_flop_time
    if is_c:
        if omp_threads > 1:
            return serial / (cal.inverse_omp_efficiency * omp_threads)
        return serial
    chapel_serial = serial * cal.inverse_chapel_mult
    factor = inverse_interference_factor(
        omp_threads, qt_affinity=qt_affinity, qt_spincount=qt_spincount, cal=cal
    )
    return chapel_serial * factor


def ata_time(
    dims: tuple[int, ...],
    rank: int,
    iterations: int,
    ntasks: int,
    *,
    is_c: bool,
    cal: Calibration = CALIBRATION,
) -> float:
    """Gram computations (syrk), whose runtime *grows* with task count.

    Table III shows AᵀA getting slower from 1 → 32 threads in both codes
    (YELP C: 0.34 → 0.41 s): the syrk is tiny and the per-thread
    parallel-region overhead dominates.  Modeled as a capped-speedup base
    plus a linear per-task cost.
    """
    base = iterations * sum(d * rank * rank for d in dims) * cal.ata_flop_time
    sync = cal.ata_sync_cost_c if is_c else cal.ata_sync_cost_chapel
    return base / min(ntasks, 4) + sync * (ntasks - 1)


def norm_time(
    dims: tuple[int, ...],
    rank: int,
    iterations: int,
    ntasks: int,
    *,
    is_c: bool,
    qt_affinity: bool,
    omp_threads: int,
    cal: Calibration = CALIBRATION,
) -> float:
    """Column normalization; pays the §V-E migration penalty when
    QT_AFFINITY=no put OpenMP threads in play."""
    t1 = iterations * sum(dims) * rank * cal.norm_elem_time
    s = 0.04 if is_c else 0.11
    t = amdahl(t1, ntasks, s)
    if not is_c:
        t *= norm_interference_factor(
            ntasks, qt_affinity=qt_affinity, omp_threads=omp_threads, cal=cal
        )
    return t


def fit_time(
    dims: tuple[int, ...],
    rank: int,
    iterations: int,
    ntasks: int,
    *,
    cal: Calibration = CALIBRATION,
) -> float:
    """CPD fit: one elementwise pass over the last-mode MTTKRP output."""
    t1 = iterations * dims[-1] * rank * cal.fit_elem_time
    return amdahl(t1, ntasks, 0.2)
