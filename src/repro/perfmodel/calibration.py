"""Calibrated per-operation constants and their provenance.

Every constant below is calibrated **once** against the paper's Table III
(the initial per-routine runtimes at 1 and 32 threads on YELP and NELL-2)
and then held fixed for every simulated figure — Figs 1-10 are produced
from these same numbers, so the crossovers and ratios they show are model
predictions, not per-figure fits.  Each constant's derivation is given in
its docstring comment.

The division of labour: :mod:`repro.perfmodel.machine` holds hardware
facts, this module holds the implementation-dependent behaviour (what the
paper's §V attributes to Chapel, its tasking layer, and its lock choices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Calibration", "CALIBRATION"]


def _mttkrp_mults() -> dict[str, float]:
    return {
        # The C reference and our vectorized stand-in: definitionally 1.
        "c": 1.0,
        "vectorized": 1.0,
        # Fig 5/6: serial optimized Chapel MTTKRP is 14.01 s vs C's 13.13 s
        # (YELP) and 118.33 vs 109.25 (NELL-2) → ~1.07x.
        "pointer": 1.07,
        # §V-D1: the pointer rewrite gained "about a 1.26x speed-up over the
        # 2D indexing approach" → 2D-index = 1.07 × 1.26.
        "index2d": 1.35,
        # Table III: Chapel-initial MTTKRP is 225.11/13.31 ≈ 16.9x (YELP)
        # and 1999/109.25 ≈ 18.3x (NELL-2) slower than C → 17.5 midpoint.
        "slicing": 17.5,
    }


def _sort_mults() -> dict[str, float]:
    return {
        "lexsort": 1.0,  # the C baseline
        # Table III: Chapel-initial sort is 7.21/0.82 ≈ 8.8x (YELP) and
        # 69.04/7.90 ≈ 8.7x (NELL-2) slower than C.
        "initial": 8.75,
        # §V-C: the recurring 2-element array allocation "can account for as
        # much as 10% of the sorting runtime" → removing it leaves 90%.
        "array_opt": 7.9,
        # §V-C: the slice-copy fix alone "improved the entire sorting
        # routine by roughly 4x".
        "slices_opt": 2.2,
        # Figs 5/6: fully optimized Chapel sort is 0.93/0.82 ≈ 1.13x (YELP)
        # and 9.86/7.90 ≈ 1.25x (NELL-2) of C.
        "all_opts": 1.19,
    }


def _sort_serial_fracs() -> dict[str, float]:
    # Amdahl serial fractions solved from the 1 → 32 task speedups:
    # T(p) = T(1)·((1-s)/p + s).
    return {
        # C: YELP 0.82→0.07 s and NELL-2 7.9→0.63 s at 32 → s ≈ 0.056.
        "lexsort": 0.056,
        # Chapel-initial: NELL-2 69.04→5.01 s at 32 → s ≈ 0.043 (the
        # interpreted work is abundant and embarrassingly parallel).
        "initial": 0.043,
        "array_opt": 0.045,
        "slices_opt": 0.08,
        # Chapel all-opts: YELP 0.93→0.15 s at 32 → s ≈ 0.134 (a fixed
        # serial setup cost dominates once the parallel work is fast).
        "all_opts": 0.134,
    }


@dataclass(frozen=True)
class Calibration:
    """The calibrated implementation constants (see module docstring)."""

    # ------------------------------------------------------------- MTTKRP
    #: Per-variant multiplier on the machine's base element-op time.
    mttkrp_variant_mult: dict[str, float] = field(default_factory=_mttkrp_mults)

    #: Amdahl serial fraction of the C MTTKRP.  Solved from Table III:
    #: YELP 13.31→0.73 s and NELL-2 109.25→5.81 s at 32 tasks → s ≈ 0.023.
    mttkrp_serial_fraction_c: float = 0.023

    #: Same for Chapel (lock-free path).  NELL-2 (never locks):
    #: 118.33→6.03 s at 32 → s ≈ 0.020; YELP's excess over this is the
    #: lock model's job.
    mttkrp_serial_fraction_chapel: float = 0.021

    # -------------------------------------------------------------- locks
    #: Hub-contention coefficient: the probability that a lock acquire
    #: finds its lock held is modeled as κ·top_slice_share·(p-1)².
    #: Anchored so the YELP sync/Qthreads run at 32 tasks reproduces the
    #: paper's 14.5x atomic-vs-sync MTTKRP gap (§V-D2), given the YELP
    #: stand-in's measured hub concentration (top 1% of internal-mode
    #: slices owning ≈13% of the nonzeros → P(held) ≈ 0.68 at 32 tasks).
    contention_kappa: float = 5.3e-3

    #: Fraction of contended sync acquisitions that pay the full
    #: deschedule/reschedule context switch (the rest are absorbed by
    #: already-running wakeups).  Anchored with `sync_convoy_factor` to the
    #: pointer-variant (≈12 s) and slicing-variant (≈107 s) sync-lock
    #: overheads implied by Fig 4 and Table III at 32 tasks.
    sync_sleep_share: float = 0.75

    #: Wake-up convoy multiplier: each contended sync acquire additionally
    #: serializes behind ≈ convoy·p holders of hub locks, each holding for
    #: one row-update (variant-dependent).
    sync_convoy_factor: float = 1.6

    #: Uncontended lock-op base costs (seconds per acquire+release).
    atomic_base_cost: float = 15e-9   # Chapel atomic: test-and-set + clear
    sync_base_cost: float = 80e-9     # sync var full/empty bookkeeping
    fifo_sync_base_cost: float = 60e-9
    #: SPLATT's C pthread-spinlock pool: cheaper on both paths, which is
    #: what opens the paper's 0.73 vs 0.89 s YELP gap at 32 tasks (83%).
    c_lock_base_cost: float = 5e-9
    c_lock_contended_cost: float = 20e-9

    #: Contended-but-spinning cost for Chapel's atomic pool (and sync under
    #: fifo): spin iterations + cache-line ping-pong until the lock frees.
    #: Anchored so YELP's atomic MTTKRP at 32 tasks lands at ≈0.9 s vs C's
    #: 0.73 s (the paper's 83% low end).
    spin_contended_cost: float = 45e-9

    # --------------------------------------------------------------- sort
    #: Seconds per nonzero per tree-sort for the C counting+quick sort.
    #: Table III: YELP 0.82 s / (2 trees × 8M nnz) ≈ 51 ns (NELL-2 agrees:
    #: 7.9 / (2 × 77M) ≈ 51 ns).
    sort_cost_per_nnz: float = 51e-9
    sort_variant_mult: dict[str, float] = field(default_factory=_sort_mults)
    sort_serial_fraction: dict[str, float] = field(default_factory=_sort_serial_fracs)

    # ------------------------------------------------------------ inverse
    #: Seconds per dense flop in the LAPACK solve.  The potrs cost is
    #: 2·I·R² per mode-solve; Table III YELP (ΣI=127k): 0.94 s /
    #: (20 iters × 2 × 127k × 35²) ≈ 0.15 ns (NELL-2's 0.37 s at ΣI=50k
    #: agrees).
    inverse_flop_time: float = 0.15e-9
    #: OpenMP scaling efficiency of the C inverse (YELP 0.94→0.05 s at 32
    #: threads ≈ 59%).
    inverse_omp_efficiency: float = 0.59
    #: Chapel's serial-inverse overhead over C (Figs 5/6: 0.99/0.94).
    inverse_chapel_mult: float = 1.05

    # ----------------------------------------------- interference (§V-E)
    #: Peak slowdown of the OpenMP inverse under default Qthreads settings
    #: ("15x slower at 32 threads than the serial case").
    interference_peak_slowdown: float = 15.0
    #: Speedup over serial once QT_AFFINITY=no ("achieving a 2x speed-up
    #: rather than the initial 15x slow down").
    affinity_no_speedup: float = 2.0
    #: Further improvement from QT_SPINCOUNT=300 ("further improved ... by
    #: 2.3x").
    spincount_speedup: float = 2.3
    #: Qthreads' default spincount, below which the spincount fix is
    #: considered applied.
    spincount_threshold: int = 10_000
    #: Matrix-normalization slowdown when QT_AFFINITY=no at high task
    #: counts ("7x – 13x slow down ... at 32 threads"); midpoint.
    norm_affinity_penalty: float = 10.0

    # --------------------------------------------------- small routines
    #: Mat AᵀA: syrk flops are ≈ I·R² per mode; Table III YELP serial
    #: 0.34 s / (20 × 127k × 35²) ≈ 0.11 ns.
    ata_flop_time: float = 0.11e-9
    #: Per-task parallel-region overhead of the AᵀA routine, whose runtime
    #: *grows* with task count in Table III (YELP C 0.34→0.41 s).
    ata_sync_cost_c: float = 0.011
    ata_sync_cost_chapel: float = 0.016
    #: Mat norm: each mode's I_n·R elements are normalized once per
    #: iteration, ΣI·R per iteration in total; Table III YELP serial
    #: 0.14 s / (20 iters × 127k rows × 35) ≈ 1.57 ns (NELL-2:
    #: 20 × 50k × 35 × 1.57 ns ≈ 0.055 s vs the paper's 0.06 s).
    norm_elem_time: float = 1.57e-9
    #: CPD fit: one elementwise pass over the last-mode MTTKRP result;
    #: Table III YELP 0.04 s / (20 × 75k × 35) ≈ 0.76 ns (NELL-2:
    #: 20 × 29k × 35 × 0.76 ns ≈ 0.015 s vs the paper's 0.01 s).
    fit_elem_time: float = 0.76e-9


#: The calibration used by every simulated experiment.
CALIBRATION = Calibration()
