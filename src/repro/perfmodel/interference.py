"""Qthreads × OpenMP interference model (§V-E).

The matrix inverse is the one routine in the Chapel port that calls into
OpenMP-parallel OpenBLAS.  The paper isolates three regimes at high thread
counts:

1. **Default Qthreads** (workers pinned, 300k-iteration spin-wait):
   pinned spin-waiting workers steal cycles from the OpenMP threads — the
   inverse becomes up to **15x slower than serial** at 32 threads.
2. **QT_AFFINITY=no**: spin-waiting workers migrate out of the way — the
   inverse reaches a **2x speedup over serial** (still ~10x slower than C).
3. **QT_AFFINITY=no + QT_SPINCOUNT=300**: shorter spin-wait gives a
   further **2.3x** (still ~4x slower than C at 32).

Turning affinity off is not free: once the OpenMP region ends, migrated
Qthreads workers must migrate back, and the *matrix normalization* routine
that directly follows the inverse slows down **7-13x** at 32 tasks.

All four anchor numbers come straight from §V-E; interpolation between 1
and 32 threads is smooth in ``(threads-1)/31``.
"""

from __future__ import annotations

from repro.perfmodel.calibration import CALIBRATION, Calibration

__all__ = ["inverse_interference_factor", "norm_interference_factor"]


def _ramp(threads: int, limit: int = 32) -> float:
    """0 at 1 thread, 1 at ``limit``; quadratic (contention compounds)."""
    if threads <= 1:
        return 0.0
    return min((threads - 1) / (limit - 1), 1.0) ** 2


def inverse_interference_factor(
    omp_threads: int,
    *,
    qt_affinity: bool,
    qt_spincount: int,
    cal: Calibration = CALIBRATION,
) -> float:
    """Multiplier on the *serial* Chapel inverse time.

    1.0 at one OpenMP thread.  >1 means interference losses; <1 means the
    OpenMP parallelism actually helps (only after both §V-E mitigations).
    """
    if omp_threads <= 1:
        return 1.0
    if qt_affinity:
        # Regime 1: pinned spin-waiting workers fight the OpenMP threads.
        return 1.0 + (cal.interference_peak_slowdown - 1.0) * _ramp(omp_threads)
    # Regime 2: affinity off — approaches a 2x speedup at 32 threads.
    speedup = 1.0 + (cal.affinity_no_speedup - 1.0) * _ramp(omp_threads)
    if qt_spincount < cal.spincount_threshold:
        # Regime 3: short spin-wait — a further 2.3x at full ramp.
        speedup *= 1.0 + (cal.spincount_speedup - 1.0) * _ramp(omp_threads)
    return 1.0 / speedup


def norm_interference_factor(
    ntasks: int,
    *,
    qt_affinity: bool,
    omp_threads: int,
    cal: Calibration = CALIBRATION,
) -> float:
    """Multiplier on the matrix-normalization time (§V-E's side effect).

    Only bites when affinity is off *and* OpenMP threads were actually in
    play (otherwise there is nothing to migrate around), growing to the
    paper's ~10x midpoint at 32 tasks.
    """
    if qt_affinity or omp_threads <= 1:
        return 1.0
    return 1.0 + (cal.norm_affinity_penalty - 1.0) * _ramp(ntasks)
