"""Mutex-pool cost model (the Fig 4 mechanism).

The locked MTTKRP performs one lock acquire per output-row update — ``nnz``
acquires for a leaf-mode kernel, ``nfibers`` for an internal-mode kernel.
Three cost regimes, matching §V-D2:

* **atomic** (any layer) and **sync under fifo** — contended acquires spin
  briefly; cost per acquire is tens of nanoseconds.
* **sync under Qthreads** — a contended acquire *sleeps* the task: a share
  of contended acquires pays a full context switch, and hub locks form
  wake-up convoys whose length grows with the task count and with the
  duration of the row update held under the lock (slower access variants
  hold locks longer, which is why the naive port's YELP scaling collapses
  hardest in Table III).

Contention probability is driven by the tensor's hub concentration:
``P(held) = κ · top_slice_share · (p-1)²`` — quadratic in tasks because both
the number of competing tasks and each lock's utilization grow with ``p``.
"""

from __future__ import annotations

from repro.perfmodel.calibration import CALIBRATION, Calibration
from repro.perfmodel.machine import MACHINE, MachineModel

__all__ = ["contention_probability", "lock_overhead_seconds"]


def contention_probability(
    ntasks: int,
    top_slice_share: float,
    cal: Calibration = CALIBRATION,
) -> float:
    """Probability that a lock acquire finds its lock held."""
    if ntasks <= 1:
        return 0.0
    p = cal.contention_kappa * top_slice_share * (ntasks - 1) ** 2
    return min(p, 1.0)


def lock_overhead_seconds(
    lock_ops: int,
    ntasks: int,
    top_slice_share: float,
    *,
    mutex_kind: str,
    tasking_layer: str,
    hold_time: float,
    cal: Calibration = CALIBRATION,
    machine: MachineModel = MACHINE,
) -> float:
    """Wall-clock overhead added by the mutex pool to one locked MTTKRP.

    Parameters
    ----------
    lock_ops:
        Total acquires across all tasks (``nnz`` or ``nfibers``).
    ntasks:
        Parallel task count (1 → zero overhead: locks are compiled away
        serially).
    top_slice_share:
        Hub concentration of the output mode
        (:attr:`repro.tensor.stats.ModeStats.top_slice_share`).
    mutex_kind:
        ``"atomic"``, ``"sync"`` or ``"c"`` (SPLATT's own pthread pool).
    tasking_layer:
        ``"qthreads"`` or ``"fifo"``.
    hold_time:
        Seconds the lock is held per acquire — one row update, i.e.
        ``R × flop_time × variant_mult × 2``.
    """
    if ntasks <= 1 or lock_ops <= 0:
        return 0.0
    per_task_ops = lock_ops / ntasks
    p_cont = contention_probability(ntasks, top_slice_share, cal)

    if mutex_kind == "c":
        base = cal.c_lock_base_cost
        contended = p_cont * cal.c_lock_contended_cost
        return per_task_ops * (base + contended)

    if mutex_kind == "atomic":
        base = cal.atomic_base_cost
        contended = p_cont * cal.spin_contended_cost
        return per_task_ops * (base + contended)

    if mutex_kind != "sync":
        raise ValueError(f"unknown mutex kind {mutex_kind!r}")

    if tasking_layer == "fifo":
        # fifo sync vars spin — "competitive with the Qthreads and atomic
        # implementation" (Fig 4's FIFO-sync curve).
        base = cal.fifo_sync_base_cost
        contended = p_cont * cal.spin_contended_cost
        return per_task_ops * (base + contended)

    # sync under Qthreads: sleep + wake-up convoy.
    sleep = cal.sync_sleep_share * machine.context_switch_time
    convoy = cal.sync_convoy_factor * hold_time * ntasks
    return per_task_ops * (cal.sync_base_cost + p_cont * (sleep + convoy))
