"""CP-ALS — the paper's Algorithm 1, orchestrating every substrate.

:func:`cp_als` runs alternating least squares over the CSF-backed MTTKRP
kernels, timing each routine under the paper's six-way breakdown (MTTKRP,
Inverse, Mat AᵀA, Mat norm, CPD fit, Sort).
"""

from repro.core.cpals import CpalsResult, cp_als
from repro.core.kruskal import KruskalTensor
from repro.core.multistart import MultiStartResult, cp_als_best_of
from repro.core.model_io import (
    load_kruskal_dir,
    load_kruskal_npz,
    save_kruskal_dir,
    save_kruskal_npz,
)
from repro.core.options import CpalsOptions
from repro.core.timers import ROUTINES, RoutineTimers

__all__ = [
    "cp_als",
    "CpalsResult",
    "CpalsOptions",
    "KruskalTensor",
    "RoutineTimers",
    "ROUTINES",
    "cp_als_best_of",
    "MultiStartResult",
    "save_kruskal_npz",
    "load_kruskal_npz",
    "save_kruskal_dir",
    "load_kruskal_dir",
]
