"""The CP-ALS driver (Algorithm 1 of the paper, SPLATT's ``cpd_als``).

For each mode per iteration:

1. ``V ← ∗_{m≠n} A^(m)ᵀA^(m)``           (Mat AᵀA, using cached Grams)
2. ``M ← MTTKRP(X, A, n)``                (MTTKRP)
3. ``A^(n) ← solve(M, V)``                (Inverse — potrf/potrs)
4. normalize columns of ``A^(n)`` into λ  (Mat norm; 2-norm on the first
   iteration, max-norm after, as SPLATT does)
5. refresh the cached Gram of ``A^(n)``   (Mat AᵀA)

After the last mode the fit is evaluated from the final MTTKRP (CPD fit)
and the loop stops on convergence or the iteration cap.  The pre-processing
sort + CSF construction is timed as the paper's ``Sort`` routine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_rank
from repro.backend import resolve_backend
from repro.core.kruskal import KruskalTensor
from repro.core.options import CpalsOptions
from repro.core.timers import RoutineTimers
from repro.csf.build import build_csf_set
from repro.linalg.ata import gram, hadamard_gram
from repro.linalg.fit import calc_fit
from repro.linalg.inverse import solve_normal_equations
from repro.linalg.norms import normalize_columns
from repro.mttkrp.variants import MttkrpInfo, mttkrp_csf
from repro.observe import spans as _obs
from repro.resilience.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.runtime.accounting import CostCounters
from repro.runtime.locks import make_mutex_pool
from repro.runtime.tasking import make_tasking_layer
from repro.tensor.coo import SparseTensor

__all__ = ["cp_als", "CpalsResult"]


@dataclass
class CpalsResult:
    """Everything a CP-ALS run produced.

    Attributes
    ----------
    kruskal:
        The fitted model (λ and unit-column factors).
    fits:
        Fit after each completed iteration.
    iterations:
        Iterations actually executed.
    converged:
        True when the tolerance criterion stopped the loop.
    timers:
        Per-routine wall time, paper breakdown.
    counters:
        Synchronization events across the whole run.
    mttkrp_infos:
        One :class:`MttkrpInfo` per MTTKRP invocation, in execution order
        (records algorithm, variant and whether locks were used).
    engine_stats:
        Amortized-engine accounting for the run: scatter-plan cache
        hits/misses and bytes (from the CSF set's
        :class:`~repro.mttkrp.scatter.MttkrpContext`) merged with the
        tasking layer's worker-pool reuse counters.  Empty when the run
        used neither (e.g. interpreted variants with ``persistent=False``).
    """

    kruskal: KruskalTensor
    fits: list[float]
    iterations: int
    converged: bool
    timers: RoutineTimers
    counters: CostCounters
    mttkrp_infos: list[MttkrpInfo] = field(default_factory=list)
    engine_stats: dict = field(default_factory=dict)

    @property
    def fit(self) -> float:
        """Final fit."""
        return self.fits[-1] if self.fits else 0.0

    def summary(self) -> str:
        """Human-readable run report (what ``repro cpd`` prints)."""
        from repro.core.timers import ROUTINE_LABELS, ROUTINES

        lines = [
            f"rank-{self.kruskal.rank} CP model of a "
            f"{'x'.join(str(d) for d in self.kruskal.dims)} tensor",
            f"fit = {self.fit:.6f} after {self.iterations} iterations "
            f"(converged: {self.converged})",
            "per-routine seconds:",
        ]
        for routine in ROUTINES:
            lines.append(
                f"  {ROUTINE_LABELS[routine]:10s} {self.timers.total(routine):.4f}"
            )
        locked = sorted({i.mode for i in self.mttkrp_infos if i.used_locks})
        if locked:
            lines.append(f"mutex-pool MTTKRP modes: {locked} "
                         f"({self.counters.lock_acquires} acquires, "
                         f"{self.counters.lock_contended} contended)")
        else:
            lines.append("no-lock MTTKRP for all modes")
        if self.engine_stats:
            es = self.engine_stats
            lines.append(
                "amortized engine: "
                f"{es.get('plan_hits', 0)}/{es.get('plan_hits', 0) + es.get('plan_misses', 0)} "
                f"plan hits, {es.get('workers', 0)} pool workers over "
                f"{es.get('dispatches', 0)} dispatches"
            )
        return "\n".join(lines)


def init_factors(
    dims: tuple[int, ...], rank: int, seed: int | np.random.Generator | None
) -> list[np.ndarray]:
    """Random uniform factor initialization (SPLATT's ``mat_rand``)."""
    rng = as_rng(seed)
    return [np.asarray(rng.random((d, rank)), dtype=VALUE_DTYPE) for d in dims]


def cp_als(
    tensor: SparseTensor,
    rank: int,
    options: CpalsOptions | None = None,
    *,
    callback=None,
    csf_set=None,
    layer=None,
) -> CpalsResult:
    """Run CP-ALS on a sparse tensor.

    Parameters
    ----------
    tensor:
        Deduplicated COO tensor (order ≥ 2).
    rank:
        Decomposition rank ``R``.
    options:
        See :class:`CpalsOptions`; defaults reproduce the paper's setup
        except for rank/iterations, which callers pass explicitly.
    callback:
        Optional per-iteration observer ``callback(iteration, fit,
        factors)`` invoked after each completed ALS sweep (iteration is
        1-based; factors are the live matrices — copy before storing).
        Returning ``True`` stops the loop early (``converged`` stays
        False).
    csf_set:
        Optional pre-built :class:`~repro.csf.build.CsfSet` for *this*
        tensor.  Skips the sort + CSF construction entirely and reuses
        the set's :class:`~repro.mttkrp.scatter.MttkrpContext` plan
        cache — how the serve daemon amortizes cold-start across
        requests (docs/SERVING.md).  Must match the tensor's dims and
        ``options.allocation``.
    layer:
        Optional pre-built tasking layer whose persistent worker pool
        should be reused instead of spinning up a fresh one.  The
        layer's cost-counter sink is repointed at this run's counters;
        callers sharing a layer must serialize their solves.

    Returns
    -------
    :class:`CpalsResult`

    Notes
    -----
    The interpreted MTTKRP variants (``slicing``/``index2d``/``pointer``)
    are 3rd-order only, as in the paper's port; ``vectorized`` (default)
    supports any order ≥ 2.
    """
    rank = check_rank(rank)
    if tensor.nmodes < 2:
        raise ValueError("CP-ALS requires an order-2+ tensor")
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an empty tensor")
    opts = options if options is not None else CpalsOptions()

    timers = RoutineTimers()
    counters = CostCounters()
    if layer is None:
        layer = make_tasking_layer(opts.env, counters)
    else:
        if layer.env.tasking_layer != opts.env.tasking_layer:
            raise ValueError(
                f"shared layer is {layer.env.tasking_layer!r} but options "
                f"request {opts.env.tasking_layer!r}"
            )
        # repoint the shared layer's accounting at this run's counters so
        # sync-event reports stay per-run even when the pool is long-lived
        layer.counters = counters
    pool = make_mutex_pool(opts.mutex_kind, size=opts.pool_size, env=opts.env, counters=counters)

    run_span = _obs.span(
        "cp_als",
        rank=rank,
        dims=list(tensor.dims),
        nnz=tensor.nnz,
        variant=opts.variant,
        allocation=opts.allocation,
        ntasks=opts.env.num_tasks,
        tasking_layer=opts.env.tasking_layer,
    )
    with run_span:
        # Resolve the kernel backend once for the whole run; a compiled
        # backend pays its one-time JIT/compile cost here, inside the run
        # span, under its own distinct backend.compile span — never
        # attributed to mttkrp/mat_ata timers.
        bk = resolve_backend(opts.backend)
        if bk.compiled:
            bk.ensure_ready()
        run_span.set_attrs(backend=bk.name)
        # --- Sort: pre-processing sort + CSF construction (paper's Sort row) ---
        if csf_set is None:
            with timers.time("sort"):
                csf_set = build_csf_set(
                    tensor, allocation=opts.allocation, sort_variant=opts.sort_variant
                )
        else:
            # warm path (serve daemon): the caller's cached set stands in
            # for the build; its plan cache carries over between runs
            if csf_set.trees[0].dims != tensor.dims:
                raise ValueError(
                    f"csf_set is for a "
                    f"{'x'.join(str(d) for d in csf_set.trees[0].dims)} tensor, "
                    f"not {'x'.join(str(d) for d in tensor.dims)}"
                )
            if csf_set.allocation != opts.allocation:
                raise ValueError(
                    f"csf_set was built with allocation {csf_set.allocation!r} "
                    f"but options request {opts.allocation!r}"
                )
            run_span.set_attrs(csf_reused=True)
            _obs.count("cp_als.csf_reused")

        nmodes = tensor.nmodes
        fits: list[float] = []
        start_iteration = 0
        if opts.resume_from is not None:
            ck = load_checkpoint(opts.resume_from, expect_kind="cp_als")
            if ck.meta.get("rank") != rank or tuple(ck.meta.get("dims", ())) != tensor.dims:
                raise CheckpointError(
                    f"{opts.resume_from}: checkpoint is for a rank-"
                    f"{ck.meta.get('rank')} model of a "
                    f"{'x'.join(str(d) for d in ck.meta.get('dims', ()))} tensor, "
                    f"not rank-{rank} of {'x'.join(str(d) for d in tensor.dims)}"
                )
            factors = [np.asarray(f, dtype=VALUE_DTYPE) for f in ck.factors]
            lam = np.asarray(ck.arrays["lambda"], dtype=VALUE_DTYPE)
            fits = [float(f) for f in ck.arrays["fits"]]
            start_iteration = ck.iteration
            run_span.set_attrs(resumed_from_iteration=start_iteration)
        else:
            factors = init_factors(tensor.dims, rank, opts.seed)
            lam = np.ones(rank, dtype=VALUE_DTYPE)
        xnorm2 = tensor.norm() ** 2

        with timers.time("mat_ata"):
            grams = [gram(f, backend=bk) for f in factors]

        out_buffers = {m: np.zeros((tensor.dims[m], rank), dtype=VALUE_DTYPE) for m in range(nmodes)}
        infos: list[MttkrpInfo] = []
        converged = False
        iterations = start_iteration

        def checkpoint(completed: int) -> None:
            if opts.checkpoint_path is None or completed % opts.checkpoint_every:
                return
            save_checkpoint(
                opts.checkpoint_path,
                kind="cp_als",
                iteration=completed,
                factors=factors,
                arrays={"lambda": lam, "fits": np.asarray(fits, dtype=float)},
                meta={"rank": rank, "dims": list(tensor.dims), "nnz": tensor.nnz},
            )

        for it in range(start_iteration, opts.max_iterations):
            last_mttkrp: np.ndarray | None = None
            with _obs.span("cp_als.iteration", iteration=it + 1):
                for mode in range(nmodes):
                    with timers.time("mat_ata"):
                        v = hadamard_gram(factors, mode, grams=grams)
                    with timers.time("mttkrp"):
                        m_out, info = mttkrp_csf(
                            csf_set,
                            factors,
                            mode,
                            variant=opts.variant,
                            layer=layer,
                            pool=pool,
                            force_locks=opts.force_locks,
                            out=out_buffers[mode],
                            backend=bk,
                        )
                    infos.append(info)
                    with timers.time("inverse"):
                        new_factor = solve_normal_equations(m_out, v)
                    with timers.time("mat_norm"):
                        normalize_columns(new_factor, which="2" if it == 0 else "max", out_lambda=lam)
                    factors[mode] = new_factor
                    with timers.time("mat_ata"):
                        grams[mode] = gram(new_factor, backend=bk)
                    last_mttkrp = m_out

                if last_mttkrp is None:  # zero-mode tensors never reach here
                    raise RuntimeError(
                        "CP-ALS sweep updated no modes; cannot compute fit"
                    )
                with timers.time("cpd_fit"):
                    fit = calc_fit(xnorm2, lam, factors, last_mttkrp, grams=grams)
            fits.append(fit)
            iterations = it + 1
            checkpoint(iterations)
            if callback is not None and callback(iterations, fit, factors):
                break
            if opts.tolerance > 0 and it > 0 and abs(fits[-1] - fits[-2]) < opts.tolerance:
                converged = True
                break

        kruskal = KruskalTensor(lam.copy(), [f.copy() for f in factors])
        engine_stats: dict = {"backend": bk.name}
        if bk.compile_seconds:
            engine_stats["backend_compile_seconds"] = bk.compile_seconds
        ctx = getattr(csf_set, "_mttkrp_context", None)
        if ctx is not None:
            engine_stats.update(ctx.stats())
        if getattr(layer, "_pool", None) is not None:
            engine_stats.update(layer.worker_pool.stats())
        if layer.retries or layer.degraded_dispatches:
            # the pool mirrors these, but a fully-degraded run never
            # creates the pool — report the layer's accounting regardless
            engine_stats["retries"] = layer.retries
            engine_stats["backoff_seconds"] = layer.backoff_seconds
            engine_stats["degraded_dispatches"] = layer.degraded_dispatches
        run_span.set_attrs(iterations=iterations, converged=converged,
                           fit=float(fits[-1]) if fits else 0.0)
        for key, value in engine_stats.items():
            _obs.gauge(f"engine.{key}", value)
    return CpalsResult(
        kruskal=kruskal,
        fits=fits,
        iterations=iterations,
        converged=converged,
        timers=timers,
        counters=counters,
        mttkrp_infos=infos,
        engine_stats=engine_stats,
    )
