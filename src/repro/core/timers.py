"""Per-routine timers matching the paper's Table III / Figs 5-8 breakdown.

The paper reports six routine totals accumulated over 20 CP-ALS iterations:
``MTTKRP``, ``Inverse`` (Moore–Penrose), ``Mat AᵀA`` (lines 4/7/10),
``Mat norm`` (column normalization), ``CPD fit`` (line 13) and ``Sort``
(the pre-processing sort).  :class:`RoutineTimers` accumulates wall time
under those names and renders the same rows.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.observe import spans as _obs

__all__ = ["ROUTINES", "ROUTINE_LABELS", "RoutineTimers"]

#: Canonical routine keys, in the paper's column order.
ROUTINES: tuple[str, ...] = ("mttkrp", "sort", "mat_ata", "mat_norm", "cpd_fit", "inverse")

#: Display labels as printed in the paper.
ROUTINE_LABELS: dict[str, str] = {
    "mttkrp": "MTTKRP",
    "sort": "Sort",
    "mat_ata": "Mat A^TA",
    "mat_norm": "Mat norm",
    "cpd_fit": "CPD fit",
    "inverse": "Inverse",
}


@dataclass
class RoutineTimers:
    """Accumulates elapsed seconds per routine.

    Use as::

        timers = RoutineTimers()
        with timers.time("mttkrp"):
            ...

    or record externally-measured/simulated durations with :meth:`add`.
    """

    totals: dict[str, float] = field(default_factory=lambda: {r: 0.0 for r in ROUTINES})
    counts: dict[str, int] = field(default_factory=lambda: {r: 0 for r in ROUTINES})

    def _check(self, routine: str) -> str:
        if routine not in self.totals:
            raise KeyError(f"unknown routine {routine!r}; choose from {tuple(self.totals)}")
        return routine

    @contextmanager
    def time(self, routine: str):
        """Context manager accumulating wall time under ``routine``.

        When tracing is active the timed region is also emitted as a span
        named after the routine key, so the paper's breakdown appears
        directly in the trace timeline.
        """
        self._check(routine)
        with _obs.span(routine):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.add(routine, time.perf_counter() - start)

    def add(self, routine: str, seconds: float) -> None:
        """Record ``seconds`` of (measured or simulated) time."""
        self._check(routine)
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.totals[routine] += seconds
        self.counts[routine] += 1

    def total(self, routine: str) -> float:
        return self.totals[self._check(routine)]

    @property
    def grand_total(self) -> float:
        return sum(self.totals.values())

    def merge(self, other: "RoutineTimers") -> None:
        for r, t in other.totals.items():
            self._check(r)
            self.totals[r] += t
            self.counts[r] += other.counts[r]

    def as_row(self) -> dict[str, float]:
        """Routine → seconds, keyed by the paper's display labels."""
        return {ROUTINE_LABELS[r]: self.totals[r] for r in ROUTINES}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = ", ".join(f"{ROUTINE_LABELS[r]}={self.totals[r]:.4f}s" for r in ROUTINES)
        return f"RoutineTimers({cells})"
