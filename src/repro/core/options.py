"""CP-ALS configuration (SPLATT's ``splatt_default_opts`` analogue)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.csf.permute import CSF_ALLOCATIONS
from repro.mttkrp.variants import ACCESS_VARIANTS
from repro.runtime.env import ChapelEnv
from repro.tensor.sort import SORT_VARIANTS

__all__ = ["CpalsOptions", "DEFAULT_RANK", "DEFAULT_ITERATIONS"]

#: The paper's experiments use rank 35 and 20 iterations throughout (§V-A).
DEFAULT_RANK = 35
DEFAULT_ITERATIONS = 20


@dataclass
class CpalsOptions:
    """Everything configurable about a CP-ALS run.

    Attributes
    ----------
    max_iterations:
        ALS iteration cap (paper: 20).
    tolerance:
        Stop when the fit improves by less than this between iterations
        (SPLATT's default 1e-5).  Set to 0 to always run
        ``max_iterations`` — what the paper's timing runs do.
    variant:
        MTTKRP row-access variant (:data:`ACCESS_VARIANTS`).
    sort_variant:
        Pre-processing sort implementation (:data:`SORT_VARIANTS`).
    allocation:
        CSF allocation policy (:data:`CSF_ALLOCATIONS`).
    env:
        Runtime configuration (tasks, tasking layer, ...).
    mutex_kind:
        ``"atomic"`` or ``"sync"`` mutex pool for locked MTTKRP modes.
    pool_size:
        Mutex pool size.
    force_locks:
        Override the lock decision for non-root modes (``None`` = use
        :func:`repro.mttkrp.locks_policy.needs_locks`).
    backend:
        Kernel execution backend: ``"numpy"``, ``"numba"``, ``"cext"``,
        ``"auto"`` (first available compiled backend, silent fallback), or
        ``None`` to defer to ``$REPRO_BACKEND`` / the ``numpy`` default.
        See ``docs/BACKENDS.md``.
    seed:
        Seed for the random factor initialization.
    locales:
        Locale count for distributed runs.  ``1`` (the default) runs
        serial :func:`~repro.core.cpals.cp_als`; values > 1 route through
        :func:`~repro.distributed.cpals.distributed_cp_als` on a
        :func:`~repro.distributed.grid.choose_grid` grid.
    transport:
        Data plane for distributed runs: ``"sim"`` (in-process locales,
        metered simulation) or ``"proc"`` (spawned worker processes over
        shared memory — see docs/DISTRIBUTED.md).  Ignored when
        ``locales == 1`` unless set to ``"proc"``, which forces the
        distributed path even for a single locale.
    checkpoint_path:
        When set, snapshot the ALS state to this path (atomic ``.npz``,
        see :mod:`repro.resilience.checkpoint`) every
        ``checkpoint_every`` completed iterations.
    checkpoint_every:
        Snapshot cadence in iterations (default: every iteration).
    resume_from:
        Path of a ``cp_als`` checkpoint to resume from; the run continues
        at the saved iteration and reproduces an uninterrupted run
        bit-for-bit (same tensor, rank, and options required).
    """

    max_iterations: int = DEFAULT_ITERATIONS
    tolerance: float = 1e-5
    variant: str = "vectorized"
    sort_variant: str = "lexsort"
    allocation: str = "two"
    env: ChapelEnv = field(default_factory=ChapelEnv)
    mutex_kind: str = "atomic"
    pool_size: int = 1024
    force_locks: bool | None = None
    backend: str | None = None
    seed: int | None = 0
    checkpoint_path: str | os.PathLike | None = None
    checkpoint_every: int = 1
    resume_from: str | os.PathLike | None = None
    locales: int = 1
    transport: str = "sim"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if self.variant not in ACCESS_VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}; choose from {ACCESS_VARIANTS}")
        if self.sort_variant not in SORT_VARIANTS:
            raise ValueError(
                f"unknown sort_variant {self.sort_variant!r}; choose from {SORT_VARIANTS}"
            )
        if self.allocation not in CSF_ALLOCATIONS:
            raise ValueError(
                f"unknown allocation {self.allocation!r}; choose from {CSF_ALLOCATIONS}"
            )
        if self.mutex_kind not in ("atomic", "sync"):
            raise ValueError("mutex_kind must be 'atomic' or 'sync'")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.backend is not None and self.backend != "auto":
            from repro.backend import registered_backends

            if self.backend not in registered_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; choose from "
                    f"{', '.join(registered_backends())} or 'auto'"
                )
        if self.locales < 1:
            raise ValueError(f"locales must be >= 1, got {self.locales}")
        # Imported lazily, like the backend check above: core.options must
        # not import repro.distributed (which imports core) at module scope.
        from repro.distributed.transport import TRANSPORTS

        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORTS}"
            )
        if self.distributed and (
            self.checkpoint_path is not None or self.resume_from is not None
        ):
            raise ValueError(
                "checkpoint_path/resume_from (--checkpoint/--resume) are not "
                "supported with locales > 1 or transport='proc' — distributed "
                "runs have no checkpoint format yet; checkpoint serial runs only"
            )

    @property
    def distributed(self) -> bool:
        """Whether this configuration routes through distributed CP-ALS."""
        return self.locales > 1 or self.transport == "proc"
