"""Kruskal (CP) tensors: the ``λ, A^(1..N)`` output of CP-ALS."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import VALUE_DTYPE, prod
from repro.linalg.fit import kruskal_norm_squared
from repro.tensor.coo import SparseTensor

__all__ = ["KruskalTensor"]


@dataclass
class KruskalTensor:
    """A rank-``R`` Kruskal model ``Z = Σ_r λ_r · a_r ∘ b_r ∘ …``.

    Attributes
    ----------
    weights:
        ``(R,)`` component weights λ.
    factors:
        ``N`` factor matrices, ``factors[n]`` of shape ``(I_n, R)`` with
        unit-normalized columns (CP-ALS maintains this).
    """

    weights: np.ndarray
    factors: list[np.ndarray]

    def __post_init__(self) -> None:
        self.weights = np.ascontiguousarray(self.weights, dtype=VALUE_DTYPE)
        self.factors = [np.ascontiguousarray(f, dtype=VALUE_DTYPE) for f in self.factors]
        if self.weights.ndim != 1:
            raise ValueError("weights must be 1-D")
        rank = self.rank
        for n, f in enumerate(self.factors):
            if f.ndim != 2 or f.shape[1] != rank:
                raise ValueError(f"factor {n} shape {f.shape} incompatible with rank {rank}")

    @property
    def rank(self) -> int:
        """Number of rank-one components ``R``."""
        return int(self.weights.shape[0])

    @property
    def nmodes(self) -> int:
        """Tensor order ``N``."""
        return len(self.factors)

    @property
    def dims(self) -> tuple[int, ...]:
        """Mode lengths of the modeled tensor."""
        return tuple(f.shape[0] for f in self.factors)

    def norm(self) -> float:
        """Frobenius norm ‖Z‖ computed from Grams (never densified)."""
        return float(np.sqrt(kruskal_norm_squared(self.weights, self.factors)))

    def to_dense(self) -> np.ndarray:
        """Materialize the full tensor (testing aid, O(prod(dims)·R))."""
        if prod(self.dims) > 50_000_000:
            raise MemoryError("refusing to densify a huge Kruskal tensor")
        rank = self.rank
        out = np.zeros(self.dims, dtype=VALUE_DTYPE)
        for r in range(rank):
            comp = self.weights[r]
            outer = self.factors[0][:, r]
            for f in self.factors[1:]:
                outer = np.multiply.outer(outer, f[:, r])
            out += comp * outer
        return out

    def predict(self, coords: np.ndarray) -> np.ndarray:
        """Model values at the given ``(k, N)`` coordinates.

        Used for completion-style evaluation and sparse residuals without
        densifying.
        """
        coords = np.asarray(coords)
        if coords.ndim != 2 or coords.shape[1] != self.nmodes:
            raise ValueError(f"coords must be (k, {self.nmodes}), got {coords.shape}")
        acc = np.broadcast_to(self.weights, (coords.shape[0], self.rank)).copy()
        for n, f in enumerate(self.factors):
            acc *= f[coords[:, n]]
        return acc.sum(axis=1)

    def fit_to(self, tensor: SparseTensor) -> float:
        """Exact relative fit against a sparse tensor.

        ``1 − ‖X − Z‖/‖X‖`` where the residual norm is expanded as
        ``‖X‖² − 2⟨X,Z⟩ + ‖Z‖²``; ``⟨X,Z⟩`` needs only the model values at
        the nonzero coordinates.
        """
        if tensor.dims != self.dims:
            raise ValueError(f"tensor dims {tensor.dims} != model dims {self.dims}")
        xnorm2 = tensor.norm() ** 2
        znorm2 = kruskal_norm_squared(self.weights, self.factors)
        inner = float(tensor.values @ self.predict(tensor.coords))
        residual_sq = max(xnorm2 + znorm2 - 2.0 * inner, 0.0)
        xnorm = float(np.sqrt(xnorm2))
        if xnorm == 0.0:
            return 1.0
        return 1.0 - float(np.sqrt(residual_sq)) / xnorm
