"""Kruskal model persistence (SPLATT's factor-matrix output formats).

SPLATT's ``cpd`` writes ``mode<N>.mat`` text matrices plus a ``lambda.mat``
weight vector; we support that layout (one directory per model) and a
single-file compressed ``.npz`` round-trip used by the CLI.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro._util import VALUE_DTYPE
from repro.core.kruskal import KruskalTensor

__all__ = ["save_kruskal_npz", "load_kruskal_npz", "save_kruskal_dir", "load_kruskal_dir"]


def save_kruskal_npz(model: KruskalTensor, path: str | os.PathLike) -> None:
    """Write a model as one compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        weights=model.weights,
        **{f"factor{m}": f for m, f in enumerate(model.factors)},
    )


def load_kruskal_npz(path: str | os.PathLike) -> KruskalTensor:
    """Load a model written by :func:`save_kruskal_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if "weights" not in data.files:
            raise ValueError(f"{path}: not a Kruskal model (no 'weights')")
        nmodes = sum(1 for name in data.files if name.startswith("factor"))
        if nmodes == 0:
            raise ValueError(f"{path}: no factor matrices found")
        factors = []
        for m in range(nmodes):
            key = f"factor{m}"
            if key not in data.files:
                raise ValueError(f"{path}: missing {key} (non-contiguous modes)")
            factors.append(np.asarray(data[key], dtype=VALUE_DTYPE))
        return KruskalTensor(np.asarray(data["weights"], dtype=VALUE_DTYPE), factors)


def save_kruskal_dir(model: KruskalTensor, directory: str | os.PathLike) -> None:
    """Write SPLATT's text layout: ``mode<N>.mat`` + ``lambda.mat``.

    Each ``.mat`` file is whitespace-separated text, one matrix row per
    line — readable by SPLATT's own tooling and by ``numpy.loadtxt``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savetxt(directory / "lambda.mat", model.weights[None, :], fmt="%.17g")
    for m, factor in enumerate(model.factors):
        np.savetxt(directory / f"mode{m + 1}.mat", factor, fmt="%.17g")


def load_kruskal_dir(directory: str | os.PathLike) -> KruskalTensor:
    """Load a model written by :func:`save_kruskal_dir`."""
    directory = Path(directory)
    lam_path = directory / "lambda.mat"
    if not lam_path.exists():
        raise ValueError(f"{directory}: no lambda.mat — not a SPLATT model directory")
    weights = np.atleast_1d(np.loadtxt(lam_path, dtype=VALUE_DTYPE))
    rank = weights.shape[0]
    factors = []
    mode = 1
    while (directory / f"mode{mode}.mat").exists():
        factor = np.loadtxt(directory / f"mode{mode}.mat", dtype=VALUE_DTYPE)
        if factor.ndim == 1:
            # loadtxt flattens single-column and single-row matrices; the
            # rank (from lambda.mat) disambiguates the orientation
            factor = factor.reshape(-1, 1) if rank == 1 else factor.reshape(1, -1)
        factors.append(factor)
        mode += 1
    if not factors:
        raise ValueError(f"{directory}: no mode<N>.mat factor files found")
    return KruskalTensor(weights, factors)
