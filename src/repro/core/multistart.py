"""Multi-start CP-ALS: run several random initializations, keep the best.

CP-ALS converges to local optima and the attained fit varies with the
initialization; standard practice (and SPLATT users' habit) is a handful
of restarts.  :func:`cp_als_best_of` runs ``n_starts`` seeded restarts —
optionally concurrently on the tasking layer — and returns the best-fit
result plus the full fit spread, which the tests use to verify restart
variance actually exists and is conquered.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.cpals import CpalsResult, cp_als
from repro.core.options import CpalsOptions
from repro.tensor.coo import SparseTensor

__all__ = ["MultiStartResult", "cp_als_best_of"]


@dataclass
class MultiStartResult:
    """Best-of-N restart outcome."""

    best: CpalsResult
    fits: list[float]
    seeds: list[int]

    @property
    def best_seed(self) -> int:
        return self.seeds[self.fits.index(max(self.fits))]

    @property
    def fit_spread(self) -> float:
        """max − min final fit over the restarts."""
        return max(self.fits) - min(self.fits)


def cp_als_best_of(
    tensor: SparseTensor,
    rank: int,
    n_starts: int = 5,
    options: CpalsOptions | None = None,
    *,
    base_seed: int = 0,
) -> MultiStartResult:
    """Run ``n_starts`` CP-ALS restarts and keep the best final fit.

    Restart ``i`` uses seed ``base_seed + i`` (overriding ``options.seed``)
    so the sweep is reproducible and the individual runs are recoverable.
    """
    if n_starts < 1:
        raise ValueError("n_starts must be >= 1")
    opts = options if options is not None else CpalsOptions()
    results: list[CpalsResult] = []
    seeds = [base_seed + i for i in range(n_starts)]
    for seed in seeds:
        results.append(cp_als(tensor, rank, replace(opts, seed=seed)))
    fits = [r.fit for r in results]
    best = results[fits.index(max(fits))]
    return MultiStartResult(best=best, fits=fits, seeds=seeds)
