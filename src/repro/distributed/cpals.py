"""Distributed CP-ALS over simulated locales (medium-grained algorithm).

Executes the *real* algorithm — each locale owns a real sub-tensor with its
own CSF set and computes real local MTTKRPs; the fold/expand exchanges are
performed in-process and metered — so the numerics match serial CP-ALS
while the communication behaviour matches the medium-grained paper's:

per mode ``m`` update:

1. **local MTTKRP** — every locale computes partials over its sub-volume;
   by construction its touched mode-``m`` rows lie inside its own mode
   layer's row block, so reduction never crosses layers.
2. **fold** — partials reduce to the block (simulated by summing; metered
   as each locale sending its touched-but-not-owned rows, reduce-scatter
   message pattern within the layer).
3. **solve + normalize** — the layer solves its row block against the
   replicated ``R×R`` normal matrix (Gram replication is ``O(R²)`` and not
   metered, as in the original).
4. **expand** — updated rows broadcast back to the locales that touch
   them (metered symmetrically).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_rank
from repro.core.cpals import init_factors
from repro.core.kruskal import KruskalTensor
from repro.csf.build import build_csf_set
from repro.distributed.comm import CommStats, expand_exchange, fold_exchange
from repro.distributed.grid import LocaleGrid, choose_grid
from repro.distributed.partition import MediumGrainPartition, partition_medium_grain
from repro.linalg.ata import gram, hadamard_gram
from repro.linalg.fit import calc_fit
from repro.linalg.inverse import solve_normal_equations
from repro.linalg.norms import normalize_columns
from repro.mttkrp.variants import mttkrp_csf
from repro.tensor.coo import SparseTensor

__all__ = ["DistributedResult", "distributed_cp_als"]


@dataclass
class DistributedResult:
    """Outcome of a simulated distributed CP-ALS run."""

    kruskal: KruskalTensor
    fits: list[float]
    iterations: int
    converged: bool
    seconds: float
    grid: LocaleGrid
    partition: MediumGrainPartition
    comm: CommStats

    @property
    def fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0


def _touched_rows(sub: SparseTensor, mode: int) -> np.ndarray:
    """Unique mode-``mode`` indices present in a locale's sub-tensor."""
    if sub.nnz == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(sub.mode_indices(mode))


def distributed_cp_als(
    tensor: SparseTensor,
    rank: int,
    *,
    nlocales: int = 4,
    grid: LocaleGrid | None = None,
    max_iterations: int = 20,
    tolerance: float = 1e-5,
    seed: int | None = 0,
) -> DistributedResult:
    """CP-ALS over a medium-grained locale decomposition.

    Parameters
    ----------
    nlocales / grid:
        Either a locale count (grid chosen by :func:`choose_grid`) or an
        explicit :class:`LocaleGrid`.
    Other parameters follow :func:`repro.core.cpals.cp_als`.

    Returns
    -------
    :class:`DistributedResult`, whose ``comm`` field holds the metered
    fold/expand traffic.  The fitted model matches serial CP-ALS to
    floating-point reduction-order differences.
    """
    rank = check_rank(rank)
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an empty tensor")
    if grid is None:
        grid = choose_grid(tensor.dims, nlocales)
    part = partition_medium_grain(tensor, grid)
    nmodes = tensor.nmodes

    # Per-locale substrate: CSF sets (skip empty locales) + touched rows.
    locale_csf = [
        build_csf_set(sub) if sub.nnz else None for sub in part.locale_tensors
    ]
    touched = [
        [_touched_rows(sub, m) for m in range(nmodes)]
        for sub in part.locale_tensors
    ]

    comm = CommStats()
    rng = as_rng(seed)
    factors = init_factors(tensor.dims, rank, rng)
    lam = np.ones(rank, dtype=VALUE_DTYPE)
    grams = [gram(f) for f in factors]
    xnorm2 = tensor.norm() ** 2

    fits: list[float] = []
    converged = False
    iterations = 0
    start = time.perf_counter()

    for it in range(max_iterations):
        last_mttkrp: np.ndarray | None = None
        for mode in range(nmodes):
            v = hadamard_gram(factors, mode, grams=grams)

            # 1. local MTTKRPs + 2. fold (sum partials; meter the traffic)
            m_global = np.zeros((tensor.dims[mode], rank), dtype=VALUE_DTYPE)
            for lrank, csf_set in enumerate(locale_csf):
                if csf_set is None:
                    continue
                m_local, _ = mttkrp_csf(csf_set, factors, mode)
                m_global += m_local
                rows = touched[lrank][mode]
                layer = part.layer_of_index(mode, int(rows[0])) if rows.size else 0
                lo, hi = part.row_block(mode, layer)
                layer_size = len(grid.layer_ranks(mode, layer))
                # within its layer each locale owns an even share of the block
                own = (hi - lo) // max(layer_size, 1)
                sent = max(int(rows.size) - own, 0)
                fold_exchange(comm, mode, sent, max(layer_size - 1, 0))

            # 3. solve + normalize (same sequence as serial CP-ALS)
            new_factor = solve_normal_equations(m_global, v)
            normalize_columns(new_factor, which="2" if it == 0 else "max", out_lambda=lam)
            factors[mode] = new_factor
            grams[mode] = gram(new_factor)

            # 4. expand: touched-but-not-owned rows flow back out
            for lrank, sub in enumerate(part.locale_tensors):
                if sub.nnz == 0:
                    continue
                rows = touched[lrank][mode]
                layer = part.layer_of_index(mode, int(rows[0]))
                lo, hi = part.row_block(mode, layer)
                layer_size = len(grid.layer_ranks(mode, layer))
                own = (hi - lo) // max(layer_size, 1)
                recv = max(int(rows.size) - own, 0)
                expand_exchange(comm, mode, recv, max(layer_size - 1, 0))

            last_mttkrp = m_global

        if last_mttkrp is None:  # zero-mode tensors cannot reach the sweep
            raise RuntimeError(
                "distributed CP-ALS sweep updated no modes; cannot compute fit"
            )
        fits.append(calc_fit(xnorm2, lam, factors, last_mttkrp, grams=grams))
        iterations = it + 1
        if tolerance > 0 and it > 0 and abs(fits[-1] - fits[-2]) < tolerance:
            converged = True
            break

    kruskal = KruskalTensor(lam.copy(), [f.copy() for f in factors])
    return DistributedResult(
        kruskal=kruskal,
        fits=fits,
        iterations=iterations,
        converged=converged,
        seconds=time.perf_counter() - start,
        grid=grid,
        partition=part,
        comm=comm,
    )
