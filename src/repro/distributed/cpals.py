"""Distributed CP-ALS over locales (medium-grained algorithm).

Executes the *real* algorithm — each locale owns a real sub-tensor with its
own CSF set and computes real local MTTKRPs — behind a pluggable
:class:`~repro.distributed.transport.Transport`:

``transport="sim"``
    every locale runs in this process; fold/expand are performed by the
    driver and metered (the original simulation — numerics match serial
    CP-ALS bit-for-bit).
``transport="proc"``
    every non-empty locale is a spawned worker process; the packed COO,
    factor matrices, λ and per-locale partials live in shared-memory
    segments mapped by all sides, and fold/expand are a medium-grained
    all-reduce over those segments (docs/DISTRIBUTED.md).  Numerics match
    the simulated transport because the driver folds locale partials in
    the same fixed rank order.

per mode ``m`` update:

1. **local MTTKRP** — every locale computes partials over its sub-volume;
   by construction its touched mode-``m`` rows lie inside its own mode
   layer's row block, so reduction never crosses layers.
2. **fold** — partials reduce to the block in ascending locale rank
   (metered via :func:`~repro.distributed.comm.exchange_counts` as each
   locale sending its touched-but-not-owned rows, reduce-scatter message
   pattern within the layer; fault-injectable at ``comm.fold``).
3. **solve + normalize** — the driver solves the full mode against the
   replicated ``R×R`` normal matrix (Gram replication is ``O(R²)`` and not
   metered, as in the original).
4. **expand** — the updated factor is published back to the locales
   (zero-copy through the shared factor segment under ``proc``; metered
   symmetrically, fault-injectable at ``comm.expand``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_rank
from repro.core.cpals import init_factors
from repro.core.kruskal import KruskalTensor
from repro.distributed.comm import (
    CommStats,
    exchange_counts,
    expand_exchange,
    fold_exchange,
)
from repro.distributed.grid import LocaleGrid, choose_grid
from repro.distributed.partition import MediumGrainPartition, partition_medium_grain
from repro.distributed.transport import make_transport
from repro.linalg.ata import gram, hadamard_gram
from repro.linalg.fit import calc_fit
from repro.linalg.inverse import solve_normal_equations
from repro.linalg.norms import normalize_columns
from repro.observe import spans as _obs
from repro.tensor.coo import SparseTensor

__all__ = ["DistributedResult", "distributed_cp_als"]


@dataclass
class DistributedResult:
    """Outcome of a distributed CP-ALS run."""

    kruskal: KruskalTensor
    fits: list[float]
    iterations: int
    converged: bool
    seconds: float
    grid: LocaleGrid
    partition: MediumGrainPartition
    comm: CommStats
    #: Transport the run executed on (``"sim"`` or ``"proc"``).
    transport: str = "sim"
    #: Per-locale numeric observe summaries (``proc`` only): locale rank →
    #: flat ``span.*``/``counter.*`` dict from that worker's recorder.
    locale_stats: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0


def _touched_rows(sub: SparseTensor, mode: int) -> np.ndarray:
    """Unique mode-``mode`` indices present in a locale's sub-tensor."""
    if sub.nnz == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(sub.mode_indices(mode))


def distributed_cp_als(
    tensor: SparseTensor,
    rank: int,
    *,
    nlocales: int = 4,
    grid: LocaleGrid | None = None,
    transport: str = "sim",
    backend=None,
    max_iterations: int = 20,
    tolerance: float = 1e-5,
    seed: int | None = 0,
    checkpoint_path=None,
    resume_from=None,
) -> DistributedResult:
    """CP-ALS over a medium-grained locale decomposition.

    Parameters
    ----------
    nlocales / grid:
        Either a locale count (grid chosen by :func:`choose_grid`) or an
        explicit :class:`LocaleGrid`.
    transport:
        ``"sim"`` (in-process, metered simulation — the default) or
        ``"proc"`` (real spawned worker processes exchanging through
        shared memory; see docs/DISTRIBUTED.md).
    backend:
        Kernel backend for the local MTTKRPs (``None`` defers to
        ``$REPRO_BACKEND``/default; under ``proc`` each worker resolves
        and compiles it independently).
    checkpoint_path / resume_from:
        **Not supported.**  Distributed runs have no checkpoint format
        yet; both are accepted only so direct callers get the same
        explicit :class:`ValueError` the serial API raises (via
        :class:`~repro.core.options.CpalsOptions`) instead of a silently
        ignored keyword.
    Other parameters follow :func:`repro.core.cpals.cp_als`.

    Returns
    -------
    :class:`DistributedResult`, whose ``comm`` field holds the metered
    fold/expand traffic (identical across transports — the data plane
    changes, the algorithm's communication pattern does not).  The fitted
    model matches serial CP-ALS to floating-point reduction-order
    differences.  ``seconds`` times the ALS sweep only; transport startup
    (worker spawn, shared-memory mapping, per-locale CSF build) happens
    before the clock starts, mirroring how the paper's timed regions
    exclude one-time setup.
    """
    rank = check_rank(rank)
    if checkpoint_path is not None or resume_from is not None:
        raise ValueError(
            "checkpoint_path/resume_from are not supported by "
            "distributed_cp_als — distributed runs have no checkpoint "
            "format yet; checkpoint serial cp_als runs only"
        )
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an empty tensor")
    if grid is None:
        grid = choose_grid(tensor.dims, nlocales)
    part = partition_medium_grain(tensor, grid)
    nmodes = tensor.nmodes

    touched = [
        [_touched_rows(sub, m) for m in range(nmodes)]
        for sub in part.locale_tensors
    ]

    comm = CommStats()
    rng = as_rng(seed)
    factors = init_factors(tensor.dims, rank, rng)
    lam = np.ones(rank, dtype=VALUE_DTYPE)
    grams = [gram(f) for f in factors]
    xnorm2 = tensor.norm() ** 2

    fits: list[float] = []
    converged = False
    iterations = 0

    tr = make_transport(transport, part, grid, rank, backend=backend)
    with tr:
        with _obs.span("dist.transport.start", transport=tr.name,
                       locales=grid.nlocales):
            tr.start(factors)
        start = time.perf_counter()

        for it in range(max_iterations):
            last_mttkrp: np.ndarray | None = None
            for mode in range(nmodes):
                with _obs.span("dist.mode", mode=mode, it=it, transport=tr.name):
                    v = hadamard_gram(factors, mode, grams=grams)

                    # 1. local MTTKRPs + 2. fold (reduce layer-block
                    # partials in ascending locale rank; meter the traffic)
                    m_global = np.zeros((tensor.dims[mode], rank), dtype=VALUE_DTYPE)
                    with _obs.span("dist.fold", mode=mode):
                        for lrank, lo, hi, partial in tr.mttkrp_partials(mode, factors):
                            m_global[lo:hi] += partial
                            sent, msgs = exchange_counts(
                                part, grid, mode, touched[lrank][mode]
                            )
                            fold_exchange(comm, mode, sent, msgs)

                    # 3. solve + normalize (same sequence as serial CP-ALS)
                    new_factor = solve_normal_equations(m_global, v)
                    normalize_columns(
                        new_factor, which="2" if it == 0 else "max", out_lambda=lam
                    )
                    factors[mode] = new_factor
                    grams[mode] = gram(new_factor)

                    # 4. expand: the solved rows flow back out to every
                    # locale that touches them
                    with _obs.span("dist.expand", mode=mode):
                        tr.push_factor(mode, new_factor)
                        for lrank in tr.active:
                            sent, msgs = exchange_counts(
                                part, grid, mode, touched[lrank][mode]
                            )
                            expand_exchange(comm, mode, sent, msgs)

                    last_mttkrp = m_global

            if last_mttkrp is None:  # zero-mode tensors cannot reach the sweep
                raise RuntimeError(
                    "distributed CP-ALS sweep updated no modes; cannot compute fit"
                )
            fits.append(calc_fit(xnorm2, lam, factors, last_mttkrp, grams=grams))
            iterations = it + 1
            if tolerance > 0 and it > 0 and abs(fits[-1] - fits[-2]) < tolerance:
                converged = True
                break

        seconds = time.perf_counter() - start

    kruskal = KruskalTensor(lam.copy(), [f.copy() for f in factors])
    return DistributedResult(
        kruskal=kruskal,
        fits=fits,
        iterations=iterations,
        converged=converged,
        seconds=seconds,
        grid=grid,
        partition=part,
        comm=comm,
        transport=tr.name,
        locale_stats=tr.locale_stats,
    )
