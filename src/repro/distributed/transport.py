"""Execution transports for distributed CP-ALS: simulated and real.

A :class:`Transport` supplies the driver loop in
:mod:`repro.distributed.cpals` with the two data-plane operations of the
medium-grained algorithm, leaving the metering, resilience hooks and
solver sequence in the driver where they are transport-independent:

* :meth:`Transport.mttkrp_partials` — every active locale's local MTTKRP
  over its sub-volume, returned as that locale's layer-block slice in
  locale-rank order (the driver folds them in that fixed order, so both
  transports produce bit-identical sums);
* :meth:`Transport.push_factor` — publish a freshly solved factor to the
  locales (the expand direction).

``sim`` (:class:`SimTransport`) executes every locale in-process, exactly
as the pre-transport simulation did: real per-locale CSF sets and real
local MTTKRPs, fold/expand performed by the driver and merely metered.

``proc`` (:class:`ProcTransport`) is the real thing: one spawned worker
process per non-empty locale, every bulk array — packed COO, factor
matrices, λ, per-locale partials — mapped through
:class:`~repro.distributed.shm.ShmArena` segments and never pickled.  A
mode update is a medium-grained all-reduce over shared memory: workers
publish their layer-block partials into their segments (fold), the
driver reduces them in rank order and writes the solved factor back into
the shared factor segment (expand); the only pipe traffic is tiny
control tuples.  Workers resolve their kernel backend independently and
return per-locale observe summaries at shutdown, which the driver merges
into its active trace (``locale{r}.*`` counters) and exposes as
``DistributedResult.locale_stats``.
"""

from __future__ import annotations

import numpy as np

from repro._util import VALUE_DTYPE
from repro.distributed.grid import LocaleGrid
from repro.distributed.partition import MediumGrainPartition
from repro.distributed.shm import ShmArena
from repro.observe import spans as _obs

__all__ = ["Transport", "SimTransport", "ProcTransport", "make_transport", "TRANSPORTS"]

#: Registered transport names (`--transport` / ``CpalsOptions.transport``).
TRANSPORTS: tuple[str, ...] = ("sim", "proc")

#: Seconds to wait for a worker to spawn, import and build its CSF.
_WORKER_START_TIMEOUT_S = 120.0
#: Seconds to wait for one local MTTKRP answer before declaring the
#: worker lost (generous: covers first-call JIT compilation).
_WORKER_REPLY_TIMEOUT_S = 300.0


class Transport:
    """Data-plane operations shared by all transports.

    Use as a context manager: ``__enter__`` builds per-locale state
    (``sim``) or spawns and connects the worker fleet (``proc``);
    ``__exit__`` always releases it.
    """

    name: str = "abstract"

    def __init__(self, part: MediumGrainPartition, grid: LocaleGrid, rank: int,
                 *, backend=None, allocation: str = "two"):
        self.part = part
        self.grid = grid
        self.rank = rank
        self.backend = backend
        self.allocation = allocation
        #: Locale ranks that own at least one nonzero, ascending.
        self.active = [
            lrank for lrank, sub in enumerate(part.locale_tensors) if sub.nnz
        ]
        #: Per-locale per-mode factor-row block (lo, hi) of its mode layer.
        coords = grid.coords()
        self.blocks = {
            lrank: [
                part.row_block(mode, coords[lrank][mode])
                for mode in range(grid.nmodes)
            ]
            for lrank in self.active
        }
        #: Per-locale numeric observe summaries, filled on close (proc).
        self.locale_stats: dict[int, dict[str, float]] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self, factors: list[np.ndarray]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- data plane ----------------------------------------------------
    def mttkrp_partials(
        self, mode: int, factors: list[np.ndarray]
    ) -> list[tuple[int, int, int, np.ndarray]]:
        """Every active locale's local MTTKRP for ``mode``.

        Returns ``(lrank, lo, hi, partial)`` tuples in ascending locale
        rank, where ``partial`` has shape ``(hi - lo, rank)`` and holds
        the locale's contribution to factor rows ``[lo, hi)`` (its mode
        layer's block; rows it does not touch are zero).
        """
        raise NotImplementedError

    def push_factor(self, mode: int, factor: np.ndarray) -> None:
        """Publish the solved ``factor`` for ``mode`` to the locales."""
        raise NotImplementedError


class SimTransport(Transport):
    """All locales executed in the driver process (the metered simulation)."""

    name = "sim"

    def start(self, factors: list[np.ndarray]) -> None:
        from repro.csf.build import build_csf_set

        self._csf = {
            lrank: build_csf_set(
                self.part.locale_tensors[lrank], allocation=self.allocation
            )
            for lrank in self.active
        }

    def close(self) -> None:
        self._csf = {}

    def mttkrp_partials(self, mode, factors):
        from repro.mttkrp.variants import mttkrp_csf

        out = []
        for lrank in self.active:
            m_local, _ = mttkrp_csf(
                self._csf[lrank], factors, mode, backend=self.backend
            )
            lo, hi = self.blocks[lrank][mode]
            out.append((lrank, lo, hi, m_local[lo:hi]))
        return out

    def push_factor(self, mode, factor):
        pass  # locales share the driver's factor list already


class ProcTransport(Transport):
    """One spawned process per non-empty locale, shared-memory data plane."""

    name = "proc"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._arena: ShmArena | None = None
        self._procs: dict[int, object] = {}
        self._conns: dict[int, object] = {}

    # ------------------------------------------------------------------
    def start(self, factors: list[np.ndarray]) -> None:
        import multiprocessing as mp

        from repro.distributed.worker import worker_main
        from repro.runtime.env import limit_blas_threads

        part, grid = self.part, self.grid
        arena = ShmArena()
        self._arena = arena
        try:
            with _obs.span("dist.shm.map", transport=self.name):
                coords, values, offsets = part.packed_coo()
                arena.put("coords", coords)
                arena.put("values", values)
                for m, f in enumerate(factors):
                    arena.put(f"factor{m}", np.ascontiguousarray(f, dtype=VALUE_DTYPE))
                arena.put("lam", np.ones(self.rank, dtype=VALUE_DTYPE))
                for lrank in self.active:
                    max_block = max(hi - lo for lo, hi in self.blocks[lrank])
                    arena.create(f"partial{lrank}", (max_block, self.rank), VALUE_DTYPE)
            _obs.count("dist.shm.bytes_mapped", arena.nbytes)
            _obs.gauge("dist.shm.segments", len(arena.manifest()))

            ctx = mp.get_context("spawn")
            manifest = arena.manifest()
            with _obs.span("dist.workers.spawn", locales=len(self.active)):
                # Workers inherit the environment at spawn: pin BLAS/OpenMP
                # to one thread each so N locales never oversubscribe.
                with limit_blas_threads(1):
                    for lrank in self.active:
                        parent_conn, child_conn = ctx.Pipe()
                        spec = {
                            "dims": part.locale_tensors[lrank].dims,
                            "rank": self.rank,
                            "nnz_range": (int(offsets[lrank]), int(offsets[lrank + 1])),
                            "blocks": self.blocks[lrank],
                            "allocation": self.allocation,
                            "backend": self._backend_name(),
                        }
                        proc = ctx.Process(
                            target=worker_main,
                            args=(child_conn, lrank, manifest, spec),
                            name=f"repro-locale{lrank}",
                            daemon=True,
                        )
                        proc.start()
                        child_conn.close()
                        self._procs[lrank] = proc
                        self._conns[lrank] = parent_conn
                for lrank in self.active:
                    msg = self._recv(lrank, _WORKER_START_TIMEOUT_S)
                    if msg[0] != "ready":  # pragma: no cover - protocol guard
                        raise RuntimeError(f"locale {lrank}: unexpected {msg[0]!r}")
        except BaseException:
            self.close()
            raise

    def _backend_name(self) -> str | None:
        """The backend choice as a spawn-safe string (or None = default)."""
        backend = self.backend
        if backend is None or isinstance(backend, str):
            return backend
        return backend.name

    def _recv(self, lrank: int, timeout: float):
        conn = self._conns[lrank]
        if not conn.poll(timeout):
            raise RuntimeError(
                f"locale {lrank} worker did not answer within {timeout:.0f}s"
            )
        try:
            msg = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"locale {lrank} worker died (pipe closed); "
                "partial results discarded"
            ) from None
        if msg[0] == "error":
            raise RuntimeError(
                f"locale {lrank} worker failed: {msg[1]}\n{msg[2]}"
            )
        return msg

    # ------------------------------------------------------------------
    def mttkrp_partials(self, mode, factors):
        # Broadcast first so all locales compute concurrently, then
        # collect in ascending rank order — the fold's fixed reduction
        # order, identical to the simulated transport's.
        for lrank in self.active:
            self._conns[lrank].send(("mttkrp", mode))
        out = []
        for lrank in self.active:
            msg = self._recv(lrank, _WORKER_REPLY_TIMEOUT_S)
            if msg != ("ok", mode):  # pragma: no cover - protocol guard
                raise RuntimeError(f"locale {lrank}: unexpected reply {msg!r}")
            lo, hi = self.blocks[lrank][mode]
            out.append((lrank, lo, hi, self._arena[f"partial{lrank}"][: hi - lo]))
        return out

    def push_factor(self, mode, factor):
        # The factor segment is the broadcast medium: one in-place write
        # and every locale's next read sees the new rows, zero-copy.
        self._arena[f"factor{mode}"][...] = factor

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            for lrank, conn in list(self._conns.items()):
                proc = self._procs[lrank]
                try:
                    if proc.is_alive():
                        conn.send(("stop",))
                        msg = self._recv(lrank, _WORKER_START_TIMEOUT_S)
                        if msg[0] == "metrics":
                            self.locale_stats[lrank] = msg[1]
                except (RuntimeError, BrokenPipeError, OSError):
                    pass  # already collecting the wreckage; keep going
                finally:
                    conn.close()
            for proc in self._procs.values():
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5.0)
        finally:
            self._conns.clear()
            self._procs.clear()
            if self._arena is not None:
                self._arena.close()
                self._arena = None
        rec = _obs.active_recorder()
        if rec is not None and self.locale_stats:
            for lrank, summary in sorted(self.locale_stats.items()):
                rec.absorb(summary, prefix=f"locale{lrank}.")


def make_transport(
    name: str,
    part: MediumGrainPartition,
    grid: LocaleGrid,
    rank: int,
    *,
    backend=None,
    allocation: str = "two",
) -> Transport:
    """Instantiate a registered transport by name."""
    if name == "sim":
        return SimTransport(part, grid, rank, backend=backend, allocation=allocation)
    if name == "proc":
        return ProcTransport(part, grid, rank, backend=backend, allocation=allocation)
    raise ValueError(f"unknown transport {name!r}; choose from {TRANSPORTS}")
