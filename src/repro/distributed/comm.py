"""Communication metering for the simulated distributed CP-ALS.

The medium-grained algorithm's per-mode-update traffic:

* **fold** — every locale sends its partial MTTKRP rows to the rows'
  owners inside its mode layer (reduce-scatter within the layer);
* **expand** — owners broadcast the freshly solved rows back to the
  locales whose sub-volumes touch them (allgather within the layer).

:class:`CommStats` accumulates the messages and payload bytes those
exchanges would put on a real interconnect, which is the quantity the
medium-grained paper (and any grid-shape ablation) optimizes.

Resilience: :func:`fold_exchange` / :func:`expand_exchange` are the
fault-injectable front doors the distributed driver calls.  Each pokes
its ``comm.fold`` / ``comm.expand`` site before metering; an injected
failure is retried per the active
:class:`~repro.resilience.retry.RetryPolicy` (resends metered as
``retried_messages``, simulated backoff accumulated in
``backoff_seconds``) and, once retries are exhausted, either degrades to
a fallback transport (``degraded_exchanges``; the payload still arrives,
as the in-process simulation always delivers) or propagates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import VALUE_DTYPE
from repro.observe import spans as _obs
from repro.resilience import fault as _flt
from repro.resilience import retry as _rty

__all__ = ["CommStats", "exchange_counts", "fold_exchange", "expand_exchange"]

_BYTES_PER_VALUE = VALUE_DTYPE().itemsize  # 8


@dataclass
class CommStats:
    """Aggregate communication metrics for one distributed run."""

    fold_rows: int = 0
    expand_rows: int = 0
    fold_messages: int = 0
    expand_messages: int = 0
    #: Per-mode breakdown: mode -> (fold_rows, expand_rows).
    per_mode: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Resilience accounting (only nonzero under fault injection):
    #: injected exchange failures, retried sends, messages re-put on the
    #: wire by those retries, simulated backoff, degraded-transport
    #: completions.
    faults_injected: int = 0
    retries: int = 0
    retried_messages: int = 0
    backoff_seconds: float = 0.0
    degraded_exchanges: int = 0

    def record_fold(self, mode: int, rows: int, messages: int) -> None:
        self.fold_rows += rows
        self.fold_messages += messages
        f, e = self.per_mode.get(mode, (0, 0))
        self.per_mode[mode] = (f + rows, e)

    def record_expand(self, mode: int, rows: int, messages: int) -> None:
        self.expand_rows += rows
        self.expand_messages += messages
        f, e = self.per_mode.get(mode, (0, 0))
        self.per_mode[mode] = (f, e + rows)

    def volume_bytes(self, rank: int) -> int:
        """Total payload for a decomposition rank ``R`` (each exchanged row
        is ``R`` doubles)."""
        return (self.fold_rows + self.expand_rows) * rank * _BYTES_PER_VALUE

    @property
    def total_messages(self) -> int:
        return self.fold_messages + self.expand_messages

    def merge(self, other: "CommStats") -> None:
        self.fold_rows += other.fold_rows
        self.expand_rows += other.expand_rows
        self.fold_messages += other.fold_messages
        self.expand_messages += other.expand_messages
        self.faults_injected += other.faults_injected
        self.retries += other.retries
        self.retried_messages += other.retried_messages
        self.backoff_seconds += other.backoff_seconds
        self.degraded_exchanges += other.degraded_exchanges
        for mode, (f, e) in other.per_mode.items():
            mf, me = self.per_mode.get(mode, (0, 0))
            self.per_mode[mode] = (mf + f, me + e)


def _resilient_send(stats: CommStats, site: str, messages: int) -> None:
    """Poke ``site`` with retry/degradation semantics, accounting into
    ``stats``.  Returns normally when the (simulated) exchange went
    through — possibly on the degraded transport."""
    plan = _flt._active_plan
    if plan is None:
        return
    policy = _rty.active_policy()
    attempts = 0
    while True:
        try:
            plan.poke(site)
            return
        except BaseException as exc:
            if policy is None or not policy.handles(exc):
                raise
            stats.faults_injected += 1
            if attempts < policy.max_retries:
                backoff = policy.backoff(attempts)
                attempts += 1
                stats.retries += 1
                stats.retried_messages += messages
                stats.backoff_seconds += backoff
                _obs.count("retry.attempts")
                policy.pause(backoff)
                continue
            if policy.degrade:
                # The layer-collective keeps failing; complete the exchange
                # over the (simulated) fallback transport instead of
                # killing the whole run.
                stats.degraded_exchanges += 1
                _obs.count("comm.degraded")
                return
            raise


def exchange_counts(part, grid, mode: int, rows) -> tuple[int, int]:
    """Rows and messages one locale puts on the wire for one layer
    collective (identical for fold and expand — the patterns are duals).

    ``rows`` is the locale's touched mode-``mode`` index array.  Within its
    layer each locale owns an even share of the layer's factor-row block;
    everything it touches beyond that share crosses the interconnect, in a
    reduce-scatter (fold) or allgather (expand) of ``layer_size - 1``
    messages.  A locale with no touched rows exchanges nothing.

    This is the single audited home of the metering math — both the fold
    and expand loops of every transport call it, so the two directions can
    never drift apart again.
    """
    if rows.size == 0:
        return 0, 0
    layer = part.layer_of_index(mode, int(rows[0]))
    lo, hi = part.row_block(mode, layer)
    layer_size = grid.layer_size(mode, layer)
    own = (hi - lo) // max(layer_size, 1)
    sent = max(int(rows.size) - own, 0)
    return sent, max(layer_size - 1, 0)


def fold_exchange(stats: CommStats, mode: int, rows: int, messages: int) -> None:
    """One metered fold (reduce-scatter) exchange, fault-injectable at the
    ``comm.fold`` site."""
    _resilient_send(stats, "comm.fold", messages)
    stats.record_fold(mode, rows, messages)


def expand_exchange(stats: CommStats, mode: int, rows: int, messages: int) -> None:
    """One metered expand (allgather) exchange, fault-injectable at the
    ``comm.expand`` site."""
    _resilient_send(stats, "comm.expand", messages)
    stats.record_expand(mode, rows, messages)
