"""Communication metering for the simulated distributed CP-ALS.

The medium-grained algorithm's per-mode-update traffic:

* **fold** — every locale sends its partial MTTKRP rows to the rows'
  owners inside its mode layer (reduce-scatter within the layer);
* **expand** — owners broadcast the freshly solved rows back to the
  locales whose sub-volumes touch them (allgather within the layer).

:class:`CommStats` accumulates the messages and payload bytes those
exchanges would put on a real interconnect, which is the quantity the
medium-grained paper (and any grid-shape ablation) optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import VALUE_DTYPE

__all__ = ["CommStats"]

_BYTES_PER_VALUE = VALUE_DTYPE().itemsize  # 8


@dataclass
class CommStats:
    """Aggregate communication metrics for one distributed run."""

    fold_rows: int = 0
    expand_rows: int = 0
    fold_messages: int = 0
    expand_messages: int = 0
    #: Per-mode breakdown: mode -> (fold_rows, expand_rows).
    per_mode: dict[int, tuple[int, int]] = field(default_factory=dict)

    def record_fold(self, mode: int, rows: int, messages: int) -> None:
        self.fold_rows += rows
        self.fold_messages += messages
        f, e = self.per_mode.get(mode, (0, 0))
        self.per_mode[mode] = (f + rows, e)

    def record_expand(self, mode: int, rows: int, messages: int) -> None:
        self.expand_rows += rows
        self.expand_messages += messages
        f, e = self.per_mode.get(mode, (0, 0))
        self.per_mode[mode] = (f, e + rows)

    def volume_bytes(self, rank: int) -> int:
        """Total payload for a decomposition rank ``R`` (each exchanged row
        is ``R`` doubles)."""
        return (self.fold_rows + self.expand_rows) * rank * _BYTES_PER_VALUE

    @property
    def total_messages(self) -> int:
        return self.fold_messages + self.expand_messages

    def merge(self, other: "CommStats") -> None:
        self.fold_rows += other.fold_rows
        self.expand_rows += other.expand_rows
        self.fold_messages += other.fold_messages
        self.expand_messages += other.expand_messages
        for mode, (f, e) in other.per_mode.items():
            mf, me = self.per_mode.get(mode, (0, 0))
            self.per_mode[mode] = (mf + f, me + e)
