"""Locale grids for the medium-grained decomposition.

A :class:`LocaleGrid` is an ``ℓ₁ × … × ℓ_N`` Cartesian arrangement of
``Π ℓ_m`` locales.  :func:`choose_grid` picks grid dimensions for a given
locale count the way SPLATT does: distribute the factors of the locale
count so the grid is proportional to the tensor's mode lengths (long modes
get more cuts), which minimizes the per-locale factor-row surface area —
the driver of communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro._util import check_positive, prod

__all__ = ["LocaleGrid", "choose_grid"]


@dataclass(frozen=True)
class LocaleGrid:
    """An N-dimensional Cartesian grid of locales."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("grid needs at least one dimension")
        for g in self.shape:
            check_positive("grid dim", g)

    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @property
    def nlocales(self) -> int:
        return prod(self.shape)

    def coords(self) -> list[tuple[int, ...]]:
        """All locale grid coordinates, rank order = row-major."""
        return list(product(*(range(g) for g in self.shape)))

    def rank_of(self, coord: tuple[int, ...]) -> int:
        """Row-major rank of a grid coordinate."""
        if len(coord) != self.nmodes:
            raise ValueError(f"coord {coord} has wrong arity for {self.shape}")
        rank = 0
        for c, g in zip(coord, self.shape):
            if not 0 <= c < g:
                raise ValueError(f"coord {coord} out of grid {self.shape}")
            rank = rank * g + c
        return rank

    def layer_ranks(self, mode: int, layer: int) -> list[int]:
        """Ranks of all locales in one layer of ``mode`` (the locales that
        share that mode's factor-row block — the fold/expand group)."""
        return [
            self.rank_of(c) for c in self.coords() if c[mode] == layer
        ]

    def layer_size(self, mode: int, layer: int) -> int:
        """Locales in one layer of ``mode`` (``Π shape / shape[mode]``).

        Validates ``layer`` like :meth:`layer_ranks` but without building
        the coordinate list — the comm-metering hot helper calls this per
        exchange.
        """
        if not 0 <= layer < self.shape[mode]:
            raise ValueError(f"layer {layer} out of range for mode {mode} of {self.shape}")
        return self.nlocales // self.shape[mode]


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def choose_grid(dims: tuple[int, ...], nlocales: int) -> LocaleGrid:
    """Pick a grid shape for ``nlocales`` proportional to ``dims``.

    Greedy: assign each prime factor of the locale count (largest first)
    to the mode whose current cut density ``grid_m / dims_m`` is lowest —
    long, uncut modes get cut first.  Reproduces SPLATT's default shapes
    (e.g. 16 locales on NELL-2's 12k×9k×29k → 2×2×4... biased to the 29k
    mode).
    """
    nlocales = check_positive("nlocales", nlocales)
    grid = [1] * len(dims)
    for p in _prime_factors(nlocales):
        target = min(range(len(dims)), key=lambda m: grid[m] / dims[m])
        grid[target] *= p
    # a grid dim cannot exceed its mode length
    for m, (g, d) in enumerate(zip(grid, dims)):
        if g > d:
            raise ValueError(
                f"cannot cut mode {m} (length {d}) into {g} layers; "
                f"use fewer locales"
            )
    return LocaleGrid(tuple(grid))
