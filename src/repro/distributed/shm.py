"""Zero-copy shared-memory segments for the multi-process transport.

The medium-grained all-reduce in :mod:`repro.distributed.transport` moves
factor matrices, λ, per-locale COO arrays and per-locale MTTKRP partials
between the driver and its locale worker processes.  None of that data is
ever pickled: every array lives in a named POSIX shared-memory segment
(:class:`multiprocessing.shared_memory.SharedMemory`) and both sides map
it directly — the same no-intermediate-I/O design Geronimo Anderson &
Dunlavy use to hand tensors between Chapel and C++/MPI through shared
mapped memory (arXiv:2310.10872).

:class:`ShmArena` is the ownership boundary:

* the **driver** ``create()``\\ s named arrays and later ``close()``\\ s the
  arena, which unmaps *and unlinks* every segment (an ``atexit`` hook
  backstops abnormal exits, and the OS-level ``resource_tracker`` catches
  a SIGKILLed driver);
* a **worker** builds its arena from the driver's :meth:`manifest` via
  :func:`ShmArena.attach`; its ``close()`` only unmaps.  Workers are
  spawned children sharing the driver's resource-tracker process, so a
  worker exiting can never unlink memory the driver still owns.

:func:`leaked_segments` scans ``/dev/shm`` for segments carrying this
module's name prefix — the CI leak check and the test suite call it after
every multi-process run to prove cleanup happened.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "leaked_segments", "SEGMENT_PREFIX"]

#: Every segment name starts with this, so leak checks can identify ours.
SEGMENT_PREFIX = "repro-shm"

#: Where POSIX shared memory appears as files on Linux.
_SHM_DIR = "/dev/shm"


class ShmArena:
    """A named collection of shared-memory-backed numpy arrays.

    Parameters
    ----------
    token:
        Run-unique suffix baked into every segment name; generated when
        omitted.  All segments of one arena are ``{prefix}-{token}-{key}``.
    """

    def __init__(self, token: str | None = None):
        self.token = token if token is not None else (
            f"{os.getpid()}-{secrets.token_hex(4)}"
        )
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._specs: dict[str, tuple[str, tuple[int, ...], str]] = {}
        self._owner = False
        self._closed = False
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------
    def create(self, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Allocate a zero-initialized named array segment (driver only)."""
        if key in self._segments:
            raise ValueError(f"arena already has a segment {key!r}")
        dtype = np.dtype(dtype)
        nbytes = max(int(np.prod(shape, dtype=np.int64)) * dtype.itemsize, 1)
        name = f"{SEGMENT_PREFIX}-{self.token}-{key}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self._owner = True
        if not self._atexit_registered:
            atexit.register(self._atexit_close)
            self._atexit_registered = True
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        arr.fill(0)
        self._segments[key] = seg
        self._arrays[key] = arr
        self._specs[key] = (seg.name, tuple(int(s) for s in shape), dtype.str)
        return arr

    def put(self, key: str, source: np.ndarray) -> np.ndarray:
        """``create`` a segment shaped like ``source`` and copy it in."""
        arr = self.create(key, source.shape, source.dtype)
        arr[...] = source
        return arr

    def manifest(self) -> dict[str, tuple[str, tuple[int, ...], str]]:
        """Picklable description of every segment: key → (name, shape, dtype).

        This tiny mapping is the *only* thing shipped to workers about the
        arena — the array payloads themselves are mapped, never copied.
        """
        return dict(self._specs)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, manifest: dict[str, tuple[str, tuple[int, ...], str]]) -> "ShmArena":
        """Map every segment of a driver's :meth:`manifest` (worker only).

        Workers are ``multiprocessing`` children of the driver and share
        its resource-tracker process, so attaching here only re-adds each
        name to the tracker's existing set — a worker exiting never
        unlinks memory the driver still owns, and the tracker still
        reclaims everything if the whole tree is SIGKILLed.
        """
        arena = cls(token="attached")
        for key, (name, shape, dtype_str) in manifest.items():
            seg = shared_memory.SharedMemory(name=name)
            arena._segments[key] = seg
            arena._arrays[key] = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype_str), buffer=seg.buf
            )
            arena._specs[key] = (name, tuple(shape), dtype_str)
        return arena

    # ------------------------------------------------------------------
    # common
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    @property
    def nbytes(self) -> int:
        """Total bytes mapped across all segments."""
        return sum(seg.size for seg in self._segments.values())

    def close(self) -> None:
        """Unmap every segment; the owning (creating) arena also unlinks.

        Idempotent.  Array views handed out by this arena become invalid.
        """
        if self._closed:
            return
        self._closed = True
        # Drop numpy views first: SharedMemory.close() fails while
        # exported buffers are alive.
        self._arrays.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except OSError:
                pass
            if self._owner:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        self._segments.clear()
        if self._atexit_registered:
            atexit.unregister(self._atexit_close)
            self._atexit_registered = False

    def _atexit_close(self) -> None:  # pragma: no cover - abnormal-exit hook
        self.close()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def leaked_segments() -> list[str]:
    """Names of live shared-memory segments created by this module.

    Empty after every well-behaved run; the CI ``distributed`` job fails
    if anything shows up here once the suite finishes.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # non-Linux: nothing we can observe
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
