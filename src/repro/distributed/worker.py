"""Locale worker process for the multi-process (``proc``) transport.

Each worker is one *locale* of the medium-grained decomposition, running
in its own interpreter (spawned, so nothing is inherited by accident).
On startup it

1. maps the driver's shared-memory arena (:class:`~repro.distributed.shm.ShmArena.attach`)
   — the packed COO arrays, the factor matrices and λ, and its partial
   output buffer are all zero-copy views into the same physical pages the
   driver sees;
2. slices its own nonzeros out of the packed COO segment (a view, not a
   copy) and builds its locale-local CSF set from them;
3. resolves its kernel backend independently through the ordinary
   registry precedence (``numba``/``cext`` compile per process — compiled
   kernels are what make per-process MTTKRPs fast enough for the fold to
   matter);

then serves the driver's command loop: for every ``("mttkrp", mode)`` it
computes the local MTTKRP over its sub-volume and writes the rows of its
mode layer's block into its partial segment (the write *is* the locale's
contribution to the fold all-reduce — no message carries payload).  The
whole life of the worker runs under a private
:class:`~repro.observe.TraceRecorder`; on ``("stop",)`` the recorder's
numeric metrics are returned so the driver can merge per-locale span and
counter summaries into its own observe stream.

Only tiny control tuples and the final metrics dict ever cross the pipe.
"""

from __future__ import annotations

import traceback

import numpy as np

from repro.backend import resolve_backend
from repro.csf.build import build_csf_set
from repro.distributed.shm import ShmArena
from repro.mttkrp.variants import mttkrp_csf
from repro.observe import spans as _obs
from repro.tensor.coo import SparseTensor

__all__ = ["worker_main", "numeric_metrics"]


def numeric_metrics(recorder: "_obs.TraceRecorder") -> dict[str, float]:
    """The recorder's flat metrics, numbers only (safe to ship and merge)."""
    return {
        name: float(value)
        for name, value in recorder.metrics().items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _serve(conn, locale_rank: int, manifest: dict, spec: dict) -> None:
    """Attach, build, and answer commands until ``stop`` (worker body)."""
    arena = ShmArena.attach(manifest)
    try:
        dims = tuple(spec["dims"])
        rank = int(spec["rank"])
        lo_nnz, hi_nnz = spec["nnz_range"]
        coords = arena["coords"][lo_nnz:hi_nnz]  # contiguous row slice: no copy
        values = arena["values"][lo_nnz:hi_nnz]
        sub = SparseTensor(coords, values, dims, name=f"locale{locale_rank}")
        with _obs.span("locale.csf.build", locale=locale_rank):
            csf_set = build_csf_set(sub, allocation=spec["allocation"])
        backend = resolve_backend(spec["backend"])
        backend.ensure_ready()
        _obs.gauge("locale.backend", backend.name)

        factors = [arena[f"factor{m}"] for m in range(len(dims))]
        partial = arena[f"partial{locale_rank}"]
        blocks = spec["blocks"]  # per-mode (lo, hi) factor-row block

        conn.send(("ready", locale_rank, backend.name))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            if msg[0] != "mttkrp":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {msg[0]!r}")
            mode = int(msg[1])
            with _obs.span("locale.mttkrp", locale=locale_rank, mode=mode):
                m_local, _ = mttkrp_csf(csf_set, factors, mode, backend=backend)
            lo, hi = blocks[mode]
            # The locale's touched rows lie inside its layer block by
            # medium-grained construction; publishing that block slice
            # into the shared partial segment is the fold contribution.
            partial[: hi - lo] = m_local[lo:hi]
            _obs.count("locale.fold_rows_published", hi - lo)
            conn.send(("ok", mode))
    finally:
        arena.close()


def worker_main(conn, locale_rank: int, manifest: dict, spec: dict) -> None:
    """Process entry point (must stay module-level for ``spawn`` pickling).

    Every outcome is reported through ``conn``: ``("ready", ...)`` once
    serving, ``("ok", mode)`` per MTTKRP, ``("metrics", dict)`` after
    ``stop``, and ``("error", repr, traceback)`` on any failure.
    """
    recorder = _obs.TraceRecorder()
    try:
        with _obs.tracing(recorder=recorder):
            _serve(conn, locale_rank, manifest, spec)
        conn.send(("metrics", numeric_metrics(recorder)))
    except BaseException as exc:  # surface, don't die silently
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except (BrokenPipeError, OSError):  # driver already gone
            pass
    finally:
        conn.close()
