"""Distributed-memory CP-ALS — the paper's future work, simulated.

The paper closes with: *"We also plan to incorporate SPLATT's novel
distributed-memory features for tensor decomposition in our code,
leveraging Chapel's multi-locales."*  The referenced algorithm is Smith &
Karypis's **medium-grained** decomposition (IPDPS 2016): an
``ℓ₁ × ℓ₂ × ℓ₃`` Cartesian grid of processes, each owning the nonzeros of
one sub-volume and a contiguous block of each factor's rows; every mode
update is a local MTTKRP followed by a fold (reduce partial rows to their
owners) and an expand (broadcast updated rows to the locales that need
them).

We have no cluster, so per DESIGN.md's substitution rule the *locales are
simulated in-process*: each locale holds a real sub-tensor (its own CSF),
computes real local MTTKRPs, and the fold/expand exchanges are performed
(and metered) explicitly.  The result is numerically identical to serial
CP-ALS — asserted in the tests — while
:class:`~repro.distributed.comm.CommStats` records exactly the message
counts and communication volumes the real algorithm would put on the wire,
which is the quantity the medium-grained paper optimizes.
"""

from repro.distributed.comm import CommStats
from repro.distributed.cpals import DistributedResult, distributed_cp_als
from repro.distributed.grid import LocaleGrid, choose_grid
from repro.distributed.partition import MediumGrainPartition, partition_medium_grain

__all__ = [
    "LocaleGrid",
    "choose_grid",
    "MediumGrainPartition",
    "partition_medium_grain",
    "CommStats",
    "distributed_cp_als",
    "DistributedResult",
]
