"""Distributed-memory CP-ALS — the paper's future work, simulated.

The paper closes with: *"We also plan to incorporate SPLATT's novel
distributed-memory features for tensor decomposition in our code,
leveraging Chapel's multi-locales."*  The referenced algorithm is Smith &
Karypis's **medium-grained** decomposition (IPDPS 2016): an
``ℓ₁ × ℓ₂ × ℓ₃`` Cartesian grid of processes, each owning the nonzeros of
one sub-volume and a contiguous block of each factor's rows; every mode
update is a local MTTKRP followed by a fold (reduce partial rows to their
owners) and an expand (broadcast updated rows to the locales that need
them).

We have no cluster, so the locales run on one node behind a pluggable
:class:`~repro.distributed.transport.Transport` (docs/DISTRIBUTED.md):

* ``"sim"`` — per DESIGN.md's substitution rule, locales execute
  *in-process*: each holds a real sub-tensor (its own CSF), computes real
  local MTTKRPs, and the fold/expand exchanges are performed (and
  metered) explicitly.
* ``"proc"`` — real scale-out: one spawned worker process per non-empty
  locale, with the packed COO arrays, factor matrices, λ and per-locale
  MTTKRP partials mapped zero-copy through
  :class:`multiprocessing.shared_memory` segments
  (:mod:`repro.distributed.shm`); fold/expand are a medium-grained
  all-reduce over those segments, mirroring the shared-mapped-memory
  interoperation of Geronimo Anderson & Dunlavy (arXiv:2310.10872).

Either way the result is numerically equivalent to serial CP-ALS —
asserted in the tests — while
:class:`~repro.distributed.comm.CommStats` records exactly the message
counts and communication volumes the real algorithm would put on the wire,
which is the quantity the medium-grained paper optimizes.
"""

from repro.distributed.comm import CommStats, exchange_counts
from repro.distributed.cpals import DistributedResult, distributed_cp_als
from repro.distributed.grid import LocaleGrid, choose_grid
from repro.distributed.partition import MediumGrainPartition, partition_medium_grain
from repro.distributed.shm import ShmArena, leaked_segments
from repro.distributed.transport import (
    TRANSPORTS,
    ProcTransport,
    SimTransport,
    Transport,
    make_transport,
)

__all__ = [
    "LocaleGrid",
    "choose_grid",
    "MediumGrainPartition",
    "partition_medium_grain",
    "CommStats",
    "exchange_counts",
    "distributed_cp_als",
    "DistributedResult",
    "Transport",
    "SimTransport",
    "ProcTransport",
    "make_transport",
    "TRANSPORTS",
    "ShmArena",
    "leaked_segments",
]
