"""Medium-grained data partition: sub-volumes and factor-row blocks.

Each mode's index space is cut into ``grid[m]`` contiguous chunks balanced
by that mode's nonzero histogram (chains-on-chains prefix split, as in the
medium-grained paper).  A locale at grid coordinate ``(c₁, …, c_N)`` owns

* the **nonzeros** whose mode-``m`` index falls in chunk ``c_m`` for every
  mode (its sub-volume), and
* the **factor rows** of chunk ``c_m`` of mode ``m``, shared evenly among
  the locales of its mode-``m`` layer (the fold/expand root for each row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.grid import LocaleGrid
from repro.tensor.coo import SparseTensor

__all__ = ["MediumGrainPartition", "partition_medium_grain", "mode_chunks"]


def mode_chunks(tensor: SparseTensor, mode: int, nchunks: int) -> np.ndarray:
    """Chunk boundaries for one mode, balanced by nonzero count.

    Returns ``(nchunks + 1,)`` index boundaries ``b`` with chunk ``c``
    covering indices ``[b[c], b[c+1])``.
    """
    dim = tensor.dims[mode]
    if nchunks > dim:
        raise ValueError(f"cannot cut mode {mode} (length {dim}) into {nchunks}")
    hist = np.bincount(tensor.mode_indices(mode), minlength=dim)
    cum = np.concatenate(([0], np.cumsum(hist)))
    targets = (np.arange(nchunks + 1) / nchunks) * tensor.nnz
    bounds = np.searchsorted(cum, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = dim
    np.maximum.accumulate(bounds, out=bounds)
    # guarantee non-empty index ranges (distinct boundaries)
    for c in range(1, nchunks):
        if bounds[c] <= bounds[c - 1]:
            bounds[c] = bounds[c - 1] + 1
    bounds[-1] = dim
    np.maximum.accumulate(bounds, out=bounds)
    return bounds


@dataclass
class MediumGrainPartition:
    """The full medium-grained assignment for one tensor and grid.

    Attributes
    ----------
    grid:
        The locale grid.
    chunk_bounds:
        Per-mode chunk boundaries (``chunk_bounds[m]`` has ``grid[m]+1``
        entries).
    locale_tensors:
        Per-rank sub-tensor in **global** coordinates (empty sub-volumes
        hold zero nonzeros).
    nnz_per_locale:
        Convenience view of the load balance.
    """

    grid: LocaleGrid
    chunk_bounds: list[np.ndarray]
    locale_tensors: list[SparseTensor]

    @property
    def nnz_per_locale(self) -> list[int]:
        return [t.nnz for t in self.locale_tensors]

    @property
    def imbalance(self) -> float:
        """max/mean nonzeros per locale (1.0 is perfect)."""
        counts = self.nnz_per_locale
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def row_block(self, mode: int, layer: int) -> tuple[int, int]:
        """The factor-row range owned by one layer of ``mode``."""
        b = self.chunk_bounds[mode]
        return int(b[layer]), int(b[layer + 1])

    def layer_of_index(self, mode: int, index: int) -> int:
        """Which mode-``m`` layer owns factor row ``index``."""
        b = self.chunk_bounds[mode]
        return int(np.searchsorted(b, index, side="right") - 1)

    def packed_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All locales' nonzeros packed back-to-back, for shared mapping.

        Returns ``(coords, values, offsets)`` where locale ``l``'s rows are
        ``coords[offsets[l]:offsets[l+1]]`` (empty locales get an empty
        range).  The multi-process transport copies these once into
        shared-memory segments; each worker then takes a zero-copy row
        slice — the packed layout exists so one segment serves every
        locale.
        """
        counts = np.asarray([t.nnz for t in self.locale_tensors], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        coords = np.concatenate([t.coords for t in self.locale_tensors], axis=0)
        values = np.concatenate([t.values for t in self.locale_tensors])
        return coords, values, offsets


def partition_medium_grain(tensor: SparseTensor, grid: LocaleGrid) -> MediumGrainPartition:
    """Cut ``tensor`` over ``grid`` (see module docstring)."""
    if grid.nmodes != tensor.nmodes:
        raise ValueError(
            f"grid order {grid.nmodes} != tensor order {tensor.nmodes}"
        )
    bounds = [mode_chunks(tensor, m, grid.shape[m]) for m in range(tensor.nmodes)]

    # layer id of every nonzero in every mode
    layer_ids = np.empty((tensor.nnz, tensor.nmodes), dtype=np.int64)
    for m in range(tensor.nmodes):
        layer_ids[:, m] = np.searchsorted(bounds[m], tensor.mode_indices(m), side="right") - 1

    # row-major rank of every nonzero's owning locale
    ranks = np.zeros(tensor.nnz, dtype=np.int64)
    for m in range(tensor.nmodes):
        ranks = ranks * grid.shape[m] + layer_ids[:, m]

    locale_tensors = []
    for rank in range(grid.nlocales):
        mask = ranks == rank
        locale_tensors.append(
            SparseTensor(
                tensor.coords[mask], tensor.values[mask], tensor.dims,
                name=f"{tensor.name}@locale{rank}",
            )
        )
    return MediumGrainPartition(grid=grid, chunk_bounds=bounds, locale_tensors=locale_tensors)
