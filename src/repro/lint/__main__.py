"""``python -m repro.lint`` — the static analyzer CLI.

Usage::

    python -m repro.lint [paths ...]            # default: src/repro or repro
    python -m repro.lint src/repro --json report.json
    python -m repro.lint --list-rules

Exit status: 0 when every finding is suppressed (with a written reason),
1 when any active finding remains, 2 on usage errors.  Configuration is
read from the nearest ``pyproject.toml`` (``[tool.reprolint]``) above the
first linted path unless ``--config`` names one explicitly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import LintEngine, load_config
from repro.lint.report import (
    render_json,
    render_rule_catalog,
    render_sarif,
    render_text,
)


def _find_pyproject(start: Path) -> Path | None:
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in [cur, *cur.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def _default_paths() -> list[str]:
    for candidate in ("src/repro", "repro"):
        if Path(candidate).is_dir():
            return [candidate]
    return ["."]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-level static analyzer enforcing the paper's "
                    "performance anti-patterns and the runtime's "
                    "concurrency discipline (docs/LINTING.md)",
    )
    parser.add_argument("paths", nargs="*", help="files/directories to lint "
                        "(default: src/repro)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the deterministic JSON report to PATH "
                             "('-' for stdout)")
    parser.add_argument("--sarif", metavar="PATH", default=None,
                        help="write a SARIF 2.1.0 report to PATH ('-' for "
                             "stdout)")
    parser.add_argument("--config", metavar="PYPROJECT", default=None,
                        help="pyproject.toml to read [tool.reprolint] from "
                             "(default: discovered upward from the first path)")
    parser.add_argument("--rules", metavar="ID[,ID...]", default=None,
                        help="run only these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in the text output")
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(render_rule_catalog())
        return 0

    paths = args.paths or _default_paths()
    pyproject = Path(args.config) if args.config else _find_pyproject(Path(paths[0]))
    config = load_config(pyproject)
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        engine = LintEngine(config, rules=rules)
    except ValueError as exc:
        parser.error(str(exc))

    findings = engine.lint_paths([Path(p) for p in paths], root=Path.cwd())

    if args.json is not None:
        payload = render_json(findings)
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")
    if args.sarif is not None:
        payload = render_sarif(findings)
        if args.sarif == "-":
            sys.stdout.write(payload)
        else:
            Path(args.sarif).write_text(payload, encoding="utf-8")
    if args.json != "-" and args.sarif != "-":
        sys.stdout.write(render_text(findings, show_suppressed=args.show_suppressed))

    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
