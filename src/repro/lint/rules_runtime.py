"""Runtime-discipline rules: the concurrency contracts of PRs 1–4.

The simulated Chapel runtime (``repro.runtime``), the tracer
(``repro.observe``) and the sanitizer (``repro.sanitize``) are *built on*
:mod:`threading`; everything else must go through them, or the dynamic
tooling (span nesting, vector clocks, lock accounting) silently loses
sight of the concurrency it is supposed to certify.  These rules make
that discipline static.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleView, Rule, register

_THREAD_MODULES = ("threading", "_thread")


def _check_raw_threading(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    if mod.matches(mod.config.threading_allow):
        return
    for node in mod.walk(ast.Import):
        for alias in node.names:
            if alias.name.split(".")[0] in _THREAD_MODULES:
                yield node, (
                    f"direct 'import {alias.name}' outside the runtime "
                    "allowlist: task parallelism must go through "
                    "repro.runtime (tasking layers, locks, pool) so the "
                    "observe spans and sanitize clocks see it"
                )
    for node in mod.walk(ast.ImportFrom):
        if node.module and node.module.split(".")[0] in _THREAD_MODULES:
            yield node, (
                f"direct 'from {node.module} import ...' outside the runtime "
                "allowlist: use repro.runtime primitives instead"
            )


def _enclosing_function(mod: ModuleView, node: ast.AST):
    for a in mod.ancestors(node):
        if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return a
    return None


def _receiver_dump(call: ast.Call) -> str | None:
    f = call.func
    if isinstance(f, ast.Attribute):
        return ast.dump(f.value)
    return None


def _check_lock_no_finally(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    """Statement-level ``X.acquire(...)`` must be immediately followed by a
    ``try:`` whose ``finally:`` releases the same receiver.

    Lock *implementations* are exempt: ``__enter__`` bodies (the matching
    ``__exit__`` releases) and functions themselves named
    ``acquire``/``release``.  Acquires used as expressions (spin loops,
    ``if not lock.acquire(blocking=False):``) are not statically checkable
    and are left to the dynamic sanitizer.
    """
    for stmt in mod.walk(ast.Expr):
        call = stmt.value
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"):
            continue
        fn = _enclosing_function(mod, stmt)
        if fn is not None and fn.name in ("__enter__", "__exit__",
                                          "acquire", "release"):
            continue
        receiver = _receiver_dump(call)
        nxt = mod.next_sibling(stmt)
        ok = False
        if isinstance(nxt, ast.Try) and nxt.finalbody:
            for fin in ast.walk(ast.Module(body=list(nxt.finalbody),
                                           type_ignores=[])):
                if (isinstance(fin, ast.Call)
                        and isinstance(fin.func, ast.Attribute)
                        and fin.func.attr == "release"
                        and _receiver_dump(fin) == receiver):
                    ok = True
                    break
        if not ok:
            yield stmt, (
                "acquire without an immediately-following try/finally "
                "release on the same lock: an exception between acquire and "
                "release deadlocks every later bucket (use 'pool.acquire(l); "
                "try: ... finally: pool.release(l)' or a with-block)"
            )


def _with_context_names(scope: ast.AST) -> set[str]:
    """Names used as with-contexts anywhere inside ``scope``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    names.add(item.context_expr.id)
    return names


def _check_span_no_ctx(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    """Every ``*.span(...)`` call must be governed by a ``with`` — either
    directly (``with _obs.span(...):``) or via a name that is entered in
    the same scope (``run_span = _obs.span(...)`` … ``with run_span:``).

    A span opened without ``with`` never closes on an exception, corrupting
    the trace's nesting for the rest of the run.
    """
    for node in mod.walk(ast.Call):
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"):
            continue
        parent = mod.parent(node)
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            continue
        if (isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)):
            scope = _enclosing_function(mod, node) or mod.tree
            if parent.targets[0].id in _with_context_names(scope):
                continue
        yield node, (
            "observe span opened outside a with-block: the span leaks "
            "open on any exception and corrupts trace nesting — use "
            "'with _obs.span(...):' (or bind it and 'with run_span:')"
        )


def _check_assert_invariant(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    for node in mod.walk(ast.Assert):
        yield node, (
            "bare assert guards a runtime invariant in library code: "
            "'python -O' strips it silently — raise RuntimeError/ValueError "
            "with a message instead (keep asserts in tests only)"
        )


register(Rule(
    id="raw-threading",
    category="runtime",
    summary="direct threading/_thread use outside the simulated runtime, "
            "observe, sanitize and resilience layers",
    paper="§III (tasking layers) — all parallelism goes through the runtime",
    check=_check_raw_threading,
))

register(Rule(
    id="lock-no-finally",
    category="runtime",
    summary="statement-level lock/pool acquire without an immediate "
            "try/finally release of the same receiver",
    paper="Fig 4 (mutex-pool scatter discipline)",
    check=_check_lock_no_finally,
))

register(Rule(
    id="span-no-ctx",
    category="runtime",
    summary="observe span opened outside a with-block (leaks open on "
            "exceptions, corrupting trace nesting)",
    check=_check_span_no_ctx,
))

register(Rule(
    id="assert-invariant",
    category="runtime",
    summary="bare assert guarding a runtime invariant in library code "
            "(silently stripped by python -O)",
    check=_check_assert_invariant,
))
