"""Finding renderers: human-readable text and deterministic JSON.

The JSON report is a pure function of the linted sources and the config —
no timestamps, no absolute paths, keys sorted, findings sorted by
``(path, line, col, rule)`` — so two runs over the same tree are
**byte-identical** (the determinism the test suite pins down, same
contract as the sanitizer's schedule-independent fingerprints).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.engine import RULES, Finding

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "summarize",
    "REPORT_VERSION",
    "SARIF_VERSION",
]

REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def summarize(findings: Sequence[Finding]) -> dict:
    """Counts by disposition and by rule (active findings only)."""
    active = [f for f in findings if not f.suppressed]
    by_rule: dict[str, int] = {}
    for f in active:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {
        "files_with_findings": len({f.path for f in findings}),
        "active": len(active),
        "suppressed": len(findings) - len(active),
        "by_rule": dict(sorted(by_rule.items())),
    }


def render_text(findings: Sequence[Finding], *, show_suppressed: bool = False,
                tool: str = "repro.lint") -> str:
    """One line per finding plus a summary, grep-friendly."""
    lines: list[str] = []
    shown = [f for f in findings if show_suppressed or not f.suppressed]
    for f in shown:
        mark = "allowed" if f.suppressed else "error"
        lines.append(f"{f.path}:{f.line}:{f.col}: {mark} [{f.rule}] {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
        if f.suppressed and f.reason:
            lines.append(f"    reason: {f.reason}")
    s = summarize(findings)
    if s["active"]:
        per_rule = ", ".join(f"{k}×{v}" for k, v in s["by_rule"].items())
        lines.append(
            f"{tool}: {s['active']} finding(s) ({per_rule}); "
            f"{s['suppressed']} suppressed"
        )
    else:
        lines.append(
            f"{tool}: clean ({s['suppressed']} suppressed finding(s) "
            "carry written reasons)"
        )
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding], *, tool: str = "repro.lint") -> str:
    """The deterministic JSON report (see module docstring)."""
    obj = {
        "version": REPORT_VERSION,
        "tool": tool,
        "summary": summarize(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def render_sarif(findings: Sequence[Finding], *, tool: str = "repro.lint") -> str:
    """SARIF 2.1.0, deterministic like the JSON report.

    Active findings become ``error``-level results; suppressed ones are
    emitted with a SARIF ``suppressions`` entry (kind ``inSource``) so
    viewers show them greyed out rather than dropping the audit trail.
    Fingerprints ride along as ``partialFingerprints`` for cross-run
    matching.
    """
    present = sorted({f.rule for f in findings})
    rules = []
    for rid in present:
        rule = RULES.get(rid)
        desc = rule.summary if rule is not None else rid
        entry = {
            "id": rid,
            "shortDescription": {"text": desc},
        }
        if rule is not None and rule.paper:
            entry["properties"] = {"paper": rule.paper}
        rules.append(entry)

    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": present.index(f.rule),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col + 1,
                    },
                },
                "logicalLocations": [{"fullyQualifiedName": f.scope}],
            }],
            "partialFingerprints": {"reproFingerprint/v1": f.fingerprint},
        }
        if f.snippet:
            region = result["locations"][0]["physicalLocation"]["region"]
            region["snippet"] = {"text": f.snippet}
        if f.suppressed:
            supp = {"kind": "inSource"}
            if f.reason:
                supp["justification"] = f.reason
            result["suppressions"] = [supp]
        results.append(result)

    obj = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool,
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"


def render_rule_catalog(rule_ids: Iterable[str] | None = None) -> str:
    """``--list-rules`` output: id, category, paper mapping, summary."""
    ids = sorted(rule_ids) if rule_ids is not None else sorted(RULES)
    lines = []
    for rid in ids:
        rule = RULES[rid]
        paper = f" [{rule.paper}]" if rule.paper else ""
        lines.append(f"{rid:<22} {rule.category:<8}{paper}")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines) + "\n"
