"""``repro.lint`` — static analyzer for the paper's performance discipline.

The dynamic tooling (``repro.observe`` traces, ``repro.sanitize`` races)
tells you what a *run* did; this package tells you what the *code* will do
before anything runs.  Its rules encode the three optimization stories of
the source paper as statically recognizable anti-patterns — per-call
allocation in hot kernels (Fig 1), row materialization via slice copies
(Figs 2–3), raw scatters and undisciplined shared-state updates (Fig 4) —
plus the concurrency discipline the simulated runtime depends on (no raw
threading, try/finally lock release, with-scoped spans, no strippable
asserts guarding invariants).

Run it with ``python -m repro.lint src/repro`` (exit 1 on any unsuppressed
finding), or programmatically::

    from repro.lint import LintEngine, LintConfig

    findings = LintEngine(LintConfig()).lint_paths(["src/repro"])
    assert not [f for f in findings if not f.suppressed]

Findings carry stable fingerprints (the sanitizer's determinism contract
applied to code identity) and are silenced only by inline
``# reprolint: allow(rule-id) — reason`` comments or the
``[tool.reprolint]`` allowlist.  See docs/LINTING.md for the rule catalog
and its paper mapping.
"""

from __future__ import annotations

from repro.lint.engine import (
    RULES,
    Finding,
    LintConfig,
    LintEngine,
    Rule,
    load_config,
    register,
)
from repro.lint.report import render_json, render_rule_catalog, render_text, summarize

# importing the rule modules populates RULES
from repro.lint import rules_hygiene, rules_perf, rules_runtime  # noqa: F401,E402

__all__ = [
    "RULES",
    "Finding",
    "LintConfig",
    "LintEngine",
    "Rule",
    "load_config",
    "register",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "summarize",
]
