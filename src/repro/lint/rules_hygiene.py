"""Hygiene rules: generic Python footguns that ride along with the lint.

Unlike the perf/runtime rules these have no paper mapping — they exist
because the failure modes they catch (swallowed KeyboardInterrupt, state
shared between calls) are disproportionately painful in a codebase whose
tests lean on reproducibility.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleView, Rule, register


def _check_bare_except(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    for node in mod.walk(ast.ExceptHandler):
        if node.type is None:
            yield node, (
                "bare 'except:' swallows SystemExit/KeyboardInterrupt too — "
                "catch a concrete exception type (or 'Exception' with a "
                "comment saying why)"
            )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _check_mutable_default(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    for fn in mod.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        args = fn.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                yield default, (
                    f"mutable default argument in {fn.name}(): the object is "
                    "shared across calls — default to None and create it in "
                    "the body"
                )


register(Rule(
    id="bare-except",
    category="hygiene",
    summary="bare 'except:' clause (swallows SystemExit/KeyboardInterrupt)",
    check=_check_bare_except,
))

register(Rule(
    id="mutable-default-arg",
    category="hygiene",
    summary="mutable default argument shared across calls",
    check=_check_mutable_default,
))
