"""Performance rules: the paper's Figures 1–3 as enforced anti-patterns.

These rules are scoped to the configured kernel modules
(:attr:`~repro.lint.engine.LintConfig.hot_modules` /
``scatter_modules``) — the code the paper's measurements are about —
because a one-time allocation in a driver costs nothing, while the same
line inside an MTTKRP kernel is exactly the regression of Fig 1.

A *hot context* is either a loop/comprehension body or the body of an
amortized kernel (any function taking a ``ws``/``workspace`` parameter)
outside its sanctioned ``if ws is None:`` / ``if plan is not None: …
else:`` fallback branches — see
:meth:`repro.lint.engine.ModuleView.hot_context`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleView, Rule, register

#: NumPy allocators whose appearance in a hot context means a fresh
#: ``O(n)`` buffer per call — the per-iteration cost PR 1 amortized away.
_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "copy", "argsort", "repeat",
})

_CONTEXT_HINT = {
    "loop": "inside a loop",
    "workspace": "in an amortized kernel outside its plan-less fallback",
}


def _is_np_call(node: ast.Call, names: frozenset[str]) -> bool:
    """``np.<name>(...)`` / ``numpy.<name>(...)`` for ``name`` in ``names``."""
    f = node.func
    return (
        isinstance(f, ast.Attribute)
        and f.attr in names
        and isinstance(f.value, ast.Name)
        and f.value.id in ("np", "numpy")
    )


def _is_newaxis_subscript(node: ast.AST) -> bool:
    """``x[:, None]`` / ``x[lo:hi, None]`` — a broadcast-shaping subscript."""
    if not isinstance(node, ast.Subscript):
        return False
    sl = node.slice
    elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
    return any(isinstance(e, ast.Constant) and e.value is None for e in elts)


def _newaxis_allocating(mod: ModuleView, node: ast.Subscript) -> bool:
    """New-axis subscripts only *materialize* when consumed by an
    allocating expression: a call argument (``np.add.at(..., v[:, None])``)
    or a non-augmented binary op (``e[:, None] * h``).  As an in-place
    target or augmented operand (``w *= v[:, None]``) it is a free view."""
    parent = mod.parent(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        return True
    if isinstance(parent, ast.keyword):
        grand = mod.parent(parent)
        return isinstance(grand, ast.Call)
    return isinstance(parent, ast.BinOp)


def _is_zero_size(call: ast.Call) -> bool:
    """``np.empty(0, ...)`` / ``np.zeros((0, rank))`` — empty-range sentinel
    returns, not per-element work."""
    if not call.args:
        return False
    first = call.args[0]
    if isinstance(first, ast.Tuple) and first.elts:
        first = first.elts[0]
    return isinstance(first, ast.Constant) and first.value == 0


def _check_hot_loop_alloc(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    cfg = mod.config
    if not mod.matches(cfg.hot_modules, cfg.hot_exclude):
        return
    for node in mod.walk(ast.Call):
        if not _is_np_call(node, _ALLOCATORS):
            continue
        if _is_zero_size(node):
            continue
        ctx = mod.hot_context(node)
        if ctx is None:
            continue
        yield node, (
            f"np.{node.func.attr} allocates {_CONTEXT_HINT[ctx]} (paper Fig 1 "
            "'Array-opt'): hoist it, or serve it from the plan-owned "
            "Workspace (repro.mttkrp.scatter.Workspace.buf)"
        )
    for node in mod.walk(ast.Subscript):
        if not _is_newaxis_subscript(node):
            continue
        if not _newaxis_allocating(mod, node):
            continue
        ctx = mod.hot_context(node)
        if ctx is None:
            continue
        yield node, (
            f"[:, None] broadcast materializes a temporary {_CONTEXT_HINT[ctx]} "
            "(paper Fig 1): stage it in a reusable Workspace buffer or fold "
            "it into an in-place update"
        )


def _index_has_slice(index: ast.AST) -> bool:
    """Is the index itself a column-slice gather like ``c[:, m]``?"""
    if not isinstance(index, ast.Subscript):
        return False
    sl = index.slice
    elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
    return any(isinstance(e, ast.Slice) for e in elts)


def _check_row_slice_copy(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    cfg = mod.config
    if not mod.matches(cfg.hot_modules, cfg.hot_exclude):
        return
    for node in mod.walk(ast.Call):
        # X[i].copy() / X[i, :].copy() — explicit row materialization, the
        # Chapel slice-descriptor overhead of Figs 2–3 ported to NumPy.
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr == "copy"
            and not node.args
            and isinstance(f.value, ast.Subscript)
            and mod.hot_context(node) is not None
        ):
            yield node, (
                "factor-row access copies the row (paper Figs 2–3 'slicing'): "
                "use a zero-copy 2-D index/view, or Workspace.take for batch "
                "gathers"
            )
    for node in mod.walk(ast.Subscript):
        # A[c[:, m]] — a fancy-indexed batch gather allocating one row copy
        # per element, in a hot context.
        if not isinstance(node.ctx, ast.Load):
            continue
        if not _index_has_slice(node.slice):
            continue
        if mod.hot_context(node) is None:
            continue
        yield node, (
            "fancy-indexed row gather materializes copies in a hot context "
            "(paper Figs 2–3): gather once into a plan/Workspace buffer "
            "(Workspace.take) or fold the permutation into the plan"
        )


def _check_raw_scatter(mod: ModuleView) -> Iterator[tuple[ast.AST, str]]:
    cfg = mod.config
    if not mod.matches(cfg.scatter_modules):
        return
    for node in mod.walk(ast.Call):
        f = node.func
        if not (
            isinstance(f, ast.Attribute)
            and f.attr == "at"
            and isinstance(f.value, ast.Attribute)
            and isinstance(f.value.value, ast.Name)
            and f.value.value.id in ("np", "numpy")
        ):
            continue
        ufunc = f.value.attr
        if mod.hot_context(node) is None:
            continue
        yield node, (
            f"np.{ufunc}.at is an unbuffered element-at-a-time scatter in a "
            "hot path: use a cached RowScatter/SegmentSum plan from "
            "repro.mttkrp.scatter (or sorted_scatter_add for one-shot rows)"
        )


register(Rule(
    id="hot-loop-alloc",
    category="perf",
    summary="per-call array allocation (np.zeros/empty/copy/argsort/... or a "
            "materializing [:, None] broadcast) in a hot loop or amortized "
            "kernel",
    paper="Fig 1 (Array-opt)",
    check=_check_hot_loop_alloc,
))

register(Rule(
    id="row-slice-copy",
    category="perf",
    summary="row materialization via slice-copies or fancy-indexed gathers "
            "in hot paths instead of in-place views / plan-owned buffers",
    paper="Figs 2–3 (slicing vs 2-D indexing vs pointer)",
    check=_check_row_slice_copy,
))

register(Rule(
    id="raw-scatter",
    category="perf",
    summary="np.<ufunc>.at scatter in a hot path instead of the cached "
            "scatter plans of repro.mttkrp.scatter",
    paper="Fig 4 (shared-state updates) + PR 1's amortization",
    check=_check_raw_scatter,
))
