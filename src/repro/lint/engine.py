"""The ``repro.lint`` engine: AST walker, rule registry, suppressions.

The linter is **static** and **deterministic**: it parses each module with
:mod:`ast` (never importing it), runs every registered rule over the tree,
and emits :class:`Finding`\\ s carrying a stable fingerprint — the same
schedule-independent-identity idea as
:meth:`repro.sanitize.RaceReport.fingerprint`, but keyed on *code identity*
(rule, module, enclosing scope, normalized source line) instead of race
identity, so a finding's fingerprint survives unrelated line drift and two
runs over the same tree produce byte-identical reports.

Findings are silenced three ways, all of which keep the finding in the
report (marked ``suppressed``) so suppressions stay auditable:

* an inline comment on the offending line::

      np.add.at(out, rows, c)  # reprolint: allow(raw-scatter) — reason here

  The reason text after the dash is **required**; a suppression without one
  is itself reported (``bad-suppression``), because the whole point is a
  written record of why the anti-pattern is acceptable at this site.

* the same comment on a ``def``/``class`` line, which scopes the allowance
  to that entire body (for intentional anti-pattern exhibits like the
  interpreted "slicing" MTTKRP variants);

* a config allowlist (``[tool.reprolint]`` in ``pyproject.toml``): exact
  fingerprints or ``rule-id:path-glob`` entries.

A suppression that silences nothing is reported too (``unused-suppression``)
so stale allowances cannot linger after the code they excused is fixed.

Rule *scoping* is config-driven: the performance rules only fire in the
declared kernel modules (where the paper's anti-patterns actually cost
something), while runtime-discipline and hygiene rules fire everywhere.
See :class:`LintConfig` and docs/LINTING.md.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "LintConfig",
    "LintEngine",
    "ModuleView",
    "Rule",
    "RULES",
    "register",
    "load_config",
    "assign_fingerprints",
    "apply_config_allowlist",
    "collect_suppressions",
]


# ======================================================================
# rules
# ======================================================================
@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, category, and the check itself.

    ``check`` yields ``(node, message)`` pairs; the engine turns them into
    :class:`Finding`\\ s.  Engine-emitted rules (suppression auditing) have
    ``check=None``.
    """

    id: str
    category: str  # "perf" | "runtime" | "hygiene" | "meta"
    summary: str
    paper: str | None = None  # figure/section of the source paper it encodes
    check: Callable[["ModuleView"], Iterator[tuple[ast.AST, str]]] | None = None


#: Global rule registry, id → :class:`Rule`.  Populated by the
#: ``rules_*`` modules at import time; iteration order is sorted by id
#: wherever it can affect output.
RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (idempotent only for identical ids)."""
    if rule.id in RULES:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule


# ======================================================================
# configuration
# ======================================================================
@dataclass(frozen=True)
class LintConfig:
    """Rule scoping and allowlists.

    Globs match the *package-relative* posix path (``repro/mttkrp/...``).
    Defaults encode this repository's layout; ``[tool.reprolint]`` in
    pyproject.toml overrides field-by-field (dashes for underscores).
    """

    #: Modules whose loop/workspace contexts are performance-critical: the
    #: ``hot-loop-alloc`` and ``row-slice-copy`` rules fire only here.
    hot_modules: tuple[str, ...] = (
        "repro/mttkrp/*.py",
        "repro/tucker/*.py",
        "repro/backend/*.py",
    )
    #: Carve-outs from ``hot_modules`` — the reference MTTKRP is the
    #: deliberately naive spec baseline, and the backend kernel source is
    #: scalar-loop code *meant* to be JIT/C-compiled, where the interpreted
    #: NumPy heuristics do not apply.
    hot_exclude: tuple[str, ...] = (
        "repro/mttkrp/reference.py",
        "repro/backend/kernels_ref.py",
    )
    #: Modules where ``raw-scatter`` (``np.<ufunc>.at`` in hot paths) fires.
    scatter_modules: tuple[str, ...] = (
        "repro/mttkrp/*.py",
        "repro/tucker/*.py",
        "repro/completion/*.py",
        "repro/linalg/*.py",
        "repro/backend/*.py",
    )
    #: Modules allowed to touch :mod:`threading` directly — the simulated
    #: runtime and the tooling that instruments it.  Everyone else goes
    #: through ``repro.runtime``.
    threading_allow: tuple[str, ...] = (
        "repro/runtime/*.py",
        "repro/observe/*.py",
        "repro/sanitize/*.py",
        "repro/resilience/*.py",
    )
    #: Exact finding fingerprints to suppress (config-level allowlist).
    allow_fingerprints: tuple[str, ...] = ()
    #: ``"rule-id:path-glob"`` entries to suppress wholesale.
    allow_rules: tuple[str, ...] = ()


def load_config(pyproject: Path | None) -> LintConfig:
    """The :class:`LintConfig` from ``[tool.reprolint]``, defaults if absent."""
    cfg = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return cfg
    import tomllib

    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get("reprolint", {})
    overrides = {}
    for key, value in section.items():
        attr = key.replace("-", "_")
        if attr in LintConfig.__dataclass_fields__:
            overrides[attr] = tuple(value)
    return replace(cfg, **overrides) if overrides else cfg


# ======================================================================
# findings
# ======================================================================
@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # package-relative posix path
    line: int
    col: int
    message: str
    snippet: str  # the offending source line, stripped
    scope: str  # dotted enclosing def/class chain, "<module>" at top level
    fingerprint: str = ""
    suppressed: bool = False
    reason: str | None = None  # suppression reason, when suppressed

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "scope": self.scope,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


def _fingerprint(rule: str, path: str, scope: str, norm: str, index: int) -> str:
    """Stable finding identity: survives unrelated line insertion/drift."""
    payload = f"{rule}|{path}|{scope}|{norm}|{index}"
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


# ======================================================================
# suppressions
# ======================================================================
#: Matches suppression comments: the ``reprolint:`` marker followed by
#: ``allow(...)`` with a comma-separated rule list, then a dash and the
#: mandatory written reason.  (Spelled out here rather than shown literally
#: so this very comment is not parsed as a suppression.)
_SUPPRESS_RE = re.compile(
    r"reprolint:\s*allow\(([^)]*)\)\s*(?:(?:—|–|--|-)\s*(\S.*))?"
)


@dataclass
class _Suppression:
    line: int
    rules: tuple[str, ...]
    reason: str | None
    used: bool = False


def collect_suppressions(source: str) -> dict[int, _Suppression]:
    """Public alias of :func:`_collect_suppressions` (shared with
    :mod:`repro.analyze`, which reuses the same comment syntax)."""
    return _collect_suppressions(source)


def _collect_suppressions(source: str) -> dict[int, _Suppression]:
    """Map line number → parsed ``reprolint: allow`` comment on that line."""
    out: dict[int, _Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
            reason = m.group(2).strip() if m.group(2) else None
            out[tok.start[0]] = _Suppression(tok.start[0], rules, reason)
    except tokenize.TokenError:  # half-written file: no suppressions parsed
        pass
    return out


# ======================================================================
# module view (per-file context handed to rules)
# ======================================================================
_WS_PARAMS = frozenset({"ws", "workspace", "workspaces"})
_GUARD_PARAMS = _WS_PARAMS | frozenset(
    {"plan", "plans", "buffers", "trav", "traversal", "traversals"}
)
_LOOP_NODES = (ast.For, ast.While, ast.AsyncFor,
               ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNC_NODES + (ast.ClassDef,)


class ModuleView:
    """One parsed module plus the navigation helpers rules lean on."""

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module,
                 config: LintConfig):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self._parent: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parent[id(child)] = parent

    # -- path scoping ---------------------------------------------------
    def matches(self, globs: Iterable[str], exclude: Iterable[str] = ()) -> bool:
        rp = self.relpath
        if any(fnmatch.fnmatch(rp, g) for g in exclude):
            return False
        return any(fnmatch.fnmatch(rp, g) for g in globs)

    # -- tree navigation ------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parent.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents from the immediate one outward to the module."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def walk(self, *types: type) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    def scope_name(self, node: ast.AST) -> str:
        parts = [a.name for a in self.ancestors(node) if isinstance(a, _SCOPE_NODES)]
        return ".".join(reversed(parts)) or "<module>"

    def snippet(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def enclosing_def_lines(self, node: ast.AST) -> list[int]:
        """Line numbers of every enclosing ``def``/``class`` statement."""
        return [a.lineno for a in self.ancestors(node) if isinstance(a, _SCOPE_NODES)]

    # -- hot-context analysis -------------------------------------------
    def in_loop(self, node: ast.AST) -> bool:
        """Inside a loop/comprehension within the innermost function?"""
        for a in self.ancestors(node):
            if isinstance(a, _LOOP_NODES):
                return True
            if isinstance(a, _FUNC_NODES):
                return False
        return False

    def in_workspace_function(self, node: ast.AST) -> bool:
        """Any enclosing function (closures included) takes a workspace?"""
        for a in self.ancestors(node):
            if isinstance(a, _FUNC_NODES):
                args = a.args
                names = [p.arg for p in
                         args.posonlyargs + args.args + args.kwonlyargs]
                if any(n in _WS_PARAMS for n in names):
                    return True
        return False

    @staticmethod
    def _is_none_test(test: ast.expr, negated: bool) -> bool:
        """``X is None`` (or ``X is not None`` when ``negated``) over guard
        params, possibly ``or``-combined."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            return all(ModuleView._is_none_test(v, negated) for v in test.values)
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return False
        op = test.ops[0]
        wanted = ast.IsNot if negated else ast.Is
        if not isinstance(op, wanted):
            return False
        left, right = test.left, test.comparators[0]
        return (
            isinstance(left, ast.Name)
            and left.id in _GUARD_PARAMS
            and isinstance(right, ast.Constant)
            and right.value is None
        )

    def under_plan_less_guard(self, node: ast.AST) -> bool:
        """Is ``node`` inside the explicitly plan-less fallback branch of an
        ``if ws is None:`` / ``if plan is not None: ... else:`` check?

        Those branches are the sanctioned unamortized fallbacks — allocation
        there is the documented cost of running without a plan.
        """
        child = node
        for a in self.ancestors(node):
            if isinstance(a, ast.If):
                in_body = any(child is s or self._contains(s, child) for s in a.body)
                in_orelse = not in_body and any(
                    child is s or self._contains(s, child) for s in a.orelse
                )
                if in_body and self._is_none_test(a.test, negated=False):
                    return True
                if in_orelse and self._is_none_test(a.test, negated=True):
                    return True
            child = a
        return False

    @staticmethod
    def _contains(root: ast.AST, target: ast.AST) -> bool:
        return any(n is target for n in ast.walk(root))

    def hot_context(self, node: ast.AST) -> str | None:
        """Why this node is performance-sensitive, or ``None``.

        ``"loop"`` — lexically inside a loop/comprehension;
        ``"workspace"`` — inside an amortized kernel (a function taking a
        workspace).  Either way, code inside a sanctioned ``if ws is None:``
        / ``if plan is not None: … else:`` fallback branch is *not* hot —
        allocating there is the documented price of running plan-less.
        """
        if self.in_loop(node):
            ctx = "loop"
        elif self.in_workspace_function(node):
            ctx = "workspace"
        else:
            return None
        return None if self.under_plan_less_guard(node) else ctx

    # -- statement helpers ----------------------------------------------
    def next_sibling(self, stmt: ast.stmt) -> ast.stmt | None:
        parent = self.parent(stmt)
        if parent is None:
            return None
        for name in ("body", "orelse", "finalbody"):
            block = getattr(parent, name, None)
            if isinstance(block, list) and stmt in block:
                i = block.index(stmt)
                return block[i + 1] if i + 1 < len(block) else None
        return None


# ======================================================================
# engine
# ======================================================================
class LintEngine:
    """Runs the registered rules over files and applies suppressions."""

    def __init__(self, config: LintConfig | None = None, *,
                 rules: Iterable[str] | None = None,
                 package_anchor: str = "repro"):
        # rule modules register themselves on import
        from repro.lint import rules_hygiene, rules_perf, rules_runtime  # noqa: F401

        # The whole-program analyses of repro.analyze share this registry
        # (category "analysis", check=None: they never run per-module) so
        # suppression comments naming their rule ids are recognized here
        # instead of being reported as unknown.
        try:
            import repro.analyze  # noqa: F401
        except ImportError:  # analyze layer absent/broken: lint still works
            pass

        self.config = config if config is not None else LintConfig()
        selected = set(rules) if rules is not None else set(RULES)
        unknown = selected - set(RULES)
        if unknown:
            raise ValueError(f"unknown lint rule(s): {sorted(unknown)}")
        self.rule_ids = tuple(sorted(selected))
        self.package_anchor = package_anchor

    # ------------------------------------------------------------------
    def _relpath(self, path: Path, root: Path | None) -> str:
        parts = path.resolve().parts
        anchor = self.package_anchor
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[idx:])
        if root is not None:
            try:
                return path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                pass
        return path.name

    @staticmethod
    def collect_files(paths: Iterable[Path]) -> list[Path]:
        """Every ``.py`` under ``paths``, deterministically ordered."""
        files: set[Path] = set()
        for p in paths:
            p = Path(p)
            if p.is_dir():
                files.update(q for q in p.rglob("*.py"))
            elif p.suffix == ".py":
                files.add(p)
        return sorted(files, key=lambda q: q.resolve().as_posix())

    # ------------------------------------------------------------------
    def lint_source(self, source: str, *, path: Path | str = "<memory>",
                    relpath: str | None = None) -> list[Finding]:
        """Lint one in-memory module (the fixture-test entry point)."""
        path = Path(path)
        rp = relpath if relpath is not None else self._relpath(path, None)
        return self._lint_module(path, rp, source)

    def lint_paths(self, paths: Iterable[Path | str],
                   root: Path | None = None) -> list[Finding]:
        """Lint files/directories; findings sorted, suppressions applied."""
        findings: list[Finding] = []
        for f in self.collect_files([Path(p) for p in paths]):
            try:
                source = f.read_text(encoding="utf-8")
            except OSError as exc:
                findings.append(Finding(
                    rule="parse-error", path=self._relpath(f, root), line=1,
                    col=0, message=f"cannot read file: {exc}", snippet="",
                    scope="<module>",
                ))
                continue
            findings.extend(self._lint_module(f, self._relpath(f, root), source))
        findings.sort(key=Finding.sort_key)
        self._assign_fingerprints(findings)
        self._apply_config_allowlist(findings)
        return findings

    # ------------------------------------------------------------------
    def _lint_module(self, path: Path, relpath: str, source: str) -> list[Finding]:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Finding(
                rule="parse-error", path=relpath, line=exc.lineno or 1,
                col=exc.offset or 0, message=f"syntax error: {exc.msg}",
                snippet="", scope="<module>",
            )]
        mod = ModuleView(path, relpath, source, tree, self.config)
        suppressions = _collect_suppressions(source)

        findings: list[Finding] = []
        for rid in self.rule_ids:
            rule = RULES[rid]
            if rule.check is None:
                continue
            for node, message in rule.check(mod):
                findings.append(Finding(
                    rule=rid, path=relpath,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=message, snippet=mod.snippet(node),
                    scope=mod.scope_name(node),
                ))
                self._maybe_suppress(findings[-1], mod, suppressions, node=node)

        findings.extend(self._audit_suppressions(mod, suppressions))
        findings.sort(key=Finding.sort_key)
        self._assign_fingerprints(findings)
        return findings

    def _maybe_suppress(self, finding: Finding, mod: ModuleView,
                        suppressions: dict[int, _Suppression],
                        node: ast.AST | None = None) -> None:
        node_lines = [finding.line]
        # A multi-line statement may carry its suppression comment on any
        # of its physical lines (typically the closing one); scope bodies
        # (def/class) are excluded so an interior comment cannot silence a
        # finding on the definition itself.
        if node is not None and not isinstance(node, _SCOPE_NODES):
            end = getattr(node, "end_lineno", None) or finding.line
            node_lines += [ln for ln in range(finding.line + 1, end + 1)]
        node_lines += [
            ln for ln in self._def_lines(mod, finding) if ln not in node_lines
        ]
        for ln in node_lines:
            supp = suppressions.get(ln)
            if supp is None:
                continue
            if finding.rule in supp.rules or "*" in supp.rules:
                supp.used = True
                if supp.reason is not None:  # reasonless ones stay in force…
                    finding.suppressed = True  # …as bad-suppression findings
                    finding.reason = supp.reason
                return

    @staticmethod
    def _def_lines(mod: ModuleView, finding: Finding) -> list[int]:
        # Re-locate the finding's node scope chain by line: cheaper than
        # carrying node references on findings.
        lines = []
        for node in ast.walk(mod.tree):
            if isinstance(node, _SCOPE_NODES):
                end = getattr(node, "end_lineno", node.lineno)
                if node.lineno <= finding.line <= (end or node.lineno):
                    lines.append(node.lineno)
        return lines

    def _audit_suppressions(
        self, mod: ModuleView, suppressions: dict[int, _Suppression]
    ) -> list[Finding]:
        out: list[Finding] = []
        for supp in suppressions.values():
            unknown = [r for r in supp.rules if r != "*" and r not in RULES]
            if supp.reason is None:
                out.append(Finding(
                    rule="bad-suppression", path=mod.relpath, line=supp.line,
                    col=0,
                    message=(
                        "suppression without a written reason — use "
                        "'# reprolint: allow(rule-id) — why it is fine here'"
                    ),
                    snippet=mod.lines[supp.line - 1].strip()
                    if supp.line <= len(mod.lines) else "",
                    scope="<module>",
                ))
            elif unknown:
                out.append(Finding(
                    rule="bad-suppression", path=mod.relpath, line=supp.line,
                    col=0,
                    message=f"suppression names unknown rule(s): {unknown}",
                    snippet=mod.lines[supp.line - 1].strip()
                    if supp.line <= len(mod.lines) else "",
                    scope="<module>",
                ))
            elif not supp.used and not _analysis_only(supp.rules):
                out.append(Finding(
                    rule="unused-suppression", path=mod.relpath, line=supp.line,
                    col=0,
                    message=(
                        f"suppression for {', '.join(supp.rules)} matches no "
                        "finding — remove it"
                    ),
                    snippet=mod.lines[supp.line - 1].strip()
                    if supp.line <= len(mod.lines) else "",
                    scope="<module>",
                ))
        return out

    # ------------------------------------------------------------------
    def _assign_fingerprints(self, findings: list[Finding]) -> None:
        assign_fingerprints(findings)

    def _apply_config_allowlist(self, findings: list[Finding]) -> None:
        apply_config_allowlist(findings, self.config)


def _analysis_only(rule_ids: Iterable[str]) -> bool:
    """All named rules are whole-program analyses (category "analysis")?

    The per-module linter can never match those, so their unused audit
    belongs to :mod:`repro.analyze` — flagging them here would make every
    analyzer suppression fail ``repro lint``.
    """
    ids = [r for r in rule_ids if r != "*"]
    return bool(ids) and all(
        r in RULES and RULES[r].category == "analysis" for r in ids
    )


def assign_fingerprints(findings: list[Finding]) -> None:
    """Stable code-identity fingerprints (shared by lint and analyze)."""
    seen: dict[tuple, int] = {}
    for f in findings:
        norm = re.sub(r"\s+", " ", f.snippet.split("#", 1)[0]).strip()
        key = (f.rule, f.path, f.scope, norm)
        index = seen.get(key, 0)
        seen[key] = index + 1
        f.fingerprint = _fingerprint(f.rule, f.path, f.scope, norm, index)


def apply_config_allowlist(findings: list[Finding], config: LintConfig) -> None:
    """Suppress findings named by the ``[tool.reprolint]`` allowlists."""
    allow_fp = set(config.allow_fingerprints)
    allow_rules = [
        entry.split(":", 1) for entry in config.allow_rules
        if ":" in entry
    ]
    for f in findings:
        if f.suppressed:
            continue
        if f.fingerprint in allow_fp:
            f.suppressed = True
            f.reason = "config allowlist (fingerprint)"
        elif any(rid == f.rule and fnmatch.fnmatch(f.path, glob)
                 for rid, glob in allow_rules):
            f.suppressed = True
            f.reason = "config allowlist (rule:path)"


# engine-emitted rules are registered here so --list-rules documents them
register(Rule(
    id="parse-error", category="meta",
    summary="file does not parse (or cannot be read); nothing else was checked",
))
register(Rule(
    id="bad-suppression", category="meta",
    summary="reprolint suppression without a written reason, or naming an "
            "unknown rule id",
))
register(Rule(
    id="unused-suppression", category="meta",
    summary="reprolint suppression that silences no finding (stale allowance)",
))
