"""Constrained CP decomposition (SPLATT's ``constrained CP`` routines).

The paper notes SPLATT "includes routines for computing least-squares CP,
as well as constrained CP and CP with missing values" (§III).  This
package implements the constrained side using the AO-ADMM formulation
SPLATT adopts (Smith et al. / Huang, Sidiropoulos & Liavas): alternating
optimization over modes, with each mode's regularized least-squares
subproblem solved by ADMM against the constraint's proximal operator.

Supported constraints (:mod:`repro.constrained.constraints`):

* ``nonneg`` — non-negativity (projection onto the positive orthant), the
  classic NCP used for parts-based/topic models;
* ``l1`` — lasso sparsity (soft thresholding);
* ``ridge`` — Tikhonov smoothing (closed form, no ADMM splitting needed);
* ``none`` — plain least squares (reduces to CP-ALS's mode solve).

The driver (:func:`~repro.constrained.cpd.constrained_cp_als`) reuses the
CSF MTTKRP kernels, Gram caching and timers from the core pipeline, so a
constrained run exercises the same substrate as the paper's CP-ALS.
"""

from repro.constrained.constraints import (
    CONSTRAINTS,
    Constraint,
    LassoConstraint,
    NonNegConstraint,
    RidgeConstraint,
    UnconstrainedConstraint,
    make_constraint,
)
from repro.constrained.admm import admm_mode_solve
from repro.constrained.cpd import ConstrainedResult, constrained_cp_als

__all__ = [
    "constrained_cp_als",
    "ConstrainedResult",
    "admm_mode_solve",
    "Constraint",
    "NonNegConstraint",
    "LassoConstraint",
    "RidgeConstraint",
    "UnconstrainedConstraint",
    "make_constraint",
    "CONSTRAINTS",
]
