"""ADMM solver for one constrained mode subproblem (AO-ADMM inner loop).

The mode-``n`` subproblem of constrained CP is

    min_A  ½·tr(A V Aᵀ) − tr(A Mᵀ) + g(A)

with ``V`` the Hadamard-of-Grams matrix and ``M`` the MTTKRP output (both
already computed by the outer loop — this is the same pair the
unconstrained solve consumes).  ADMM splits ``A`` from an auxiliary
``Ã = prox_g``:

    repeat:
        A  ← (M + ρ(Ã − U)) · (V + ρI)⁻¹        (Cholesky, cached)
        Ã  ← prox_g(A + U, ρ)
        U  ← U + A − Ã
    until ‖A − Ã‖/‖A‖ and ‖Ã − Ã_prev‖/‖U‖ are small

following Huang, Sidiropoulos & Liavas (2016), the formulation SPLATT's
constrained routines adopt.  ρ is set to ``tr(V)/R``, their recommended
scale-free choice.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro._util import VALUE_DTYPE
from repro.constrained.constraints import Constraint

__all__ = ["admm_mode_solve"]


def admm_mode_solve(
    mttkrp_result: np.ndarray,
    v: np.ndarray,
    constraint: Constraint,
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-4,
    warm_aux: np.ndarray | None = None,
    warm_dual: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Solve one constrained mode update.

    Parameters
    ----------
    mttkrp_result:
        ``(I, R)`` MTTKRP output ``M``.
    v:
        ``(R, R)`` Hadamard-of-Grams matrix.
    constraint:
        The penalty ``g`` (its prox drives the splitting).
    warm_aux / warm_dual:
        Warm-start states from the previous outer iteration (AO-ADMM's key
        trick: a handful of inner iterations suffice when warm-started).

    Returns
    -------
    (factor, aux, dual, iterations):
        The constrained factor Ã (the feasible iterate), the aux/dual
        states for warm-starting, and inner iterations used.
    """
    m = np.asarray(mttkrp_result, dtype=VALUE_DTYPE)
    rank = v.shape[0]
    if not constraint.needs_admm:
        # Closed-form penalties fold into the normal equations directly.
        if constraint.name == "ridge":
            v = v + getattr(constraint, "weight", 0.0) * np.eye(rank)
        chol = sla.cho_factor(v + 1e-12 * np.eye(rank), lower=False, check_finite=False)
        a = sla.cho_solve(chol, m.T, check_finite=False).T
        zeros = np.zeros_like(a)
        return a, a.copy(), zeros, 0

    rho = float(np.trace(v)) / rank
    if rho <= 0:
        rho = 1.0
    chol = sla.cho_factor(
        v + rho * np.eye(rank, dtype=VALUE_DTYPE), lower=False, check_finite=False
    )

    aux = warm_aux if warm_aux is not None else np.zeros_like(m)
    dual = warm_dual if warm_dual is not None else np.zeros_like(m)
    aux = np.array(aux, dtype=VALUE_DTYPE, copy=True)
    dual = np.array(dual, dtype=VALUE_DTYPE, copy=True)

    iterations = 0
    for it in range(max_iterations):
        iterations = it + 1
        a = sla.cho_solve(chol, (m + rho * (aux - dual)).T, check_finite=False).T
        prev_aux = aux
        aux = constraint.prox(a + dual, rho)
        dual = dual + a - aux

        a_norm = float(np.linalg.norm(a)) or 1.0
        primal = float(np.linalg.norm(a - aux)) / a_norm
        dual_norm = float(np.linalg.norm(dual)) or 1.0
        dual_res = float(np.linalg.norm(aux - prev_aux)) / dual_norm
        if primal < tolerance and dual_res < tolerance:
            break
    return aux, aux.copy(), dual, iterations
