"""Constraint/regularizer registry for constrained CP.

Each constraint supplies the proximal operator the ADMM splitting needs:
``prox(M, rho)`` solves ``argmin_A  g(A) + (rho/2)·‖A − M‖²`` for the
constraint's penalty ``g``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Constraint",
    "UnconstrainedConstraint",
    "NonNegConstraint",
    "LassoConstraint",
    "RidgeConstraint",
    "CONSTRAINTS",
    "make_constraint",
]


class Constraint(ABC):
    """A penalty ``g(A)`` with a proximal operator."""

    #: Registry name.
    name: str = ""

    #: Whether the mode solve needs the ADMM splitting (closed-form
    #: constraints set this False and are folded into the normal equations).
    needs_admm: bool = True

    @abstractmethod
    def prox(self, m: np.ndarray, rho: float) -> np.ndarray:
        """``argmin_A g(A) + (rho/2)‖A − M‖²``."""

    @abstractmethod
    def penalty(self, a: np.ndarray) -> float:
        """``g(A)`` — used for objective reporting (∞ for violated hard
        constraints)."""

    def satisfied(self, a: np.ndarray, *, atol: float = 1e-9) -> bool:
        """Whether a hard constraint holds (soft penalties return True)."""
        return True


@dataclass(frozen=True)
class UnconstrainedConstraint(Constraint):
    """Plain least squares: ``g ≡ 0``."""

    name = "none"
    needs_admm = False

    def prox(self, m: np.ndarray, rho: float) -> np.ndarray:
        return m

    def penalty(self, a: np.ndarray) -> float:
        return 0.0


@dataclass(frozen=True)
class NonNegConstraint(Constraint):
    """Non-negativity: indicator of the positive orthant; prox = clip."""

    name = "nonneg"

    def prox(self, m: np.ndarray, rho: float) -> np.ndarray:
        return np.maximum(m, 0.0)

    def penalty(self, a: np.ndarray) -> float:
        return 0.0 if (a >= 0).all() else float("inf")

    def satisfied(self, a: np.ndarray, *, atol: float = 1e-9) -> bool:
        return bool((a >= -atol).all())


@dataclass(frozen=True)
class LassoConstraint(Constraint):
    """ℓ₁ sparsity: ``g(A) = weight·‖A‖₁``; prox = soft threshold."""

    weight: float = 0.1
    name = "l1"

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("l1 weight must be >= 0")

    def prox(self, m: np.ndarray, rho: float) -> np.ndarray:
        thresh = self.weight / rho
        return np.sign(m) * np.maximum(np.abs(m) - thresh, 0.0)

    def penalty(self, a: np.ndarray) -> float:
        return self.weight * float(np.abs(a).sum())


@dataclass(frozen=True)
class RidgeConstraint(Constraint):
    """Tikhonov smoothing: ``g(A) = (weight/2)·‖A‖²`` — closed form.

    Folded directly into the normal equations (``V + weight·I``), no ADMM
    iterations needed.
    """

    weight: float = 0.1
    name = "ridge"
    needs_admm = False

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("ridge weight must be >= 0")

    def prox(self, m: np.ndarray, rho: float) -> np.ndarray:
        # prox of (w/2)||A||^2 at M with parameter rho
        return m * (rho / (rho + self.weight))

    def penalty(self, a: np.ndarray) -> float:
        return 0.5 * self.weight * float((a * a).sum())


CONSTRAINTS: tuple[str, ...] = ("none", "nonneg", "l1", "ridge")


def make_constraint(spec: str | Constraint, *, weight: float = 0.1) -> Constraint:
    """Build a constraint from a registry name (or pass one through)."""
    if isinstance(spec, Constraint):
        return spec
    if spec == "none":
        return UnconstrainedConstraint()
    if spec == "nonneg":
        return NonNegConstraint()
    if spec == "l1":
        return LassoConstraint(weight=weight)
    if spec == "ridge":
        return RidgeConstraint(weight=weight)
    raise ValueError(f"unknown constraint {spec!r}; choose from {CONSTRAINTS}")
