"""Constrained CP-ALS driver (AO-ADMM outer loop).

Same skeleton as :func:`repro.core.cpals.cp_als` — CSF build, per-mode
MTTKRP + Hadamard-of-Grams — but each mode update runs through
:func:`repro.constrained.admm.admm_mode_solve` with that mode's constraint,
warm-starting the ADMM states across outer iterations.

Factors are *not* column-normalized between updates: normalization would
break hard constraints' geometry (a non-negative factor stays non-negative,
but λ-rescaling interacts badly with ℓ₁ penalties), so like SPLATT's
constrained routines the component magnitudes stay in the factors and the
reported metric is the relative fit computed from them directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_rank
from repro.constrained.admm import admm_mode_solve
from repro.constrained.constraints import Constraint, make_constraint
from repro.core.cpals import init_factors
from repro.csf.build import build_csf_set
from repro.linalg.ata import gram, hadamard_gram
from repro.mttkrp.variants import mttkrp_csf
from repro.runtime.env import ChapelEnv
from repro.runtime.tasking import make_tasking_layer
from repro.tensor.coo import SparseTensor

__all__ = ["ConstrainedResult", "constrained_cp_als"]


@dataclass
class ConstrainedResult:
    """Outcome of a constrained CP run."""

    factors: list[np.ndarray]
    fits: list[float]
    iterations: int
    converged: bool
    seconds: float
    constraints: list[Constraint]
    #: Total ADMM inner iterations per mode (warm starts keep these small).
    admm_iterations: list[int] = field(default_factory=list)

    @property
    def fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0

    def predict(self, coords: np.ndarray) -> np.ndarray:
        """Model values at arbitrary coordinates."""
        coords = np.asarray(coords)
        rank = self.factors[0].shape[1]
        acc = np.ones((coords.shape[0], rank), dtype=VALUE_DTYPE)
        for m, f in enumerate(self.factors):
            acc *= f[coords[:, m]]
        return acc.sum(axis=1)


def _fit(xnorm2: float, factors: Sequence[np.ndarray], last_mttkrp: np.ndarray,
         grams: Sequence[np.ndarray]) -> float:
    """Relative fit with weights folded into the factors (λ ≡ 1)."""
    rank = factors[0].shape[1]
    had = np.ones((rank, rank), dtype=VALUE_DTYPE)
    for g in grams:
        had *= g
    znorm2 = max(float(had.sum()), 0.0)  # 1ᵀ (∗ grams) 1
    inner = float(np.einsum("ir,ir->", last_mttkrp, factors[-1]))
    residual_sq = max(xnorm2 + znorm2 - 2.0 * inner, 0.0)
    xnorm = float(np.sqrt(xnorm2))
    return 1.0 - float(np.sqrt(residual_sq)) / xnorm if xnorm else 1.0


def constrained_cp_als(
    tensor: SparseTensor,
    rank: int,
    constraints: str | Constraint | Sequence[str | Constraint] = "nonneg",
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-5,
    admm_iterations: int = 25,
    admm_tolerance: float = 1e-4,
    env: ChapelEnv | None = None,
    seed: int | None = 0,
) -> ConstrainedResult:
    """Fit a constrained CP model.

    Parameters
    ----------
    constraints:
        One spec applied to every mode, or a per-mode sequence.  Specs are
        registry names (``"nonneg"``, ``"l1"``, ``"ridge"``, ``"none"``) or
        :class:`Constraint` instances.
    admm_iterations / admm_tolerance:
        Inner-loop budget per mode update (warm-started, so ~5 inner
        iterations typically suffice after the first outer sweep).

    Returns
    -------
    :class:`ConstrainedResult`
    """
    rank = check_rank(rank)
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an empty tensor")
    nmodes = tensor.nmodes
    if isinstance(constraints, (str, Constraint)):
        cons = [make_constraint(constraints) for _ in range(nmodes)]
    else:
        if len(constraints) != nmodes:
            raise ValueError(f"need {nmodes} constraints, got {len(constraints)}")
        cons = [make_constraint(c) for c in constraints]

    layer = make_tasking_layer(env if env is not None else ChapelEnv())
    csf_set = build_csf_set(tensor)
    rng = as_rng(seed)
    factors = init_factors(tensor.dims, rank, rng)
    # Start feasible so the first Grams make sense for hard constraints.
    for m, con in enumerate(cons):
        factors[m] = con.prox(factors[m], 1.0)
        if not factors[m].any():
            factors[m] = np.abs(np.asarray(rng.random((tensor.dims[m], rank))))

    grams = [gram(f) for f in factors]
    xnorm2 = tensor.norm() ** 2
    out_buffers = {m: np.zeros((tensor.dims[m], rank), dtype=VALUE_DTYPE) for m in range(nmodes)}
    warm_aux: list[np.ndarray | None] = [None] * nmodes
    warm_dual: list[np.ndarray | None] = [None] * nmodes
    admm_iters_per_mode = [0] * nmodes

    fits: list[float] = []
    converged = False
    start = time.perf_counter()
    iterations = 0
    for it in range(max_iterations):
        last_mttkrp: np.ndarray | None = None
        for mode in range(nmodes):
            v = hadamard_gram(factors, mode, grams=grams)
            m_out, _ = mttkrp_csf(
                csf_set, factors, mode, layer=layer, out=out_buffers[mode]
            )
            new_factor, aux, dual, inner = admm_mode_solve(
                m_out, v, cons[mode],
                max_iterations=admm_iterations,
                tolerance=admm_tolerance,
                warm_aux=warm_aux[mode],
                warm_dual=warm_dual[mode],
            )
            warm_aux[mode], warm_dual[mode] = aux, dual
            admm_iters_per_mode[mode] += inner
            factors[mode] = np.asarray(new_factor, dtype=VALUE_DTYPE)
            grams[mode] = gram(factors[mode])
            last_mttkrp = m_out

        if last_mttkrp is None:  # zero-mode tensors cannot reach the sweep
            raise RuntimeError(
                "constrained CP-ALS sweep updated no modes; cannot compute fit"
            )
        fits.append(_fit(xnorm2, factors, last_mttkrp, grams))
        iterations = it + 1
        if tolerance > 0 and it > 0 and abs(fits[-1] - fits[-2]) < tolerance:
            converged = True
            break

    return ConstrainedResult(
        factors=[f.copy() for f in factors],
        fits=fits,
        iterations=iterations,
        converged=converged,
        seconds=time.perf_counter() - start,
        constraints=cons,
        admm_iterations=admm_iters_per_mode,
    )
