"""Mode-index relabeling (SPLATT's tensor reordering).

SPLATT can relabel the indices of each mode before building the CSF so
that related nonzeros end up adjacent — fewer distinct prefixes, shorter
fibers, better cache behaviour.  Relabeling never changes the tensor's
*values* (it is a bijection per mode), only its layout; the measurable
effect is the CSF's node counts, which the reordering ablation asserts.

Strategies:

``degree``
    Sort each mode's indices by descending nonzero count (hubs first).
    Groups the heavy slices together — the classic locality relabeling.
``random``
    A seeded random bijection per mode; the control arm (destroys any
    incidental locality the input ordering had).
``identity``
    No-op (returns a copy), for uniform APIs in sweeps.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.tensor.coo import SparseTensor

__all__ = ["REORDER_STRATEGIES", "reorder_tensor", "apply_relabeling"]

REORDER_STRATEGIES: tuple[str, ...] = ("identity", "degree", "random")


def _degree_permutation(tensor: SparseTensor, mode: int) -> np.ndarray:
    """``perm[new] = old`` sorting indices by descending slice nnz."""
    hist = np.bincount(tensor.mode_indices(mode), minlength=tensor.dims[mode])
    return np.argsort(-hist, kind="stable").astype(np.int64)


def apply_relabeling(
    tensor: SparseTensor, perms: list[np.ndarray]
) -> SparseTensor:
    """Apply per-mode relabelings ``perms[m][new] = old``.

    Returns a tensor whose coordinate ``i`` in mode ``m`` refers to the old
    index ``perms[m][i]``.
    """
    if len(perms) != tensor.nmodes:
        raise ValueError(f"need {tensor.nmodes} permutations, got {len(perms)}")
    new_coords = np.empty_like(tensor.coords)
    for m, perm in enumerate(perms):
        perm = np.asarray(perm, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(tensor.dims[m])):
            raise ValueError(f"perms[{m}] is not a bijection on 0..{tensor.dims[m] - 1}")
        inverse = np.empty(tensor.dims[m], dtype=np.int64)
        inverse[perm] = np.arange(tensor.dims[m])
        new_coords[:, m] = inverse[tensor.mode_indices(m)]
    return SparseTensor(new_coords, tensor.values.copy(), tensor.dims, name=tensor.name)


def reorder_tensor(
    tensor: SparseTensor,
    *,
    strategy: str = "degree",
    seed: int | np.random.Generator | None = 0,
) -> tuple[SparseTensor, list[np.ndarray]]:
    """Relabel every mode's indices under the chosen strategy.

    Returns ``(relabeled, perms)`` with ``perms[m][new_index] = old_index``
    so factor rows can be mapped back after decomposition
    (``factor_old = factor_new[inverse]`` or simply index via ``perms``).
    """
    if strategy not in REORDER_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {REORDER_STRATEGIES}"
        )
    if strategy == "identity":
        perms = [np.arange(d, dtype=np.int64) for d in tensor.dims]
        return tensor.copy(), perms
    if strategy == "degree":
        perms = [_degree_permutation(tensor, m) for m in range(tensor.nmodes)]
    else:  # random
        rng = as_rng(seed)
        perms = [rng.permutation(d).astype(np.int64) for d in tensor.dims]
    return apply_relabeling(tensor, perms), perms
