"""Synthetic tensor generators reproducing the paper's Table I datasets.

The paper evaluates on five real 3rd-order tensors (YELP, RATE-BEER,
BEER-ADVOCATE, NELL-2, NETFLIX).  We cannot ship the originals, so each is
replaced by a generator that reproduces the *structural signature* the
paper's results depend on:

* a bench-scale shape (``bench_dims``/``bench_nnz``) designed to preserve
  the ``ntasks·dim/nnz`` ratio that drives SPLATT's lock-vs-privatize
  decision at the task counts measured runs actually use — the YELP
  stand-in engages the mutex pool beyond 2 tasks and not below, the NELL-2
  stand-in stays lock-free through 4 tasks (the paper-scale behaviour up to
  32 tasks is carried by the published dims/nnz inside
  :mod:`repro.perfmodel`);
* per-mode index skew (hub concentration), drawn from truncated power-law
  marginals — YELP-like tensors have heavy word/business hubs, NELL-2 is
  comparatively balanced.

Uniformly scaling the published dims and nnz cannot work: the no-lock
condition needs ``nnz ≳ 1800·dim`` while cells shrink cubically in the dim
scale, so a faithful small NELL-2 must trade density for the lock ratio.
See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import VALUE_DTYPE, as_rng, check_positive, check_rank
from repro.tensor.coo import SparseTensor

__all__ = [
    "DatasetSignature",
    "DATASET_SIGNATURES",
    "synthetic_dataset",
    "random_tensor",
    "planted_low_rank",
]


@dataclass(frozen=True)
class DatasetSignature:
    """Published structural properties of one Table I dataset.

    Attributes
    ----------
    name:
        Dataset label as used in the paper.
    dims:
        Published mode lengths.
    nnz:
        Published nonzero count.
    skew:
        Per-mode power-law exponent for index popularity; ``0`` is uniform,
        larger is more hub-concentrated.
    needs_locks_paper:
        Whether the paper reports the mutex-pool MTTKRP being selected for
        this dataset at task counts > 2 (true only for YELP among the two
        studied datasets).
    """

    name: str
    dims: tuple[int, int, int]
    nnz: int
    skew: tuple[float, float, float]
    needs_locks_paper: bool
    #: Bench-scale shape preserving the lock-decision regime (see module
    #: docstring).
    bench_dims: tuple[int, int, int] = (0, 0, 0)
    bench_nnz: int = 0


#: Table I of the paper, as generator signatures.  Skews are chosen so the
#: generated tensors show review-data-like hubs (users/items/words) for the
#: review datasets and milder skew for NELL-2's linguistic triples.
#:
#: Bench shapes: the lock decision for the internal (non-root) mode of the
#: two-tree CSF is ``locks ⇔ ntasks·dim_internal > 0.018·nnz``.  YELP's
#: internal mode is its first (410 at bench scale): with 60k nonzeros locks
#: engage at 4 tasks but not at 2 — the paper's "beyond two" behaviour.
#: NELL-2's internal mode (120) with 32k nonzeros stays lock-free through 4
#: tasks, the range real threads cover in measured runs.
DATASET_SIGNATURES: dict[str, DatasetSignature] = {
    "yelp": DatasetSignature(
        name="YELP",
        dims=(41_000, 11_000, 75_000),
        nnz=8_000_000,
        skew=(0.8, 0.9, 1.1),
        needs_locks_paper=True,
        bench_dims=(410, 110, 750),
        bench_nnz=60_000,
    ),
    "rate-beer": DatasetSignature(
        name="RATE-BEER",
        dims=(27_000, 105_000, 262_000),
        nnz=62_000_000,
        skew=(0.9, 0.8, 1.1),
        needs_locks_paper=True,
        bench_dims=(270, 1_050, 2_620),
        bench_nnz=120_000,
    ),
    "beer-advocate": DatasetSignature(
        name="BEER-ADVOCATE",
        dims=(31_000, 61_000, 182_000),
        nnz=63_000_000,
        skew=(0.9, 0.8, 1.1),
        needs_locks_paper=True,
        bench_dims=(310, 610, 1_820),
        bench_nnz=120_000,
    ),
    "nell-2": DatasetSignature(
        name="NELL-2",
        dims=(12_000, 9_000, 29_000),
        nnz=77_000_000,
        skew=(0.5, 0.4, 0.5),
        needs_locks_paper=False,
        bench_dims=(120, 90, 290),
        bench_nnz=32_000,
    ),
    "netflix": DatasetSignature(
        name="NETFLIX",
        dims=(480_000, 18_000, 2_000),
        nnz=100_000_000,
        skew=(0.7, 0.9, 0.3),
        needs_locks_paper=False,
        bench_dims=(4_800, 1_800, 200),
        bench_nnz=100_000,
    ),
}

#: Default scale applied to the bench shape by :func:`synthetic_dataset`:
#: 1.0 generates the bench-scale stand-in as designed.
DEFAULT_SCALE = 1.0


def _power_law_indices(
    rng: np.random.Generator, n: int, dim: int, skew: float
) -> np.ndarray:
    """Draw ``n`` indices in ``[0, dim)`` with power-law popularity.

    ``skew=0`` is uniform.  For ``skew>0`` index popularity follows
    ``p(i) ∝ (i+1)^-skew`` (after a random relabeling so hubs are not all at
    index 0, which would be unrealistically cache-friendly).
    """
    if dim == 1:
        return np.zeros(n, dtype=np.int64)
    if skew <= 0:
        return rng.integers(0, dim, size=n, dtype=np.int64)
    weights = (np.arange(1, dim + 1, dtype=np.float64)) ** (-skew)
    weights /= weights.sum()
    draws = rng.choice(dim, size=n, p=weights)
    relabel = rng.permutation(dim)
    return relabel[draws].astype(np.int64)


def synthetic_dataset(
    name: str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int | np.random.Generator | None = 0,
) -> SparseTensor:
    """Generate the scaled synthetic stand-in for one Table I dataset.

    Parameters
    ----------
    name:
        Key into :data:`DATASET_SIGNATURES` (case-insensitive; ``"yelp"``,
        ``"nell-2"``, ...).
    scale:
        Multiplier on the signature's *bench* dims and nnz (≤ 1).  The
        default 1.0 generates the bench-scale stand-in whose lock behaviour
        matches the paper (module docstring); smaller values give quick
        test tensors with no structural guarantees.
    seed:
        Deterministic by default so benchmark runs are comparable.

    Returns
    -------
    A deduplicated :class:`SparseTensor` whose name records the signature
    and scale.
    """
    key = name.lower()
    if key not in DATASET_SIGNATURES:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SIGNATURES)}")
    sig = DATASET_SIGNATURES[key]
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    rng = as_rng(seed)

    dims = tuple(max(4, round(d * scale)) for d in sig.bench_dims)
    cells = dims[0] * dims[1] * dims[2]
    # Cap at 60% occupancy so deduplication can't starve the target.
    target_nnz = min(max(16, round(sig.bench_nnz * scale)), int(0.6 * cells))

    # Oversample, deduplicate, then trim: power-law marginals collide, and
    # CSF construction requires unique coordinates.
    oversample = int(target_nnz * 1.3) + 16
    cols = [
        _power_law_indices(rng, oversample, dims[m], sig.skew[m]) for m in range(3)
    ]
    coords = np.stack(cols, axis=1)
    # Ratings-like positive values.
    values = rng.lognormal(mean=0.0, sigma=0.5, size=oversample).astype(VALUE_DTYPE)
    tensor = SparseTensor(coords, values, dims, name=f"{sig.name}(x{scale:g})").deduplicate()
    if tensor.nnz > target_nnz:
        keep = rng.choice(tensor.nnz, size=target_nnz, replace=False)
        keep.sort()
        tensor = SparseTensor(
            tensor.coords[keep], tensor.values[keep], dims, name=tensor.name
        )
    return tensor


def random_tensor(
    dims: tuple[int, ...],
    nnz: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> SparseTensor:
    """Uniform random sparse tensor with unique coordinates.

    ``nnz`` must not exceed the number of cells.  Coordinates are unique
    (sampled without replacement over the flattened index space when
    feasible, otherwise by rejection).
    """
    dims = tuple(check_positive(f"dims[{i}]", d) for i, d in enumerate(dims))
    nnz = check_positive("nnz", nnz)
    total = 1
    for d in dims:
        total *= d
    if nnz > total:
        raise ValueError(f"nnz={nnz} exceeds tensor cell count {total}")
    rng = as_rng(seed)
    if total <= 50_000_000:
        flat = rng.choice(total, size=nnz, replace=False)
        coords = np.stack(np.unravel_index(flat, dims), axis=1).astype(np.int64)
    else:  # rejection sampling for astronomically sparse spaces
        seen: set[tuple[int, ...]] = set()
        rows = []
        while len(rows) < nnz:
            cand = tuple(int(rng.integers(0, d)) for d in dims)
            if cand not in seen:
                seen.add(cand)
                rows.append(cand)
        coords = np.asarray(rows, dtype=np.int64)
    values = rng.standard_normal(nnz).astype(VALUE_DTYPE)
    values[values == 0.0] = 1.0
    return SparseTensor(coords, values, dims, name=f"random{dims}")


def planted_low_rank(
    dims: tuple[int, ...],
    rank: int,
    nnz: int,
    *,
    noise: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[SparseTensor, list[np.ndarray]]:
    """Sparse observations of an exactly rank-``R`` tensor.

    Builds non-negative random factor matrices ``A^(n) ∈ R^{I_n×R}``, samples
    ``nnz`` unique coordinates, and sets each value to the Kruskal
    reconstruction at that coordinate plus optional Gaussian noise.  Used by
    integration tests: CP-ALS at rank ``R`` must fit this data almost
    perfectly when ``noise=0``.

    Returns
    -------
    (tensor, factors):
        The observed tensor and the planted factor matrices.
    """
    rank = check_rank(rank)
    rng = as_rng(seed)
    skeleton = random_tensor(dims, nnz, seed=rng)
    factors = [rng.random((d, rank)) + 0.1 for d in dims]
    vals = np.ones((skeleton.nnz, rank), dtype=VALUE_DTYPE)
    for m, factor in enumerate(factors):
        vals *= factor[skeleton.mode_indices(m)]
    values = vals.sum(axis=1)
    if noise > 0:
        values = values + rng.normal(scale=noise, size=values.shape)
    tensor = SparseTensor(
        skeleton.coords, values, dims, name=f"planted(rank={rank})"
    )
    return tensor, factors
