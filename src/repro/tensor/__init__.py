"""Sparse tensor substrate: COO storage, I/O, sorting, synthetic data.

This package is the reproduction of SPLATT's ``sptensor`` layer — the
coordinate-format tensor that is read from disk, sorted per output mode, and
handed to the CSF builder (:mod:`repro.csf`).
"""

from repro.tensor.coo import SparseTensor
from repro.tensor.generate import (
    DATASET_SIGNATURES,
    DatasetSignature,
    planted_low_rank,
    random_tensor,
    synthetic_dataset,
)
from repro.tensor.io import load_tns, save_tns
from repro.tensor.reorder import REORDER_STRATEGIES, apply_relabeling, reorder_tensor
from repro.tensor.sort import SORT_VARIANTS, sort_tensor
from repro.tensor.stats import TensorStats, tensor_stats
from repro.tensor.validate import ValidationReport, validate_tensor
from repro.tensor.transform import (
    binarize,
    drop_empty_slices,
    scale_values,
    split_nonzeros,
    subtensor,
)

__all__ = [
    "SparseTensor",
    "DatasetSignature",
    "DATASET_SIGNATURES",
    "synthetic_dataset",
    "random_tensor",
    "planted_low_rank",
    "load_tns",
    "save_tns",
    "sort_tensor",
    "SORT_VARIANTS",
    "TensorStats",
    "tensor_stats",
    "split_nonzeros",
    "drop_empty_slices",
    "scale_values",
    "binarize",
    "subtensor",
    "reorder_tensor",
    "apply_relabeling",
    "REORDER_STRATEGIES",
    "validate_tensor",
    "ValidationReport",
]
