"""Tensor validation reports (``splatt check``'s deep mode).

:func:`validate_tensor` inspects a COO tensor for the issues that matter
before decomposition and returns a structured report: duplicate
coordinates (CSF construction assumes unique), empty slices (wasted factor
rows; SPLATT compacts them), explicit zeros, pathological hub skew, and
basic shape sanity.  Nothing is repaired here — the transforms in
:mod:`repro.tensor.transform` do that — so validation stays side-effect
free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor.coo import SparseTensor
from repro.tensor.stats import tensor_stats

__all__ = ["ValidationIssue", "ValidationReport", "validate_tensor"]


@dataclass(frozen=True)
class ValidationIssue:
    """One finding.

    ``severity`` is ``"error"`` (decomposition would be wrong/ill-posed),
    ``"warning"`` (works, but wasteful or numerically fragile) or
    ``"info"``.
    """

    severity: str
    code: str
    message: str


@dataclass
class ValidationReport:
    """All findings for one tensor."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity issues were found."""
        return not any(i.severity == "error" for i in self.issues)

    def by_code(self, code: str) -> list[ValidationIssue]:
        return [i for i in self.issues if i.code == code]

    def render(self) -> str:
        if not self.issues:
            return "OK: no issues found"
        lines = []
        for issue in self.issues:
            lines.append(f"[{issue.severity.upper():7s}] {issue.code}: {issue.message}")
        return "\n".join(lines)


def validate_tensor(
    tensor: SparseTensor,
    *,
    hub_share_warning: float = 0.5,
) -> ValidationReport:
    """Inspect a tensor; see module docstring for the checked conditions."""
    report = ValidationReport()
    add = report.issues.append

    if tensor.nnz == 0:
        add(ValidationIssue("error", "empty", "tensor has no nonzeros"))
        return report

    # duplicates
    keys = np.unique(tensor.coords, axis=0)
    ndup = tensor.nnz - keys.shape[0]
    if ndup:
        add(ValidationIssue(
            "error", "duplicates",
            f"{ndup} duplicate coordinates (CSF construction assumes unique "
            "entries; call .deduplicate())",
        ))

    # explicit zeros
    nzeros = int((tensor.values == 0.0).sum())
    if nzeros:
        add(ValidationIssue(
            "warning", "explicit-zeros",
            f"{nzeros} stored zeros inflate nnz without contributing",
        ))

    stats = tensor_stats(tensor)
    for ms in stats.modes:
        empty = ms.dim - ms.nonempty_slices
        if empty:
            frac = empty / ms.dim
            severity = "warning" if frac > 0.1 else "info"
            add(ValidationIssue(
                severity, "empty-slices",
                f"mode {ms.mode}: {empty}/{ms.dim} slices empty "
                f"({100 * frac:.1f}%); drop_empty_slices() would compact",
            ))
        if ms.top_slice_share > hub_share_warning:
            add(ValidationIssue(
                "warning", "hub-skew",
                f"mode {ms.mode}: top 1% of slices hold "
                f"{100 * ms.top_slice_share:.0f}% of nonzeros — expect lock "
                "contention in parallel MTTKRP",
            ))

    # degenerate modes
    for m, d in enumerate(tensor.dims):
        if d == 1:
            add(ValidationIssue(
                "warning", "degenerate-mode",
                f"mode {m} has length 1 (contributes nothing to the "
                "decomposition)",
            ))

    # value magnitude spread (conditioning)
    mags = np.abs(tensor.values[tensor.values != 0.0])
    if mags.size:
        spread = float(mags.max() / mags.min())
        if spread > 1e8:
            add(ValidationIssue(
                "warning", "value-spread",
                f"nonzero magnitudes span {spread:.1e}x — consider "
                "scale_values() for conditioning",
            ))

    return report
