"""Structural statistics of sparse tensors.

The performance model (:mod:`repro.perfmodel`) is driven by *real* workload
statistics, not guesses: fiber counts per mode, slice occupancy, and the
hub-concentration numbers that determine whether SPLATT's parallel MTTKRP
needs its mutex pool for a given task count (the YELP-vs-NELL-2 distinction
at the heart of the paper's Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.coo import SparseTensor

__all__ = ["ModeStats", "TensorStats", "tensor_stats"]


@dataclass(frozen=True)
class ModeStats:
    """Per-mode structural statistics.

    Attributes
    ----------
    mode:
        The mode index these statistics describe.
    dim:
        Mode length ``I_n``.
    nonempty_slices:
        Number of indices of this mode that own at least one nonzero.
    nfibers:
        Number of distinct (this-mode, next-mode) fiber prefixes when this
        mode is the CSF root — the quantity SPLATT's CSF ``nfibs[1]`` reports.
    max_slice_nnz:
        Largest number of nonzeros in any slice of this mode.
    mean_slice_nnz:
        Mean nonzeros per *nonempty* slice.
    slice_imbalance:
        ``max_slice_nnz / mean_slice_nnz`` — a load-imbalance indicator; hub
        slices (YELP users who review everything) push it far above 1.
    top_slice_share:
        Fraction of all nonzeros owned by the heaviest 1% of slices.  This is
        the contention driver: when a few output rows absorb most updates,
        lock-free row ownership breaks down.
    """

    mode: int
    dim: int
    nonempty_slices: int
    nfibers: int
    max_slice_nnz: int
    mean_slice_nnz: float
    slice_imbalance: float
    top_slice_share: float


@dataclass(frozen=True)
class TensorStats:
    """Whole-tensor statistics consumed by the performance model."""

    dims: tuple[int, ...]
    nnz: int
    density: float
    modes: tuple[ModeStats, ...]

    @property
    def nmodes(self) -> int:
        return len(self.dims)

    def mode(self, m: int) -> ModeStats:
        return self.modes[m]

    @property
    def max_top_slice_share(self) -> float:
        """Worst hub concentration over all modes — the lock-pressure proxy."""
        return max(ms.top_slice_share for ms in self.modes)


def _slice_histogram(indices: np.ndarray, dim: int) -> np.ndarray:
    """Nonzeros per slice index, length ``dim``."""
    return np.bincount(indices, minlength=dim)


def _fiber_count(tensor: SparseTensor, mode: int) -> int:
    """Distinct (mode, next-mode) pairs = CSF level-1 fiber count at this root."""
    nmodes = tensor.nmodes
    if nmodes == 1:
        return int(np.unique(tensor.mode_indices(0)).size)
    nxt = (mode + 1) % nmodes
    a = tensor.mode_indices(mode).astype(np.int64)
    b = tensor.mode_indices(nxt).astype(np.int64)
    key = a * int(tensor.dims[nxt]) + b
    return int(np.unique(key).size)


def tensor_stats(tensor: SparseTensor) -> TensorStats:
    """Compute :class:`TensorStats` for a (deduplicated) tensor.

    Cost is ``O(nnz log nnz)`` per mode, dominated by the unique-fiber count.
    """
    modes = []
    for m in range(tensor.nmodes):
        dim = tensor.dims[m]
        hist = _slice_histogram(tensor.mode_indices(m), dim)
        nonempty = int((hist > 0).sum())
        max_nnz = int(hist.max()) if hist.size else 0
        mean_nnz = float(tensor.nnz / nonempty) if nonempty else 0.0
        imbalance = (max_nnz / mean_nnz) if mean_nnz > 0 else 0.0
        if tensor.nnz:
            k = max(1, dim // 100)  # heaviest 1% of slices (at least one)
            top = np.sort(hist)[-k:]
            top_share = float(top.sum() / tensor.nnz)
        else:
            top_share = 0.0
        modes.append(
            ModeStats(
                mode=m,
                dim=dim,
                nonempty_slices=nonempty,
                nfibers=_fiber_count(tensor, m),
                max_slice_nnz=max_nnz,
                mean_slice_nnz=mean_nnz,
                slice_imbalance=imbalance,
                top_slice_share=top_share,
            )
        )
    return TensorStats(
        dims=tensor.dims,
        nnz=tensor.nnz,
        density=tensor.density,
        modes=tuple(modes),
    )
