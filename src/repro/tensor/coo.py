"""Coordinate-format sparse tensors (SPLATT's ``sptensor_t``).

A :class:`SparseTensor` stores the nonzeros of an order-``N`` tensor as an
``(nnz, N)`` coordinate matrix plus an ``(nnz,)`` value vector.  This mirrors
SPLATT's structure-of-arrays layout (``tt->ind[m][x]`` / ``tt->vals[x]``); we
keep the coordinates as one 2-D array because a NumPy column view gives us the
per-mode arrays without copies.

The class is intentionally *not* a general tensor-algebra object: it supports
exactly the operations CP-ALS needs (mode statistics, matricized views,
Frobenius norm, densification for testing) and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._util import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    check_axis,
    ensure_index_array,
    ensure_value_array,
    human_bytes,
    prod,
)

__all__ = ["SparseTensor"]


@dataclass
class SparseTensor:
    """An order-``N`` sparse tensor in coordinate (COO) format.

    Parameters
    ----------
    coords:
        ``(nnz, N)`` integer array; ``coords[x, m]`` is the mode-``m`` index
        of nonzero ``x``.  Stored 0-indexed.
    values:
        ``(nnz,)`` float array of nonzero values.
    dims:
        Length of each mode.  Must dominate every coordinate.

    Notes
    -----
    Duplicate coordinates are allowed on construction (real-world FROSTT
    files contain them); call :meth:`deduplicate` to sum them, which is what
    SPLATT's ``tt_read`` pipeline does before CSF construction.
    """

    coords: np.ndarray
    values: np.ndarray
    dims: tuple[int, ...]
    #: Optional provenance label ("yelp-like", "nell2-like", file path, ...).
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        self.coords = ensure_index_array(self.coords, name="coords")
        self.values = ensure_value_array(self.values, name="values")
        if self.coords.ndim != 2:
            raise ValueError(f"coords must be 2-D (nnz, nmodes), got {self.coords.shape}")
        if self.values.ndim != 1:
            raise ValueError(f"values must be 1-D, got {self.values.shape}")
        if self.coords.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"coords rows ({self.coords.shape[0]}) != values length ({self.values.shape[0]})"
            )
        dims = tuple(int(d) for d in self.dims)
        if len(dims) != self.coords.shape[1]:
            raise ValueError(
                f"dims has {len(dims)} entries but coords has {self.coords.shape[1]} modes"
            )
        if any(d <= 0 for d in dims):
            raise ValueError(f"all dims must be positive, got {dims}")
        if self.nnz:
            maxima = self.coords.max(axis=0)
            for mode, (hi, dim) in enumerate(zip(maxima, dims)):
                if hi >= dim:
                    raise ValueError(
                        f"mode-{mode} coordinate {hi} out of range for dim {dim}"
                    )
        self.dims = dims

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        mode_indices: Sequence[np.ndarray],
        values: np.ndarray,
        dims: Sequence[int] | None = None,
        *,
        name: str = "",
    ) -> "SparseTensor":
        """Build from per-mode index arrays (SPLATT's native layout).

        If ``dims`` is omitted it is inferred as ``max+1`` per mode.
        """
        cols = [ensure_index_array(ix) for ix in mode_indices]
        if not cols:
            raise ValueError("at least one mode is required")
        nnz = cols[0].shape[0]
        if any(c.shape != (nnz,) for c in cols):
            raise ValueError("all mode index arrays must be 1-D of equal length")
        coords = np.stack(cols, axis=1) if nnz else np.empty((0, len(cols)), dtype=INDEX_DTYPE)
        if dims is None:
            dims = tuple(int(c.max()) + 1 if nnz else 1 for c in cols)
        return cls(coords, values, tuple(dims), name=name)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, name: str = "") -> "SparseTensor":
        """Extract the nonzeros of a dense ndarray (testing convenience)."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        coords = np.argwhere(dense != 0.0).astype(INDEX_DTYPE)
        values = dense[tuple(coords.T)] if coords.size else np.empty(0, dtype=VALUE_DTYPE)
        return cls(coords, values, dense.shape, name=name)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros (duplicates counted individually)."""
        return int(self.values.shape[0])

    @property
    def nmodes(self) -> int:
        """Tensor order ``N``."""
        return len(self.dims)

    @property
    def density(self) -> float:
        """``nnz / prod(dims)`` — the Table I density column."""
        return self.nnz / prod(self.dims)

    @property
    def size_on_disk(self) -> int:
        """Approximate FROSTT text-file footprint in bytes.

        Table I reports on-disk sizes; FROSTT lines average ~30 bytes for
        3rd-order tensors (three ~6-digit indices + a float).  We estimate
        ``(7 * nmodes + 9)`` bytes/line which reproduces the published sizes
        within ~15%.
        """
        return self.nnz * (7 * self.nmodes + 9)

    def mode_indices(self, mode: int) -> np.ndarray:
        """Zero-copy view of the coordinates of one mode."""
        return self.coords[:, check_axis(mode, self.nmodes)]

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self) -> "SparseTensor":
        """Deep copy (coords and values are duplicated)."""
        return SparseTensor(self.coords.copy(), self.values.copy(), self.dims, name=self.name)

    def deduplicate(self) -> "SparseTensor":
        """Sum duplicate coordinates into single entries, dropping exact zeros.

        Mirrors SPLATT's post-read fixup; CSF construction assumes unique
        coordinates.
        """
        if self.nnz == 0:
            return self.copy()
        order = np.lexsort(self.coords.T[::-1])
        sorted_coords = self.coords[order]
        sorted_vals = self.values[order]
        boundary = np.empty(self.nnz, dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_coords[1:] != sorted_coords[:-1]).any(axis=1)
        group = np.cumsum(boundary) - 1
        summed = np.zeros(group[-1] + 1, dtype=VALUE_DTYPE)
        np.add.at(summed, group, sorted_vals)
        unique_coords = sorted_coords[boundary]
        keep = summed != 0.0
        return SparseTensor(unique_coords[keep], summed[keep], self.dims, name=self.name)

    def permute_modes(self, perm: Sequence[int]) -> "SparseTensor":
        """Reorder the tensor's modes (used by CSF mode ordering)."""
        perm = tuple(int(p) for p in perm)
        if sorted(perm) != list(range(self.nmodes)):
            raise ValueError(f"perm {perm} is not a permutation of modes 0..{self.nmodes - 1}")
        return SparseTensor(
            np.ascontiguousarray(self.coords[:, perm]),
            self.values.copy(),
            tuple(self.dims[p] for p in perm),
            name=self.name,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense tensor (testing only — O(prod(dims)))."""
        if prod(self.dims) > 50_000_000:
            raise MemoryError(
                f"refusing to densify tensor of {prod(self.dims)} elements; "
                "to_dense is a testing aid for small tensors"
            )
        out = np.zeros(self.dims, dtype=VALUE_DTYPE)
        if self.nnz:
            np.add.at(out, tuple(self.coords.T), self.values)
        return out

    def matricize(self, mode: int) -> np.ndarray:
        """Dense mode-``n`` unfolding ``X_(n)`` (testing reference for MTTKRP).

        Uses the Kolda/Bader column ordering: the columns of ``X_(n)`` run
        over the remaining modes with the *lowest* remaining mode varying
        fastest — the same convention SPLATT's MTTKRP implements implicitly.
        """
        mode = check_axis(mode, self.nmodes)
        rest = [m for m in range(self.nmodes) if m != mode]
        ncols = prod(self.dims[m] for m in rest)
        out = np.zeros((self.dims[mode], ncols), dtype=VALUE_DTYPE)
        if self.nnz:
            col = np.zeros(self.nnz, dtype=INDEX_DTYPE)
            stride = 1
            for m in rest:  # lowest remaining mode varies fastest
                col += self.coords[:, m] * stride
                stride *= self.dims[m]
            np.add.at(out, (self.coords[:, mode], col), self.values)
        return out

    def norm(self) -> float:
        """Frobenius norm of the tensor (assumes deduplicated coordinates)."""
        return float(np.sqrt(np.dot(self.values, self.values)))

    def to_scipy(self, mode: int):
        """Mode-``mode`` unfolding as a :class:`scipy.sparse.csr_matrix`.

        The sparse counterpart of :meth:`matricize` (same column
        convention: lowest remaining mode varies fastest).  Bridges to the
        scipy.sparse ecosystem — e.g. feeding an unfolding to
        ``scipy.sparse.linalg.svds`` for HOSVD-style initialization.
        """
        from scipy.sparse import csr_matrix

        mode = check_axis(mode, self.nmodes)
        rest = [m for m in range(self.nmodes) if m != mode]
        ncols = prod(self.dims[m] for m in rest)
        if self.nnz == 0:
            return csr_matrix((self.dims[mode], ncols))
        cols = np.zeros(self.nnz, dtype=INDEX_DTYPE)
        stride = 1
        for m in rest:  # lowest remaining mode varies fastest
            cols += self.coords[:, m] * stride
            stride *= self.dims[m]
        return csr_matrix(
            (self.values, (self.coords[:, mode], cols)),
            shape=(self.dims[mode], ncols),
        )

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.dims)
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SparseTensor({dims},{label} nnz={self.nnz}, "
            f"density={self.density:.3g}, disk~{human_bytes(self.size_on_disk)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseTensor):
            return NotImplemented
        return (
            self.dims == other.dims
            and self.coords.shape == other.coords.shape
            and bool(np.array_equal(self.coords, other.coords))
            and bool(np.array_equal(self.values, other.values))
        )
