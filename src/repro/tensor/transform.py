"""Tensor transformation utilities.

The operations a practitioner applies between loading a tensor and
decomposing it: held-out splits for completion experiments, empty-slice
compaction (FROSTT files routinely have unused indices), value scaling,
and binarization.  All return new tensors; nothing mutates in place.
"""

from __future__ import annotations

import numpy as np

from repro._util import VALUE_DTYPE, as_rng
from repro.tensor.coo import SparseTensor

__all__ = [
    "split_nonzeros",
    "drop_empty_slices",
    "scale_values",
    "binarize",
    "subtensor",
]


def split_nonzeros(
    tensor: SparseTensor,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = 0,
) -> tuple[SparseTensor, SparseTensor]:
    """Random (train, test) split of the nonzeros.

    ``fraction`` is the test share; both returned tensors keep the full
    dims (so factor matrices stay shape-compatible).
    """
    if not 0 < fraction < 1:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if tensor.nnz < 2:
        raise ValueError("need at least 2 nonzeros to split")
    rng = as_rng(seed)
    n_test = max(1, int(round(tensor.nnz * fraction)))
    if n_test >= tensor.nnz:
        n_test = tensor.nnz - 1
    test_idx = rng.choice(tensor.nnz, size=n_test, replace=False)
    mask = np.zeros(tensor.nnz, dtype=bool)
    mask[test_idx] = True
    train = SparseTensor(
        tensor.coords[~mask], tensor.values[~mask], tensor.dims,
        name=f"{tensor.name}/train",
    )
    test = SparseTensor(
        tensor.coords[mask], tensor.values[mask], tensor.dims,
        name=f"{tensor.name}/test",
    )
    return train, test


def drop_empty_slices(tensor: SparseTensor) -> tuple[SparseTensor, list[np.ndarray]]:
    """Compact every mode's index space to its nonempty slices.

    Returns ``(compacted, maps)`` where ``maps[m][new_index] =
    old_index`` recovers the original labels.  SPLATT performs the same
    compaction when reading FROSTT files with gaps.
    """
    maps: list[np.ndarray] = []
    new_coords = np.empty_like(tensor.coords)
    new_dims = []
    for m in range(tensor.nmodes):
        used = np.unique(tensor.mode_indices(m))
        maps.append(used)
        lookup = np.zeros(tensor.dims[m], dtype=np.int64)
        lookup[used] = np.arange(used.size)
        new_coords[:, m] = lookup[tensor.mode_indices(m)]
        new_dims.append(max(int(used.size), 1))
    return (
        SparseTensor(new_coords, tensor.values.copy(), tuple(new_dims), name=tensor.name),
        maps,
    )


def scale_values(
    tensor: SparseTensor,
    *,
    how: str = "maxabs",
) -> tuple[SparseTensor, float]:
    """Rescale the nonzero values; returns ``(scaled, factor)``.

    ``how``:
      * ``"maxabs"`` — divide by ``max |v|`` (values land in [-1, 1]);
      * ``"norm"``   — divide by the Frobenius norm;
      * ``"mean"``   — divide by the mean absolute value.
    """
    if tensor.nnz == 0:
        return tensor.copy(), 1.0
    if how == "maxabs":
        factor = float(np.abs(tensor.values).max())
    elif how == "norm":
        factor = tensor.norm()
    elif how == "mean":
        factor = float(np.abs(tensor.values).mean())
    else:
        raise ValueError(f"unknown scaling {how!r}; use 'maxabs', 'norm' or 'mean'")
    if factor == 0.0:
        factor = 1.0
    return (
        SparseTensor(
            tensor.coords.copy(), tensor.values / factor, tensor.dims, name=tensor.name
        ),
        factor,
    )


def binarize(tensor: SparseTensor) -> SparseTensor:
    """Replace every nonzero value with 1.0 (presence tensor)."""
    return SparseTensor(
        tensor.coords.copy(),
        np.ones(tensor.nnz, dtype=VALUE_DTYPE),
        tensor.dims,
        name=tensor.name,
    )


def subtensor(
    tensor: SparseTensor,
    ranges: tuple[tuple[int, int], ...],
) -> SparseTensor:
    """Extract the sub-volume ``ranges[m] = (lo, hi)`` per mode.

    Coordinates are shifted to the sub-volume's origin; the result's dims
    are the range lengths.
    """
    if len(ranges) != tensor.nmodes:
        raise ValueError(f"need {tensor.nmodes} ranges, got {len(ranges)}")
    mask = np.ones(tensor.nnz, dtype=bool)
    for m, (lo, hi) in enumerate(ranges):
        if not 0 <= lo < hi <= tensor.dims[m]:
            raise ValueError(f"range {(lo, hi)} invalid for mode {m} (dim {tensor.dims[m]})")
        idx = tensor.mode_indices(m)
        mask &= (idx >= lo) & (idx < hi)
    coords = tensor.coords[mask].copy()
    for m, (lo, _) in enumerate(ranges):
        coords[:, m] -= lo
    dims = tuple(hi - lo for lo, hi in ranges)
    return SparseTensor(coords, tensor.values[mask], dims, name=tensor.name)
