"""Nonzero sorting: SPLATT's pre-processing counting sort + quicksort.

Before building the CSF for output mode ``n``, SPLATT sorts the tensor's
nonzeros lexicographically with mode ``n`` as the primary key (``tt_sort``).
The sort is a *counting sort* on the primary mode followed by per-bucket
quicksorts on the remaining modes.

The paper's Fig 1 studies four versions of the Chapel port of this routine;
we implement the same ladder so the optimization story can be measured for
real:

``initial``
    Faithful port of the naive Chapel code: a hand-written recursive
    quicksort that (a) allocates a small 2-element scratch array on *every*
    recursive call (the paper counts 46M such allocations on NELL-2) and
    (b) re-binds the per-mode index arrays with *copying* slice assignment
    before sorting.

``array_opt``
    ``initial`` with the per-call scratch array replaced by two scalar
    variables ("Array-opt" in Fig 1).

``slices_opt``
    ``initial`` with the copying re-binding replaced by pointer-style views
    ("Slices-opt" in Fig 1 — in Chapel this used ``c_ptrTo``; in NumPy the
    analogue is passing array *views* instead of copies).

``all_opts``
    Both fixes ("All-opts").

``lexsort``
    The role of the C reference: a fully vectorized
    :func:`numpy.lexsort`-based sort with no interpreted inner loop.

All variants produce byte-identical orderings of the nonzeros with respect to
the sort *key* (ties between identical coordinate tuples are broken
arbitrarily but deterministically) and each returns a
:class:`SortCounters` record of the work it performed, which feeds the
calibrated performance model.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro._util import check_axis
from repro.tensor.coo import SparseTensor

__all__ = ["SORT_VARIANTS", "SortCounters", "sort_tensor", "sort_perm_for_mode"]

#: Below this many elements the quicksort switches to insertion sort, the
#: same cutoff SPLATT uses (``MIN_QUICKSORT_SIZE``).
_INSERTION_CUTOFF = 8


@dataclass
class SortCounters:
    """Instrumentation of one sort run, consumed by :mod:`repro.perfmodel`.

    Attributes
    ----------
    quicksort_calls:
        Number of recursive quicksort invocations.
    scratch_allocs:
        Number of small scratch-array allocations performed (nonzero only in
        the un-optimized variants; the paper measured these at ~10% of the
        sort runtime).
    elements_copied:
        Elements copied by slice re-binding (nonzero only when the
        Slices-opt fix is off; SPLATT's C code re-binds pointers and copies
        nothing).
    comparisons:
        Lexicographic tuple comparisons made.
    swaps:
        Element swaps made.
    """

    quicksort_calls: int = 0
    scratch_allocs: int = 0
    elements_copied: int = 0
    comparisons: int = 0
    swaps: int = 0

    def merge(self, other: "SortCounters") -> None:
        self.quicksort_calls += other.quicksort_calls
        self.scratch_allocs += other.scratch_allocs
        self.elements_copied += other.elements_copied
        self.comparisons += other.comparisons
        self.swaps += other.swaps


def sort_perm_for_mode(mode: int, nmodes: int) -> tuple[int, ...]:
    """SPLATT's sort-key mode permutation for output mode ``mode``.

    The output mode is the primary key; the remaining modes follow in
    increasing order (``tt_sort``'s ``cmode`` handling).
    """
    mode = check_axis(mode, nmodes)
    return (mode, *[m for m in range(nmodes) if m != mode])


# ----------------------------------------------------------------------
# the "C" baseline: vectorized lexsort
# ----------------------------------------------------------------------
def _sort_lexsort(tensor: SparseTensor, perm: tuple[int, ...]) -> tuple[SparseTensor, SortCounters]:
    """Vectorized sort standing in for SPLATT's compiled C sort."""
    # np.lexsort's *last* key is primary, so feed the permutation reversed.
    keys = tuple(tensor.coords[:, m] for m in reversed(perm))
    order = np.lexsort(keys) if tensor.nnz else np.empty(0, dtype=np.int64)
    out = SparseTensor(
        np.ascontiguousarray(tensor.coords[order]),
        np.ascontiguousarray(tensor.values[order]),
        tensor.dims,
        name=tensor.name,
    )
    return out, SortCounters()


# ----------------------------------------------------------------------
# the ported quicksort (variant ladder)
# ----------------------------------------------------------------------
def _counting_sort_primary(
    coords: np.ndarray, values: np.ndarray, key_mode: int, dim: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable counting sort on the primary mode; returns bucket boundaries.

    This mirrors SPLATT's histogram pass: after this step the nonzeros are
    grouped by primary-mode index and each group (bucket) can be quicksorted
    on the remaining modes independently (which is where SPLATT's sort
    parallelism comes from).
    """
    primary = coords[:, key_mode]
    counts = np.bincount(primary, minlength=dim)
    starts = np.zeros(dim + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    order = np.argsort(primary, kind="stable")
    return coords[order], values[order], starts


def _cmp_rows(coords: np.ndarray, i: int, j: int, key_modes: tuple[int, ...]) -> int:
    """Three-way lexicographic comparison of nonzeros ``i`` and ``j``."""
    for m in key_modes:
        a = coords[i, m]
        b = coords[j, m]
        if a < b:
            return -1
        if a > b:
            return 1
    return 0


def _swap_rows(coords: np.ndarray, values: np.ndarray, i: int, j: int) -> None:
    """Swap two nonzeros (all mode indices + value), SPLATT-style."""
    tmp = coords[i].copy()
    coords[i] = coords[j]
    coords[j] = tmp
    values[i], values[j] = values[j], values[i]


def _insertion_sort(
    coords: np.ndarray,
    values: np.ndarray,
    lo: int,
    hi: int,
    key_modes: tuple[int, ...],
    counters: SortCounters,
) -> None:
    """Insertion sort on ``[lo, hi)`` — the small-range base case."""
    for i in range(lo + 1, hi):
        j = i
        while j > lo:
            counters.comparisons += 1
            if _cmp_rows(coords, j - 1, j, key_modes) <= 0:
                break
            _swap_rows(coords, values, j - 1, j)
            counters.swaps += 1
            j -= 1


def _quicksort(
    coords: np.ndarray,
    values: np.ndarray,
    lo: int,
    hi: int,
    key_modes: tuple[int, ...],
    counters: SortCounters,
    *,
    alloc_scratch: bool,
) -> None:
    """Recursive quicksort over nonzeros ``[lo, hi)``.

    ``alloc_scratch=True`` reproduces the un-optimized port: a fresh
    2-element array is allocated on every call (used to hold the partition
    walk state), which is exactly the overhead the paper's "Array-opt"
    removes by using two scalar variables instead.
    """
    counters.quicksort_calls += 1
    n = hi - lo
    if n < _INSERTION_CUTOFF:
        _insertion_sort(coords, values, lo, hi, key_modes, counters)
        return

    if alloc_scratch:
        # The naive port: allocate the partition cursor pair as an array.
        counters.scratch_allocs += 1
        cursor = np.empty(2, dtype=np.int64)
        cursor[0] = lo + 1
        cursor[1] = hi - 1
        i = int(cursor[0])
        j = int(cursor[1])
    else:
        # Array-opt: two plain scalars.
        i = lo + 1
        j = hi - 1

    # Median-of-three pivot selection, pivot parked at lo (SPLATT's scheme).
    mid = lo + n // 2
    counters.comparisons += 3
    if _cmp_rows(coords, mid, lo, key_modes) < 0:
        _swap_rows(coords, values, mid, lo)
        counters.swaps += 1
    if _cmp_rows(coords, hi - 1, lo, key_modes) < 0:
        _swap_rows(coords, values, hi - 1, lo)
        counters.swaps += 1
    if _cmp_rows(coords, mid, hi - 1, key_modes) < 0:
        _swap_rows(coords, values, mid, hi - 1)
        counters.swaps += 1
    pivot = hi - 1  # median now resides here

    while True:
        while i < pivot:
            counters.comparisons += 1
            if _cmp_rows(coords, i, pivot, key_modes) >= 0:
                break
            i += 1
        while j > lo:
            counters.comparisons += 1
            if _cmp_rows(coords, j, pivot, key_modes) < 0:
                break
            j -= 1
        if i >= j:
            break
        _swap_rows(coords, values, i, j)
        counters.swaps += 1
        i += 1
        j -= 1
    _swap_rows(coords, values, i, pivot)
    counters.swaps += 1

    _quicksort(coords, values, lo, i, key_modes, counters, alloc_scratch=alloc_scratch)
    _quicksort(coords, values, i + 1, hi, key_modes, counters, alloc_scratch=alloc_scratch)


def _rebind_mode_arrays(
    coords: np.ndarray, perm: tuple[int, ...], counters: SortCounters, *, use_views: bool
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Rearrange the per-mode arrays so the sort key is modes ``0..N-1``.

    SPLATT's C code does this by swapping *pointers* (``tt->ind[0] =
    tt->ind[cmode]``) — free.  The naive Chapel port copied whole sub-arrays
    instead, which Fig 1's "Slices-opt" eliminates via ``c_ptrTo``.

    ``use_views=False`` reproduces the copying behaviour: the coordinate
    matrix is physically permuted (every element copied).  ``use_views=True``
    reproduces the pointer swap: we leave the storage alone and return a
    permuted *key-mode order* for the comparator.
    """
    if use_views:
        # Pointer-style: zero copies; the comparator walks modes in perm order.
        return coords, perm
    counters.elements_copied += coords.size
    permuted = np.ascontiguousarray(coords[:, perm])
    identity = tuple(range(len(perm)))
    return permuted, identity


def _sort_ported(
    tensor: SparseTensor,
    perm: tuple[int, ...],
    *,
    alloc_scratch: bool,
    use_views: bool,
    env=None,
) -> tuple[SparseTensor, SortCounters]:
    """Counting sort + ported quicksort, with the chosen (de)optimizations.

    With ``env.num_tasks > 1`` the independent buckets are quicksorted on
    the tasking layer's threads (dynamic schedule — bucket sizes are
    skewed), which is exactly where SPLATT's sort parallelism lives.
    """
    counters = SortCounters()
    if tensor.nnz == 0:
        return tensor.copy(), counters

    coords = tensor.coords.copy()
    values = tensor.values.copy()

    work_coords, key_modes = _rebind_mode_arrays(coords, perm, counters, use_views=use_views)
    primary = key_modes[0]
    rest = key_modes[1:]

    work_coords, values, starts = _counting_sort_primary(
        work_coords, values, primary, tensor.dims[perm[0]]
    )

    # Per-bucket quicksort on the remaining modes.  Python's default
    # recursion limit is too small for pathological buckets; size it to the
    # worst case (quicksort depth is O(bucket) for adversarial inputs).
    max_bucket = int(np.max(np.diff(starts))) if starts.size > 1 else 0
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, max_bucket + 100))
    try:
        if rest:
            ntasks = getattr(env, "num_tasks", 1) if env is not None else 1
            if ntasks > 1:
                _parallel_bucket_sort(
                    work_coords, values, starts, rest, counters,
                    alloc_scratch=alloc_scratch, env=env,
                )
            else:
                for b in range(len(starts) - 1):
                    lo, hi = int(starts[b]), int(starts[b + 1])
                    if hi - lo > 1:
                        _quicksort(
                            work_coords, values, lo, hi, rest, counters,
                            alloc_scratch=alloc_scratch,
                        )
    finally:
        sys.setrecursionlimit(old_limit)

    if use_views:
        out_coords = work_coords  # original mode layout preserved
    else:
        # Undo the physical permutation so the output tensor keeps the
        # caller's mode order.
        inverse = np.empty(len(perm), dtype=np.int64)
        inverse[list(perm)] = np.arange(len(perm))
        counters.elements_copied += work_coords.size
        out_coords = np.ascontiguousarray(work_coords[:, inverse])

    out = SparseTensor(out_coords, values, tensor.dims, name=tensor.name)
    return out, counters


def _parallel_bucket_sort(
    work_coords: np.ndarray,
    values: np.ndarray,
    starts: np.ndarray,
    rest: tuple[int, ...],
    counters: SortCounters,
    *,
    alloc_scratch: bool,
    env,
) -> None:
    """Quicksort the counting-sort buckets on the tasking layer's threads.

    Buckets are disjoint row ranges, so no synchronization is needed on
    the data; each task keeps private counters that are merged afterwards.
    The dynamic schedule absorbs the skewed bucket-size distribution of
    hub-heavy tensors.
    """
    from repro.runtime.schedule import forall_scheduled
    from repro.runtime.tasking import make_tasking_layer

    layer = make_tasking_layer(env)
    nbuckets = len(starts) - 1
    task_counters = [SortCounters() for _ in range(env.num_tasks)]

    def body(blo: int, bhi: int, tid: int) -> None:
        local = task_counters[tid]
        for b in range(blo, bhi):
            lo, hi = int(starts[b]), int(starts[b + 1])
            if hi - lo > 1:
                _quicksort(
                    work_coords, values, lo, hi, rest, local,
                    alloc_scratch=alloc_scratch,
                )

    forall_scheduled(layer, nbuckets, body, schedule="dynamic", chunk=32)
    for local in task_counters:
        counters.merge(local)


# ----------------------------------------------------------------------
# public entry point
# ----------------------------------------------------------------------
SORT_VARIANTS: tuple[str, ...] = ("initial", "array_opt", "slices_opt", "all_opts", "lexsort")

_VARIANT_FLAGS = {
    "initial": dict(alloc_scratch=True, use_views=False),
    "array_opt": dict(alloc_scratch=False, use_views=False),
    "slices_opt": dict(alloc_scratch=True, use_views=True),
    "all_opts": dict(alloc_scratch=False, use_views=True),
}


def sort_tensor(
    tensor: SparseTensor,
    mode: int,
    *,
    variant: str = "lexsort",
    return_counters: bool = False,
    env=None,
) -> SparseTensor | tuple[SparseTensor, SortCounters]:
    """Sort a tensor's nonzeros lexicographically with ``mode`` primary.

    Parameters
    ----------
    tensor:
        Input tensor (not modified).
    mode:
        Output mode; becomes the primary sort key via
        :func:`sort_perm_for_mode`.
    variant:
        One of :data:`SORT_VARIANTS`.  ``lexsort`` is the vectorized "C"
        baseline; the other four are the paper's Fig 1 ladder.
    return_counters:
        Also return the :class:`SortCounters` instrumentation.
    env:
        Optional :class:`~repro.runtime.env.ChapelEnv`: with
        ``num_tasks > 1`` the per-bucket quicksorts of the ported variants
        run on the tasking layer's threads (SPLATT's parallel counting
        sort structure; counters are still aggregated exactly).  Ignored
        by ``lexsort``.

    Returns
    -------
    A new, sorted :class:`SparseTensor` (and counters if requested).
    """
    perm = sort_perm_for_mode(mode, tensor.nmodes)
    if variant == "lexsort":
        result, counters = _sort_lexsort(tensor, perm)
    elif variant in _VARIANT_FLAGS:
        result, counters = _sort_ported(
            tensor, perm, env=env, **_VARIANT_FLAGS[variant]
        )
    else:
        raise ValueError(f"unknown sort variant {variant!r}; choose from {SORT_VARIANTS}")
    if return_counters:
        return result, counters
    return result
