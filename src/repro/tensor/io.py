"""Tensor file I/O: the FROSTT ``.tns`` text format and a binary format.

SPLATT reads whitespace-separated text files where each line holds the
1-indexed coordinates of a nonzero followed by its value::

    1 1 1 1.0
    2 7 3 0.5

We reproduce that reader/writer (``load_tns`` / ``save_tns``), including
comment lines (``#``) and blank-line tolerance, plus a fast ``.npz`` binary
round-trip used by the benchmark harness to cache generated datasets.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path

import numpy as np

from repro._util import INDEX_DTYPE, VALUE_DTYPE
from repro.tensor.coo import SparseTensor

__all__ = ["load_tns", "save_tns", "load_binary", "save_binary"]


def _open_text(path: Path, mode: str):
    """Open text, transparently handling ``.gz`` files (FROSTT ships both)."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def load_tns(
    path: str | os.PathLike,
    *,
    dims: tuple[int, ...] | None = None,
    one_indexed: bool = True,
) -> SparseTensor:
    """Read a FROSTT-style text tensor.

    Parameters
    ----------
    path:
        File to read.
    dims:
        Explicit mode lengths.  When omitted, each mode length is inferred as
        ``max coordinate + 1`` (after 1-index correction), matching SPLATT's
        ``tt_get_dims``.
    one_indexed:
        FROSTT files are 1-indexed; set ``False`` for 0-indexed files.

    ``.gz`` paths are decompressed transparently (FROSTT distributes
    tensors gzipped).

    Raises
    ------
    ValueError
        On ragged rows (inconsistent mode counts between lines),
        non-numeric fields, or non-finite values (NaN/inf).  Messages
        carry the *file* line number (counting comments and blanks), not
        the nonzero's ordinal, so the offending line can be found in an
        editor.
    """
    path = Path(path)
    rows: list[tuple[int, list[str]]] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise ValueError(f"{path}:{lineno}: need at least one index and a value")
            rows.append((lineno, fields))
    if not rows:
        raise ValueError(f"{path}: no nonzeros found")
    width = len(rows[0][1])
    nmodes = width - 1
    coords = np.empty((len(rows), nmodes), dtype=INDEX_DTYPE)
    values = np.empty(len(rows), dtype=VALUE_DTYPE)
    for i, (lineno, fields) in enumerate(rows):
        if len(fields) != width:
            raise ValueError(
                f"{path}:{lineno}: ragged row has {len(fields)} fields, expected {width}"
            )
        try:
            coords[i] = [int(f) for f in fields[:-1]]
            values[i] = float(fields[-1])
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad numeric field: {exc}") from exc
        if not np.isfinite(values[i]):
            raise ValueError(
                f"{path}:{lineno}: non-finite value {fields[-1]!r} "
                "(NaN/inf nonzeros are not representable)"
            )
    if one_indexed:
        coords -= 1
    if (coords < 0).any():
        raise ValueError(f"{path}: coordinate underflow (is the file really 1-indexed?)")
    if dims is None:
        dims = tuple(int(coords[:, m].max()) + 1 for m in range(nmodes))
    name = path.stem
    if name.endswith(".tns"):
        name = name[: -len(".tns")]
    return SparseTensor(coords, values, dims, name=name)


def save_tns(
    tensor: SparseTensor,
    path: str | os.PathLike,
    *,
    one_indexed: bool = True,
) -> None:
    """Write a FROSTT-style text tensor (inverse of :func:`load_tns`)."""
    path = Path(path)
    offset = 1 if one_indexed else 0
    with _open_text(path, "w") as fh:
        for coord, value in zip(tensor.coords, tensor.values):
            idx = " ".join(str(int(c) + offset) for c in coord)
            # repr(float) round-trips doubles exactly
            fh.write(f"{idx} {float(value)!r}\n")


def save_binary(tensor: SparseTensor, path: str | os.PathLike) -> None:
    """Cache a tensor as compressed ``.npz`` (fast benchmark-harness format)."""
    np.savez_compressed(
        Path(path),
        coords=tensor.coords,
        values=tensor.values,
        dims=np.asarray(tensor.dims, dtype=INDEX_DTYPE),
        name=np.asarray(tensor.name),
    )


def load_binary(path: str | os.PathLike) -> SparseTensor:
    """Load a tensor cached with :func:`save_binary`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return SparseTensor(
            data["coords"],
            data["values"],
            tuple(int(d) for d in data["dims"]),
            name=str(data["name"]),
        )
