"""Tensor file I/O: the FROSTT ``.tns`` text format and a binary format.

SPLATT reads whitespace-separated text files where each line holds the
1-indexed coordinates of a nonzero followed by its value::

    1 1 1 1.0
    2 7 3 0.5

We reproduce that reader/writer (``load_tns`` / ``save_tns``), including
comment lines (``#``) and blank-line tolerance, plus two binary formats:

* ``.npz`` (``save_binary`` / ``load_binary``) — compressed cache used by
  the benchmark harness;
* ``.tnsb`` (``save_mmap`` / ``load_mmap``) — a flat uncompressed layout
  whose coordinate and value arrays are returned as *read-only memory
  maps*.  The multi-process transport relies on this: the driver maps the
  file once and the page cache shares the bytes with every locale worker,
  so a tensor is never loaded (or pickled) more than once per node.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path

import numpy as np

from repro._util import INDEX_DTYPE, VALUE_DTYPE
from repro.tensor.coo import SparseTensor

__all__ = [
    "load_tns",
    "save_tns",
    "load_binary",
    "save_binary",
    "load_mmap",
    "save_mmap",
    "MMAP_MAGIC",
]


def _open_text(path: Path, mode: str):
    """Open text, transparently handling ``.gz`` files (FROSTT ships both)."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def _consistent_width(path: Path, rows: list[tuple[int, list[str]]]) -> int:
    """The common field count of ``rows``, or a :class:`ValueError` that
    blames the *minority*-width line.

    Taking the expected width from the first data row blames every
    subsequent line when row 1 is the anomalous one, so the expected
    width is decided by majority vote over all rows instead.  With no
    majority (a tie), the first line whose width differs from row 1 is
    reported together with row 1 as the inconsistent pair.
    """
    counts: dict[int, int] = {}
    for _, fields in rows:
        counts[len(fields)] = counts.get(len(fields), 0) + 1
    if len(counts) == 1:
        return next(iter(counts))
    best = max(counts.values())
    majority = [w for w, c in counts.items() if c == best]
    if len(majority) == 1:
        width = majority[0]
        lineno, fields = next((ln, f) for ln, f in rows if len(f) != width)
        raise ValueError(
            f"{path}:{lineno}: ragged row has {len(fields)} fields, expected "
            f"{width} ({best} of {len(rows)} data lines have {width})"
        )
    first_lineno, first_fields = rows[0]
    lineno, fields = next(
        (ln, f) for ln, f in rows if len(f) != len(first_fields)
    )
    raise ValueError(
        f"{path}:{lineno}: ragged row has {len(fields)} fields but line "
        f"{first_lineno} has {len(first_fields)} (no majority width to "
        "decide which is wrong)"
    )


def load_tns(
    path: str | os.PathLike,
    *,
    dims: tuple[int, ...] | None = None,
    one_indexed: bool = True,
) -> SparseTensor:
    """Read a FROSTT-style text tensor.

    Parameters
    ----------
    path:
        File to read.
    dims:
        Explicit mode lengths.  When omitted, each mode length is inferred as
        ``max coordinate + 1`` (after 1-index correction), matching SPLATT's
        ``tt_get_dims``.
    one_indexed:
        FROSTT files are 1-indexed; set ``False`` for 0-indexed files.

    ``.gz`` paths are decompressed transparently (FROSTT distributes
    tensors gzipped).

    Raises
    ------
    ValueError
        On ragged rows (inconsistent mode counts between lines),
        non-numeric fields, or non-finite values (NaN/inf).  Messages
        carry the *file* line number (counting comments and blanks), not
        the nonzero's ordinal, so the offending line can be found in an
        editor.
    """
    path = Path(path)
    rows: list[tuple[int, list[str]]] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise ValueError(f"{path}:{lineno}: need at least one index and a value")
            rows.append((lineno, fields))
    if not rows:
        raise ValueError(f"{path}: no nonzeros found")
    width = _consistent_width(path, rows)
    nmodes = width - 1
    coords = np.empty((len(rows), nmodes), dtype=INDEX_DTYPE)
    values = np.empty(len(rows), dtype=VALUE_DTYPE)
    for i, (lineno, fields) in enumerate(rows):
        try:
            coords[i] = [int(f) for f in fields[:-1]]
            values[i] = float(fields[-1])
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad numeric field: {exc}") from exc
        if not np.isfinite(values[i]):
            raise ValueError(
                f"{path}:{lineno}: non-finite value {fields[-1]!r} "
                "(NaN/inf nonzeros are not representable)"
            )
    if one_indexed:
        coords -= 1
    if (coords < 0).any():
        raise ValueError(f"{path}: coordinate underflow (is the file really 1-indexed?)")
    if dims is None:
        dims = tuple(int(coords[:, m].max()) + 1 for m in range(nmodes))
    else:
        dims = tuple(int(d) for d in dims)
        if len(dims) != nmodes:
            raise ValueError(
                f"{path}: dims has {len(dims)} modes but the file has {nmodes} "
                "(coordinates per line minus the value field)"
            )
        out_of_range = (coords >= np.asarray(dims, dtype=INDEX_DTYPE)).any(axis=1)
        if out_of_range.any():
            i = int(np.argmax(out_of_range))
            lineno = rows[i][0]
            coord = tuple(int(c) + (1 if one_indexed else 0) for c in coords[i])
            raise ValueError(
                f"{path}:{lineno}: coordinate {coord} exceeds dims {dims} "
                f"({'1' if one_indexed else '0'}-indexed)"
            )
    name = path.stem
    if name.endswith(".tns"):
        name = name[: -len(".tns")]
    return SparseTensor(coords, values, dims, name=name)


def save_tns(
    tensor: SparseTensor,
    path: str | os.PathLike,
    *,
    one_indexed: bool = True,
) -> None:
    """Write a FROSTT-style text tensor (inverse of :func:`load_tns`)."""
    path = Path(path)
    offset = 1 if one_indexed else 0
    with _open_text(path, "w") as fh:
        for coord, value in zip(tensor.coords, tensor.values):
            idx = " ".join(str(int(c) + offset) for c in coord)
            # repr(float) round-trips doubles exactly
            fh.write(f"{idx} {float(value)!r}\n")


def _npz_path(path: str | os.PathLike) -> Path:
    """The path ``np.savez_compressed`` actually writes for ``path``.

    ``savez_compressed`` silently appends ``.npz`` when the suffix is
    missing; ``np.load`` does not.  Both :func:`save_binary` and
    :func:`load_binary` normalize through this helper so a round-trip with
    a suffixless path names the same file on both sides.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_binary(tensor: SparseTensor, path: str | os.PathLike) -> None:
    """Cache a tensor as compressed ``.npz`` (fast benchmark-harness format).

    A missing ``.npz`` suffix is appended, matching what
    ``np.savez_compressed`` would do anyway — see :func:`_npz_path`.
    """
    np.savez_compressed(
        _npz_path(path),
        coords=tensor.coords,
        values=tensor.values,
        dims=np.asarray(tensor.dims, dtype=INDEX_DTYPE),
        name=np.asarray(tensor.name),
    )


def load_binary(path: str | os.PathLike) -> SparseTensor:
    """Load a tensor cached with :func:`save_binary`.

    Applies the same ``.npz`` suffix normalization as :func:`save_binary`,
    so ``load_binary(p)`` always finds what ``save_binary(p)`` wrote.
    """
    with np.load(_npz_path(path), allow_pickle=False) as data:
        return SparseTensor(
            data["coords"],
            data["values"],
            tuple(int(d) for d in data["dims"]),
            name=str(data["name"]),
        )


#: Magic bytes opening every ``.tnsb`` flat binary tensor file.
MMAP_MAGIC = b"RPTNSB01"

#: Header layout after the magic: int64 ``nmodes``, int64 ``nnz``, then
#: ``nmodes`` int64 dims; coords (``nnz × nmodes`` int64, C order) and
#: values (``nnz`` float64) follow back-to-back.
_HEADER_DTYPE = np.dtype(np.int64)


def save_mmap(tensor: SparseTensor, path: str | os.PathLike) -> None:
    """Write a tensor in the flat ``.tnsb`` layout read by :func:`load_mmap`.

    The layout is deliberately trivial — magic, int64 header, raw
    little-endian arrays — so :func:`load_mmap` can hand back zero-copy
    ``np.memmap`` views instead of parsing anything.

    The write is **atomic** (same write-temp–fsync–rename discipline as
    :mod:`repro.resilience.checkpoint`): ``.tnsb`` files are mapped by
    every process sharing the page cache, so an in-place overwrite killed
    mid-write would leave a truncated file for all of them.  A crash
    leaves either the previous complete file or none — never a torn one.
    """
    path = Path(path)
    coords = np.ascontiguousarray(tensor.coords, dtype=INDEX_DTYPE)
    values = np.ascontiguousarray(tensor.values, dtype=VALUE_DTYPE)
    header = np.array(
        [tensor.nmodes, tensor.nnz, *tensor.dims], dtype=_HEADER_DTYPE
    )
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            fh.write(MMAP_MAGIC)
            fh.write(header.tobytes())
            fh.write(coords.tobytes())
            fh.write(values.tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed write: don't litter
            tmp.unlink(missing_ok=True)


def load_mmap(path: str | os.PathLike) -> SparseTensor:
    """Map a ``.tnsb`` file as a tensor backed by read-only ``np.memmap``.

    The coordinate and value arrays are views over the page cache — the
    file's bytes are shared with every other process that maps it, which
    is how the multi-process transport loads a tensor exactly once per
    node.  The returned arrays are read-only; callers that must mutate
    (e.g. :func:`~repro.tensor.dedup.deduplicate`) get a copy-on-write
    copy from numpy automatically when they ``np.array`` them.
    """
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(len(MMAP_MAGIC))
        if magic != MMAP_MAGIC:
            raise ValueError(
                f"{path}: not a .tnsb tensor (bad magic {magic!r}; "
                f"expected {MMAP_MAGIC!r})"
            )
        fixed = np.frombuffer(fh.read(2 * _HEADER_DTYPE.itemsize), dtype=_HEADER_DTYPE)
        if fixed.size != 2:
            raise ValueError(f"{path}: truncated .tnsb header")
        nmodes, nnz = int(fixed[0]), int(fixed[1])
        if nmodes < 1 or nnz < 0:
            raise ValueError(f"{path}: corrupt .tnsb header (nmodes={nmodes}, nnz={nnz})")
        dims_raw = np.frombuffer(
            fh.read(nmodes * _HEADER_DTYPE.itemsize), dtype=_HEADER_DTYPE
        )
        if dims_raw.size != nmodes:
            raise ValueError(f"{path}: truncated .tnsb dims")
        dims = tuple(int(d) for d in dims_raw)
        data_start = fh.tell()

    coords_bytes = nnz * nmodes * np.dtype(INDEX_DTYPE).itemsize
    values_bytes = nnz * np.dtype(VALUE_DTYPE).itemsize
    expected = data_start + coords_bytes + values_bytes
    actual = path.stat().st_size
    if actual < expected:
        raise ValueError(
            f"{path}: truncated .tnsb payload ({actual} bytes, expected {expected})"
        )

    coords = np.memmap(
        path, dtype=INDEX_DTYPE, mode="r", offset=data_start, shape=(nnz, nmodes)
    )
    values = np.memmap(
        path, dtype=VALUE_DTYPE, mode="r",
        offset=data_start + coords_bytes, shape=(nnz,),
    )
    name = path.stem
    for ext in (".tnsb", ".tns"):
        if name.endswith(ext):
            name = name[: -len(ext)]
    return SparseTensor(coords, values, dims, name=name)
