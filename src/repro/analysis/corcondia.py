"""CORCONDIA — the core consistency diagnostic (Bro & Kiers 2003).

Given a CP model, fit an unconstrained Tucker core ``G`` to the data with
the CP factors held fixed and compare it to the superdiagonal ``T`` the CP
model implies:

    CORCONDIA = 100 · (1 − ‖G − T‖² / ‖T‖²)

Scores near 100 mean the data really is (multi)linear at this rank; large
drops (or negative values) flag an over-estimated rank.  The core solve
uses factor pseudo-inverses mode by mode, so the cost is dense in
``Π dims`` — this is a diagnostic for the small/planted tensors used in
validation, matching its standard usage.
"""

from __future__ import annotations

import numpy as np

from repro.core.kruskal import KruskalTensor
from repro.tensor.coo import SparseTensor

__all__ = ["core_consistency"]


def core_consistency(tensor: SparseTensor, model: KruskalTensor) -> float:
    """CORCONDIA of ``model`` against ``tensor`` (≤ 100).

    Raises :class:`MemoryError` via ``to_dense`` on tensors too large to
    densify — by design, see module docstring.
    """
    if tensor.dims != model.dims:
        raise ValueError(f"tensor dims {tensor.dims} != model dims {model.dims}")
    rank = model.rank
    dense = tensor.to_dense()

    # weights folded into the first factor so the implied core is the
    # identity superdiagonal
    factors = [f.copy() for f in model.factors]
    factors[0] = factors[0] * model.weights

    # G = X ×_1 A1⁺ ×_2 A2⁺ ... (mode-wise pseudo-inverse contractions)
    core = dense
    for mode, factor in enumerate(factors):
        pinv = np.linalg.pinv(factor)  # (R, I_mode)
        core = np.tensordot(pinv, core, axes=(1, mode))
        # tensordot puts the new axis first; rotate it back into place
        core = np.moveaxis(core, 0, mode)

    target = np.zeros((rank,) * tensor.nmodes)
    idx = (np.arange(rank),) * tensor.nmodes
    target[idx] = 1.0

    denom = float((target**2).sum())  # == rank
    diff = float(((core - target) ** 2).sum())
    return 100.0 * (1.0 - diff / denom)
