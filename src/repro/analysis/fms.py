"""Factor match score (FMS) between Kruskal models.

The FMS is the standard permutation- and scaling-invariant similarity for
CP decompositions: components are matched one-to-one (optimal assignment)
and each matched pair scores the product over modes of the cosine
similarity between its factor columns, discounted by weight disagreement:

    FMS = (1/R) Σ_r  (1 − |ξ_p(r) − ξ_r| / max(ξ_p(r), ξ_r)) ·
                     Π_m |cos(a_r^m, b_p(r)^m)|

with ``ξ`` the component magnitudes (λ times the column norms).  1 means
the models are identical up to permutation and per-mode scaling.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.kruskal import KruskalTensor

__all__ = ["factor_match_score", "align_components"]


def _normalized_columns(model: KruskalTensor) -> tuple[list[np.ndarray], np.ndarray]:
    """Unit-column factors and absorbed component magnitudes ``ξ``."""
    mags = np.abs(np.asarray(model.weights, dtype=float)).copy()
    units = []
    for factor in model.factors:
        norms = np.linalg.norm(factor, axis=0)
        safe = np.where(norms == 0, 1.0, norms)
        units.append(factor / safe)
        mags *= norms
    return units, mags


def _congruence_matrix(a: KruskalTensor, b: KruskalTensor) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pairwise component scores before assignment."""
    if a.nmodes != b.nmodes or a.dims != b.dims:
        raise ValueError(f"models have different shapes: {a.dims} vs {b.dims}")
    if a.rank != b.rank:
        raise ValueError(f"models have different ranks: {a.rank} vs {b.rank}")
    ua, xa = _normalized_columns(a)
    ub, xb = _normalized_columns(b)
    rank = a.rank
    cos = np.ones((rank, rank))
    for fa, fb in zip(ua, ub):
        cos *= np.abs(fa.T @ fb)
    return cos, xa, xb


def align_components(a: KruskalTensor, b: KruskalTensor) -> np.ndarray:
    """Optimal matching of ``b``'s components to ``a``'s.

    Returns ``perm`` with ``b``'s component ``perm[r]`` matched to ``a``'s
    component ``r`` (Hungarian assignment on the congruence matrix).
    """
    cos, _, _ = _congruence_matrix(a, b)
    rows, cols = linear_sum_assignment(-cos)
    perm = np.empty(a.rank, dtype=np.int64)
    perm[rows] = cols
    return perm


def factor_match_score(
    a: KruskalTensor,
    b: KruskalTensor,
    *,
    weight_penalty: bool = True,
) -> float:
    """FMS between two same-shape, same-rank Kruskal models (∈ [0, 1]).

    Parameters
    ----------
    weight_penalty:
        Apply the magnitude-disagreement discount (set ``False`` to score
        subspace similarity only).
    """
    cos, xa, xb = _congruence_matrix(a, b)
    rows, cols = linear_sum_assignment(-cos)
    scores = cos[rows, cols]
    if weight_penalty:
        wa = xa[rows]
        wb = xb[cols]
        denom = np.maximum(np.maximum(wa, wb), 1e-300)
        scores = scores * (1.0 - np.abs(wa - wb) / denom)
    return float(np.clip(scores.mean(), 0.0, 1.0))
