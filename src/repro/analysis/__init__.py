"""Decomposition quality analysis.

Tools for judging what CP-ALS produced — the questions a SPLATT user asks
after ``splatt cpd`` finishes:

* :func:`~repro.analysis.fms.factor_match_score` — permutation- and
  scaling-invariant similarity between two Kruskal models (the standard
  FMS of the tensor literature); used to verify that CP-ALS *recovers
  planted factors*, a much stronger statement than a good fit.
* :func:`~repro.analysis.corcondia.core_consistency` — the CORCONDIA
  diagnostic: how close the implied Tucker core is to the CP
  superdiagonal (100 = perfectly trilinear; drops sharply when the chosen
  rank exceeds the data's true rank).
* :func:`~repro.analysis.components.component_summary` /
  :func:`~repro.analysis.components.top_entities` — human-readable
  component inspection used by the examples.
"""

from repro.analysis.components import component_summary, top_entities
from repro.analysis.corcondia import core_consistency
from repro.analysis.fms import align_components, factor_match_score

__all__ = [
    "factor_match_score",
    "align_components",
    "core_consistency",
    "component_summary",
    "top_entities",
]
