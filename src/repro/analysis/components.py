"""Human-readable component inspection (what the examples print)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kruskal import KruskalTensor

__all__ = ["top_entities", "component_summary", "ComponentInfo"]


def top_entities(model: KruskalTensor, mode: int, component: int, k: int = 5) -> list[tuple[int, float]]:
    """The ``k`` strongest indices of one component in one mode.

    Returns ``(index, loading)`` pairs sorted by descending |loading|.
    """
    if not 0 <= mode < model.nmodes:
        raise ValueError(f"mode {mode} out of range")
    if not 0 <= component < model.rank:
        raise ValueError(f"component {component} out of range for rank {model.rank}")
    col = model.factors[mode][:, component]
    k = min(k, col.shape[0])
    order = np.argsort(np.abs(col))[::-1][:k]
    return [(int(i), float(col[i])) for i in order]


@dataclass(frozen=True)
class ComponentInfo:
    """Summary of one rank-one component."""

    component: int
    weight: float
    #: Per-mode concentration: fraction of the column's ℓ₂ energy in its
    #: top 1% of entries (hub-iness of the component).
    concentration: tuple[float, ...]
    #: Per-mode top entities, ``(index, loading)``.
    top: tuple[tuple[tuple[int, float], ...], ...]


def component_summary(model: KruskalTensor, *, k: int = 5) -> list[ComponentInfo]:
    """Per-component summaries, sorted by descending weight."""
    order = np.argsort(np.abs(model.weights))[::-1]
    out = []
    for r in order:
        conc = []
        tops = []
        for m, factor in enumerate(model.factors):
            col = factor[:, r]
            energy = float((col * col).sum()) or 1.0
            top_n = max(1, col.shape[0] // 100)
            top_energy = float(np.sort(col * col)[-top_n:].sum())
            conc.append(top_energy / energy)
            tops.append(tuple(top_entities(model, m, int(r), k)))
        out.append(
            ComponentInfo(
                component=int(r),
                weight=float(model.weights[r]),
                concentration=tuple(conc),
                top=tuple(tops),
            )
        )
    return out
