"""Structured tracing core: nestable, thread-aware spans and counters.

The paper attributes every second of Figs 1-10 to a *named* piece of work
(sorting, MTTKRP row access, mutex contention, Qthreads interference); this
module gives the reproduction the same vocabulary.  A **span** is one timed
region with a name, attributes and a parent; the runtime and kernels open
spans around tasking-layer dispatches, MTTKRP sweeps and algorithm
iterations, and the active :class:`TraceRecorder` collects them into
per-thread timelines plus aggregate metrics.

Design constraints (see docs/OBSERVABILITY.md):

* **Near-zero overhead when disabled.**  There is one module-global
  ``_active`` recorder slot.  Hot call sites either read it directly
  (``spans._active is not None``) or call :func:`span`, which returns a
  shared no-op context manager when tracing is off — no allocation, no
  locking, no clock read.
* **Thread-aware.**  Spans are stacked per thread (``threading.local``),
  so a ``coforall`` task body traced on a pool worker lands on that
  worker's timeline.  Cross-thread causality (dispatch → task) is kept via
  an explicit ``parent_id`` on the task spans.
* **Non-perturbing.**  Recorders never touch the arrays or factor state of
  the computation; enabling tracing must not change any numeric result
  (asserted by the property suite).

Use :class:`tracing` (re-exported from :mod:`repro.observe`) to install a
recorder for a ``with`` block, or pass ``--trace PATH`` to the CLI.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SpanRecord",
    "TraceRecorder",
    "tracing",
    "span",
    "count",
    "gauge",
    "enabled",
    "active_recorder",
]

#: The installed recorder, or ``None`` when tracing is disabled.  Hot paths
#: read this directly; everything else goes through :func:`span`/:func:`count`.
_active: "TraceRecorder | None" = None
_install_lock = threading.Lock()


def enabled() -> bool:
    """True when a recorder is installed (tracing is on)."""
    return _active is not None


def active_recorder() -> "TraceRecorder | None":
    """The installed recorder, or ``None``."""
    return _active


class _NullSpan:
    """Shared no-op span: the disabled-path return value of :func:`span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> "_NullSpan":
        return self

    def set_attrs(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Open a span named ``name`` (context manager).

    Returns the shared no-op span when tracing is disabled, so call sites
    can unconditionally write ``with observe.span("sort"): ...``.
    """
    rec = _active
    if rec is None:
        return NULL_SPAN
    return rec.span(name, attrs)  # reprolint: allow(span-no-ctx) — span() is the factory; every call site enters the returned context manager


def count(name: str, n: int | float = 1) -> None:
    """Increment counter ``name`` by ``n`` on the active recorder (if any)."""
    rec = _active
    if rec is not None:
        rec.count(name, n)


def gauge(name: str, value: Any) -> None:
    """Set gauge ``name`` to ``value`` on the active recorder (if any)."""
    rec = _active
    if rec is not None:
        rec.gauge(name, value)


@dataclass
class SpanRecord:
    """One finished span.

    ``start``/``end`` are recorder-clock seconds (``time.perf_counter`` by
    default); ``tid`` is a compact per-recorder thread id (0 = the first
    thread seen, normally the main thread); ``parent`` is the id of the
    enclosing span or ``None`` for a root.
    """

    id: int
    name: str
    tid: int
    start: float
    end: float
    parent: int | None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _LiveSpan:
    """An open span; records itself on ``__exit__``."""

    __slots__ = ("_rec", "name", "attrs", "id", "_parent", "_tid", "_start")

    def __init__(self, rec: "TraceRecorder", name: str, attrs: dict[str, Any],
                 parent_id: int | None):
        self._rec = rec
        self.name = name
        self.attrs = attrs
        self.id = -1
        self._parent = parent_id
        self._tid = -1
        self._start = 0.0

    def set_attr(self, key: str, value: Any) -> "_LiveSpan":
        self.attrs[key] = value
        return self

    def set_attrs(self, **attrs: Any) -> "_LiveSpan":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._rec._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._rec._exit(self)
        return False


class TraceRecorder:
    """Collects spans, counters and gauges for one traced region.

    Spans nest per thread; :meth:`span_tree` reassembles the global tree
    (cross-thread edges included), :meth:`metrics` flattens everything into
    a plain dict, and :meth:`chrome_trace` renders Chrome-trace-format JSON
    loadable by ``chrome://tracing`` and Perfetto.
    """

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        self._tls = threading.local()
        self._next_id = 0
        self._threads: dict[int, int] = {}
        self._thread_names: dict[int, str] = {}
        #: Total recorder events (span completions + counter/gauge updates);
        #: the overhead benchmark uses this to bound the disabled-path cost.
        self.events_recorded = 0
        self.t0 = clock()

    # ------------------------------------------------------------------
    def _thread_id(self) -> int:
        ident = threading.get_ident()
        tid = self._threads.get(ident)
        if tid is None:
            with self._lock:
                tid = self._threads.setdefault(ident, len(self._threads))
                self._thread_names.setdefault(tid, threading.current_thread().name)
        return tid

    def _stack(self) -> list["_LiveSpan"]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def span(self, name: str, attrs: dict[str, Any] | None = None,
             *, parent_id: int | None = None) -> _LiveSpan:
        """Open a span; ``parent_id`` overrides the per-thread nesting
        (used for cross-thread dispatch → task edges)."""
        return _LiveSpan(self, name, dict(attrs) if attrs else {}, parent_id)

    def _enter(self, live: _LiveSpan) -> None:
        stack = self._stack()
        if live._parent is None and stack:
            live._parent = stack[-1].id
        with self._lock:
            live.id = self._next_id
            self._next_id += 1
        live._tid = self._thread_id()
        stack.append(live)
        live._start = self._clock()  # last, so setup cost stays outside

    def _exit(self, live: _LiveSpan) -> None:
        end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is live:
            stack.pop()
        else:  # tolerate out-of-order exits rather than corrupting the stack
            try:
                stack.remove(live)
            except ValueError:
                pass
        record = SpanRecord(
            id=live.id, name=live.name, tid=live._tid,
            start=live._start, end=end, parent=live._parent, attrs=live.attrs,
        )
        with self._lock:
            self._records.append(record)
            self.events_recorded += 1

    def current_span_id(self) -> int | None:
        """Id of the calling thread's innermost open span (or ``None``)."""
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return None
        return stack[-1].id

    # ------------------------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        """Thread-safe monotone counter increment."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
            self.events_recorded += 1

    def gauge(self, name: str, value: Any) -> None:
        """Thread-safe last-value gauge."""
        with self._lock:
            self._gauges[name] = value
            self.events_recorded += 1

    def absorb(self, metrics: dict[str, float], *, prefix: str = "") -> None:
        """Merge an external flat numeric metrics dict into the counters.

        The multi-process transport uses this to fold each locale worker's
        span/counter summary (collected by a recorder in *that* process)
        into the driver's trace as ``{prefix}{name}`` counters — the
        per-locale numbers then ride along in :meth:`metrics`, the Chrome
        trace export and every downstream consumer.  Non-numeric values
        are ignored; counts accumulate across repeated absorbs.
        """
        with self._lock:
            for name, value in metrics.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                key = f"{prefix}{name}"
                self._counters[key] = self._counters.get(key, 0) + value
                self.events_recorded += 1

    # ------------------------------------------------------------------
    def finished_spans(self) -> list[SpanRecord]:
        """Completed spans, ordered by start time."""
        with self._lock:
            records = list(self._records)
        records.sort(key=lambda r: (r.start, r.id))
        return records

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._gauges)

    def thread_names(self) -> dict[int, str]:
        """Compact tid → thread name, for exporters."""
        with self._lock:
            return dict(self._thread_names)

    def span_tree(self) -> list[dict[str, Any]]:
        """The finished spans as a forest of nested dicts.

        Each node is ``{"name", "tid", "start", "duration", "attrs",
        "children"}`` with children ordered by start time.  Spans whose
        parent never finished (or was recorded out of order) become roots.
        """
        records = self.finished_spans()
        nodes: dict[int, dict[str, Any]] = {}
        for r in records:
            nodes[r.id] = {
                "name": r.name,
                "tid": r.tid,
                "start": r.start - self.t0,
                "duration": r.duration,
                "attrs": dict(r.attrs),
                "children": [],
            }
        roots: list[dict[str, Any]] = []
        for r in records:
            node = nodes[r.id]
            if r.parent is not None and r.parent in nodes:
                nodes[r.parent]["children"].append(node)
            else:
                roots.append(node)
        return roots

    def metrics(self) -> dict[str, Any]:
        """Flat metrics dict: per-span-name totals, counters and gauges.

        Keys are dotted: ``span.<name>.count`` / ``span.<name>.total_s``,
        ``counter.<name>``, ``gauge.<name>`` — the shape benchmarks and
        regression checks consume (docs/OBSERVABILITY.md).
        """
        out: dict[str, Any] = {}
        per_name: dict[str, tuple[int, float]] = {}
        for r in self.finished_spans():
            n, total = per_name.get(r.name, (0, 0.0))
            per_name[r.name] = (n + 1, total + r.duration)
        for name, (n, total) in sorted(per_name.items()):
            out[f"span.{name}.count"] = n
            out[f"span.{name}.total_s"] = total
        for name, value in sorted(self.counters().items()):
            out[f"counter.{name}"] = value
        for name, value in sorted(self.gauges().items()):
            out[f"gauge.{name}"] = value
        return out

    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict[str, Any]:
        """Chrome-trace-format JSON object (see :mod:`repro.observe.export`)."""
        from repro.observe.export import chrome_trace

        return chrome_trace(self)

    def write(self, path) -> None:
        """Write :meth:`chrome_trace` as JSON to ``path``."""
        from repro.observe.export import write_chrome_trace

        write_chrome_trace(self, path)


class tracing:
    """Install a recorder for a ``with`` block::

        with tracing() as tr:
            repro.cp_als(x, rank=16)
        tr.metrics()                       # flat dict
        tr.write("trace.json")             # chrome://tracing / Perfetto

    ``tracing("trace.json")`` writes the Chrome trace automatically on
    exit.  Nesting is allowed (the previous recorder is restored); the
    installed recorder is process-global, so trace one region at a time.
    """

    def __init__(self, path=None, *, recorder: TraceRecorder | None = None):
        self.path = path
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self._prev: TraceRecorder | None = None

    def __enter__(self) -> TraceRecorder:
        global _active
        with _install_lock:
            self._prev = _active
            _active = self.recorder
        return self.recorder

    def __exit__(self, *exc) -> bool:
        global _active
        with _install_lock:
            _active = self._prev
        self._prev = None
        if self.path is not None:
            self.recorder.write(self.path)
        return False
