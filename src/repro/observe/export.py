"""Exporters: Chrome-trace-format JSON and its validation schema.

The Chrome trace event format (the JSON flavour consumed by
``chrome://tracing`` and Perfetto's legacy-JSON importer) is an object with
a ``traceEvents`` array.  We emit:

* one complete event (``"ph": "X"``) per finished span — microsecond
  ``ts``/``dur`` relative to the recorder's start, ``pid`` fixed at 1,
  ``tid`` the recorder's compact thread id, span attributes under ``args``;
* ``thread_name`` metadata events (``"ph": "M"``) so timelines are
  labelled with real thread names;
* one counter event (``"ph": "C"``) per recorder counter, stamped at the
  trace end with the final total.

``otherData.metrics`` carries the recorder's flat metrics dict — benchmark
tooling reads it without walking the event array.

:func:`validate_chrome_trace` is the checked-in schema the golden-trace
tests (and CI's smoke artifact) verify round-tripped files against; it
encodes the subset of the format Perfetto requires to parse the file.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

#: pid reported for every event (single-process runtime).
TRACE_PID = 1


def _jsonable(value: Any) -> Any:
    """Coerce attribute values (NumPy scalars, tuples, ...) to JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        try:
            return _jsonable(tolist())
        except (TypeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def chrome_trace(recorder) -> dict[str, Any]:
    """Render a :class:`~repro.observe.spans.TraceRecorder` as a Chrome
    trace JSON object (not yet serialized)."""
    events: list[dict[str, Any]] = []
    for tid, name in sorted(recorder.thread_names().items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": name},
        })
    end_us = 0.0
    for rec in recorder.finished_spans():
        ts = (rec.start - recorder.t0) * 1e6
        dur = rec.duration * 1e6
        end_us = max(end_us, ts + dur)
        events.append({
            "name": rec.name,
            "cat": "repro",
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": TRACE_PID,
            "tid": rec.tid,
            "args": {str(k): _jsonable(v) for k, v in rec.attrs.items()},
        })
    for name, value in sorted(recorder.counters().items()):
        events.append({
            "name": name,
            "cat": "repro",
            "ph": "C",
            "ts": end_us,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"value": _jsonable(value)},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": {k: _jsonable(v) for k, v in recorder.metrics().items()}},
    }


def write_chrome_trace(recorder, path) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(recorder), fh, indent=1)


def validate_chrome_trace(obj: Any) -> list[str]:
    """Validate a parsed trace object against the format subset we emit.

    Returns a list of human-readable schema violations (empty = valid).
    Checks the structural requirements Perfetto's JSON importer relies on:
    a ``traceEvents`` array of objects, each with a string ``ph``; complete
    events additionally need a string ``name``, numeric non-negative
    ``ts``/``dur``, integer ``pid``/``tid`` and (when present) an object
    ``args``.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing/invalid 'ph'")
            continue
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: 'pid' must be an integer")
        if not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: 'tid' must be an integer")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
        if ph == "X":
            if not isinstance(ev.get("name"), str):
                errors.append(f"{where}: complete event needs a string 'name'")
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                    errors.append(f"{where}: '{key}' must be a non-negative number")
        elif ph == "M":
            if not isinstance(ev.get("name"), str):
                errors.append(f"{where}: metadata event needs a string 'name'")
        elif ph == "C":
            v = ev.get("ts")
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: counter 'ts' must be a non-negative number")
    try:
        json.dumps(obj)
    except (TypeError, ValueError) as exc:
        errors.append(f"object is not JSON-serializable: {exc}")
    return errors
