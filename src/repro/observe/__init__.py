"""``repro.observe`` — structured tracing & metrics for the simulated runtime.

The observability layer every perf PR reports through (docs/OBSERVABILITY.md):

* :class:`~repro.observe.spans.TraceRecorder` — collects nestable,
  thread-aware spans plus counters/gauges;
* :class:`~repro.observe.spans.tracing` — ``with tracing("out.json") as tr``
  installs a recorder and writes Chrome-trace JSON on exit;
* :func:`~repro.observe.spans.span` / :func:`~repro.observe.spans.count` /
  :func:`~repro.observe.spans.gauge` — instrumentation points used by the
  runtime and kernels; no-ops (near-zero cost) when tracing is disabled;
* :mod:`~repro.observe.export` — Chrome-trace-format exporter and the
  validation schema the golden-trace tests check against.

The CLI exposes the same machinery as ``repro cpd --trace out.json`` (and
the ``decompose``/``tucker``/``complete`` subcommands); load the output in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

from repro.observe.export import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.observe.spans import (
    NULL_SPAN,
    SpanRecord,
    TraceRecorder,
    active_recorder,
    count,
    enabled,
    gauge,
    span,
    tracing,
)

__all__ = [
    "SpanRecord",
    "TraceRecorder",
    "tracing",
    "span",
    "count",
    "gauge",
    "enabled",
    "active_recorder",
    "NULL_SPAN",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]
