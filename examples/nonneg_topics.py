#!/usr/bin/env python3
"""Constrained CP: non-negative topic extraction on review data.

Unconstrained CP components mix positive and negative loadings, which is
hard to read as "topics".  SPLATT's constrained CP (ported here as
AO-ADMM) solves that: with non-negativity on every mode, each component
becomes an additive bundle of users, businesses and words — directly
interpretable, at a small cost in raw fit.  An ℓ₁ penalty goes further and
sparsifies the loadings.

Run:  python examples/nonneg_topics.py
"""

import numpy as np

import repro
from repro.constrained import LassoConstraint, constrained_cp_als

RANK = 6

print("generating a YELP-like review tensor...")
tensor = repro.synthetic_dataset("yelp", scale=0.5, seed=13)
print(f"  {tensor}\n")

# ----------------------------------------------------------------------
# Three fits: unconstrained, non-negative, sparse non-negative-ish (l1).
# ----------------------------------------------------------------------
runs = {
    "unconstrained": constrained_cp_als(
        tensor, RANK, "none", max_iterations=25, tolerance=1e-5, seed=2
    ),
    "non-negative": constrained_cp_als(
        tensor, RANK, "nonneg", max_iterations=25, tolerance=1e-5, seed=2
    ),
    "l1-sparse": constrained_cp_als(
        tensor, RANK, LassoConstraint(weight=0.3),
        max_iterations=25, tolerance=1e-5, seed=2,
    ),
}

print(f"{'model':15s} {'fit':>7} {'neg entries':>12} {'zero entries':>13}")
for name, res in runs.items():
    neg = sum(int((f < -1e-12).sum()) for f in res.factors)
    zero = sum(int((np.abs(f) < 1e-8).sum()) for f in res.factors)
    print(f"{name:15s} {res.fit:>7.4f} {neg:>12} {zero:>13}")

# ----------------------------------------------------------------------
# Read the non-negative topics.
# ----------------------------------------------------------------------
ncp = runs["non-negative"]
word_factor = ncp.factors[2]
strength = word_factor.sum(axis=0)
order = np.argsort(strength)[::-1]
print("\nnon-negative topics (top words by loading):")
for r in order[:3]:
    top = np.argsort(word_factor[:, r])[::-1][:6]
    words = ", ".join(f"word{int(w)}({word_factor[w, r]:.2f})" for w in top)
    print(f"  topic {int(r)}: {words}")

print("\nEvery loading is >= 0, so a topic reads as 'these users reviewing")
print("these businesses using these words' — the interpretability win that")
print("motivates constrained CP.")
