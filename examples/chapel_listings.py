#!/usr/bin/env python3
"""The paper's code listings, reproduced 1:1 on this library's substrate.

Section II and IV of the paper teach Chapel through seven listings; each
maps onto a mechanism this repository implements.  Running this script
executes all of them.

Run:  python examples/chapel_listings.py
"""

import threading

import numpy as np

from repro.runtime import (
    AtomicBool,
    ChapelEnv,
    make_mutex_pool,
    make_tasking_layer,
)
from repro.runtime.tasking import static_block

env = ChapelEnv(num_tasks=4)
layer = make_tasking_layer(env)
print_lock = threading.Lock()


def tprint(*args):
    with print_lock:
        print(*args)


# ----------------------------------------------------------------------
print("Listing 1 — coforall task-parallel construct")
# coforall tid in 0..numTasks-1 { writeln("Hello from Task ", tid); ... }
# ----------------------------------------------------------------------
def hello(tid: int) -> None:
    tprint(f"  Hello from Task {tid}")
    if tid == 0:
        tprint(f"  Extra hello from master: {tid}")


layer.coforall(4, hello)

# ----------------------------------------------------------------------
print("\nListing 3 — forall data-parallel loop / whole-array operation")
# forall elem in myArray { elem += 1; }   |   myArray += 1;
# ----------------------------------------------------------------------
my_array = np.zeros(16)
layer.forall(len(my_array), lambda lo, hi, tid: my_array.__setitem__(
    slice(lo, hi), my_array[lo:hi] + 1))
print(f"  after forall:      {my_array.sum():.0f} (expected 16)")
my_array += 1  # the equivalent whole-array operation
print(f"  after whole-array: {my_array.sum():.0f} (expected 32)")

# ----------------------------------------------------------------------
print("\nListing 5 — c_ptrTo: flat-buffer access to a matrix")
# var myPtr = c_ptrTo(myMatrix); myRowPtr = myPtr + row*cols; ...
# ----------------------------------------------------------------------
rows, cols = 3, 3
my_matrix = np.zeros((rows, cols))
my_ptr = my_matrix.ravel()          # the raw 1-D buffer (a view, like c_ptrTo)
for row in range(rows):
    row_off = row * cols            # pointer arithmetic
    for col in range(cols):
        my_ptr[row_off + col] = 1
print(f"  matrix set through the flat pointer: all ones = "
      f"{bool((my_matrix == 1).all())}")

# ----------------------------------------------------------------------
print("\nListing 6 — acquiring/releasing locks via atomic variables")
# while pool[lockID].testAndSet() { chpl_task_yield(); }  /  clear()
# ----------------------------------------------------------------------
flag = AtomicBool()
counter = {"x": 0}


def contender(tid: int) -> None:
    for _ in range(10_000):
        flag.spin_lock()            # while testAndSet(): yield
        try:
            counter["x"] += 1
        finally:
            flag.spin_unlock()      # clear()


layer.coforall(4, contender)
print(f"  40000 locked increments across 4 tasks: counter = {counter['x']}")

# the production version: a hashed pool, as §IV-A builds for the MTTKRP
pool = make_mutex_pool("atomic", size=8, env=env)
with pool.guard_row(1234):
    pass
print(f"  mutex pool acquire/release recorded: "
      f"{pool.counters.lock_acquires} acquire(s)")

# ----------------------------------------------------------------------
print("\nListing 7 — omp for nested in omp parallel (the §IV-B pattern)")
# Each thread owns a private buffer but iterates a designated row slice;
# Chapel needs a coforall + manual bounds, i.e. static_block.
# ----------------------------------------------------------------------
vals = np.arange(20.0).reshape(5, 4)
thd_data = [np.zeros(4) for _ in range(4)]


def worker(tid: int) -> None:
    my_vals = thd_data[tid]                      # private buffer
    lo, hi = static_block(vals.shape[0], 4, tid)  # the manual omp-for bounds
    for i in range(lo, hi):
        my_vals += vals[i] * 2


layer.coforall(4, worker)
reduced = np.zeros(4)
for buf in thd_data:                             # "do reduction on myVals"
    reduced += buf
expected = (vals * 2).sum(axis=0)
print(f"  reduction correct: {bool(np.allclose(reduced, expected))}")

print("\nAll listings executed on the repro.runtime substrate.")
