#!/usr/bin/env python3
"""Knowledge-base scenario: the paper's NELL-2 workload.

NELL-2 holds (subject, verb, object) triples from the Never Ending Language
Learner.  CP decomposition finds latent *relations* — components that
couple groups of subjects, verbs and objects — and the model can score
unseen triples, the classic knowledge-base completion task.

This example also demonstrates the property that makes NELL-2 the paper's
lock-free dataset: its mode dimensions are small relative to its nonzero
count, so the parallel MTTKRP always privatizes instead of locking.

Run:  python examples/nell_knowledge_base.py
"""

import numpy as np

import repro

RANK = 10

print("generating the NELL-2 stand-in (Table I signature)...")
tensor = repro.synthetic_dataset("nell-2", seed=7)
print(f"  {tensor}")

# ----------------------------------------------------------------------
# Lock-free parallel MTTKRP at every task count (the paper's §V-D2).
# ----------------------------------------------------------------------
for ntasks in (2, 4):
    options = repro.CpalsOptions(
        max_iterations=1, tolerance=0.0, env=repro.ChapelEnv(num_tasks=ntasks)
    )
    result = repro.cp_als(tensor, RANK, options)
    assert not any(i.used_locks for i in result.mttkrp_infos)
    print(f"  {ntasks} tasks: no-lock MTTKRP for all modes "
          f"(lock acquires: {result.counters.lock_acquires})")

# ----------------------------------------------------------------------
# Knowledge-base completion: hold out 10% of the triples, fit, score.
# ----------------------------------------------------------------------
from repro.tensor.transform import split_nonzeros

rng = np.random.default_rng(3)
train, held = split_nonzeros(tensor, 0.1, seed=3)
held_coords, held_values = held.coords, held.values
n_test = held.nnz

print(f"\nfitting on {train.nnz} triples, holding out {n_test}...")
options = repro.CpalsOptions(
    max_iterations=30, tolerance=1e-5, env=repro.ChapelEnv(num_tasks=4)
)
result = repro.cp_als(train, RANK, options)
print(f"  train fit = {result.fit:.4f} in {result.iterations} iterations")

# Score held-out true triples against random negative triples: a useful
# model ranks the true ones higher.
pred_true = result.kruskal.predict(held_coords)
negatives = np.column_stack([
    rng.integers(0, d, n_test) for d in tensor.dims
])
pred_neg = result.kruskal.predict(negatives)

auc_pairs = (pred_true[:, None] > pred_neg[None, :]).mean()
print(f"  mean score, held-out true triples: {pred_true.mean():.4f}")
print(f"  mean score, random triples:        {pred_neg.mean():.4f}")
print(f"  pairwise ranking accuracy (AUC):   {auc_pairs:.3f}")

# ----------------------------------------------------------------------
# Latent relations: the strongest verb clusters.
# ----------------------------------------------------------------------
model = result.kruskal
verb_factor = model.factors[1]
order = np.argsort(model.weights)[::-1]
print("\nstrongest latent relations (verb-mode loadings):")
for r in order[:3]:
    top_verbs = np.argsort(verb_factor[:, r])[::-1][:5]
    print(f"  relation {r} (weight {model.weights[r]:.2f}): "
          f"verbs {[int(v) for v in top_verbs]}")
