#!/usr/bin/env python3
"""Quickstart: decompose a sparse tensor with CP-ALS in ~20 lines.

Generates a small synthetic tensor with planted rank-4 structure, runs the
SPLATT-style CP-ALS pipeline (sort → CSF → parallel MTTKRP → ALS), and
prints the fit plus the paper's per-routine timing breakdown.

Run:  python examples/quickstart.py
"""

import repro

# 1. Get a tensor.  Any of these work:
#      repro.load_tns("data.tns")              -- FROSTT text file
#      repro.synthetic_dataset("yelp")         -- Table I stand-in
#      repro.random_tensor((50, 40, 30), 2000) -- uniform random
#    Here: a fully-observed rank-4 tensor plus noise, so CP-ALS has exact
#    structure to recover and the fit approaches 1.
tensor, _planted_factors = repro.planted_low_rank(
    (30, 25, 20), rank=4, nnz=30 * 25 * 20, noise=0.01, seed=0
)
print(f"tensor: {tensor}")

# 2. Decompose.  Rank and iteration defaults follow the paper (R=35, 20
#    iterations); we pick a small rank to match the planted structure.
options = repro.CpalsOptions(
    max_iterations=50,
    tolerance=1e-6,            # stop when the fit stops improving
    env=repro.ChapelEnv(num_tasks=4),  # Chapel-style task parallelism
)
result = repro.cp_als(tensor, rank=4, options=options)

# 3. Inspect the result.
print(f"fit = {result.fit:.4f} after {result.iterations} iterations "
      f"(converged: {result.converged})")
print(f"component weights λ = {result.kruskal.weights.round(3)}")

print("\nper-routine time (the paper's Table III breakdown):")
for routine, seconds in result.timers.as_row().items():
    print(f"  {routine:10s} {seconds:.4f} s")

# 4. Use the model: predict values at arbitrary coordinates.
predictions = result.kruskal.predict(tensor.coords[:5])
print("\nfirst five nonzeros, observed vs reconstructed:")
for coord, observed, predicted in zip(
    tensor.coords[:5], tensor.values[:5], predictions
):
    print(f"  {tuple(int(c) for c in coord)}  {observed:8.4f}  ~  {predicted:8.4f}")
