#!/usr/bin/env python3
"""Reproduce the paper's performance study from the command line.

Walks the three optimization stories of §V — sorting (Fig 1), MTTKRP row
access (Figs 2-3), and the mutex pool (Fig 4) — first *measuring* the real
kernels at bench scale, then printing the *simulated* paper-scale curves,
and ends with the headline table (83-96% of C, near-linear scaling).

For the full experiment set, use the CLI instead:

    python -m repro.bench            # everything, simulated
    python -m repro.bench --measured fig2 fig4

Run:  python examples/performance_study.py
"""

import time

import numpy as np

import repro
from repro.bench.runner import get_experiment
from repro.runtime.accounting import CostCounters
from repro.runtime.locks import make_mutex_pool
from repro.runtime.tasking import make_tasking_layer

RANK = 16


def measure(label, fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    print(f"  {label:30s} {best:.4f} s")
    return best


print("=" * 72)
print("Story 1 — sorting (paper Fig 1): measured ladder on NELL-2")
print("=" * 72)
nell = repro.synthetic_dataset("nell-2")
for variant in repro.SORT_VARIANTS:
    measure(f"sort[{variant}]", lambda v=variant: repro.sort_tensor(nell, 0, variant=v))

print()
print(get_experiment("fig1")().render())

print()
print("=" * 72)
print("Story 2 — MTTKRP row access (paper Figs 2-3): measured ladder on YELP")
print("=" * 72)
yelp = repro.synthetic_dataset("yelp")
csf_set = repro.build_csf_set(yelp)
rng = np.random.default_rng(0)
factors = [rng.random((d, RANK)) for d in yelp.dims]
for variant in repro.ACCESS_VARIANTS:
    def sweep(v=variant):
        for mode in range(3):
            repro.mttkrp_csf(csf_set, factors, mode, variant=v)
    measure(f"mttkrp[{variant}] x3 modes", sweep, repeats=2)

print()
print(get_experiment("fig2")().render())

print()
print("=" * 72)
print("Story 3 — mutex pool (paper Fig 4): real lock pools, 4 threads")
print("=" * 72)
locked_mode = next(m for m in range(3) if csf_set.tree_for_mode(m)[1] != "root")
for kind, layer_name in (("sync", "qthreads"), ("atomic", "qthreads"), ("sync", "fifo")):
    env = repro.ChapelEnv(num_tasks=4, tasking_layer=layer_name)
    counters = CostCounters()
    layer = make_tasking_layer(env, counters)
    pool = make_mutex_pool(kind, size=8, env=env, counters=counters)
    start = time.perf_counter()
    repro.mttkrp_csf(
        csf_set, factors, locked_mode,
        variant="vectorized", layer=layer, pool=pool, force_locks=True,
    )
    elapsed = time.perf_counter() - start
    snap = counters.snapshot()
    print(f"  {kind}/{layer_name:9s} {elapsed:.4f} s   acquires={snap['lock_acquires']:4d} "
          f"contended={snap['lock_contended']:3d} sleeps={snap['sync_sleeps']}")

print()
print(get_experiment("fig4")().render())

print()
print("=" * 72)
print("Headline")
print("=" * 72)
print(get_experiment("headline")().render())
