#!/usr/bin/env python3
"""Distributed CP-ALS (the paper's future work), simulated locale by locale.

The paper closes by planning to port SPLATT's medium-grained
distributed-memory algorithm onto Chapel's multi-locales.  This example
runs that algorithm over simulated locales: the tensor is cut over a
Cartesian locale grid, every locale computes real local MTTKRPs over its
own CSF, and the fold/expand factor-row exchanges are executed and
metered.  The numerics are identical to the serial solver — what changes
is the communication volume, which is exactly what grid shape controls.

Run:  python examples/distributed_localescale.py
"""

import repro
from repro.distributed import LocaleGrid, choose_grid, distributed_cp_als

RANK = 8

print("generating the NELL-2 stand-in...")
tensor = repro.synthetic_dataset("nell-2", seed=1)
print(f"  {tensor}\n")

serial = repro.cp_als(
    tensor, RANK, repro.CpalsOptions(max_iterations=5, tolerance=0.0, seed=3)
)
print(f"serial fit after 5 iterations: {serial.fit:.6f}\n")

# ----------------------------------------------------------------------
# Scale the locale count: identical numerics, growing (metered) traffic.
# ----------------------------------------------------------------------
print(f"{'locales':>8} {'grid':>10} {'imbalance':>9} {'fold rows':>10} "
      f"{'expand rows':>11} {'messages':>9} {'volume':>10} {'fit drift':>10}")
for nlocales in (1, 2, 4, 8, 16):
    result = distributed_cp_als(
        tensor, RANK, nlocales=nlocales, max_iterations=5, tolerance=0.0, seed=3
    )
    drift = abs(result.fit - serial.fit)
    grid = "x".join(str(g) for g in result.grid.shape)
    print(f"{nlocales:>8} {grid:>10} {result.partition.imbalance:>9.2f} "
          f"{result.comm.fold_rows:>10} {result.comm.expand_rows:>11} "
          f"{result.comm.total_messages:>9} "
          f"{result.comm.volume_bytes(RANK):>10} {drift:>10.2e}")

# ----------------------------------------------------------------------
# Grid-shape ablation at 8 locales: 3-D beats slicing a single mode.
# ----------------------------------------------------------------------
print("\ngrid-shape ablation at 8 locales (communication volume in bytes):")
for shape in ((8, 1, 1), (1, 8, 1), (1, 1, 8), (2, 2, 2), (2, 1, 4)):
    result = distributed_cp_als(
        tensor, RANK, grid=LocaleGrid(shape), max_iterations=1, tolerance=0.0
    )
    marker = " <- choose_grid" if shape == choose_grid(tensor.dims, 8).shape else ""
    print(f"  {'x'.join(str(g) for g in shape):>7}: "
          f"{result.comm.volume_bytes(RANK):>9}{marker}")

print("\nThe Cartesian (medium-grained) grids move less data than 1-D")
print("slicing — the result that motivates SPLATT's distributed design.")
