#!/usr/bin/env python3
"""Ratings-prediction scenario: tensor completion on a NETFLIX-like tensor.

The NETFLIX tensor of Table I is (user × movie × day); most cells are
unobserved, and the task is to predict held-out ratings — tensor
*completion*, SPLATT's third routine family.  This example compares the
three completion solvers (ALS, SGD, CCD++) on a planted-structure
NETFLIX-shaped workload and shows the driver's early stopping at work.

Run:  python examples/movie_ratings_completion.py
"""

import numpy as np

import repro
from repro.tensor.generate import planted_low_rank

RANK_TRUE = 4
RANK_FIT = 4

# ----------------------------------------------------------------------
# A NETFLIX-shaped observation set with planted low-rank taste structure.
# ----------------------------------------------------------------------
dims = (600, 250, 40)  # users x movies x days (scaled NETFLIX shape)
tensor, true_factors = planted_low_rank(dims, RANK_TRUE, 40_000, noise=0.05, seed=11)
print(f"observations: {tensor}  (~{100 * tensor.density:.2f}% of cells observed)")

# Hold out a test set the solvers never see.
train, test = repro.split_nonzeros(tensor, 0.1, seed=0)
test_coords, test_values = test.coords, test.values
print(f"train: {train.nnz} entries   test: {len(test_values)} entries\n")

# ----------------------------------------------------------------------
# Fit with each solver.
# ----------------------------------------------------------------------
baseline = np.sqrt(np.mean((test_values - train.values.mean()) ** 2))
print(f"{'solver':8s} {'epochs':>6} {'train RMSE':>11} {'val RMSE':>9} "
      f"{'test RMSE':>10} {'seconds':>8}")
print(f"{'mean':8s} {'-':>6} {'-':>11} {'-':>9} {baseline:>10.4f} {'-':>8}")
for algo in ("als", "ccd", "sgd"):
    opts = repro.CompletionOptions(
        algorithm=algo,
        max_epochs=60,
        regularization=1e-3,
        learn_rate=0.02,
        patience=5,
        seed=7,
    )
    result = repro.complete(train, RANK_FIT, opts)
    test_rmse = np.sqrt(np.mean((result.predict(test_coords) - test_values) ** 2))
    print(f"{algo:8s} {result.epochs:>6} {result.final_train_rmse:>11.4f} "
          f"{min(result.val_rmse):>9.4f} {test_rmse:>10.4f} "
          f"{result.seconds:>8.2f}")

print("\nAll three solvers should beat the mean baseline by a wide margin;")
print("ALS typically converges in the fewest epochs, CCD++ uses the least")
print("memory per epoch, SGD trades accuracy for per-epoch cost.")
