#!/usr/bin/env python3
"""Review-mining scenario: the paper's YELP workload.

The YELP tensor is (user × business × word): entry (u, b, w) counts word w
in user u's review of business b.  CP decomposition extracts *topics*:
each rank-one component couples a group of users, a group of businesses
and a vocabulary cluster.

This example runs the full pipeline on the YELP stand-in, demonstrates the
lock-pressure property the paper studies (the mutex-pool MTTKRP engages
beyond 2 tasks on this dataset), and prints the top entities per topic.

Run:  python examples/yelp_reviews.py
"""

import numpy as np

import repro

RANK = 8
MODE_NAMES = ("user", "business", "word")

print("generating the YELP stand-in (Table I signature)...")
tensor = repro.synthetic_dataset("yelp", seed=42)
print(f"  {tensor}")

stats = repro.tensor_stats(tensor)
for name, mode in zip(MODE_NAMES, stats.modes):
    print(f"  {name:8s}: dim={mode.dim:5d}  hub-share(top 1%)="
          f"{mode.top_slice_share:.2f}  imbalance={mode.slice_imbalance:.1f}")

# ----------------------------------------------------------------------
# The paper's §V-D2 dichotomy: YELP needs the mutex pool beyond 2 tasks.
# ----------------------------------------------------------------------
for ntasks in (2, 4):
    options = repro.CpalsOptions(
        max_iterations=1, tolerance=0.0, env=repro.ChapelEnv(num_tasks=ntasks)
    )
    result = repro.cp_als(tensor, RANK, options)
    locked = sorted({i.mode for i in result.mttkrp_infos if i.used_locks})
    print(f"  {ntasks} tasks: locked MTTKRP modes = {locked or 'none'} "
          f"(lock acquires: {result.counters.lock_acquires})")

# ----------------------------------------------------------------------
# Full decomposition and topic inspection.
# ----------------------------------------------------------------------
print(f"\nrunning CP-ALS, rank {RANK}...")
options = repro.CpalsOptions(
    max_iterations=25, tolerance=1e-5, env=repro.ChapelEnv(num_tasks=4)
)
result = repro.cp_als(tensor, RANK, options)
print(f"  fit = {result.fit:.4f} in {result.iterations} iterations")

model = result.kruskal
order = np.argsort(model.weights)[::-1]
print("\ntop topics (by component weight):")
for r in order[:3]:
    print(f"  topic {r}  (weight {model.weights[r]:.2f})")
    for name, factor in zip(MODE_NAMES, model.factors):
        top = np.argsort(factor[:, r])[::-1][:5]
        scores = ", ".join(f"{name}{i}={factor[i, r]:.2f}" for i in top)
        print(f"    top {name:8s}: {scores}")

# ----------------------------------------------------------------------
# Topic-space scoring: which unseen (user, business) pairs look likely?
# ----------------------------------------------------------------------
rng = np.random.default_rng(0)
candidates = np.column_stack([
    rng.integers(0, tensor.dims[0], 5),
    rng.integers(0, tensor.dims[1], 5),
    rng.integers(0, tensor.dims[2], 5),
])
scores = model.predict(candidates)
print("\nmodel scores for five random (user, business, word) cells:")
for coord, score in zip(candidates, scores):
    print(f"  {tuple(int(c) for c in coord)} -> {score:.4f}")
