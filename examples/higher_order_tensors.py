#!/usr/bin/env python3
"""Arbitrary-order tensors — the paper's first future-work item, working.

The paper's port was restricted to 3rd-order tensors (§V-A); extending to
arbitrary order is its first stated future-work item.  This repository's
CSF and vectorized MTTKRP support any order ≥ 2, so here we decompose a
4th-order tensor — e.g. (user × item × word × month), a review stream with
a time mode — and verify recovery with the factor match score and the
CORCONDIA rank diagnostic.

Run:  python examples/higher_order_tensors.py
"""

import numpy as np

import repro
from repro.analysis import core_consistency, factor_match_score
from repro.core.kruskal import KruskalTensor

RANK = 3
DIMS = (20, 15, 12, 8)  # user x item x word x month

print(f"planting a rank-{RANK} order-4 tensor {DIMS} (fully observed)...")
tensor, true_factors = repro.planted_low_rank(
    DIMS, RANK, 20 * 15 * 12 * 8, noise=0.01, seed=8
)
print(f"  {tensor}")

# The CSF now has 4 levels; SPLATT's smallest-mode-first ordering applies.
csf_set = repro.build_csf_set(tensor)
for tree in csf_set.trees:
    print(f"  CSF rooted at mode {tree.dim_perm[0]}: levels {tree.nfibs}")

print(f"\nrunning CP-ALS, rank {RANK} (vectorized kernels, 4 tasks)...")
result = repro.cp_als(
    tensor, RANK,
    repro.CpalsOptions(max_iterations=80, tolerance=1e-7,
                       env=repro.ChapelEnv(num_tasks=4)),
)
print(f"  fit = {result.fit:.4f} in {result.iterations} iterations")

truth = KruskalTensor(np.ones(RANK), true_factors)
fms = factor_match_score(truth, result.kruskal, weight_penalty=False)
print(f"  factor match score vs planted truth: {fms:.4f}")

# Rank diagnostic: the chosen rank should look consistent, an inflated one
# should not.
cc = core_consistency(tensor, result.kruskal)
print(f"  CORCONDIA at rank {RANK}: {cc:.1f}")

over = repro.cp_als(
    tensor, RANK + 2,
    repro.CpalsOptions(max_iterations=40, tolerance=0.0),
)
cc_over = core_consistency(tensor, over.kruskal)
shown = f"{cc_over:.1f}" if cc_over > -1000 else "<< 0 (wildly inconsistent)"
print(f"  CORCONDIA at rank {RANK + 2} (over-factored): {shown}")

print("\nNote: only the vectorized kernels accept order != 3; the")
print("interpreted slicing/index2d/pointer variants raise, mirroring the")
print("paper's 3rd-order port:")
try:
    repro.mttkrp(tensor, [f.copy() for f in true_factors], 0, variant="pointer")
except NotImplementedError as exc:
    print(f"  NotImplementedError: {exc}")
