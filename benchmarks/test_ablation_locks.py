"""Ablation: mutex-pool size and the privatize-vs-lock crossover.

Two design choices behind Fig 4 that the paper fixes silently:

* the pool size (SPLATT defaults to 1024 hashed locks) — too few locks
  create false contention between unrelated rows;
* the privatization threshold — when per-task buffers get cheaper than
  lock traffic.
"""

import threading

import pytest

from repro.mttkrp.locks_policy import PRIVATIZATION_RATIO, needs_locks
from repro.perfmodel.contention import lock_overhead_seconds
from repro.runtime.env import ChapelEnv
from repro.runtime.locks import make_mutex_pool


@pytest.mark.parametrize("pool_size", [1, 8, 64, 1024])
def test_ablation_pool_size_contention(benchmark, pool_size):
    """Real 4-thread hammer: larger pools mean fewer collisions."""
    env = ChapelEnv(num_tasks=4)

    def hammer():
        pool = make_mutex_pool("atomic", size=pool_size, env=env)

        def worker(tid):
            for i in range(1500):
                with pool.guard_row(i * 4 + tid):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return pool

    pool = benchmark.pedantic(hammer, rounds=3, iterations=1)
    assert pool.counters.lock_acquires == 6000


def test_ablation_pool_size_collision_ordering(benchmark):
    """Contention events decrease (weakly) as the pool grows."""
    env = ChapelEnv(num_tasks=4)

    def measure_size(size):
        pool = make_mutex_pool("atomic", size=size, env=env)

        def worker(tid):
            for i in range(2000):
                with pool.guard_row(i * 4 + tid):
                    pass

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return pool.counters.lock_contended

    contended = benchmark.pedantic(
        lambda: {size: measure_size(size) for size in (1, 1024)},
        rounds=1, iterations=1,
    )
    assert contended[1024] <= contended[1]


def test_ablation_privatization_crossover(benchmark):
    """The policy's crossover point: for YELP's internal mode (dim 41k,
    8M nnz) locks engage between 2 and 4 tasks; scaling nnz moves the
    crossover predictably."""
    def sweep():
        rows = []
        for nnz_scale in (0.5, 1.0, 2.0, 4.0):
            nnz = int(8_000_000 * nnz_scale)
            crossover = next(
                (p for p in (2, 4, 8, 16, 32, 64) if needs_locks(41_000, nnz, p)),
                None,
            )
            rows.append((nnz, crossover))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    crossings = [c for _, c in rows]
    # more nonzeros -> later crossover (privatization stays viable longer)
    assert crossings == sorted(crossings, key=lambda c: (c is None, c))
    assert rows[1][1] == 4  # the paper's YELP behaviour


def test_ablation_lock_cost_model_orderings(benchmark):
    """The contention model's cost ordering must hold across task counts."""
    def sweep():
        out = []
        for p in (4, 8, 16, 32):
            kw = dict(lock_ops=10**8, ntasks=p, top_slice_share=0.13, hold_time=5e-8)
            out.append((
                p,
                lock_overhead_seconds(**kw, mutex_kind="sync", tasking_layer="qthreads"),
                lock_overhead_seconds(**kw, mutex_kind="atomic", tasking_layer="qthreads"),
                lock_overhead_seconds(**kw, mutex_kind="c", tasking_layer="qthreads"),
            ))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for _, sync, atomic, c in rows:
        assert sync > atomic > c


def test_privatization_ratio_documented(benchmark):
    """Freeze the calibrated threshold so silent changes fail loudly."""
    value = benchmark.pedantic(lambda: PRIVATIZATION_RATIO, rounds=1, iterations=1)
    assert value == pytest.approx(0.018)
