"""Amortized MTTKRP engine: cold vs steady-state micro-benchmark.

Measures repeated :func:`repro.mttkrp.mttkrp_csf` calls on a synthetic
3rd-order tensor (>= 1e5 nonzeros) in two configurations:

* **seed** — ``amortize=False`` on a ``persistent=False`` tasking layer:
  thread spawn per ``coforall``, ``np.add.at`` scatters, per-call argsort
  and buffer allocation (the pre-engine behaviour);
* **amortized** — the defaults: persistent worker pool, cached scatter
  plans and segment-sum operators, reusable workspaces.

Asserts ``np.allclose`` agreement on every algorithm/lock path and a
>= 2x steady-state speedup over a full sweep (every mode under both sync
policies), and writes the measurements to ``benchmarks/BENCH_mttkrp.json``
for tracking.  Timings are the minimum over interleaved trials — the two
configurations alternate within each trial — so shared-machine noise
cannot favour either side.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.csf.build import build_csf_set
from repro.mttkrp.variants import mttkrp_csf
from repro.runtime.env import ChapelEnv
from repro.runtime.tasking import make_tasking_layer
from repro.tensor.generate import random_tensor

DIMS = (400, 300, 200)
NNZ = 120_000
RANK = 16
NTASKS = 2
TRIALS = 7
LOCK_CONFIGS = (False, True)
RESULT_PATH = Path(__file__).resolve().parent / "BENCH_mttkrp.json"


@pytest.fixture(scope="module")
def workload():
    tensor = random_tensor(DIMS, NNZ, seed=7)
    rng = np.random.default_rng(123)
    factors = [np.asarray(rng.random((d, RANK))) for d in tensor.dims]
    csf_set = build_csf_set(tensor, allocation="one")  # root+internal+leaf
    return tensor, factors, csf_set


def _sweep(csf_set, factors, layer, *, amortize):
    """One full pass: every mode under both sync policies."""
    outs = []
    for force_locks in LOCK_CONFIGS:
        for mode in range(len(factors)):
            out, info = mttkrp_csf(
                csf_set, factors, mode, layer=layer,
                force_locks=force_locks, amortize=amortize,
            )
            outs.append((force_locks, mode, info.algorithm, out))
    return outs


def _best_sweep_seconds(csf_set, factors, configs, trials=TRIALS):
    """Per-config best single-sweep time over interleaved trials."""
    best = {name: float("inf") for name, _, _ in configs}
    for _ in range(trials):
        for name, layer, amortize in configs:
            start = time.perf_counter()
            _sweep(csf_set, factors, layer, amortize=amortize)
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def test_amortized_engine_speedup(benchmark, workload):
    tensor, factors, csf_set = workload
    env = ChapelEnv(num_tasks=NTASKS)
    seed_layer = make_tasking_layer(env, persistent=False)
    amortized_layer = make_tasking_layer(env)
    try:
        # --- correctness: every algorithm/lock path agrees with the seed ---
        seed_outs = _sweep(csf_set, factors, seed_layer, amortize=False)
        cold_start = time.perf_counter()
        amortized_outs = _sweep(csf_set, factors, amortized_layer, amortize=True)
        cold_seconds = time.perf_counter() - cold_start
        algorithms = set()
        for (fl, mode, algo, expected), (_, _, _, got) in zip(seed_outs, amortized_outs):
            assert np.allclose(got, expected, atol=1e-10), (fl, mode, algo)
            algorithms.add(algo)
        assert algorithms == {"root", "internal", "leaf"}

        # --- timing: steady state (plans cached, pool warm) vs seed ---
        best = benchmark.pedantic(
            lambda: _best_sweep_seconds(
                csf_set, factors,
                [("seed", seed_layer, False), ("steady", amortized_layer, True)],
            ),
            rounds=1, iterations=1,
        )
        seed_seconds, steady_seconds = best["seed"], best["steady"]
        speedup = seed_seconds / steady_seconds

        ctx_stats = csf_set.mttkrp_context.stats()
        pool_stats = amortized_layer.worker_pool.stats()
        record = {
            "dims": list(DIMS),
            "nnz": tensor.nnz,
            "rank": RANK,
            "num_tasks": NTASKS,
            "trials": TRIALS,
            "cold_sweep_seconds": cold_seconds,
            "steady_sweep_seconds": steady_seconds,
            "seed_sweep_seconds": seed_seconds,
            "steady_speedup_vs_seed": speedup,
            "plan_cache": ctx_stats,
            "worker_pool": pool_stats,
        }
        RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\namortized MTTKRP engine: {speedup:.2f}x vs seed "
              f"(seed {seed_seconds * 1e3:.1f} ms/sweep, "
              f"steady {steady_seconds * 1e3:.1f} ms/sweep, "
              f"cold {cold_seconds * 1e3:.1f} ms)")

        assert ctx_stats["plan_hits"] > 0
        assert pool_stats["dispatches"] > 0
        assert speedup >= 2.0, record
    finally:
        seed_layer.shutdown()
        amortized_layer.shutdown()
