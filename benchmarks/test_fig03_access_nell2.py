"""Fig 3 — MTTKRP matrix-access ladder on NELL-2 (the no-lock dataset)."""

import numpy as np
import pytest

from _bench_utils import print_experiment
from repro.bench.runner import get_experiment
from repro.mttkrp.variants import ACCESS_VARIANTS, mttkrp_csf


@pytest.mark.parametrize("variant", ACCESS_VARIANTS)
def test_fig3_variant(benchmark, nell2_csf, nell2_factors, variant):
    def run():
        for mode in range(3):
            mttkrp_csf(nell2_csf, nell2_factors, mode, variant=variant)

    rounds = 5 if variant == "vectorized" else 2
    benchmark.pedantic(run, rounds=rounds, iterations=1)


def test_fig3_variants_agree(benchmark, nell2_csf, nell2_factors):
    def check():
        for mode in range(3):
            ref, _ = mttkrp_csf(nell2_csf, nell2_factors, mode, variant="vectorized")
            for variant in ACCESS_VARIANTS:
                out, _ = mttkrp_csf(nell2_csf, nell2_factors, mode, variant=variant)
                np.testing.assert_allclose(out, ref, atol=1e-9)

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_fig3_simulated_shape(benchmark):
    result = benchmark.pedantic(get_experiment("fig3"), rounds=1, iterations=1)
    for row in result.rows:
        assert row[1] > row[2] > row[3]
    serial = result.rows[0]
    assert 10 <= serial[1] / serial[2] <= 18  # paper: ~17x on NELL-2
    # NELL-2 never locks: near-linear scaling of the pointer curve
    pointer = [row[3] for row in result.rows]
    assert pointer[0] / pointer[-1] >= 14
    print_experiment("fig3")
