"""Fig 5 — per-routine breakdown, YELP, serial: C vs Chapel-optimize.

Benchmarks the real serial CP-ALS under both configurations and asserts
per-routine parity except the interpreted MTTKRP/Sort gap.
"""

import pytest

from _bench_utils import BENCH_RANK, print_experiment
from repro.bench.runner import get_experiment
from repro.core.cpals import cp_als
from repro.core.options import CpalsOptions


def _run(tensor, variant, sort_variant):
    opts = CpalsOptions(
        max_iterations=1, tolerance=0.0, variant=variant, sort_variant=sort_variant
    )
    return cp_als(tensor, BENCH_RANK, opts)


def test_fig5_c_role(benchmark, yelp_tensor):
    benchmark.pedantic(
        lambda: _run(yelp_tensor, "vectorized", "lexsort"), rounds=3, iterations=1
    )


def test_fig5_chapel_optimized(benchmark, yelp_tensor):
    benchmark.pedantic(
        lambda: _run(yelp_tensor, "pointer", "all_opts"), rounds=2, iterations=1
    )


def test_fig5_simulated_shape(benchmark):
    result = benchmark.pedantic(get_experiment("fig5"), rounds=1, iterations=1)
    c_row, chapel_row = result.rows
    headers = list(result.headers)
    c = dict(zip(headers[1:], c_row[1:]))
    ch = dict(zip(headers[1:], chapel_row[1:]))
    # paper: serial optimized Chapel within ~15% of C on every routine
    for routine in ("mttkrp", "mat_ata", "mat_norm", "cpd_fit", "inverse"):
        assert ch[routine] <= 1.3 * c[routine] + 1e-6
    assert ch["mttkrp"] / c["mttkrp"] == pytest.approx(1.07, rel=0.03)
    assert ch["sort"] / c["sort"] == pytest.approx(1.19, rel=0.1)
    print_experiment("fig5")
