"""Fig 6 — per-routine breakdown, NELL-2, serial: C vs Chapel-optimize."""

import pytest

from _bench_utils import BENCH_RANK, print_experiment
from repro.bench.runner import get_experiment
from repro.core.cpals import cp_als
from repro.core.options import CpalsOptions


def _run(tensor, variant, sort_variant):
    opts = CpalsOptions(
        max_iterations=1, tolerance=0.0, variant=variant, sort_variant=sort_variant
    )
    return cp_als(tensor, BENCH_RANK, opts)


def test_fig6_c_role(benchmark, nell2_tensor):
    benchmark.pedantic(
        lambda: _run(nell2_tensor, "vectorized", "lexsort"), rounds=3, iterations=1
    )


def test_fig6_chapel_optimized(benchmark, nell2_tensor):
    benchmark.pedantic(
        lambda: _run(nell2_tensor, "pointer", "all_opts"), rounds=2, iterations=1
    )


def test_fig6_measured_numerics_agree(benchmark, nell2_tensor):
    results = benchmark.pedantic(
        lambda: (
            _run(nell2_tensor, "vectorized", "lexsort"),
            _run(nell2_tensor, "pointer", "all_opts"),
        ),
        rounds=1, iterations=1,
    )
    c, ch = results
    assert ch.fit == pytest.approx(c.fit, abs=1e-9)


def test_fig6_simulated_shape(benchmark):
    result = benchmark.pedantic(get_experiment("fig6"), rounds=1, iterations=1)
    c_row, chapel_row = result.rows
    headers = list(result.headers)
    c = dict(zip(headers[1:], c_row[1:]))
    ch = dict(zip(headers[1:], chapel_row[1:]))
    # paper anchors: MTTKRP 109.25 vs 118.33 (1.083x); sort 7.90 vs 9.86
    assert ch["mttkrp"] / c["mttkrp"] == pytest.approx(1.07, rel=0.03)
    assert 1.1 <= ch["sort"] / c["sort"] <= 1.35
    print_experiment("fig6")
