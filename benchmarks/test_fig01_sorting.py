"""Fig 1 — sorting optimization ladder on NELL-2.

Benchmarks every sort variant on the NELL-2 stand-in and asserts the
ladder's shape; the paper-scale curves come from the simulated experiment.
"""

import pytest

from _bench_utils import print_experiment
from repro.bench.runner import get_experiment
from repro.tensor.sort import SORT_VARIANTS, sort_tensor


@pytest.mark.parametrize("variant", SORT_VARIANTS)
def test_fig1_sort_variant(benchmark, nell2_tensor, variant):
    rounds = 1 if variant != "lexsort" else 5
    result = benchmark.pedantic(
        lambda: sort_tensor(nell2_tensor, 0, variant=variant),
        rounds=rounds, iterations=1,
    )
    assert result.nnz == nell2_tensor.nnz


def test_fig1_simulated_shape(benchmark):
    result = benchmark.pedantic(get_experiment("fig1"), rounds=1, iterations=1)
    serial = result.rows[0]
    # Initial > Array-opt > Slices-opt > All-opts, ~8x combined (paper §V-C)
    assert serial[1] > serial[2] > serial[3] > serial[4]
    assert 6 <= serial[1] / serial[4] <= 9
    # every variant's curve falls with task count
    for col in range(1, 5):
        series = [row[col] for row in result.rows]
        assert series[0] > series[-1]
    print_experiment("fig1")
