"""Benchmark: the TTMc kernel and Tucker HOOI (SPLATT's second workload).

TTMc's per-nonzero cost is the *outer* product of factor rows (Π R_m
flops) where MTTKRP's is the Hadamard (R flops) — the blow-up this
benchmark quantifies at matched ranks.
"""

import numpy as np
import pytest

from repro._util import as_rng
from repro.mttkrp.variants import mttkrp
from repro.tucker.hooi import tucker_hooi
from repro.tucker.ttmc import ttmc

RANKS = (8, 8, 8)


@pytest.fixture(scope="module")
def tucker_factors(yelp_tensor):
    rng = as_rng(0)
    return [np.asarray(rng.random((d, r))) for d, r in zip(yelp_tensor.dims, RANKS)]


@pytest.mark.parametrize("mode", [0, 1, 2])
def test_ttmc_kernel(benchmark, yelp_tensor, tucker_factors, mode):
    benchmark(lambda: ttmc(yelp_tensor, tucker_factors, mode))


def test_ttmc_vs_mttkrp_cost(benchmark, yelp_tensor, tucker_factors):
    """At rank 8, TTMc moves ~8x the per-nonzero data of MTTKRP; assert the
    measured ordering (TTMc costlier) without pinning the exact factor."""
    import time

    def measure():
        start = time.perf_counter()
        for mode in range(3):
            ttmc(yelp_tensor, tucker_factors, mode)
        t_ttmc = time.perf_counter() - start
        start = time.perf_counter()
        for mode in range(3):
            mttkrp(yelp_tensor, tucker_factors, mode)
        t_mttkrp = time.perf_counter() - start
        return t_ttmc, t_mttkrp

    t_ttmc, t_mttkrp = benchmark.pedantic(measure, rounds=2, iterations=1)
    assert t_ttmc > t_mttkrp * 0.8  # TTMc is not cheaper


def test_tucker_hooi_run(benchmark, nell2_tensor):
    result = benchmark.pedantic(
        lambda: tucker_hooi(nell2_tensor, (6, 6, 6), max_iterations=3, tolerance=0),
        rounds=2, iterations=1,
    )
    assert result.iterations == 3
    fits = np.asarray(result.fits)
    assert (np.diff(fits) > -1e-9).all()
